"""Demand paging: real cold-vs-warm scans on a table beyond the pool.

This is the PR 9 tentpole measured for real, not modeled: a durable
columnstore ~4x the buffer-pool budget is opened with
``Database.open(..., paging=True)`` and scanned end to end. The cold
scan faults every segment page from the snapshot file through the
buffer pool (LRU-evicting along the way); the warm scan re-runs the
same query against whatever the budget could keep resident, and a
third configuration gives the pool the whole table so warm scans are
pure hits. The fully-loaded open is timed alongside as the memory-rich
baseline.

Asserted shape findings:

* peak residency never exceeds the pool budget while the data is ~4x
  larger (the larger-than-memory contract);
* the cold scan faults every deferred page; rescans against the
  bounded pool stay bounded (LRU sequential flooding means ~0 warm hits
  at 4x, which is expected and documented);
* with the pool sized above the table, the warm scan is all hits and
  measurably faster than the cold scan (the warm-vs-cold gap).

Emits ``BENCH_paging.json`` at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.storage.database import Database

N_ROWS = 512 * 1024
ROWGROUP_SIZE = 4096
REPEATS = 3

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_paging.json"


def _build_durable(tmp_path) -> int:
    """Build the durable columnstore; returns the snapshot's on-disk
    size (what the pool actually pays per faulted page — the modeled
    ``size_bytes()`` underestimates the raw page payloads)."""
    import os

    from repro.storage.wal import SNAPSHOT_FILENAME

    rng = np.random.RandomState(7)
    database = Database("paging_bench")
    table = database.create_table(TableSchema("big", [
        Column("k", INT, nullable=False),
        Column("x", INT),
        Column("y", INT),
    ]))
    # Random payloads defeat RLE, so segments stay ~raw-sized and the
    # table is genuinely larger than the pool budget.
    xs = rng.randint(0, 2 ** 31, size=N_ROWS)
    ys = rng.randint(0, 2 ** 31, size=N_ROWS)
    table.bulk_load([(i, int(xs[i]), int(ys[i])) for i in range(N_ROWS)])
    table.set_primary_columnstore(name="big_csi",
                                  rowgroup_size=ROWGROUP_SIZE)
    database.enable_durability(str(tmp_path))
    database.wal.close()
    return os.path.getsize(str(tmp_path / SNAPSHOT_FILENAME))


def _scan_all(database) -> int:
    rows = 0
    for batch in database.table("big").primary.scan(["k", "x", "y"]):
        rows += len(batch)
    return rows


def _time_scan(database) -> float:
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        rows = _scan_all(database)
        best = min(best, (time.perf_counter() - start) * 1000.0)
        assert rows == N_ROWS
    return round(best, 3)


def test_paging_cold_vs_warm(tmp_path, record_result):
    snapshot_bytes = _build_durable(tmp_path)
    budget = snapshot_bytes // 4

    # ---- bounded pool: table ~4x the budget ----
    paged = Database.open(str(tmp_path), paging=True, pool_bytes=budget)
    pool = paged.buffer_pool
    start = time.perf_counter()
    assert _scan_all(paged) == N_ROWS
    cold_bounded_ms = round((time.perf_counter() - start) * 1000.0, 3)
    cold_misses = pool.misses
    peak = pool.peak_bytes
    warm_bounded_ms = _time_scan(paged)
    bounded = {
        "pool_bytes": budget,
        "snapshot_bytes": snapshot_bytes,
        "cold_ms": cold_bounded_ms,
        "warm_ms": warm_bounded_ms,
        "cold_misses": cold_misses,
        "warm_hits": pool.hits,
        "evictions": pool.evictions,
        "peak_bytes": peak,
        "peak_over_budget": round(peak / budget, 4),
    }

    # ---- generous pool: whole table fits, warm scans are pure hits ----
    fits = Database.open(str(tmp_path), paging=True,
                         pool_bytes=snapshot_bytes * 2)
    fits_pool = fits.buffer_pool
    start = time.perf_counter()
    assert _scan_all(fits) == N_ROWS
    cold_fits_ms = round((time.perf_counter() - start) * 1000.0, 3)
    fit_misses = fits_pool.misses
    warm_fits_ms = _time_scan(fits)
    generous = {
        "pool_bytes": snapshot_bytes * 2,
        "cold_ms": cold_fits_ms,
        "warm_ms": warm_fits_ms,
        "cold_misses": fit_misses,
        "warm_hits": fits_pool.hits,
        "evictions": fits_pool.evictions,
        "warm_misses": fits_pool.misses - fit_misses,
        "warm_over_cold_speedup": round(
            cold_fits_ms / max(warm_fits_ms, 1e-9), 3),
    }

    # ---- memory-rich baseline: the default fully-loaded open ----
    start = time.perf_counter()
    full = Database.open(str(tmp_path))
    full_open_ms = round((time.perf_counter() - start) * 1000.0, 3)
    full_scan_ms = _time_scan(full)

    payload = {
        "version": 1,
        "n_rows": N_ROWS,
        "rowgroup_size": ROWGROUP_SIZE,
        "snapshot_bytes": snapshot_bytes,
        "repeats_best_of": REPEATS,
        "bounded_pool": bounded,
        "generous_pool": generous,
        "full_load": {"open_ms": full_open_ms, "scan_ms": full_scan_ms},
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    record_result("paging", format_table(
        ["configuration", "cold ms", "warm ms", "misses", "peak/budget"],
        [
            ("pool = table/4", bounded["cold_ms"], bounded["warm_ms"],
             bounded["cold_misses"], bounded["peak_over_budget"]),
            ("pool = 2x table", generous["cold_ms"], generous["warm_ms"],
             generous["cold_misses"], "fits"),
            ("fully loaded", full_open_ms, full_scan_ms, "-", "-"),
        ],
        title=(f"demand paging, {N_ROWS} rows, snapshot "
               f"{snapshot_bytes >> 20} MiB")))

    # Shape findings (real measurements, so gates stay qualitative):
    # 1. larger-than-memory: bounded residency on a 4x table.
    assert snapshot_bytes >= 4 * budget
    assert peak <= budget, (
        f"peak residency {peak} exceeded pool budget {budget}")
    assert bounded["evictions"] > 0
    # 2. rescans against the bounded pool keep residency bounded. (With
    #    LRU and a sequential scan 4x the budget, every page is evicted
    #    before its revisit — classic sequential flooding — so the
    #    bounded pool legitimately sees ~0 warm hits; the hit-rate story
    #    belongs to the pool that fits.)
    assert pool.peak_bytes <= budget
    assert pool.misses >= cold_misses
    # 3. a pool that fits the table makes rescans pure hits — the
    #    measurable warm-vs-cold gap.
    assert generous["warm_misses"] == 0
    assert generous["warm_ms"] < generous["cold_ms"]
