"""Figure 5: update cost for different update sizes (Q4 on TPC-H).

``UPDATE TOP (N) lineitem SET l_quantity += 1, l_extendedprice += 0.01
WHERE l_shipdate = X`` under three designs:

(1) primary B+ tree on l_shipdate;
(2) primary B+ tree + secondary columnstore;
(3) primary columnstore.

Paper findings reproduced:

* B+ tree updates are the cheapest at every size.
* For small updates the secondary CSI is ~2x a plain B+ tree (delete
  buffer = cheap B+ tree insert), while the primary CSI is far more
  expensive (delete-bitmap population requires scanning compressed row
  groups for physical locators).
* As the updated fraction grows, the secondary CSI degrades towards the
  primary CSI; at ~40% both columnstores are ~16x slower than B+ tree.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.tpch import generate_tpch, q4_update

SCALE = 0.5
UPDATE_FRACTIONS = (0.0001, 0.001, 0.01, 0.05, 0.2, 0.4)


def build(design: str) -> Executor:
    db = Database()
    generate_tpch(db, scale=SCALE, seed=13)
    lineitem = db.table("lineitem")
    # Row-group size scaled so the table holds several row groups and the
    # tuple mover fires during large updates (SQL Server: 100K-1M rows).
    rowgroup = 4096
    if design in ("btree", "btree+csi"):
        lineitem.set_primary_btree(["l_shipdate"])
    if design == "btree+csi":
        lineitem.create_secondary_columnstore("csi_lineitem",
                                              rowgroup_size=rowgroup)
    if design == "pri_csi":
        lineitem.set_primary_columnstore(rowgroup_size=rowgroup)
    return Executor(db)


@pytest.fixture(scope="module")
def n_rows_total():
    db = Database()
    generate_tpch(db, scale=SCALE, seed=13)
    return db.table("lineitem").row_count


def test_fig5_update_sizes(benchmark, record_result, n_rows_total):
    def sweep():
        rows = []
        series = {"btree": [], "btree+csi": [], "pri_csi": []}
        for fraction in UPDATE_FRACTIONS:
            n_update = max(1, int(n_rows_total * fraction))
            for design in series:
                executor = build(design)
                # One statement per date until n_update rows are touched,
                # mirroring the paper's TOP (N) single statement: we use
                # a single statement with a wide date window.
                sql = (f"UPDATE TOP ({n_update}) lineitem "
                       f"SET l_quantity += 1, l_extendedprice += 0.01 "
                       f"WHERE l_shipdate >= '1992-01-01'")
                result = executor.execute(sql)
                assert result.rows_affected == n_update
                series[design].append(result.metrics.elapsed_ms)
            rows.append((f"{fraction * 100:g}%", n_update,
                         series["btree"][-1], series["btree+csi"][-1],
                         series["pri_csi"][-1]))
        return rows, series

    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["% updated", "N rows", "pri B+ tree ms", "B+ tree + sec CSI ms",
         "pri CSI ms"],
        rows,
        title=f"Figure 5: Q4 update cost, lineitem {n_rows_total} rows")
    small = 0
    big = len(UPDATE_FRACTIONS) - 1
    summary = (
        f"\nsmall update: sec CSI / btree = "
        f"{series['btree+csi'][small] / series['btree'][small]:.1f}x "
        f"(paper ~2x); pri CSI / btree = "
        f"{series['pri_csi'][small] / series['btree'][small]:.1f}x"
        f"\n40% update: sec CSI / btree = "
        f"{series['btree+csi'][big] / series['btree'][big]:.1f}x, "
        f"pri CSI / btree = "
        f"{series['pri_csi'][big] / series['btree'][big]:.1f}x "
        f"(paper ~16x both)"
    )
    record_result("fig5_updates", table + summary)

    for i in range(len(UPDATE_FRACTIONS)):
        # B+ tree is always the cheapest to update.
        assert series["btree"][i] <= series["btree+csi"][i]
        assert series["btree"][i] <= series["pri_csi"][i]
    # Small updates: secondary CSI close to B+ tree (~2x), primary CSI
    # much worse than secondary.
    assert series["btree+csi"][small] < series["btree"][small] * 5
    assert series["pri_csi"][small] > series["btree+csi"][small] * 3
    # Large updates: secondary converges towards primary CSI cost
    # (within ~2x) and both are many times the B+ tree cost.
    ratio = series["pri_csi"][big] / series["btree+csi"][big]
    assert 0.5 < ratio < 2.5
    assert series["btree+csi"][big] / series["btree"][big] > 2.0
