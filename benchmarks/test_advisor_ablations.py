"""Advisor design-choice ablations called out in DESIGN.md.

1. **CSI candidate width** (Section 4.3): option (i) — only columns
   referenced by the workload — vs option (ii) — all supported columns
   (the paper's choice). Option (ii) costs more storage but keeps the
   index useful for ad-hoc queries; estimated workload costs should be
   essentially equal because the engine reads only referenced columns.

2. **Storage budget sweep** (Section 4.1's constraint): tighter budgets
   monotonically reduce the storage used and cannot improve the
   estimated workload cost.

3. **Tuning time** (DTA scalability): tuning the 97-query TPC-DS
   workload completes in seconds.
"""

from __future__ import annotations

import time

import pytest

from repro.advisor.advisor import MODE_HYBRID, TuningAdvisor
from repro.advisor.candidates import CSI_MODE_ALL, CSI_MODE_REFERENCED
from repro.advisor.workload import Workload
from repro.bench.reporting import format_table
from repro.bench.workload_setups import tpcds_factory


@pytest.fixture(scope="module")
def tuned_workload():
    database, queries = tpcds_factory()
    workload = Workload.from_sql(queries, database)
    return database, workload


def test_ablation_csi_candidate_mode(benchmark, record_result,
                                     tuned_workload):
    database, workload = tuned_workload

    def run():
        out = {}
        for mode in (CSI_MODE_ALL, CSI_MODE_REFERENCED):
            advisor = TuningAdvisor(database)
            recommendation = advisor.tune(workload,
                                          csi_candidate_mode=mode)
            out[mode] = recommendation
        return out

    recommendations = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (mode, rec.estimated_cost, rec.storage_bytes // 1024,
         len(rec.chosen))
        for mode, rec in recommendations.items()
    ]
    record_result("ablation_csi_candidate_mode", format_table(
        ["csi candidate mode", "est cost", "storage KB", "#indexes"],
        rows, title="Ablation: CSI candidates from all vs referenced "
                    "columns"))
    all_mode = recommendations[CSI_MODE_ALL]
    referenced = recommendations[CSI_MODE_REFERENCED]
    # Estimated workload costs are close (engine reads only referenced
    # columns either way)...
    assert referenced.estimated_cost <= all_mode.estimated_cost * 1.3
    assert all_mode.estimated_cost <= referenced.estimated_cost * 1.3
    # ...and both improve on the base design.
    for rec in recommendations.values():
        assert rec.estimated_cost < rec.base_cost


def test_ablation_storage_budget(benchmark, record_result, tuned_workload):
    database, workload = tuned_workload

    def run():
        advisor = TuningAdvisor(database)
        unbounded = advisor.tune(workload)
        budgets = [None, unbounded.storage_bytes,
                   max(1, unbounded.storage_bytes // 2),
                   max(1, unbounded.storage_bytes // 8)]
        out = []
        for budget in budgets:
            recommendation = advisor.tune(workload,
                                          storage_budget_bytes=budget)
            out.append((budget, recommendation))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        ("unbounded" if budget is None else budget // 1024,
         rec.estimated_cost, rec.storage_bytes // 1024, len(rec.chosen))
        for budget, rec in results
    ]
    record_result("ablation_storage_budget", format_table(
        ["budget KB", "est cost", "storage KB", "#indexes"], rows,
        title="Ablation: storage budget sweep (TPC-DS)"))

    unbounded_cost = results[0][1].estimated_cost
    for budget, recommendation in results[1:]:
        assert recommendation.storage_bytes <= budget
        # A tighter budget can never produce a better estimated cost.
        assert recommendation.estimated_cost >= unbounded_cost * 0.999


def test_tuning_time_scales(benchmark, record_result, tuned_workload):
    database, workload = tuned_workload

    def run():
        advisor = TuningAdvisor(database)
        started = time.perf_counter()
        recommendation = advisor.tune(workload, mode=MODE_HYBRID)
        return time.perf_counter() - started, recommendation

    elapsed, recommendation = benchmark.pedantic(run, rounds=1,
                                                 iterations=1)
    record_result("ablation_tuning_time", (
        f"TPC-DS (97 queries) hybrid tuning took {elapsed:.2f}s, "
        f"examined {recommendation.n_candidates} candidates, "
        f"chose {len(recommendation.chosen)} indexes."))
    assert elapsed < 60.0
    assert recommendation.chosen
