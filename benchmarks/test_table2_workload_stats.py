"""Table 2: aggregate schema and query-complexity statistics of the
read-only workloads.

Regenerates the paper's table — database size, number of tables, max
table size, average columns per table, number of queries, and average
joins per query — from this repository's scaled workloads, and checks
that the *relative* shape statistics match the paper's (e.g. cust5 has
by far the most joins per query and the smallest max table; cust3 has
the most tables; every workload's query count matches exactly).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.bench.workload_setups import all_read_only_factories
from repro.sql.binder import Binder
from repro.sql.parser import parse

#: Paper Table 2 query counts (exact) and joins/query (relative shape).
PAPER_QUERY_COUNTS = {
    "TPC-DS": 97, "cust1": 36, "cust2": 40, "cust3": 40, "cust4": 24,
    "cust5": 47,
}


def workload_stats(name, factory):
    database, queries = factory()
    binder = Binder(database)
    n_joins = []
    for sql in queries:
        bound = binder.bind(parse(sql))
        n_joins.append(len(bound.join_edges))
    table_sizes = {
        table.name: table.total_index_bytes()
        for table in database.tables()
    }
    total_mb = sum(table_sizes.values()) / (1024 * 1024)
    max_mb = max(table_sizes.values()) / (1024 * 1024)
    avg_cols = sum(len(t.schema) for t in database.tables()) / max(
        1, len(database.tables()))
    return {
        "name": name,
        "db_mb": round(total_mb, 1),
        "n_tables": len(database.tables()),
        "max_table_mb": round(max_mb, 1),
        "avg_cols": round(avg_cols, 1),
        "n_queries": len(queries),
        "avg_joins": round(sum(n_joins) / len(n_joins), 2),
    }


def test_table2_workload_statistics(benchmark, record_result):
    def run():
        return [workload_stats(name, factory)
                for name, factory in all_read_only_factories()]

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (s["name"], s["db_mb"], s["n_tables"], s["max_table_mb"],
         s["avg_cols"], s["n_queries"], s["avg_joins"])
        for s in stats
    ]
    table = format_table(
        ["workload", "DB size MB", "#tables", "max table MB",
         "avg #cols", "#queries", "avg #joins"],
        rows,
        title="Table 2: schema and query statistics of the read-only "
              "workloads (scaled ~1000x from the paper)")
    record_result("table2_workload_stats", table)

    by_name = {s["name"]: s for s in stats}
    # Exact query counts from the paper.
    for name, count in PAPER_QUERY_COUNTS.items():
        assert by_name[name]["n_queries"] == count
    # Relative shape checks mirroring the paper's Table 2:
    # cust5 has the most joins per query by a wide margin...
    others = [s["avg_joins"] for s in stats if s["name"] != "cust5"]
    assert by_name["cust5"]["avg_joins"] > max(others)
    # ...and the smallest maximum table size.
    other_max = [s["max_table_mb"] for s in stats if s["name"] != "cust5"]
    assert by_name["cust5"]["max_table_mb"] < min(other_max)
    # cust3 has the largest table count; cust2 second.
    assert by_name["cust3"]["n_tables"] == max(s["n_tables"] for s in stats)
    # cust1 is the biggest database (172 GB in the paper).
    assert by_name["cust1"]["db_mb"] == max(s["db_mb"] for s in stats)
    # Every workload joins at least a couple of tables on average,
    # except the deliberately mixed cases; TPC-DS averages ~1-8 joins.
    assert by_name["TPC-DS"]["avg_joins"] > 0.5
