"""Shared fixtures for the reproduction benchmarks.

Each benchmark regenerates one of the paper's tables or figures: it runs
the experiment under ``pytest-benchmark`` timing, prints the same
rows/series the paper reports, writes them to ``benchmarks/results/``,
and asserts the qualitative *shape* findings (who wins, by roughly what
factor, where crossovers fall).

Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import os
import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Returns a writer: record(name, text) prints and persists output."""

    def record(name: str, text: str) -> None:
        print()
        print(f"===== {name} =====")
        print(text)
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")

    return record
