"""Section 4.4: columnstore size estimation from samples.

Compares the two estimators the paper describes — the black-box approach
(compress a sample, scale linearly) and run modelling with GEE
distinct-value estimation — against ground truth (actually building the
columnstore), on TPC-H lineitem.

Findings reproduced:

* Linear scaling overestimates low-cardinality columns badly: a column
  with 25 distinct values (the n_nationkey example; here
  ``l_returnflag``/``l_linestatus`` with 3/2 values and a synthetic
  25-value column) can never have more runs than distinct values per
  row group, but the black-box estimate grows with table size.
* The GEE-based run-modelling estimator is more accurate on those
  columns and cheaper to compute (no sort/compression of the sample).
"""

from __future__ import annotations

import time

import pytest

from repro.advisor.size_estimation import (
    actual_csi_column_sizes,
    estimate_blackbox,
    estimate_run_modelling,
)
from repro.bench.reporting import format_table
from repro.storage.database import Database
from repro.workloads.tpch import generate_tpch

COLUMNS = ("l_orderkey", "l_partkey", "l_quantity", "l_returnflag",
           "l_shipdate", "l_shipmode")


@pytest.fixture(scope="module")
def lineitem():
    db = Database()
    generate_tpch(db, scale=1.0, seed=13)
    return db.table("lineitem")


def test_size_estimation_accuracy(benchmark, record_result, lineitem):
    def run():
        truth = actual_csi_column_sizes(lineitem, list(COLUMNS))
        t0 = time.perf_counter()
        blackbox = estimate_blackbox(lineitem, list(COLUMNS),
                                     sampling_ratio=0.05)
        blackbox_seconds = time.perf_counter() - t0
        t0 = time.perf_counter()
        modelled = estimate_run_modelling(lineitem, list(COLUMNS),
                                          sampling_ratio=0.05)
        modelled_seconds = time.perf_counter() - t0
        return truth, blackbox, modelled, blackbox_seconds, modelled_seconds

    truth, blackbox, modelled, bb_secs, rm_secs = benchmark.pedantic(
        run, rounds=1, iterations=1)

    rows = []
    errors = {"blackbox": {}, "run_modelling": {}}
    for column in COLUMNS:
        t = truth[column]
        b = blackbox.column_sizes[column]
        m = modelled.column_sizes[column]
        errors["blackbox"][column] = abs(b - t) / max(t, 1)
        errors["run_modelling"][column] = abs(m - t) / max(t, 1)
        rows.append((column, t, b, m,
                     round(errors["blackbox"][column], 2),
                     round(errors["run_modelling"][column], 2)))
    table = format_table(
        ["column", "actual B", "black-box B", "run-model B",
         "bb rel err", "rm rel err"],
        rows,
        title="Section 4.4: per-column CSI size estimation "
              f"(5% sample; bb {bb_secs * 1000:.0f} ms, "
              f"rm {rm_secs * 1000:.0f} ms)")
    record_result("size_estimation", table)

    # Both estimators land within an order of magnitude everywhere.
    for method, per_column in errors.items():
        for column, err in per_column.items():
            assert err < 9.0, f"{method} {column}: {err}"
    # Run modelling beats black-box on the low-cardinality column
    # (the paper's n_nationkey argument).
    assert errors["run_modelling"]["l_returnflag"] <= \
        errors["blackbox"]["l_returnflag"]
    # Median accuracy: run modelling is at least comparable overall.
    bb_median = sorted(errors["blackbox"].values())[len(COLUMNS) // 2]
    rm_median = sorted(errors["run_modelling"].values())[len(COLUMNS) // 2]
    assert rm_median <= bb_median * 1.5
