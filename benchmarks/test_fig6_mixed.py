"""Figure 6: mixed workload (updates + analytical scans, 10 threads).

The paper mixes Q4 updates (TOP 10 by shipdate) with Q5 scan queries at
scan percentages 0..5%, executed by 10 concurrent threads under Read
Committed, on three designs:

(A) primary B+ tree (orderkey, linenumber) + secondary B+ tree (shipdate);
(B) design A plus a secondary columnstore;
(C) primary columnstore + secondary B+ tree (shipdate).

Findings reproduced:

* With no scans, the B+ tree-only design (A) is the cheapest and the
  primary columnstore (C) is far slower (update amplification).
* From 1% scans onward, the scans dominate resource consumption and the
  hybrid design (B) — cheap-ish updates plus columnstore scans — has the
  best average workload execution time.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.reporting import format_table
from repro.bench.runner import profile_statement
from repro.engine.concurrency import ConcurrencySimulator, StatementProfile
from repro.engine.executor import Executor
from repro.engine.locks import READ_COMMITTED, range_bucket
from repro.storage.database import Database
from repro.workloads.tpch import (
    generate_tpch,
    q4_update,
    q5_scan,
    random_ship_date,
)

SCALE = 0.5
N_THREADS = 10
SCAN_PERCENTS = (0, 1, 2, 3, 4, 5)
#: Q5's shipdate window, widened from the paper's 1 day so the analytic
#: query stays "long-running and resource-intensive" at this scale.
SCAN_WINDOW_DAYS = 1460


def q5_window(ship_date: str) -> str:
    return (
        "SELECT sum(l_quantity) sum_quantity, "
        "sum(l_extendedprice * (1 - l_discount)) revenue "
        f"FROM lineitem WHERE l_shipdate BETWEEN '{ship_date}' "
        f"AND DATEADD(day, {SCAN_WINDOW_DAYS}, '{ship_date}')"
    )


def build(design: str) -> Executor:
    db = Database()
    generate_tpch(db, scale=SCALE, seed=13)
    lineitem = db.table("lineitem")
    if design in ("A", "B"):
        lineitem.set_primary_btree(["l_orderkey", "l_linenumber"])
        lineitem.create_secondary_btree("ix_shipdate", ["l_shipdate"])
    if design == "B":
        lineitem.create_secondary_columnstore("csi_lineitem",
                                              rowgroup_size=4096)
    if design == "C":
        lineitem.set_primary_columnstore(rowgroup_size=4096)
        lineitem.create_secondary_btree("ix_shipdate", ["l_shipdate"])
    return Executor(db)


@pytest.fixture(scope="module")
def profiles():
    """Solo-measured costs per design per statement type."""
    rng = random.Random(71)
    out = {}
    for design in ("A", "B", "C"):
        executor = build(design)
        dates = ["1992-06-01", "1993-03-01", "1994-06-15"]
        update_costs = []
        scan_costs = []
        for date in dates:
            upd = executor.execute(q4_update(10, date).replace(
                "l_shipdate = ", "l_shipdate >= "))
            update_costs.append(upd.metrics.elapsed_ms)
            # Plan the scan knowing N_THREADS queries share the server
            # (the paper's 10-thread closed loop): DOP = cores / threads.
            scan = executor.execute(q5_window(date),
                                    concurrent_queries=N_THREADS)
            scan_costs.append((scan.metrics.cpu_ms, scan.metrics.dop))
        out[design] = {
            "update_ms": sum(update_costs) / len(update_costs),
            "scan_cpu_ms": sum(c for c, _ in scan_costs) / len(scan_costs),
            "scan_dop": max(d for _, d in scan_costs),
        }
    return out


def make_clients(design_profile, scan_percent, seed):
    """Closed-loop clients issuing scans at exactly ``scan_percent`` of
    statements (deterministic interleave — the paper's random selection
    converges to the same mix over its 6-hour runs)."""
    rng = random.Random(seed)
    period = int(round(100 / scan_percent)) if scan_percent else 0

    def make_client(offset):
        counter = [offset]

        def client():
            counter[0] += 1
            if period and counter[0] % period == 0:
                return StatementProfile(
                    "scan", cpu_ms=design_profile["scan_cpu_ms"],
                    dop=design_profile["scan_dop"],
                    read_resources=(("lineitem", "range",
                                     rng.randrange(12)),))
            day = rng.randrange(8035, 10500)
            return StatementProfile(
                "update", cpu_ms=design_profile["update_ms"], dop=1,
                is_write=True,
                write_resources=(("lineitem", "range",
                                  range_bucket(day, 30)),))

        return client

    return [make_client(i * 7) for i in range(N_THREADS)]


def test_fig6_mixed_workload(benchmark, record_result, profiles):
    def sweep():
        rows = []
        means = {design: [] for design in ("A", "B", "C")}
        for scan_percent in SCAN_PERCENTS:
            row = [f"scan {scan_percent}%"]
            for design in ("A", "B", "C"):
                simulator = ConcurrencySimulator(
                    n_cores=40, isolation=READ_COMMITTED)
                result = simulator.run(
                    make_clients(profiles[design], scan_percent,
                                 seed=100 + scan_percent),
                    duration_ms=1e9, max_statements=1200)
                mean = result.mean_latency()
                means[design].append(mean)
                row.append(mean)
            rows.append(tuple(row))
        return rows, means

    rows, means = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["mix", "(A) btree ms", "(B) btree+sec CSI ms", "(C) pri CSI ms"],
        rows,
        title=f"Figure 6: mixed workload mean execution time, "
              f"{N_THREADS} threads")
    record_result("fig6_mixed", table)

    # 100% updates: B+ tree-only wins; primary CSI is much slower.
    assert means["A"][0] < means["B"][0]
    assert means["C"][0] > means["A"][0] * 3
    # Once scans appear, the hybrid design (B) has the best mean workload
    # execution time: already competitive at 1% (within 10% of A, like
    # the paper's near-equal bars) and strictly best from 2% on.
    for i, scan_percent in enumerate(SCAN_PERCENTS):
        if scan_percent == 1:
            assert means["B"][i] <= means["A"][i] * 1.1
        if scan_percent >= 2:
            assert means["B"][i] <= means["A"][i]
        if scan_percent >= 1:
            assert means["B"][i] <= means["C"][i]
    # Scans dominate even at 5%: A's mean rises steeply vs its 0% point.
    assert means["A"][-1] > means["A"][0] * 2
