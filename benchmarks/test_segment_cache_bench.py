"""Decoded-segment cache: repeated-scan microbenchmark.

Runs the same analytical query back-to-back against one database. With
the cache enabled the second run serves every segment from the decoded-
segment LRU: it must be measurably faster in *wall-clock* time (the
decode work — RLE expansion and dictionary gathers — actually
disappears, this is not only a cost-model effect), report cache hits in
``QueryMetrics``, and drop the modelled elapsed/CPU charge. With the
cache disabled, back-to-back runs are charge-identical — the guarantee
that every existing figure benchmark is unaffected by this subsystem.
"""

from __future__ import annotations

import time

import pytest

from repro.bench.reporting import format_segment_cache, format_table
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.synthetic import make_group_table, q3_group_by

N_ROWS = 300_000
ROWGROUP_SIZE = 8192


def _build(cache_enabled: bool) -> Executor:
    database = Database(segment_cache_enabled=cache_enabled)
    make_group_table(database, "micro3", N_ROWS, 1_000, seed=11)
    database.table("micro3").set_primary_columnstore(
        rowgroup_size=ROWGROUP_SIZE)
    return Executor(database)


def _timed(executor: Executor, sql: str):
    start = time.perf_counter()
    result = executor.execute(sql)
    return (time.perf_counter() - start) * 1000, result


def test_repeated_scan_warm_run_faster(record_result):
    executor = _build(cache_enabled=True)
    sql = q3_group_by()
    cold_wall, cold = _timed(executor, sql)
    warm_walls, warm = [], None
    for _ in range(3):
        wall, warm = _timed(executor, sql)
        warm_walls.append(wall)
    warm_wall = min(warm_walls)

    rows = [
        ("cold", f"{cold_wall:.1f}", cold.metrics.elapsed_ms,
         cold.metrics.cpu_ms, cold.metrics.segment_cache_hits,
         cold.metrics.segment_cache_misses),
        ("warm", f"{warm_wall:.1f}", warm.metrics.elapsed_ms,
         warm.metrics.cpu_ms, warm.metrics.segment_cache_hits,
         warm.metrics.segment_cache_misses),
    ]
    text = format_table(
        ["run", "wall ms", "model ms", "model CPU", "hits", "misses"],
        rows, title=f"repeated scan, {N_ROWS} rows, cache on")
    text += "\n\n" + format_segment_cache(
        executor.database.segment_cache, title="segment cache totals")
    record_result("segment_cache_repeated_scan", text)

    # Same answer, measurably faster in real time, hits reported.
    assert warm.rows == cold.rows
    assert warm_wall < cold_wall
    assert cold.metrics.segment_cache_hits == 0
    assert cold.metrics.segment_cache_misses > 0
    assert warm.metrics.segment_cache_hits > 0
    assert warm.metrics.segment_cache_misses == 0
    # The model agrees with the wall clock: hits skip decode + read.
    assert warm.metrics.elapsed_ms < cold.metrics.elapsed_ms
    assert warm.metrics.data_read_mb < cold.metrics.data_read_mb


def test_cache_disabled_runs_are_charge_identical():
    executor = _build(cache_enabled=False)
    sql = q3_group_by()
    first = executor.execute(sql)
    second = executor.execute(sql)
    assert first.rows == second.rows
    for metric in ("elapsed_ms", "cpu_ms", "data_read_mb", "pages_read",
                   "segments_read"):
        assert getattr(first.metrics, metric) == \
            getattr(second.metrics, metric)
    assert second.metrics.segment_cache_hits == 0
    assert second.metrics.segment_cache_misses == 0
    assert len(executor.database.segment_cache) == 0


def test_warm_scan_speedup_scales_with_reuse(record_result):
    # Ten warm runs after one cold run: aggregate hit ratio approaches
    # repetitions / (repetitions + 1) and no evictions occur within the
    # default budget.
    executor = _build(cache_enabled=True)
    sql = q3_group_by()
    executor.execute(sql)
    for _ in range(10):
        result = executor.execute(sql)
        assert result.metrics.segment_cache_misses == 0
    cache = executor.database.segment_cache
    assert cache.stats.hit_ratio == pytest.approx(10 / 11, abs=0.01)
    assert cache.stats.evictions == 0
    record_result(
        "segment_cache_reuse",
        format_segment_cache(cache, title="10 warm repetitions"))
