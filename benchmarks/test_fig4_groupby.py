"""Figure 4: GROUP BY with limited working memory.

Q3 (``SELECT col1, sum(col2) FROM table GROUP BY col1``) over a two-column
table, varying the number of distinct values of col1, with a constrained
query memory grant. The B+ tree design (clustered on col1) enables a
*streaming* aggregate needing O(1) memory; the columnstore design uses a
*hash* aggregate whose table grows with the group count.

Paper findings reproduced:

* With few groups (hash table fits), the CSI wins by ~5x thanks to
  vectorized scanning and compression of the low-cardinality column.
* Once the group count pushes the hash table past the memory grant, the
  hash aggregate goes disk-based (spills) and the B+ tree's streaming
  aggregate wins by up to ~5x.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import find_crossover, format_table
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.synthetic import make_group_table, q3_group_by

N_ROWS = 300_000
#: Distinct-value counts for col1 (the paper sweeps 100 .. 1,000,000 on a
#: 20 GB table; scaled to our table size).
GROUP_COUNTS = (100, 1_000, 10_000, 60_000, 150_000)
#: Query memory grant: enough for ~12K hash-table entries.
GRANT_BYTES = 1 * 1024 * 1024


@pytest.fixture(scope="module")
def databases():
    out = {}
    for n_groups in GROUP_COUNTS:
        db_btree = Database()
        make_group_table(db_btree, "micro3", N_ROWS, n_groups, seed=21)
        db_btree.table("micro3").set_primary_btree(["col1"])
        db_csi = Database()
        make_group_table(db_csi, "micro3", N_ROWS, n_groups, seed=21)
        db_csi.table("micro3").set_primary_columnstore()
        out[n_groups] = (Executor(db_btree), Executor(db_csi))
    return out


def test_fig4_group_by_memory(benchmark, record_result, databases):
    def sweep():
        rows = []
        series = {"bt": [], "csi": [], "spilled": [], "strategy": []}
        for n_groups in GROUP_COUNTS:
            ex_btree, ex_csi = databases[n_groups]
            sql = q3_group_by()
            bt = ex_btree.execute(sql, memory_grant_bytes=GRANT_BYTES)
            csi = ex_csi.execute(sql, memory_grant_bytes=GRANT_BYTES)
            assert len(bt.rows) == len(csi.rows) <= min(n_groups, N_ROWS)
            bt_strategy = [n.strategy for n in bt.plan.root.walk()
                           if hasattr(n, "strategy")][0]
            series["bt"].append(bt.metrics.elapsed_ms)
            series["csi"].append(csi.metrics.elapsed_ms)
            series["spilled"].append(csi.metrics.spilled_bytes)
            series["strategy"].append(bt_strategy)
            rows.append((n_groups, bt.metrics.elapsed_ms,
                         csi.metrics.elapsed_ms, bt_strategy,
                         csi.metrics.spilled_bytes // 1024,
                         bt.metrics.memory_peak_bytes // 1024,
                         csi.metrics.memory_peak_bytes // 1024))
        return rows, series

    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["#groups", "btree ms", "CSI ms", "btree agg", "CSI spill KB",
         "btree mem KB", "CSI mem KB"],
        rows,
        title=f"Figure 4: GROUP BY sweep, {N_ROWS} rows, "
              f"{GRANT_BYTES // 1024} KB memory grant")
    record_result("fig4_groupby", table)

    # B+ tree design uses the streaming aggregate (sorted input).
    assert all(s == "stream" for s in series["strategy"])
    # Small group counts: in-memory hash over CSI wins by ~5x.
    assert series["bt"][0] / series["csi"][0] > 3
    # Large group counts: the CSI's hash aggregate spills...
    assert series["spilled"][-1] > 0
    assert series["spilled"][0] == 0
    # ...and the B+ tree's streaming aggregate wins (paper: up to ~5x).
    assert series["csi"][-1] / series["bt"][-1] > 1.5
