"""Figure 10: how hybrid plans use the two index formats.

Under the hybrid design, the paper reports (a) the percentage of plan
leaf nodes that access columnstore vs B+ tree indexes, averaged over the
workload, and (b) the number of queries whose plan uses *both* formats
("hybrid plans").

Findings reproduced:

* Every workload's plans use a mix of the two formats (neither
  percentage is ~0 across the board).
* Selective workloads (cust1/cust3 analogs) lean on B+ trees; the
  scan-heavy cust2 analog leans on columnstores — the Figure 10 pattern.
* Many individual plans reference both formats at once.
"""

from __future__ import annotations

import pytest

from repro.bench.figure9 import evaluate_workload
from repro.bench.reporting import format_table
from repro.bench.workload_setups import all_read_only_factories

# Reuse the session-scoped evaluations fixture from the Figure 9 module.
from test_fig9_speedup_distribution import evaluations  # noqa: F401


def test_fig10_plan_composition(benchmark, record_result, evaluations):
    def summarize():
        rows = []
        for name, evaluation in evaluations.items():
            rows.append((
                name,
                round(evaluation.csi_leaf_pct, 1),
                round(evaluation.btree_leaf_pct, 1),
                evaluation.hybrid_plan_count,
                len(evaluation.cpu_ms["hybrid"]),
            ))
        return rows

    rows = benchmark.pedantic(summarize, rounds=1, iterations=1)
    table = format_table(
        ["workload", "CSI leaf %", "B+ tree leaf %", "hybrid plans",
         "#queries"],
        rows,
        title="Figure 10: leaf-node index usage under the hybrid design")
    record_result("fig10_plan_composition", table)

    by_name = {row[0]: row for row in rows}
    for name, (_, csi_pct, btree_pct, hybrid_plans, n_queries) in \
            by_name.items():
        # Both formats appear in the workload's plans.
        assert csi_pct + btree_pct == pytest.approx(100.0, abs=0.2)
        assert csi_pct > 0, f"{name}: no columnstore leaves"
        assert btree_pct > 0, f"{name}: no B+ tree leaves"
    # Selective workloads lean on B+ trees relative to the scan-heavy one.
    assert by_name["cust2"][1] > by_name["cust1"][1]  # CSI share
    # Hybrid (both-formats-in-one-plan) queries exist in the join-heavy
    # workloads, echoing the figure's secondary axis.
    assert by_name["TPC-DS"][3] > 0
    total_hybrid_plans = sum(row[3] for row in rows)
    assert total_hybrid_plans >= 10
