"""Table 1: the suitability matrix summarizing the micro-benchmark study.

The paper condenses Section 3 into a matrix of physical design
(B+ tree-only / primary CSI-only / secondary CSI with B+ tree) against
workload axes (short scans / large scans / short updates / large
updates), labelling each cell most/medium/least suitable.

This bench *measures* each cell on a common table and derives the
rankings, asserting the paper's orderings:

* short scans:   B+ tree most suitable, secondary-CSI design least
                 (its B+ tree could serve them, but the cell isolates
                 the CSI access path; we follow the paper and measure
                 the design's CSI path) — we assert B+ tree wins;
* large scans:   primary CSI most suitable, B+ tree least;
* short updates: B+ tree most suitable, primary CSI least;
* large updates: B+ tree most suitable, both CSIs far behind.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.synthetic import make_uniform_table, q1_scan

N_ROWS = 200_000
DESIGNS = ("btree_only", "primary_csi", "sec_csi_with_btree")


def build(design: str) -> Executor:
    db = Database()
    make_uniform_table(db, "micro", N_ROWS, 2, seed=33)
    table = db.table("micro")
    if design == "btree_only":
        table.set_primary_btree(["col1"])
    elif design == "primary_csi":
        table.set_primary_columnstore(rowgroup_size=8192)
    else:
        table.set_primary_btree(["col1"])
        table.create_secondary_columnstore("csi", rowgroup_size=8192)
    return Executor(db)


def measure_cell(executor: Executor, cell: str) -> float:
    if cell == "short_scan":
        return executor.execute(q1_scan(0.01)).metrics.elapsed_ms
    if cell == "large_scan":
        return executor.execute(q1_scan(100.0)).metrics.elapsed_ms
    if cell == "short_update":
        result = executor.execute(
            "UPDATE TOP (5) micro SET col2 = col2 + 1 WHERE col1 >= 0")
        return result.metrics.elapsed_ms
    if cell == "large_update":
        result = executor.execute(
            f"UPDATE TOP ({N_ROWS // 10}) micro SET col2 = col2 + 1 "
            f"WHERE col1 >= 0")
        return result.metrics.elapsed_ms
    raise ValueError(cell)


CELLS = ("short_scan", "large_scan", "short_update", "large_update")


def test_table1_suitability_matrix(benchmark, record_result):
    def run():
        measured = {}
        for design in DESIGNS:
            executor = build(design)
            for cell in CELLS:
                measured[(design, cell)] = measure_cell(executor, cell)
        return measured

    measured = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for design in DESIGNS:
        rows.append((design, *(round(measured[(design, cell)], 3)
                               for cell in CELLS)))
    table = format_table(
        ["design", *CELLS], rows,
        title="Table 1: measured cost (ms) per workload axis and design")

    def ranking(cell):
        ordered = sorted(DESIGNS, key=lambda d: measured[(d, cell)])
        return ordered

    lines = [f"{cell}: best={ranking(cell)[0]}, "
             f"worst={ranking(cell)[-1]}" for cell in CELLS]
    record_result("table1_suitability", table + "\n" + "\n".join(lines))

    # Short scans: B+ tree most suitable.
    assert ranking("short_scan")[0] == "btree_only"
    # Large scans: primary CSI most suitable, B+ tree least.
    assert ranking("large_scan")[0] == "primary_csi"
    assert ranking("large_scan")[-1] == "btree_only"
    # Short updates: B+ tree most suitable, primary CSI least suitable.
    assert ranking("short_update")[0] == "btree_only"
    assert ranking("short_update")[-1] == "primary_csi"
    # Large updates: B+ tree most suitable; both CSI designs cost
    # multiples of the B+ tree design.
    assert ranking("large_update")[0] == "btree_only"
    for design in ("primary_csi", "sec_csi_with_btree"):
        assert measured[(design, "large_update")] > \
            measured[("btree_only", "large_update")] * 2
    # The secondary-CSI hybrid keeps large scans fast (medium cell).
    assert measured[("sec_csi_with_btree", "large_scan")] < \
        measured[("btree_only", "large_scan")] / 5
