"""Figure 1: execution and CPU time for hot and cold runs of Q1
(``SELECT sum(col1) FROM table WHERE col1 < X``) with varying selectivity,
primary B+ tree vs primary columnstore.

Paper findings reproduced here:

* At low selectivity the B+ tree beats the CSI by 1-2 orders of magnitude
  in execution time and up to 3 orders in CPU time.
* The B+ tree plan switches from serial to parallel at ~0.2% selectivity,
  producing a *dip* in execution time and a *jump* in CPU time.
* Execution-time crossover lands well below 10% hot; the cold crossover
  is higher than the hot one (paper: ~10% cold on their HDD).
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import find_crossover, format_table
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.synthetic import (
    PAPER_SELECTIVITIES_PCT,
    make_uniform_table,
    q1_scan,
)

N_ROWS = 500_000


@pytest.fixture(scope="module")
def designs():
    db_btree = Database()
    make_uniform_table(db_btree, "micro", N_ROWS, 1, seed=5)
    db_btree.table("micro").set_primary_btree(["col1"])
    db_csi = Database()
    make_uniform_table(db_csi, "micro", N_ROWS, 1, seed=5)
    db_csi.table("micro").set_primary_columnstore()
    return Executor(db_btree), Executor(db_csi)


def sweep(designs):
    ex_btree, ex_csi = designs
    rows = []
    series = {key: [] for key in
              ("bt_hot", "csi_hot", "bt_cold", "csi_cold",
               "bt_cpu", "csi_cpu")}
    for sel in PAPER_SELECTIVITIES_PCT:
        sql = q1_scan(sel)
        bt_hot = ex_btree.execute(sql)
        csi_hot = ex_csi.execute(sql)
        bt_cold = ex_btree.execute(sql, cold=True)
        csi_cold = ex_csi.execute(sql, cold=True)
        series["bt_hot"].append(bt_hot.metrics.elapsed_ms)
        series["csi_hot"].append(csi_hot.metrics.elapsed_ms)
        series["bt_cold"].append(bt_cold.metrics.elapsed_ms)
        series["csi_cold"].append(csi_cold.metrics.elapsed_ms)
        series["bt_cpu"].append(bt_hot.metrics.cpu_ms)
        series["csi_cpu"].append(csi_hot.metrics.cpu_ms)
        rows.append((
            sel, bt_cold.metrics.elapsed_ms, csi_cold.metrics.elapsed_ms,
            bt_hot.metrics.elapsed_ms, csi_hot.metrics.elapsed_ms,
            bt_hot.metrics.cpu_ms, csi_hot.metrics.cpu_ms,
            bt_hot.metrics.dop,
        ))
    return rows, series


def last_crossover(x, a, b):
    """Final crossing of a over b (after the DOP dip)."""
    last = None
    for i in range(1, len(x)):
        if a[i - 1] < b[i - 1] and a[i] >= b[i]:
            last = find_crossover(x[i - 1:], a[i - 1:], b[i - 1:])
    return last


def test_fig1_selectivity_sweep(benchmark, record_result, designs):
    rows, series = benchmark.pedantic(
        lambda: sweep(designs), rounds=1, iterations=1)
    sels = list(PAPER_SELECTIVITIES_PCT)

    table = format_table(
        ["sel%", "btree cold", "CSI cold", "btree hot", "CSI hot",
         "btree CPU", "CSI CPU", "bt DOP"],
        rows,
        title="Figure 1: Q1 execution/CPU time (ms) vs selectivity, "
              f"{N_ROWS} rows",
    )
    hot_cross = last_crossover(sels, series["bt_hot"], series["csi_hot"])
    cold_cross = last_crossover(sels, series["bt_cold"], series["csi_cold"])
    cpu_cross = last_crossover(sels, series["bt_cpu"], series["csi_cpu"])
    summary = (
        f"\nhot exec crossover: {hot_cross:.2f}% (paper: <~0.7%)"
        f"\ncold exec crossover: {cold_cross:.2f}% (paper: ~10%)"
        f"\nCPU crossover: {cpu_cross:.2f}% (paper: ~1%)"
    )
    record_result("fig1_selectivity", table + summary)

    # -- shape assertions ------------------------------------------------
    # B+ tree wins by >=1 order of magnitude at very low selectivity.
    low = sels.index(0.001)
    assert series["csi_hot"][low] / series["bt_hot"][low] > 10
    assert series["csi_cpu"][low] / series["bt_cpu"][low] > 30
    # CSI wins by >=1 order of magnitude at 100% (exec and CPU).
    assert series["bt_hot"][-1] / series["csi_hot"][-1] > 10
    assert series["bt_cpu"][-1] / series["csi_cpu"][-1] > 10
    # Crossovers land in the paper's neighbourhoods.
    assert 0.1 <= hot_cross <= 5.0
    assert 2.0 <= cold_cross <= 20.0
    assert cold_cross > hot_cross  # slower storage favours the B+ tree
    assert 0.1 <= cpu_cross <= 3.0
    # The serial->parallel switch produces a dip in execution time and a
    # jump in CPU time (paper: DOP 1 -> 40 at 0.2%).
    dops = [row[7] for row in rows]
    switch = next(i for i, d in enumerate(dops) if d > 1)
    assert series["bt_hot"][switch] < series["bt_hot"][switch - 1]
    assert series["bt_cpu"][switch] > series["bt_cpu"][switch - 1]


def test_fig1_storage_slowdown_raises_crossover(benchmark, record_result):
    """Section 3.2.3 ablation: 'the slower the storage, the higher is the
    cross-over point'."""
    from repro.engine.costs import DEFAULT_COST_MODEL

    def run(slowdown):
        db_b = Database(cost_model=DEFAULT_COST_MODEL.scaled_storage(slowdown))
        make_uniform_table(db_b, "micro", 200_000, 1, seed=5)
        db_b.table("micro").set_primary_btree(["col1"])
        db_c = Database(cost_model=DEFAULT_COST_MODEL.scaled_storage(slowdown))
        make_uniform_table(db_c, "micro", 200_000, 1, seed=5)
        db_c.table("micro").set_primary_columnstore()
        ex_b, ex_c = Executor(db_b), Executor(db_c)
        sels = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 8.0, 10.0, 15.0, 20.0, 40.0]
        bt = [ex_b.execute(q1_scan(s), cold=True).metrics.elapsed_ms
              for s in sels]
        csi = [ex_c.execute(q1_scan(s), cold=True).metrics.elapsed_ms
               for s in sels]
        return last_crossover(sels, bt, csi)

    def experiment():
        return {slowdown: run(slowdown) for slowdown in (1.0, 8.0)}

    crossovers = benchmark.pedantic(experiment, rounds=1, iterations=1)
    record_result(
        "fig1_storage_ablation",
        format_table(["storage slowdown", "cold crossover sel%"],
                     sorted(crossovers.items()),
                     title="Ablation: slower storage raises the cold "
                           "B+ tree/CSI crossover"))
    assert crossovers[8.0] > crossovers[1.0]
