"""Dictionary-coded execution: wall-clock microbenchmark.

String-heavy selectivity sweep plus a group-by, timed with the encoded
(late materialization) path off and on against the *same* database. The
modeled costs are charge-identical between the modes by construction
(see tests/test_encoded_exec.py); this benchmark shows the real
wall-clock effect: scans hand operators int32 codes instead of decoded
Python strings, filters and group-bys run in code space, and only
surviving rows ever materialize strings.

Emits ``BENCH_encoded_exec.json`` at the repo root with decoded-vs-
encoded timings. The headline gate: >= 3x wall-clock speedup on the
string-heavy filter + group-by query.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.engine.encoded import set_encoded_execution
from repro.engine.executor import Executor
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.storage.database import Database

N_ROWS = 200_000
N_DISTINCT = 2_000   # filter column cardinality
N_CATEGORIES = 150   # group-by column cardinality
PAD = "x" * 24  # wide strings make decoded execution pay per byte
ROWGROUP_SIZE = 8192
REPEATS = 3

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_encoded_exec.json"


def _build() -> Executor:
    rng = np.random.RandomState(7)
    keys = rng.randint(0, N_DISTINCT, size=N_ROWS)
    cats = rng.randint(0, N_CATEGORIES, size=N_ROWS)
    qty = rng.randint(0, 100, size=N_ROWS)
    database = Database()
    table = database.create_table(TableSchema("s", [
        Column("id", INT, nullable=False),
        Column("name", varchar(32)),
        Column("cat", varchar(32)),
        Column("qty", INT, nullable=False),
    ]))
    table.bulk_load([
        (i, f"v{keys[i]:05d}_{PAD}", f"c{cats[i]:03d}_{PAD}", int(qty[i]))
        for i in range(N_ROWS)
    ])
    table.set_primary_columnstore(rowgroup_size=ROWGROUP_SIZE)
    return Executor(database)


def _bound(fraction: float) -> str:
    return f"v{int(N_DISTINCT * fraction):05d}"


def _timed_ms(executor: Executor, sql: str, encoded: bool) -> (float, object):
    prev = set_encoded_execution(encoded)
    try:
        result = executor.execute(sql)  # warmup, untimed
        walls = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = executor.execute(sql)
            walls.append((time.perf_counter() - start) * 1000)
    finally:
        set_encoded_execution(prev)
    return min(walls), result


def _compare(executor: Executor, sql: str) -> dict:
    decoded_ms, decoded = _timed_ms(executor, sql, encoded=False)
    encoded_ms, encoded = _timed_ms(executor, sql, encoded=True)
    assert sorted(encoded.rows) == sorted(decoded.rows)
    assert encoded.metrics.elapsed_ms == decoded.metrics.elapsed_ms
    return {
        "sql": sql,
        "decoded_ms": round(decoded_ms, 3),
        "encoded_ms": round(encoded_ms, 3),
        "speedup": round(decoded_ms / encoded_ms, 2),
    }


def test_encoded_execution_speedup(record_result):
    executor = _build()

    sweep = []
    for fraction in (0.001, 0.01, 0.1, 0.5, 0.9):
        sql = (f"SELECT count(*) FROM s WHERE name < '{_bound(fraction)}'")
        entry = _compare(executor, sql)
        entry["selectivity"] = fraction
        sweep.append(entry)

    group_by = _compare(
        executor,
        "SELECT cat, count(*) c, sum(qty) q FROM s GROUP BY cat")

    filter_group_by = _compare(
        executor,
        f"SELECT cat, count(*) c, sum(qty) q FROM s "
        f"WHERE name >= '{_bound(0.2)}' AND name < '{_bound(0.5)}' "
        f"GROUP BY cat")

    payload = {
        "n_rows": N_ROWS,
        "n_distinct": N_DISTINCT,
        "n_categories": N_CATEGORIES,
        "string_bytes": len(f"v00000_{PAD}"),
        "repeats_best_of": REPEATS,
        "selectivity_sweep": sweep,
        "group_by": group_by,
        "filter_group_by": filter_group_by,
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [("filter sel={:g}".format(e["selectivity"]), e["decoded_ms"],
             e["encoded_ms"], e["speedup"]) for e in sweep]
    rows.append(("group-by", group_by["decoded_ms"],
                 group_by["encoded_ms"], group_by["speedup"]))
    rows.append(("filter + group-by", filter_group_by["decoded_ms"],
                 filter_group_by["encoded_ms"], filter_group_by["speedup"]))
    record_result("encoded_exec", format_table(
        ["query", "decoded ms", "encoded ms", "speedup"], rows,
        title=f"dictionary-coded execution, {N_ROWS} rows, "
              f"{N_DISTINCT} distinct strings"))

    # Headline gate: the string-heavy filter + group-by runs >= 3x
    # faster end to end on codes.
    assert filter_group_by["speedup"] >= 3.0
    # Every point in the sweep should at least not regress.
    for entry in sweep:
        assert entry["speedup"] > 1.0
