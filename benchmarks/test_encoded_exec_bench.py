"""Encoded (code-space) execution: wall-clock microbenchmark, v2.

Times the same queries with the encoded path off and on against the
*same* database. The modeled costs are charge-identical between the
modes by construction (see tests/test_encoded_exec.py); this benchmark
shows the real wall-clock effect: scans hand operators int32 codes
instead of decoded values, filters/group-bys/sorts run in code space,
and only surviving rows ever materialize.

v2 (10x the v1 scale) adds the engine-wide coverage:

* fig1-style string selectivity sweep and fig4-style string group-by —
  the headline **hard gates** (>= 5x wall-clock);
* numeric filter / group-by sweeps (derived numeric code spaces);
* code-space sort / TOP-N;
* a spilling group-by under a tight memory grant (code-space spill
  runs).

Numeric/sort/spill sweeps never hard-fail: decoded numeric execution is
already vectorized, so their wins are modest — but any sweep that
*regresses* (< 1.0x) prints a loud PERF WARNING (and a GitHub
``::warning::`` annotation) so CI surfaces it.

Emits ``BENCH_encoded_exec.json`` (``"version": 2``) at the repo root.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.bench.reporting import format_table
from repro.engine.encoded import set_encoded_execution
from repro.engine.executor import Executor
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.storage.database import Database

N_ROWS = 2_000_000   # 10x the v1 bench scale
N_DISTINCT = 2_000   # string filter column cardinality
N_CATEGORIES = 150   # string group-by column cardinality
N_BUCKETS = 8        # numeric RLE column cardinality
PAD = "x" * 24  # wide strings make decoded execution pay per byte
ROWGROUP_SIZE = 65_536
REPEATS = 2

#: Hard wall-clock gate for the string sweeps (target is 10x).
STRING_GATE = 5.0

BENCH_JSON = pathlib.Path(__file__).parent.parent / "BENCH_encoded_exec.json"

_warnings: list = []


def _warn(message: str) -> None:
    _warnings.append(message)
    print(f"\nPERF WARNING: {message}")
    print(f"::warning title=encoded-exec bench::{message}")


def _build() -> Executor:
    rng = np.random.RandomState(7)
    keys = rng.randint(0, N_DISTINCT, size=N_ROWS)
    cats = rng.randint(0, N_CATEGORIES, size=N_ROWS)
    qty = rng.randint(0, 100, size=N_ROWS)
    database = Database()
    table = database.create_table(TableSchema("s", [
        Column("id", INT, nullable=False),
        Column("name", varchar(32)),
        Column("cat", varchar(32)),
        Column("qty", INT, nullable=False),
        Column("bucket", INT, nullable=False),
    ]))
    bucket_span = N_ROWS // N_BUCKETS
    table.bulk_load([
        (i, f"v{keys[i]:05d}_{PAD}", f"c{cats[i]:03d}_{PAD}", int(qty[i]),
         i // bucket_span)
        for i in range(N_ROWS)
    ])
    table.set_primary_columnstore(rowgroup_size=ROWGROUP_SIZE)
    return Executor(database)


def _bound(fraction: float) -> str:
    return f"v{int(N_DISTINCT * fraction):05d}"


def _timed_ms(executor: Executor, sql: str, encoded: bool, **kwargs):
    prev = set_encoded_execution(encoded)
    try:
        result = executor.execute(sql, **kwargs)  # warmup, untimed
        walls = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            result = executor.execute(sql, **kwargs)
            walls.append((time.perf_counter() - start) * 1000)
    finally:
        set_encoded_execution(prev)
    return min(walls), result


def _compare(executor: Executor, sql: str, **kwargs) -> dict:
    decoded_ms, decoded = _timed_ms(executor, sql, encoded=False, **kwargs)
    encoded_ms, encoded = _timed_ms(executor, sql, encoded=True, **kwargs)
    assert encoded.rows == decoded.rows
    # Figure identity: the modeled charges never move with the flag.
    assert encoded.metrics.elapsed_ms == decoded.metrics.elapsed_ms
    assert encoded.metrics.spilled_bytes == decoded.metrics.spilled_bytes
    return {
        "sql": sql,
        "decoded_ms": round(decoded_ms, 3),
        "encoded_ms": round(encoded_ms, 3),
        "speedup": round(decoded_ms / max(encoded_ms, 1e-9), 2),
    }


def _check_soft(entry: dict, label: str) -> None:
    if entry["speedup"] < 1.0:
        _warn(f"{label} regressed under encoded execution: "
              f"{entry['speedup']}x ({entry['sql']})")


def test_encoded_execution_speedup(record_result):
    executor = _build()

    # ---- fig1-style string selectivity sweep (hard gate) ----
    fig1 = []
    for fraction in (0.001, 0.01, 0.1, 0.5, 0.9):
        sql = f"SELECT count(*) FROM s WHERE name < '{_bound(fraction)}'"
        entry = _compare(executor, sql)
        entry["selectivity"] = fraction
        fig1.append(entry)

    # ---- fig4-style string group-by (hard gate) ----
    fig4 = _compare(
        executor,
        "SELECT cat, count(*) c, sum(qty) q FROM s GROUP BY cat")

    filter_group_by = _compare(
        executor,
        f"SELECT cat, count(*) c, sum(qty) q FROM s "
        f"WHERE name >= '{_bound(0.2)}' AND name < '{_bound(0.5)}' "
        f"GROUP BY cat")

    # ---- numeric sweeps (warn-only: decoded numerics are vectorized) --
    numeric_filter = []
    for bound in (10, 50, 90):
        entry = _compare(
            executor, f"SELECT count(*) FROM s WHERE qty < {bound}")
        entry["bound"] = bound
        numeric_filter.append(entry)
        _check_soft(entry, f"numeric filter qty<{bound}")

    numeric_group_by = _compare(
        executor,
        "SELECT bucket, count(*) c, sum(qty) q FROM s GROUP BY bucket")
    _check_soft(numeric_group_by, "numeric group-by")

    # ---- code-space sort / TOP-N (warn-only) ----
    sort_top_n = []
    for label, sql in (
        ("top-100 asc", "SELECT TOP 100 name FROM s ORDER BY name"),
        ("top-100 desc", "SELECT TOP 100 name FROM s ORDER BY name DESC"),
        ("top-100 numeric", "SELECT TOP 100 qty FROM s ORDER BY qty"),
    ):
        entry = _compare(executor, sql)
        entry["label"] = label
        sort_top_n.append(entry)
        _check_soft(entry, f"sort/TOP-N {label}")

    # ---- spilling group-by under a tight grant (warn-only) ----
    spill = _compare(
        executor,
        "SELECT name, count(*) c FROM s GROUP BY name",
        memory_grant_bytes=64 << 10)
    _check_soft(spill, "spilling group-by")

    payload = {
        "version": 2,
        "n_rows": N_ROWS,
        "n_distinct": N_DISTINCT,
        "n_categories": N_CATEGORIES,
        "n_buckets": N_BUCKETS,
        "string_bytes": len(f"v00000_{PAD}"),
        "repeats_best_of": REPEATS,
        "string_gate": STRING_GATE,
        "fig1_string_selectivity": fig1,
        "fig4_string_group_by": fig4,
        "filter_group_by": filter_group_by,
        "numeric_filter": numeric_filter,
        "numeric_group_by": numeric_group_by,
        "sort_top_n": sort_top_n,
        "spill_group_by": spill,
        "warnings": list(_warnings),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    rows = [("str filter sel={:g}".format(e["selectivity"]),
             e["decoded_ms"], e["encoded_ms"], e["speedup"]) for e in fig1]
    rows.append(("str group-by", fig4["decoded_ms"],
                 fig4["encoded_ms"], fig4["speedup"]))
    rows.append(("str filter + group-by", filter_group_by["decoded_ms"],
                 filter_group_by["encoded_ms"],
                 filter_group_by["speedup"]))
    rows.extend(
        ("num filter qty<{}".format(e["bound"]), e["decoded_ms"],
         e["encoded_ms"], e["speedup"]) for e in numeric_filter)
    rows.append(("num group-by", numeric_group_by["decoded_ms"],
                 numeric_group_by["encoded_ms"],
                 numeric_group_by["speedup"]))
    rows.extend(
        (e["label"], e["decoded_ms"], e["encoded_ms"], e["speedup"])
        for e in sort_top_n)
    rows.append(("spill group-by", spill["decoded_ms"],
                 spill["encoded_ms"], spill["speedup"]))
    record_result("encoded_exec", format_table(
        ["query", "decoded ms", "encoded ms", "speedup"], rows,
        title=f"encoded execution v2, {N_ROWS} rows"))

    # Hard gates: string-heavy sweeps must clear STRING_GATE end to end
    # (target is 10x; the gate is the floor noisy CI must still clear).
    for entry in fig1:
        assert entry["speedup"] >= STRING_GATE, entry
    assert fig4["speedup"] >= STRING_GATE, fig4
    assert filter_group_by["speedup"] >= STRING_GATE, filter_group_by
