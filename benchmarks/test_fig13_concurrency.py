"""Figure 13 (Appendix A.2): B+ tree/CSI crossover selectivity vs the
number of concurrent queries.

The same Q1 executes from N concurrent clients (1..256) on a hot
database, under the B+ tree design and the columnstore design; for each
N we find the selectivity where their median latencies cross.

Findings reproduced:

* With few concurrent queries there is spare CPU, so the
  resource-hungry parallel CSI scans are unaffected and the crossover
  sits low.
* As concurrency grows, the DOP-40 columnstore scans contend with each
  other for cores while the serial B+ tree plans keep a core each, so
  the crossover *rises*.
* Beyond the point where even serial B+ tree plans queue for CPU
  (N >> cores), latency is governed by total CPU per query, and the
  crossover settles at the CPU-efficiency crossover. (The paper also
  observes a mild decline at 256 queries; our symmetric
  processor-sharing model reproduces the plateau, not the final dip —
  see EXPERIMENTS.md.)
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import find_crossover, format_table
from repro.engine.concurrency import ConcurrencySimulator, StatementProfile
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.synthetic import make_uniform_table, q1_scan

N_ROWS = 200_000
SELECTIVITIES = (0.02, 0.05, 0.1, 0.3, 0.6, 1.0, 2.0, 5.0)
CLIENT_COUNTS = (1, 4, 8, 16, 32, 64, 128, 256)
N_CORES = 40


@pytest.fixture(scope="module")
def profiles():
    """(design, selectivity) -> solo StatementProfile."""
    db_btree = Database()
    make_uniform_table(db_btree, "micro", N_ROWS, 1, seed=5)
    db_btree.table("micro").set_primary_btree(["col1"])
    db_csi = Database()
    make_uniform_table(db_csi, "micro", N_ROWS, 1, seed=5)
    db_csi.table("micro").set_primary_columnstore()
    out = {}
    for design, executor in (("btree", Executor(db_btree)),
                             ("csi", Executor(db_csi))):
        for selectivity in SELECTIVITIES:
            result = executor.execute(q1_scan(selectivity))
            out[(design, selectivity)] = StatementProfile(
                f"{design}@{selectivity}",
                cpu_ms=max(1e-3, result.metrics.cpu_ms),
                dop=max(1, result.metrics.dop))
    return out


def median_latency(profile: StatementProfile, n_clients: int) -> float:
    simulator = ConcurrencySimulator(n_cores=N_CORES)
    result = simulator.run(
        [lambda p=profile: p] * n_clients,
        duration_ms=1e9,
        max_statements=max(3 * n_clients, 30))
    return result.median_latency()


def test_fig13_concurrency_crossover(benchmark, record_result, profiles):
    def sweep():
        crossovers = {}
        for n_clients in CLIENT_COUNTS:
            btree_latency = [
                median_latency(profiles[("btree", s)], n_clients)
                for s in SELECTIVITIES
            ]
            csi_latency = [
                median_latency(profiles[("csi", s)], n_clients)
                for s in SELECTIVITIES
            ]
            crossovers[n_clients] = find_crossover(
                list(SELECTIVITIES), btree_latency, csi_latency)
        return crossovers

    crossovers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [(n, crossovers[n] if crossovers[n] is not None else ">5")
            for n in CLIENT_COUNTS]
    table = format_table(
        ["concurrent queries", "crossover selectivity %"], rows,
        title="Figure 13: B+ tree/CSI crossover vs concurrency "
              f"({N_ROWS} rows, {N_CORES} cores)")
    record_result("fig13_concurrency", table)

    values = [crossovers[n] for n in CLIENT_COUNTS]
    assert all(v is not None for v in values), "no crossover found"
    low_concurrency = values[0]
    peak = max(values)
    high_concurrency = values[-1]
    # The crossover rises strongly with moderate concurrency (the paper's
    # main Figure 13 effect): contended parallel CSI scans lose their
    # latency edge while serial B+ tree plans keep a core each.
    assert peak > low_concurrency * 5
    # At very high concurrency the crossover stops rising and settles at
    # the CPU-efficiency crossover. (The paper additionally observes a
    # mild *decline* at 256 queries; our symmetric processor-sharing
    # model reproduces the saturation plateau but not the final dip —
    # see EXPERIMENTS.md.)
    assert high_concurrency <= peak * 1.01
