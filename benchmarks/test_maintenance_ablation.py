"""Maintenance ablation: scan degradation under churn and recovery via
REORGANIZE / REBUILD.

Section 2 describes the background process that compacts the delete
buffer into the delete bitmap "to reduce the cost of this anti-semi
join". This bench quantifies that life-cycle on a secondary columnstore:

1. fresh index — fast scans;
2. after heavy updates — delta-store rows and delete-buffer entries make
   scans pay the anti-semi join and row-mode delta reads;
3. REORGANIZE (tuple mover + buffer compaction) — recovers most of it;
4. REBUILD — fully restores fresh-index scan cost.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import format_table
from repro.engine.executor import Executor
from repro.engine.metrics import ExecutionContext
from repro.storage.database import Database
from repro.workloads.synthetic import make_uniform_table

N_ROWS = 100_000
SCAN = "SELECT sum(col1) FROM micro"


def build_executor():
    db = Database()
    make_uniform_table(db, "micro", N_ROWS, 2, seed=44)
    table = db.table("micro")
    table.set_primary_btree(["col1"])
    table.create_secondary_columnstore("csi", rowgroup_size=16384)
    return Executor(db), table


def scan_cpu(executor):
    return executor.execute(SCAN).metrics.cpu_ms


def test_maintenance_lifecycle(benchmark, record_result):
    def run():
        executor, table = build_executor()
        csi = table.secondary_indexes["csi"]
        stages = []
        stages.append(("fresh", scan_cpu(executor), csi.fragmentation,
                       csi.delta_rows, csi.delete_buffer_rows))
        # Heavy churn: update 10% of rows through the executor.
        executor.execute(
            f"UPDATE TOP ({N_ROWS // 10}) micro SET col2 = col2 + 1 "
            f"WHERE col1 >= 0")
        stages.append(("after 10% updates", scan_cpu(executor),
                       csi.fragmentation, csi.delta_rows,
                       csi.delete_buffer_rows))
        csi.reorganize(ExecutionContext())
        stages.append(("after REORGANIZE", scan_cpu(executor),
                       csi.fragmentation, csi.delta_rows,
                       csi.delete_buffer_rows))
        csi.rebuild(ExecutionContext())
        stages.append(("after REBUILD", scan_cpu(executor),
                       csi.fragmentation, csi.delta_rows,
                       csi.delete_buffer_rows))
        return stages

    stages = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result("maintenance_ablation", format_table(
        ["stage", "scan CPU ms", "fragmentation", "delta rows",
         "delete buffer"],
        [(name, round(cpu, 3), round(frag, 4), delta, buffer)
         for name, cpu, frag, delta, buffer in stages],
        title="Columnstore maintenance life-cycle "
              f"({N_ROWS} rows, 10% churn)"))

    by_stage = {name: cpu for name, cpu, _, _, _ in stages}
    frag = {name: f for name, _, f, _, _ in stages}
    # Churn degrades scans...
    assert by_stage["after 10% updates"] > by_stage["fresh"] * 1.3
    # ...REORGANIZE recovers part of the cost (anti-semi join gone)...
    assert by_stage["after REORGANIZE"] < by_stage["after 10% updates"]
    # ...and REBUILD restores near-fresh performance and zero
    # fragmentation.
    assert by_stage["after REBUILD"] <= by_stage["fresh"] * 1.2
    assert frag["after REBUILD"] == 0.0
    assert frag["after REORGANIZE"] > 0.0  # dead slots remain
