"""Figure 2 (+ Appendix Figure 12): impact of data skipping.

Q1's selectivity sweep comparing a B+ tree against two columnstores —
one built over randomly-ordered data and one built over data pre-sorted
on the predicate column. Sorted builds give disjoint per-segment
min/max ranges, so segment elimination skips almost everything outside
the predicate range.

Paper findings reproduced:

* The sorted CSI's execution-time crossover against the B+ tree moves to
  ~0.09% (vs ~10% for the random CSI) — data skipping makes the CSI
  competitive at much lower selectivities.
* The sorted CSI reads 1-2 orders of magnitude less data than the
  unsorted CSI at low selectivity (Figure 2(b)).
* The *data read* crossover sits near 10% even though the *time*
  crossover is far lower — the CSI tolerates reading ~an order of
  magnitude more data at equal latency thanks to vectorized execution
  and large sequential reads.
* CPU time (Figure 12): the sorted CSI's crossover in CPU terms stays
  much higher than its execution-time crossover, because even eliminated
  scans run parallel plans with higher CPU overheads than the serial
  B+ tree plan.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import find_crossover, format_table
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.synthetic import (
    PAPER_SELECTIVITIES_PCT,
    make_uniform_table,
    q1_scan,
)

N_ROWS = 500_000


@pytest.fixture(scope="module")
def designs():
    db_btree = Database()
    make_uniform_table(db_btree, "micro", N_ROWS, 1, seed=9)
    db_btree.table("micro").set_primary_btree(["col1"])

    db_random = Database()
    make_uniform_table(db_random, "micro", N_ROWS, 1, seed=9)
    db_random.table("micro").set_primary_columnstore()

    db_sorted = Database()
    make_uniform_table(db_sorted, "micro", N_ROWS, 1, seed=9,
                       sorted_on="col1")
    db_sorted.table("micro").set_primary_columnstore(presorted=True)
    return Executor(db_btree), Executor(db_random), Executor(db_sorted)


def test_fig2_sorted_csi_segment_ranges_disjoint(designs):
    _, _, ex_sorted = designs
    csi = ex_sorted.database.table("micro").primary
    ranges = csi.segment_ranges("col1")
    assert all(ranges[i][1] <= ranges[i + 1][0]
               for i in range(len(ranges) - 1))


def test_fig2_data_skipping(benchmark, record_result, designs):
    ex_btree, ex_random, ex_sorted = designs

    def sweep():
        rows = []
        series = {k: [] for k in ("bt", "rand", "sort",
                                  "bt_mb", "rand_mb", "sort_mb",
                                  "bt_cpu", "rand_cpu", "sort_cpu")}
        for sel in PAPER_SELECTIVITIES_PCT:
            sql = q1_scan(sel)
            bt = ex_btree.execute(sql, cold=True)
            rand = ex_random.execute(sql, cold=True)
            sort = ex_sorted.execute(sql, cold=True)
            series["bt"].append(bt.metrics.elapsed_ms)
            series["rand"].append(rand.metrics.elapsed_ms)
            series["sort"].append(sort.metrics.elapsed_ms)
            series["bt_mb"].append(bt.metrics.data_read_mb)
            series["rand_mb"].append(rand.metrics.data_read_mb)
            series["sort_mb"].append(sort.metrics.data_read_mb)
            series["bt_cpu"].append(bt.metrics.cpu_ms)
            series["rand_cpu"].append(rand.metrics.cpu_ms)
            series["sort_cpu"].append(sort.metrics.cpu_ms)
            rows.append((sel,
                         bt.metrics.elapsed_ms, rand.metrics.elapsed_ms,
                         sort.metrics.elapsed_ms,
                         bt.metrics.data_read_mb, rand.metrics.data_read_mb,
                         sort.metrics.data_read_mb,
                         sort.metrics.segments_skipped))
        return rows, series

    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    sels = list(PAPER_SELECTIVITIES_PCT)
    table = format_table(
        ["sel%", "btree ms", "CSI rand ms", "CSI sorted ms",
         "btree MB", "CSI rand MB", "CSI sorted MB", "segs skipped"],
        rows,
        title=f"Figure 2: B+ tree vs CSI (random/sorted), cold runs, "
              f"{N_ROWS} rows")

    sorted_cross = find_crossover(sels[3:], series["bt"][3:],
                                  series["sort"][3:])
    random_cross = find_crossover(sels[3:], series["bt"][3:],
                                  series["rand"][3:])
    data_cross = find_crossover(sels[3:], series["bt_mb"][3:],
                                series["sort_mb"][3:])
    cpu_cross = find_crossover(sels[3:], series["bt_cpu"][3:],
                               series["sort_cpu"][3:])
    summary = (
        f"\nexec crossover vs sorted CSI: {sorted_cross:.3f}% "
        f"(paper: 0.09%)"
        f"\nexec crossover vs random CSI: {random_cross:.3f}% "
        f"(paper: ~10%)"
        f"\ndata-read crossover vs sorted CSI: {data_cross:.3f}% "
        f"(paper: ~10%)"
        f"\nCPU crossover vs sorted CSI (Fig 12): {cpu_cross:.3f}%"
    )
    record_result("fig2_data_skipping", table + summary)

    # Sorted CSI becomes competitive at much lower selectivity.
    assert sorted_cross < random_cross / 5
    # At low selectivity the sorted CSI reads >=1 order of magnitude less
    # data than the unsorted CSI.
    low = sels.index(0.01)
    assert series["rand_mb"][low] / max(series["sort_mb"][low], 1e-9) > 10
    # Data crossover is far above the time crossover: the CSI matches
    # B+ tree latency while reading ~an order of magnitude more data.
    assert data_cross > sorted_cross * 3
    # Figure 12: CPU crossover above the execution-time crossover.
    assert cpu_cross > sorted_cross
