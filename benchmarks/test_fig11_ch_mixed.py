"""Figure 11: CH benchmark (TPC-C + analytic queries) — median-latency
speedup of the hybrid design over B+ tree-only, under Snapshot (SI) and
Serializable (SR) isolation.

Setup mirrors Section 5.2.2: C (transactions) and H (analytics) share
the data; resource pools affinitize 10 cores to C and 30 to H; clients
run in a closed loop; we report the median latency per query/transaction
type (a columnstore-only design is omitted, as in the paper, because it
makes the C transactions unusably slow).

Findings reproduced:

* The hybrid design significantly speeds up the H queries (several by
  >5-10x) while moderately slowing the write transactions (NewOrder,
  Payment) — speedups below 1.
* SR gives overall better latency improvements for read-only queries
  than SI, because SI's version chains make reads slightly more
  expensive.
"""

from __future__ import annotations

import random
from typing import Dict

import pytest

from repro.bench.reporting import format_table, speedup_histogram
from repro.engine.concurrency import ConcurrencySimulator, StatementProfile
from repro.engine.executor import Executor
from repro.engine.locks import SERIALIZABLE, SNAPSHOT
from repro.storage.database import Database
from repro.workloads.ch import (
    apply_ch_btree_design,
    apply_ch_hybrid_design,
    ch_analytic_queries,
    ch_point_queries,
    generate_ch,
)
from repro.workloads.tpcc import TpccTransactionGenerator

N_WAREHOUSES = 2
N_C_CLIENTS = 19
N_H_CLIENTS = 1
POOLS = {"C": 10, "H": 30}
TXN_TYPES = ("NewOrder", "Payment", "OrderStatus", "Delivery", "StockLevel")


def build_executor(design: str) -> Executor:
    db = Database()
    generate_ch(db, n_warehouses=N_WAREHOUSES)
    if design == "hybrid":
        apply_ch_hybrid_design(db)
    else:
        apply_ch_btree_design(db)
    return Executor(db)


@pytest.fixture(scope="module")
def profiles() -> Dict[str, Dict[str, StatementProfile]]:
    """Solo costs: design -> tag -> profile template (without resources)."""
    out: Dict[str, Dict[str, StatementProfile]] = {}
    for design in ("btree", "hybrid"):
        executor = build_executor(design)
        tags: Dict[str, StatementProfile] = {}
        # TPC-C transactions: average a few instances of each type.
        generator = TpccTransactionGenerator(N_WAREHOUSES, seed=91)
        sums: Dict[str, list] = {t: [] for t in TXN_TYPES}
        while any(len(v) < 3 for v in sums.values()):
            txn = generator.next_transaction()
            if len(sums[txn.name]) >= 5:
                continue
            total = 0.0
            for sql in txn.statements:
                total += executor.execute(sql).metrics.elapsed_ms
            sums[txn.name].append(total)
        for name, values in sums.items():
            tags[name] = StatementProfile(
                name, cpu_ms=sum(values) / len(values), dop=1,
                is_write=name in ("NewOrder", "Payment", "Delivery"),
                pool="C")
        # H queries.
        for name, sql in ch_analytic_queries() + ch_point_queries(
                N_WAREHOUSES):
            result = executor.execute(sql, concurrent_queries=2)
            tags[name] = StatementProfile(
                name, cpu_ms=max(1e-3, result.metrics.cpu_ms),
                dop=max(1, result.metrics.dop), is_write=False, pool="H")
        out[design] = tags
    return out


def run_mix(profiles_for_design: Dict[str, StatementProfile],
            isolation: str, seed: int):
    rng = random.Random(seed)
    h_tags = [t for t, p in profiles_for_design.items() if p.pool == "H"]
    generator = TpccTransactionGenerator(N_WAREHOUSES, seed=seed)

    def c_client():
        txn = generator.next_transaction()
        template = profiles_for_design[txn.name]
        # Row-level X locks: a handful of key buckets out of a large
        # space, so conflicts with scans are possible but rare — the
        # paper's row/range locking at TPC-C scale.
        resources = (("tpcc", txn.warehouse, txn.district,
                      rng.randrange(300)),)
        return StatementProfile(
            template.tag, cpu_ms=template.cpu_ms, dop=1,
            is_write=template.is_write,
            write_resources=resources if template.is_write else (),
            read_resources=() if template.is_write else resources,
            pool="C")

    h_cycle = [0]

    def h_client():
        # Cycle deterministically so every H query type gets sampled.
        tag = h_tags[h_cycle[0] % len(h_tags)]
        h_cycle[0] += 1
        template = profiles_for_design[tag]
        # Under SERIALIZABLE these become held S range locks.
        resources = tuple(
            ("tpcc", rng.randrange(N_WAREHOUSES), rng.randrange(10),
             rng.randrange(300))
            for _ in range(3))
        return StatementProfile(
            tag, cpu_ms=template.cpu_ms, dop=template.dop,
            is_write=False, read_resources=resources, pool="H")

    simulator = ConcurrencySimulator(n_cores=40, isolation=isolation,
                                     pool_cores=POOLS)
    clients = [c_client] * N_C_CLIENTS + [h_client] * N_H_CLIENTS
    return simulator.run(clients, duration_ms=1e9, max_statements=3000)


def test_fig11_ch_isolation_levels(benchmark, record_result, profiles):
    def experiment():
        medians = {}
        for design in ("btree", "hybrid"):
            for isolation in (SNAPSHOT, SERIALIZABLE):
                result = run_mix(profiles[design], isolation, seed=17)
                medians[(design, isolation)] = {
                    tag: result.median_latency(tag)
                    for tag in result.tags()
                }
        return medians

    medians = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    speedups = {SNAPSHOT: {}, SERIALIZABLE: {}}
    tags = sorted(medians[("btree", SNAPSHOT)])
    for tag in tags:
        row = [tag]
        for isolation in (SNAPSHOT, SERIALIZABLE):
            base = medians[("btree", isolation)].get(tag)
            hybrid = medians[("hybrid", isolation)].get(tag)
            if base and hybrid and hybrid > 0:
                speedup = base / hybrid
            else:
                speedup = float("nan")
            speedups[isolation][tag] = speedup
            row.append(speedup)
        rows.append(tuple(row))
    table = format_table(
        ["query/txn", "SI speedup", "SR speedup"], rows,
        title="Figure 11: hybrid vs B+ tree-only median-latency speedup "
              "(CH benchmark)")
    si_hist = speedup_histogram(
        [s for s in speedups[SNAPSHOT].values() if s == s])
    sr_hist = speedup_histogram(
        [s for s in speedups[SERIALIZABLE].values() if s == s])
    summary = (f"\nSI buckets: {si_hist}\nSR buckets: {sr_hist}")
    record_result("fig11_ch_mixed", table + summary)

    analytic_tags = [name for name, _ in ch_analytic_queries()]
    # H queries speed up under hybrid; several by a large factor.
    for isolation in (SNAPSHOT, SERIALIZABLE):
        gains = [speedups[isolation][t] for t in analytic_tags
                 if t in speedups[isolation]]
        assert sum(1 for g in gains if g > 1.5) >= len(gains) * 0.5
        assert max(gains) > 5
    # Write transactions slow down moderately (speedup <= ~1).
    for txn in ("NewOrder", "Payment"):
        for isolation in (SNAPSHOT, SERIALIZABLE):
            assert speedups[isolation][txn] < 1.2
            assert speedups[isolation][txn] > 0.3  # moderate, not broken
    # SR yields overall better read-query latency improvements than SI.
    sr_gain = sum(speedups[SERIALIZABLE][t] for t in analytic_tags)
    si_gain = sum(speedups[SNAPSHOT][t] for t in analytic_tags)
    assert sr_gain >= si_gain * 0.95
