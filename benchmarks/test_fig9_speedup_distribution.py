"""Figure 9: distribution of per-query CPU-time speedup achieved by the
hybrid physical design over columnstore-only and B+ tree-only designs,
for TPC-DS and the five customer-workload analogs.

For each workload, DTA tunes a hybrid design and a B+ tree-only design;
the columnstore-only baseline is a secondary CSI on every table. Every
query executes under each design and per-query CPU time feeds the
paper's speedup buckets (<=0.5, 0.8, 1.2, 1.5, 2, 5, 10, >10).

Findings reproduced:

* Every workload has queries where hybrid wins by more than an order of
  magnitude over at least one single-format design.
* Workload character drives which baseline suffers: the selective
  customer workloads (cust1/cust3) are crushed against columnstore-only;
  the scan-heavy cust2 is nearly identical to columnstore-only but far
  ahead of B+ tree-only; TPC-DS gains against both.
* A few queries regress (speedup < 1): optimizer cost-estimate errors
  make some hybrid choices sub-optimal in measured cost, exactly as the
  paper observes.
"""

from __future__ import annotations

import pytest

from repro.advisor.advisor import MODE_BTREE_ONLY, MODE_CSI_ONLY
from repro.bench.figure9 import evaluate_workload
from repro.bench.reporting import (
    SPEEDUP_BUCKET_LABELS,
    format_table,
    summarize_speedups,
)
from repro.bench.workload_setups import all_read_only_factories

#: Paper shape targets: minimum number of queries with >10x speedup.
MIN_OVER_10X = {
    "TPC-DS": {"csi_only": 5, "btree_only": 10},
    "cust1": {"csi_only": 10, "btree_only": 3},
    "cust2": {"csi_only": 0, "btree_only": 10},
    "cust3": {"csi_only": 10, "btree_only": 2},
    "cust4": {"csi_only": 2, "btree_only": 2},
    # cust5's fact tables are tiny (Table 2: max table 1.52 GB), so the
    # scan gap tops out below 10x at this scale; require >=10 queries
    # above 5x instead (checked separately below).
    "cust5": {"csi_only": 0, "btree_only": 2},
}


@pytest.fixture(scope="session")
def evaluations():
    return {
        name: evaluate_workload(name, factory)
        for name, factory in all_read_only_factories()
    }


def test_fig9_speedup_distributions(benchmark, record_result, evaluations):
    def summarize():
        lines = []
        rows = []
        for name, evaluation in evaluations.items():
            csi_hist = evaluation.histogram(MODE_CSI_ONLY)
            btree_hist = evaluation.histogram(MODE_BTREE_ONLY)
            rows.append((name, "vs CSI-only", *csi_hist))
            rows.append((name, "vs B+tree-only", *btree_hist))
            csi_stats = summarize_speedups(evaluation.speedups(MODE_CSI_ONLY))
            btree_stats = summarize_speedups(
                evaluation.speedups(MODE_BTREE_ONLY))
            lines.append(
                f"{name}: hybrid vs CSI geomean "
                f"{csi_stats['geomean']:.2f}x (max {csi_stats['max']:.0f}x); "
                f"vs B+tree geomean {btree_stats['geomean']:.2f}x "
                f"(max {btree_stats['max']:.0f}x)")
        table = format_table(
            ["workload", "baseline", *SPEEDUP_BUCKET_LABELS], rows,
            title="Figure 9: #queries per speedup bucket "
                  "(hybrid vs single-format designs, CPU time)")
        return table + "\n" + "\n".join(lines)

    text = benchmark.pedantic(summarize, rounds=1, iterations=1)
    record_result("fig9_speedup_distribution", text)

    for name, evaluation in evaluations.items():
        csi_hist = evaluation.histogram(MODE_CSI_ONLY)
        btree_hist = evaluation.histogram(MODE_BTREE_ONLY)
        targets = MIN_OVER_10X[name]
        assert csi_hist[-1] >= targets["csi_only"], (
            f"{name}: expected >= {targets['csi_only']} queries with "
            f">10x speedup vs CSI-only, got {csi_hist[-1]}")
        assert btree_hist[-1] >= targets["btree_only"], (
            f"{name}: expected >= {targets['btree_only']} queries with "
            f">10x speedup vs B+ tree-only, got {btree_hist[-1]}")

    # Workload-character checks from the paper's discussion:
    # cust2's hybrid design is close to CSI-only overall (geomean < 2x)
    # while being far ahead of B+ tree-only.
    cust2 = evaluations["cust2"]
    from repro.bench.reporting import geometric_mean
    assert geometric_mean(cust2.speedups(MODE_CSI_ONLY)) < 2.5
    assert geometric_mean(cust2.speedups(MODE_BTREE_ONLY)) > 3.0
    # cust1/cust3 gain at least an order of magnitude on a large fraction
    # of queries against CSI-only.
    for name in ("cust1", "cust3"):
        hist = evaluations[name].histogram(MODE_CSI_ONLY)
        assert hist[-1] >= len(evaluations[name].speedups(MODE_CSI_ONLY)) * 0.3
    # cust5 (many joins over small tables): at least 10 queries gain >5x
    # over B+ tree-only.
    cust5_bt = evaluations["cust5"].histogram(MODE_BTREE_ONLY)
    assert cust5_bt[-1] + cust5_bt[-2] >= 10


def test_fig9_hybrid_never_loses_badly_overall(benchmark, evaluations):
    """Aggregate sanity: per workload, total hybrid CPU is never worse
    than either single-format design (DTA picks the best of both
    worlds at the workload level)."""
    def check():
        out = {}
        for name, evaluation in evaluations.items():
            hybrid = sum(evaluation.cpu_ms["hybrid"])
            csi = sum(evaluation.cpu_ms[MODE_CSI_ONLY])
            btree = sum(evaluation.cpu_ms[MODE_BTREE_ONLY])
            out[name] = (hybrid, csi, btree)
        return out

    totals = benchmark.pedantic(check, rounds=1, iterations=1)
    for name, (hybrid, csi, btree) in totals.items():
        assert hybrid <= csi * 1.05, f"{name}: hybrid worse than CSI-only"
        assert hybrid <= btree * 1.05, f"{name}: hybrid worse than B+-only"
