"""Figure 3: explicit sort order — execution time and query memory for
Q2 (``SELECT col1, col2 FROM table WHERE col1 < X ORDER BY col2``) under
three physical designs:

(a) primary columnstore — scan, filter, and sort at execution time;
(b) primary B+ tree keyed on col1 — efficient range seek, small sort;
(c) primary B+ tree keyed on col2 — scan in output order, *no sort*.

Paper findings reproduced:

* (c) is the slowest option at low selectivity but uses near-zero query
  memory (no sort).
* (b) wins at low selectivity: it touches little data and sorts a tiny
  result.
* As selectivity rises, the CSI's efficient scan+sort dominates; it
  overtakes both B+ tree options above ~1%.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import find_crossover, format_table
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.synthetic import (
    PAPER_SELECTIVITIES_PCT,
    make_uniform_table,
    q2_sort,
)

N_ROWS = 400_000


@pytest.fixture(scope="module")
def designs():
    db_csi = Database()
    make_uniform_table(db_csi, "micro2", N_ROWS, 2, seed=11)
    db_csi.table("micro2").set_primary_columnstore()

    db_bt_filter = Database()
    make_uniform_table(db_bt_filter, "micro2", N_ROWS, 2, seed=11)
    db_bt_filter.table("micro2").set_primary_btree(["col1"])

    db_bt_order = Database()
    make_uniform_table(db_bt_order, "micro2", N_ROWS, 2, seed=11)
    db_bt_order.table("micro2").set_primary_btree(["col2"])
    return (Executor(db_csi), Executor(db_bt_filter),
            Executor(db_bt_order))


def test_fig3_sort_order(benchmark, record_result, designs):
    ex_csi, ex_bt_filter, ex_bt_order = designs
    sels = [s for s in PAPER_SELECTIVITIES_PCT if s > 0]

    def sweep():
        rows = []
        series = {k: [] for k in ("a", "b", "c", "a_mem", "b_mem", "c_mem")}
        for sel in sels:
            sql = q2_sort(sel)
            a = ex_csi.execute(sql)
            b = ex_bt_filter.execute(sql)
            c = ex_bt_order.execute(sql)
            assert len(a.rows) == len(b.rows) == len(c.rows)
            series["a"].append(a.metrics.elapsed_ms)
            series["b"].append(b.metrics.elapsed_ms)
            series["c"].append(c.metrics.elapsed_ms)
            series["a_mem"].append(a.metrics.memory_peak_bytes)
            series["b_mem"].append(b.metrics.memory_peak_bytes)
            series["c_mem"].append(c.metrics.memory_peak_bytes)
            rows.append((sel,
                         a.metrics.elapsed_ms, b.metrics.elapsed_ms,
                         c.metrics.elapsed_ms,
                         a.metrics.memory_peak_bytes / 1024,
                         b.metrics.memory_peak_bytes / 1024,
                         c.metrics.memory_peak_bytes / 1024))
        return rows, series

    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    table = format_table(
        ["sel%", "(a) CSI ms", "(b) bt col1 ms", "(c) bt col2 ms",
         "(a) mem KB", "(b) mem KB", "(c) mem KB"],
        rows,
        title=f"Figure 3: Q2 filter+ORDER BY under three designs, "
              f"{N_ROWS} rows, hot")
    crossover = find_crossover(sels, series["b"], series["a"])
    summary = (f"\nB+ tree(col1) -> CSI crossover: {crossover:.2f}% "
               f"(paper: ~1%)")
    record_result("fig3_sort_order", table + summary)

    low = sels.index(0.01)
    high = sels.index(30.0)
    # (b) wins at low selectivity; (c) is the most expensive option there.
    assert series["b"][low] < series["a"][low]
    assert series["c"][low] > series["b"][low] * 5
    # CSI wins at high selectivity against both B+ tree options.
    assert series["a"][high] < series["b"][high]
    assert series["a"][high] < series["c"][high]
    # (c) never reserves sort memory; (a) uses the most at 100%.
    assert max(series["c_mem"]) == 0
    assert series["a_mem"][-1] > 0
    assert series["b_mem"][low] < series["a_mem"][-1]
    # Crossover near the paper's ~1%.
    assert 0.2 <= crossover <= 10.0
