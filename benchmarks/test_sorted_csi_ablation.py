"""Section 4.5 extension ablation: sorted (projection-style) columnstore
candidates.

The paper sketches how DTA extends to Vertica-style sorted columnstores:
"candidate selection needs to be aware of sort requirements in a query to
determine an appropriate sort order". This bench enables that extension
on a range-scan workload and measures the effect end to end:

* the advisor recommends a CSI *sorted on the range column*;
* applied, range queries eliminate most segments (Figure 2's data
  skipping) and run measurably faster than under the plain hybrid
  recommendation;
* update cost rises — maintaining sort order under updates is the
  trade-off the paper cites for why SQL Server's CSIs are unsorted.
"""

from __future__ import annotations

import random

import pytest

from repro.advisor.advisor import TuningAdvisor
from repro.advisor.workload import Workload
from repro.bench.reporting import format_table
from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.executor import Executor
from repro.storage.database import Database

N_ROWS = 120_000

RANGE_QUERIES = [
    f"SELECT sum(value) FROM readings WHERE ts BETWEEN {low} AND {low + 40_000}"
    for low in (50_000, 300_000, 550_000, 800_000)
] + [
    f"SELECT sum(value) FROM readings WHERE geo BETWEEN {low} AND {low + 40_000}"
    for low in (150_000, 700_000)
]


def make_db():
    rng = random.Random(8)
    db = Database()
    table = db.create_table(TableSchema("readings", [
        Column("ts", INT, nullable=False),
        Column("geo", INT, nullable=False),
        Column("value", INT),
    ]))
    table.bulk_load([
        (rng.randrange(1_000_000), rng.randrange(1_000_000),
         rng.randrange(10_000)) for _ in range(N_ROWS)
    ])
    table.set_primary_btree(["value"])
    return db


def evaluate(consider_sorted: bool, allow_multiple: bool = False):
    db = make_db()
    workload = Workload.from_sql(RANGE_QUERIES, db)
    advisor = TuningAdvisor(db)
    recommendation = advisor.tune(
        workload, consider_sorted_csi=consider_sorted,
        allow_multiple_columnstores=allow_multiple)
    advisor.apply(recommendation)
    executor = Executor(db, catalog=advisor.catalog)
    executor.refresh()
    total_cpu = 0.0
    skipped = 0
    read = 0
    for sql in RANGE_QUERIES:
        result = executor.execute(sql)
        total_cpu += result.metrics.cpu_ms
        skipped += result.metrics.segments_skipped
        read += result.metrics.segments_read
    return {
        "recommendation": recommendation,
        "total_cpu": total_cpu,
        "segments_skipped": skipped,
        "segments_read": read,
        "sorted_chosen": any(d.sorted_on is not None
                             for d in recommendation.chosen),
    }


def test_sorted_csi_extension(benchmark, record_result):
    def run():
        return {
            "plain hybrid": evaluate(consider_sorted=False),
            "with sorted CSI": evaluate(consider_sorted=True),
            "multi projections": evaluate(consider_sorted=True,
                                          allow_multiple=True),
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (name, round(r["total_cpu"], 2), r["segments_skipped"],
         r["segments_read"], r["sorted_chosen"])
        for name, r in results.items()
    ]
    record_result("sorted_csi_ablation", format_table(
        ["advisor mode", "workload CPU ms", "segs skipped", "segs read",
         "sorted CSI chosen"],
        rows, title="Section 4.5 extension: sorted columnstore candidates "
                    f"({N_ROWS}-row range workload)"))

    plain = results["plain hybrid"]
    extended = results["with sorted CSI"]
    multi = results["multi projections"]
    assert extended["sorted_chosen"]
    assert not plain["sorted_chosen"]
    # Sorted build -> aggressive segment elimination at runtime.
    assert extended["segments_skipped"] > plain["segments_skipped"]
    # And a measurable end-to-end win on the range workload.
    assert extended["total_cpu"] < plain["total_cpu"]
    # With the one-CSI rule lifted, both range axes get a projection and
    # elimination improves further (or at least does not regress).
    assert multi["segments_skipped"] >= extended["segments_skipped"]
    assert multi["total_cpu"] <= extended["total_cpu"] * 1.05
