"""Hybrid plans up close: Section 5.3's example access patterns.

The paper drills into queries where a hybrid design wins by an order of
magnitude — e.g. TPC-DS Q54/Q72: selective predicates on dimensions make
B+ tree *seeks into the fact table* via nested-loop joins far cheaper
than scanning the fact columnstore, while other parts of the same query
still use columnstores. This example rebuilds that situation on a small
star schema and shows both plans side by side.

Run with: ``python examples/hybrid_plans.py``
"""

import random

from repro import Column, Database, Executor, INT, TableSchema, varchar


def build_star() -> Database:
    database = Database("star")
    rng = random.Random(5)

    item = database.create_table(TableSchema("item", [
        Column("i_item_sk", INT, nullable=False),
        Column("i_manager_id", INT),
        Column("i_category", varchar(16)),
    ]))
    item.bulk_load([
        (i, rng.randrange(2_000), f"cat{i % 10}") for i in range(20_000)
    ])

    sales = database.create_table(TableSchema("store_sales", [
        Column("ss_item_sk", INT, nullable=False),
        Column("ss_customer_sk", INT, nullable=False),
        Column("ss_sales_price", INT),
        Column("ss_quantity", INT),
    ]))
    sales.bulk_load([
        (rng.randrange(20_000), rng.randrange(10_000),
         rng.randrange(1, 500), rng.randrange(1, 100))
        for _ in range(500_000)
    ])
    return database


# A very selective dimension filter (one manager ~ 0.05% of items) drives
# the fact-table access.
QUERY = ("SELECT sum(ss.ss_sales_price) rev "
         "FROM store_sales ss JOIN item i ON ss.ss_item_sk = i.i_item_sk "
         "WHERE i.i_manager_id = 42")


def run_design(title: str, configure) -> float:
    database = build_star()
    configure(database)
    executor = Executor(database)
    result = executor.execute(QUERY)
    print(f"--- {title}: {result.metrics.cpu_ms:9.3f} ms CPU, "
          f"leaves {result.plan.index_kinds_at_leaves()}, "
          f"hybrid={result.plan.is_hybrid()}")
    print(result.plan.explain())
    print()
    return result.metrics.cpu_ms


def columnstore_only(database: Database) -> None:
    database.table("item").set_primary_columnstore()
    database.table("store_sales").set_primary_columnstore()


def hybrid(database: Database) -> None:
    # What the extended DTA recommends here: a B+ tree on the selective
    # dimension predicate and on the fact's join column — so qualifying
    # items drive *seeks* into the fact — while keeping columnstores for
    # the workload's scan queries.
    item = database.table("item")
    item.set_primary_columnstore()
    fact = database.table("store_sales")
    fact.set_primary_btree(["ss_item_sk"])
    fact.create_secondary_columnstore("csi_sales")


if __name__ == "__main__":
    print(f"query: {QUERY}\n")
    csi_cost = run_design("columnstore-only", columnstore_only)
    hybrid_cost = run_design("hybrid (CSI dimension + B+ tree into fact)",
                             hybrid)
    print(f"hybrid speedup: {csi_cost / hybrid_cost:.1f}x "
          "(the paper reports ~25x lower leaf CPU for TPC-DS Q54)")
