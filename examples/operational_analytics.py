"""Operational analytics: a TPC-H order-processing system that also runs
live reports (the paper's Section 3.4 / Figure 6 scenario).

Demonstrates:

* the update-cost asymmetry between B+ trees and columnstores
  (Figure 5's delta store / delete buffer behaviour);
* why a secondary columnstore on top of the OLTP B+ trees is the sweet
  spot once even 1-5% of the workload is analytic scans;
* the multi-client concurrency simulator with Read Committed locking.

Run with: ``python examples/operational_analytics.py``
"""

import random

from repro import Database, Executor, StatementProfile, ConcurrencySimulator
from repro.engine.locks import READ_COMMITTED, range_bucket
from repro.workloads.tpch import generate_tpch, q4_update

SCAN_SQL = (
    "SELECT sum(l_quantity) q, sum(l_extendedprice * (1 - l_discount)) rev "
    "FROM lineitem WHERE l_shipdate BETWEEN '1993-01-01' AND '1996-01-01'"
)


def build(design: str) -> Executor:
    database = Database(design)
    generate_tpch(database, scale=0.5)
    lineitem = database.table("lineitem")
    lineitem.set_primary_btree(["l_orderkey", "l_linenumber"])
    lineitem.create_secondary_btree("ix_shipdate", ["l_shipdate"])
    if design == "hybrid":
        lineitem.create_secondary_columnstore("csi_lineitem",
                                              rowgroup_size=4096)
    return Executor(database)


def solo_costs() -> dict:
    print("=== Solo costs per design ===")
    profiles = {}
    for design in ("btree-only", "hybrid"):
        executor = build("hybrid" if design == "hybrid" else "btree")
        update = executor.execute(
            q4_update(10, "1994-06-15").replace("l_shipdate = ",
                                                "l_shipdate >= "))
        scan = executor.execute(SCAN_SQL, concurrent_queries=10)
        profiles[design] = {
            "update_ms": update.metrics.elapsed_ms,
            "scan_cpu_ms": scan.metrics.cpu_ms,
            "scan_dop": max(1, scan.metrics.dop),
        }
        print(f"  {design:11s}: update {update.metrics.elapsed_ms:7.3f} ms, "
              f"analytic scan {scan.metrics.cpu_ms:8.2f} ms CPU "
              f"(plan leaves: {scan.plan.index_kinds_at_leaves()})")
    print("  -> the hybrid design pays ~2x on updates to make scans "
          "an order of magnitude cheaper.\n")
    return profiles


def mixed_workload(profiles: dict) -> None:
    print("=== 10 concurrent clients, 3% analytic scans "
          "(Figure 6's regime) ===")
    for design, profile in profiles.items():
        rng = random.Random(3)
        counter = [0]

        def client(profile=profile, rng=rng, counter=counter):
            counter[0] += 1
            if counter[0] % 33 == 0:
                return StatementProfile(
                    "scan", cpu_ms=profile["scan_cpu_ms"],
                    dop=profile["scan_dop"],
                    read_resources=(("lineitem", rng.randrange(8)),))
            return StatementProfile(
                "update", cpu_ms=profile["update_ms"], dop=1,
                is_write=True,
                write_resources=(
                    ("lineitem", range_bucket(rng.randrange(9000, 10000),
                                              30)),))

        simulator = ConcurrencySimulator(n_cores=40,
                                         isolation=READ_COMMITTED)
        result = simulator.run([client] * 10, duration_ms=1e9,
                               max_statements=1500)
        print(f"  {design:11s}: mean workload latency "
              f"{result.mean_latency():7.3f} ms "
              f"(updates {result.median_latency('update'):6.3f} ms, "
              f"scans {result.median_latency('scan'):8.3f} ms)")
    print("  -> with scans in the mix, the hybrid design wins overall.")


if __name__ == "__main__":
    mixed_workload(solo_costs())
