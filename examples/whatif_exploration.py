"""What-if exploration: cost hypothetical indexes without building them.

Shows the HypoPG-style interface underlying DTA (Section 4.2):

* create hypothetical B+ tree and columnstore descriptors (columnstore
  size estimated from a sample via the GEE run-modelling estimator);
* cost a query under alternative configurations;
* verify the estimate by actually building the winner.

Run with: ``python examples/whatif_exploration.py``
"""

import random

from repro import (
    Column,
    Database,
    Executor,
    INT,
    TableSchema,
    WhatIfSession,
    hypothetical_btree,
    hypothetical_columnstore,
)
from repro.advisor.size_estimation import estimate_csi_size


def main() -> None:
    database = Database("whatif")
    events = database.create_table(TableSchema("events", [
        Column("event_id", INT, nullable=False),
        Column("user_id", INT, nullable=False),
        Column("event_type", INT),
        Column("duration", INT),
    ]))
    rng = random.Random(11)
    events.bulk_load([
        (i, rng.randrange(10_000), rng.randrange(40), rng.randrange(3600))
        for i in range(150_000)
    ])
    events.set_primary_btree(["event_id"])

    sql = "SELECT sum(duration) FROM events WHERE user_id = 1234"
    session = WhatIfSession(database)

    baseline = session.cost_query_current_design(sql)
    print(f"baseline estimated cost: {baseline.est_cost:10.3f}")
    print(baseline.explain())

    # Hypothetical secondary B+ tree on the filter column.
    hypo_btree = hypothetical_btree(
        "events", ["user_id"], ["duration"],
        n_rows=events.row_count,
        column_bytes={"user_id": 4, "duration": 4})
    with_btree = session.cost_query(
        sql, session.configuration_with([hypo_btree]))
    print(f"\nwith hypothetical B+ tree ({hypo_btree.size_bytes // 1024} KB "
          f"estimated): {with_btree.est_cost:10.3f}")
    print(with_btree.explain())

    # Hypothetical columnstore, sized from a 10% sample.
    estimate = estimate_csi_size(events, events.schema.column_names(),
                                 method="run_modelling",
                                 sampling_ratio=0.1)
    print(f"\nestimated CSI column sizes (10% sample, GEE): "
          f"{ {c: s // 1024 for c, s in estimate.column_sizes.items()} } KB")
    hypo_csi = hypothetical_columnstore(
        "events", events.schema.column_names(), estimate.column_sizes)
    with_csi = session.cost_query(
        sql, session.configuration_with([hypo_csi]))
    print(f"with hypothetical columnstore: {with_csi.est_cost:10.3f}")

    # Build the winner for real and compare estimate vs measurement.
    print("\nbuilding the winning index for real...")
    events.create_secondary_btree("ix_user", ["user_id"], ["duration"])
    executor = Executor(database)
    executor.refresh()
    result = executor.execute(sql)
    print(f"measured elapsed: {result.metrics.elapsed_ms:.3f} ms "
          f"(estimate was {with_btree.est_cost:.3f})")
    print(f"plan leaves: {result.plan.index_kinds_at_leaves()}")
    speedup = baseline.est_cost / with_btree.est_cost
    print(f"\nestimated speedup from the hypothetical index: {speedup:.0f}x")


if __name__ == "__main__":
    main()
