"""Tune a decision-support workload: TPC-DS through the extended DTA.

Reproduces the paper's Section 5 evaluation loop on the scaled TPC-DS
workload:

1. generate the star schema and a 97-query workload;
2. tune it three ways — B+ tree-only, columnstore-only, hybrid;
3. execute every query under each design and report total CPU time and
   the speedup distribution (Figure 9(a));
4. show how the advisor's what-if estimates compare to measured costs.

Run with: ``python examples/tune_tpcds.py``
"""

from repro import MODE_BTREE_ONLY, MODE_CSI_ONLY, MODE_HYBRID
from repro.bench.figure9 import evaluate_workload
from repro.bench.reporting import (
    SPEEDUP_BUCKET_LABELS,
    format_table,
    summarize_speedups,
)
from repro.bench.workload_setups import tpcds_factory


def main() -> None:
    print("Evaluating TPC-DS (97 queries) under three physical designs...")
    evaluation = evaluate_workload("TPC-DS", tpcds_factory)

    print("\n=== Advisor recommendations ===")
    for design, summary in evaluation.recommendation_summaries.items():
        print(f"\n[{design}]")
        print(summary if len(summary) < 1500 else summary[:1500] + " ...")

    print("\n=== Total workload CPU time ===")
    for design in (MODE_BTREE_ONLY, MODE_CSI_ONLY, MODE_HYBRID):
        total = sum(evaluation.cpu_ms[design])
        print(f"  {design:12s}: {total:10.1f} ms")

    print("\n=== Figure 9(a): per-query speedup of hybrid ===")
    rows = []
    for baseline in (MODE_CSI_ONLY, MODE_BTREE_ONLY):
        histogram = evaluation.histogram(baseline)
        rows.append((f"vs {baseline}", *histogram))
    print(format_table(["baseline", *SPEEDUP_BUCKET_LABELS], rows))

    for baseline in (MODE_CSI_ONLY, MODE_BTREE_ONLY):
        stats = summarize_speedups(evaluation.speedups(baseline))
        print(f"\n  vs {baseline}: median {stats['median']:.2f}x, "
              f"geomean {stats['geomean']:.2f}x, max {stats['max']:.0f}x, "
              f"{stats['over_10x']} queries over 10x")

    print("\n=== Figure 10: plan composition under the hybrid design ===")
    print(f"  columnstore leaves: {evaluation.csi_leaf_pct:.1f}%")
    print(f"  B+ tree leaves:     {evaluation.btree_leaf_pct:.1f}%")
    print(f"  plans using both formats: {evaluation.hybrid_plan_count}")


if __name__ == "__main__":
    main()
