"""Quickstart: build a table, compare B+ tree vs columnstore, run the
tuning advisor.

Walks through the paper's core loop in miniature:

1. create a table and load data;
2. execute the same query under a B+ tree design and a columnstore
   design, observing the selectivity trade-off of Figure 1;
3. hand a mixed workload to the tuning advisor and let it recommend a
   *hybrid* design;
4. apply the recommendation and measure the improvement.

Run with: ``python examples/quickstart.py``
"""

import random

from repro import (
    Column,
    Database,
    Executor,
    INT,
    TableSchema,
    TuningAdvisor,
    Workload,
    varchar,
)


def build_database() -> Database:
    database = Database("quickstart")
    orders = database.create_table(TableSchema("orders", [
        Column("o_id", INT, nullable=False),
        Column("o_customer", INT, nullable=False),
        Column("o_status", varchar(1)),
        Column("o_amount", INT),
        Column("o_region", INT),
    ]))
    rng = random.Random(7)
    orders.bulk_load([
        (i, rng.randrange(5_000), rng.choice("NPS"),
         rng.randrange(10_000), rng.randrange(8))
        for i in range(100_000)
    ])
    return database


def compare_designs() -> None:
    print("=== 1. The selectivity trade-off (Figure 1 in miniature) ===")
    selective = "SELECT sum(o_amount) FROM orders WHERE o_id BETWEEN 500 AND 520"
    analytic = "SELECT o_region, sum(o_amount) t FROM orders GROUP BY o_region"

    for design in ("B+ tree", "columnstore"):
        database = build_database()
        if design == "B+ tree":
            database.table("orders").set_primary_btree(["o_id"])
        else:
            database.table("orders").set_primary_columnstore()
        executor = Executor(database)
        sel = executor.execute(selective)
        scan = executor.execute(analytic)
        print(f"  {design:12s}: selective query {sel.metrics.cpu_ms:8.3f} ms CPU, "
              f"analytic query {scan.metrics.cpu_ms:8.3f} ms CPU")
    print("  -> each format wins one of the two queries;"
          " neither wins both.\n")


def tune_hybrid() -> None:
    print("=== 2. Let the advisor pick a hybrid design ===")
    database = build_database()
    database.table("orders").set_primary_btree(["o_id"])
    executor = Executor(database)

    workload = Workload.from_sql([
        "SELECT sum(o_amount) FROM orders WHERE o_customer = 42",
        "SELECT o_region, sum(o_amount) t FROM orders GROUP BY o_region",
        "SELECT o_status, count(*) c FROM orders GROUP BY o_status",
        ("UPDATE TOP (10) orders SET o_amount = o_amount + 1 "
         "WHERE o_id < 1000", 5.0),
    ], database)

    before = sum(executor.execute(s.sql).metrics.cpu_ms
                 for s in workload.selects)

    advisor = TuningAdvisor(database)
    recommendation = advisor.tune(workload)
    print(recommendation.summary())
    advisor.apply(recommendation)
    executor.refresh()

    after = sum(executor.execute(s.sql).metrics.cpu_ms
                for s in workload.selects)
    print(f"\n  measured read CPU: {before:.2f} ms -> {after:.2f} ms "
          f"({before / after:.1f}x)\n")

    print("=== 3. Inspect a plan ===")
    result = executor.execute(
        "SELECT o_region, sum(o_amount) t FROM orders GROUP BY o_region")
    print(result.plan.explain())
    print(f"\n  plan uses: {result.plan.index_kinds_at_leaves()}, "
          f"hybrid plan: {result.plan.is_hybrid()}")


if __name__ == "__main__":
    compare_designs()
    tune_hybrid()
