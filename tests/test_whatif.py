"""Tests for the what-if API: hypothetical indexes and configurations."""

import random

import pytest

from repro.core.errors import CatalogError, OptimizerError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.executor import Executor
from repro.optimizer.catalog import Catalog
from repro.optimizer.whatif import (
    Configuration,
    WhatIfSession,
    hypothetical_btree,
    hypothetical_columnstore,
)
from repro.storage.database import Database


def make_db(n=20000):
    rng = random.Random(1)
    db = Database()
    t = db.create_table(TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT),
        Column("v", INT),
    ]))
    t.bulk_load([(i, rng.randrange(100), rng.randrange(1000))
                 for i in range(n)])
    t.set_primary_btree(["a"])
    return db


class TestHypotheticalDescriptors:
    def test_btree_size_estimate(self):
        hypo = hypothetical_btree("t", ["b"], ["v"], n_rows=10000,
                                  column_bytes={"b": 4, "v": 4})
        assert hypo.hypothetical
        assert hypo.size_bytes == int(10000 * 16 * 1.02)

    def test_csi_requires_column_sizes(self):
        with pytest.raises(CatalogError):
            hypothetical_columnstore("t", ["a", "b"], {"a": 100})

    def test_csi_size_is_column_sum(self):
        hypo = hypothetical_columnstore("t", ["a", "b"],
                                        {"a": 100, "b": 50})
        assert hypo.size_bytes == 150


class TestConfiguration:
    def test_one_csi_per_table_enforced(self):
        c1 = hypothetical_columnstore("t", ["a"], {"a": 10})
        c2 = hypothetical_columnstore("t", ["b"], {"b": 10})
        heap = hypothetical_btree("t", ["a"], n_rows=10)
        heap.is_primary = True
        config = Configuration(indexes={"t": [heap, c1, c2]})
        with pytest.raises(CatalogError):
            config.validate()

    def test_exactly_one_primary(self):
        b1 = hypothetical_btree("t", ["a"], n_rows=10)
        config = Configuration(indexes={"t": [b1]})
        with pytest.raises(CatalogError):
            config.validate()


class TestWhatIfCosting:
    def test_hypothetical_index_lowers_cost(self):
        db = make_db()
        session = WhatIfSession(db)
        sql = "SELECT sum(v) FROM t WHERE b = 7"
        baseline = session.cost_query_current_design(sql)
        hypo = hypothetical_btree(
            "t", ["b"], ["v"], n_rows=20000,
            column_bytes={"b": 4, "v": 4})
        config = session.configuration_with([hypo])
        improved = session.cost_query(sql, config)
        assert improved.est_cost < baseline.est_cost
        assert improved.uses_hypothetical
        assert any(d.name == hypo.name
                   for d in improved.referenced_indexes())

    def test_hypothetical_csi_lowers_scan_cost(self):
        db = make_db()
        session = WhatIfSession(db)
        sql = "SELECT b, sum(v) FROM t GROUP BY b"
        baseline = session.cost_query_current_design(sql)
        catalog = session.catalog
        from repro.advisor.size_estimation import estimate_csi_size
        estimate = estimate_csi_size(db.table("t"), ["a", "b", "v"])
        hypo = hypothetical_columnstore("t", ["a", "b", "v"],
                                        estimate.column_sizes)
        improved = session.cost_query(sql, session.configuration_with([hypo]))
        assert improved.est_cost < baseline.est_cost

    def test_hypothetical_plan_cannot_execute(self):
        db = make_db()
        session = WhatIfSession(db)
        hypo = hypothetical_btree("t", ["b"], ["v"], n_rows=20000)
        planned = session.cost_query(
            "SELECT sum(v) FROM t WHERE b = 7",
            session.configuration_with([hypo]))
        assert planned.uses_hypothetical
        from repro.optimizer.materializer import Materializer
        with pytest.raises(OptimizerError):
            Materializer(db).materialize(planned)

    def test_estimated_cost_tracks_measured_cost(self):
        """The advisor's premise: what-if estimates and measured execution
        agree on *which* design is better."""
        db = make_db()
        session = WhatIfSession(db)
        sql_selective = "SELECT sum(v) FROM t WHERE a < 20"
        sql_scan = "SELECT b, sum(v) FROM t GROUP BY b"
        ex = Executor(db, catalog=session.catalog)
        for sql in (sql_selective, sql_scan):
            estimated = session.cost_query_current_design(sql).est_cost
            measured = ex.execute(sql).metrics.elapsed_ms
            # within an order of magnitude, and both rankings agree
            assert estimated > 0 and measured > 0
        est_ratio = (
            session.cost_query_current_design(sql_scan).est_cost
            / session.cost_query_current_design(sql_selective).est_cost)
        measured_ratio = (
            ex.execute(sql_scan).metrics.elapsed_ms
            / ex.execute(sql_selective).metrics.elapsed_ms)
        assert (est_ratio > 1) == (measured_ratio > 1)

    def test_configuration_with_drop_secondary(self):
        db = make_db()
        db.table("t").create_secondary_btree("ix_b", ["b"])
        session = WhatIfSession(db)
        config = session.configuration_with([], drop_secondary=True)
        assert all(d.is_primary for ds in config.indexes.values()
                   for d in ds)
