"""Regression tests for metrics/memory accounting fixes: memory-grant
leaks in Sort / HashJoin / HashAggregate, page-count ceiling division,
and the cold-UPDATE row re-fetch charge."""

import pytest

from repro.core.errors import ExecutionError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.executor import Executor
from repro.engine.expressions import ColumnRef
from repro.engine.metrics import ExecutionContext
from repro.engine.operators import (
    AggregateSpec,
    BTreeSeek,
    HashAggregate,
    HashJoin,
    Sort,
    SortKey,
)
from repro.engine.operators.base import PhysicalOperator
from repro.storage.database import Database
from repro.storage.table import Table


def make_table(n=1000, with_btree=True):
    schema = TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT, nullable=False),
        Column("s", varchar(8)),
    ])
    table = Table(schema)
    table.bulk_load([(i, i % 10, f"g{i % 3}") for i in range(n)])
    if with_btree:
        table.set_primary_btree(["a"])
    return table


def make_db(n=100):
    db = Database()
    schema = TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT, nullable=False),
    ])
    table = db.create_table(schema)
    table.bulk_load([(i, i % 10) for i in range(n)])
    table.set_primary_btree(["a"])
    return db


class _ExplodingScan(PhysicalOperator):
    """Yields its child's first batch, then raises."""

    def __init__(self, inner):
        super().__init__(children=(inner,))
        self.mode = inner.mode

    @property
    def output_columns(self):
        return self.child().output_columns

    def execute(self, ctx):
        for batch in self.child().execute(ctx):
            yield batch
            raise ExecutionError("boom after first batch")


class TestGrantLeaks:
    def test_sort_releases_grant_when_sort_key_is_invalid(self):
        table = make_table(500)
        sort = Sort(BTreeSeek(table, ["a", "b"]), [SortKey("nope")])
        ctx = ExecutionContext()
        with pytest.raises(ExecutionError):
            list(sort.execute(ctx))
        assert ctx.memory_in_use == 0

    def test_sort_normal_path_still_releases(self):
        table = make_table(500)
        sort = Sort(BTreeSeek(table, ["a", "b"]), [SortKey("b")])
        ctx = ExecutionContext()
        rows = sum(len(batch) for batch in sort.execute(ctx))
        assert rows == 500
        assert ctx.memory_in_use == 0

    def test_hash_join_releases_grant_on_early_close(self):
        # 10 build rows per key value x 5000 probe rows = 50k output
        # rows, so the first batch is yielded mid-probe with the build
        # reservation still held.
        build = make_table(100)
        probe = make_table(5000)
        join = HashJoin(
            BTreeSeek(build, ["a", "b"], prefix="l."),
            BTreeSeek(probe, ["a", "b"], prefix="r."),
            ["l.b"], ["r.b"],
        )
        ctx = ExecutionContext()
        gen = join.execute(ctx)
        first = next(gen)
        assert len(first) > 0
        assert ctx.memory_in_use > 0, "build side should hold a reservation"
        gen.close()
        assert ctx.memory_in_use == 0

    def test_hash_join_releases_grant_on_probe_error(self):
        build = make_table(100)
        probe = make_table(5000)
        join = HashJoin(
            BTreeSeek(build, ["a", "b"], prefix="l."),
            _ExplodingScan(BTreeSeek(probe, ["a", "b"], prefix="r.")),
            ["l.b"], ["r.b"],
        )
        ctx = ExecutionContext()
        with pytest.raises(ExecutionError):
            list(join.execute(ctx))
        assert ctx.memory_in_use == 0

    def test_hash_aggregate_releases_grant_on_child_error(self):
        table = make_table(1000)
        agg = HashAggregate(
            _ExplodingScan(BTreeSeek(table, ["a", "b"])),
            ["b"],
            [AggregateSpec("sum", ColumnRef("a"), "sum_a")],
        )
        ctx = ExecutionContext()
        with pytest.raises(ExecutionError):
            list(agg.execute(ctx))
        assert ctx.memory_in_use == 0


class TestPageCounts:
    def test_seq_read_exact_page_multiple_not_overcounted(self):
        ctx = ExecutionContext(cold=True)
        page = ctx.cost_model.page_bytes
        ctx.charge_seq_read(3 * page)
        assert ctx.metrics.pages_read == 3

    def test_btree_scan_read_exact_page_multiple_not_overcounted(self):
        ctx = ExecutionContext(cold=True)
        page = ctx.cost_model.page_bytes
        ctx.charge_btree_scan_read(2 * page)
        assert ctx.metrics.pages_read == 2

    def test_partial_pages_still_round_up(self):
        ctx = ExecutionContext(cold=True)
        page = ctx.cost_model.page_bytes
        ctx.charge_seq_read(3 * page + 1)
        assert ctx.metrics.pages_read == 4
        ctx.charge_btree_scan_read(10)
        assert ctx.metrics.pages_read == 5

    def test_hot_reads_charge_no_pages(self):
        ctx = ExecutionContext(cold=False)
        ctx.charge_seq_read(10 * ctx.cost_model.page_bytes)
        ctx.charge_btree_scan_read(10 * ctx.cost_model.page_bytes)
        assert ctx.metrics.pages_read == 0
        assert ctx.metrics.data_read_mb == 0.0


class TestColdUpdateRefetch:
    def test_cold_update_charges_one_read_per_target_row(self):
        # UPDATE and DELETE locate rids identically and charge one index
        # traversal per maintained row; the only pages_read difference is
        # the UPDATE's per-row re-fetch of the target row.
        update = Executor(make_db()).execute(
            "UPDATE t SET b = 99 WHERE a < 5", cold=True)
        delete = Executor(make_db()).execute(
            "DELETE FROM t WHERE a < 5", cold=True)
        assert update.rows_affected == 5
        assert delete.rows_affected == 5
        assert update.metrics.pages_read == delete.metrics.pages_read + 5

    def test_hot_update_unchanged(self):
        result = Executor(make_db()).execute(
            "UPDATE t SET b = 99 WHERE a < 5", cold=False)
        assert result.rows_affected == 5
        assert result.metrics.pages_read == 0
