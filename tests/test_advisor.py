"""Tests for the tuning advisor: size estimation, candidates, merging,
enumeration, and the end-to-end tune/apply loop."""

import random

import pytest

from repro.advisor.advisor import (
    MODE_BTREE_ONLY,
    MODE_CSI_ONLY,
    MODE_HYBRID,
    TuningAdvisor,
)
from repro.advisor.candidates import (
    CSI_MODE_REFERENCED,
    CandidateGenerator,
    CandidateSet,
    select_candidates_per_query,
)
from repro.advisor.enumeration import GreedyEnumerator
from repro.advisor.merging import can_merge_btrees, merge_candidates
from repro.advisor.size_estimation import (
    actual_csi_column_sizes,
    block_sample,
    estimate_blackbox,
    estimate_csi_size,
    estimate_run_modelling,
    gee_distinct_estimate,
)
from repro.advisor.workload import Workload, WorkloadStatement
from repro.core.errors import AdvisorError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, XML, varchar
from repro.engine.executor import Executor
from repro.optimizer.catalog import Catalog
from repro.optimizer.plans import KIND_BTREE, KIND_CSI
from repro.optimizer.whatif import WhatIfSession
from repro.storage.database import Database


def make_db(n=30000, seed=2):
    rng = random.Random(seed)
    db = Database()
    fact = db.create_table(TableSchema("fact", [
        Column("id", INT, nullable=False),
        Column("dim_id", INT, nullable=False),
        Column("nation", INT),   # low cardinality, like n_nationkey
        Column("v", INT),
        Column("tag", varchar(8)),
    ]))
    fact.bulk_load([
        (i, rng.randrange(500), rng.randrange(25), rng.randrange(100000),
         f"t{rng.randrange(5)}")
        for i in range(n)
    ])
    fact.set_primary_btree(["id"])
    dim = db.create_table(TableSchema("dim", [
        Column("id", INT, nullable=False),
        Column("label", varchar(16)),
    ]))
    dim.bulk_load([(i, f"lab{i}") for i in range(500)])
    dim.set_primary_btree(["id"])
    return db


class TestBlockSampling:
    def test_ratio_respected(self):
        db = make_db(10000)
        sample = block_sample(db.table("fact"), 0.1)
        assert 500 <= len(sample) <= 2000

    def test_full_ratio_returns_everything(self):
        db = make_db(1000)
        assert len(block_sample(db.table("fact"), 1.0)) == 1000

    def test_bad_ratio_rejected(self):
        db = make_db(100)
        with pytest.raises(AdvisorError):
            block_sample(db.table("fact"), 0.0)

    def test_blocks_are_contiguous(self):
        db = make_db(10000)
        sample = block_sample(db.table("fact"), 0.05, block_rows=64)
        ids = [row[0] for row in sample]
        # At least one run of 64 consecutive ids must exist.
        runs = sum(1 for i in range(1, len(ids)) if ids[i] == ids[i-1] + 1)
        assert runs > len(ids) * 0.9


class TestGeeEstimator:
    def test_exact_when_sample_is_everything(self):
        values = [1, 2, 3, 3, 3]
        assert gee_distinct_estimate(values, 5) == 3

    def test_scales_singletons(self):
        # Sample of 100 unique values from a much larger domain.
        values = list(range(100))
        estimate = gee_distinct_estimate(values, 10000)
        assert estimate == 1000  # sqrt(10000/100) * 100

    def test_low_cardinality_not_overestimated(self):
        # 25 distinct values, all repeated in the sample -> stay at 25.
        values = [i % 25 for i in range(500)]
        assert gee_distinct_estimate(values, 100000) == 25

    def test_linear_scaling_variant(self):
        values = list(range(100))
        estimate = gee_distinct_estimate(values, 10000, scaling="linear")
        assert estimate == 10000

    def test_unknown_scaling_rejected(self):
        with pytest.raises(AdvisorError):
            gee_distinct_estimate([1], 10, scaling="bogus")


class TestSizeEstimation:
    def test_both_estimators_within_factor_of_truth(self):
        db = make_db(20000)
        table = db.table("fact")
        columns = ["dim_id", "nation", "v", "tag"]
        truth = actual_csi_column_sizes(table, columns)
        for method in ("blackbox", "run_modelling"):
            estimate = estimate_csi_size(table, columns, method=method,
                                         sampling_ratio=0.1)
            for column in columns:
                ratio = (estimate.column_sizes[column] + 1) / (
                    truth[column] + 1)
                assert 0.05 < ratio < 20.0, (
                    f"{method} {column}: {ratio}")

    def test_run_modelling_beats_blackbox_on_low_cardinality(self):
        """The paper's n_nationkey argument: black-box linear scaling
        overestimates columns with few distinct values."""
        db = make_db(30000)
        table = db.table("fact")
        truth = actual_csi_column_sizes(table, ["nation"])["nation"]
        blackbox = estimate_blackbox(
            table, ["nation"], sampling_ratio=0.05).column_sizes["nation"]
        modelled = estimate_run_modelling(
            table, ["nation"], sampling_ratio=0.05).column_sizes["nation"]
        blackbox_error = abs(blackbox - truth) / truth
        modelled_error = abs(modelled - truth) / truth
        assert modelled_error < blackbox_error

    def test_unknown_method_rejected(self):
        db = make_db(100)
        with pytest.raises(AdvisorError):
            estimate_csi_size(db.table("fact"), ["v"], method="nope")


class TestWorkload:
    def test_binds_and_classifies(self):
        db = make_db(1000)
        wl = Workload.from_sql([
            "SELECT sum(v) FROM fact WHERE id < 10",
            ("UPDATE fact SET v = 0 WHERE id = 1", 3.0),
        ], db)
        assert len(wl.selects) == 1
        assert len(wl.updates) == 1
        assert wl.total_weight == 4.0
        assert wl.referenced_tables() == ["fact"]

    def test_empty_workload_rejected(self):
        db = make_db(100)
        with pytest.raises(AdvisorError):
            Workload([], db)

    def test_bad_weight_rejected(self):
        db = make_db(100)
        with pytest.raises(AdvisorError):
            Workload([WorkloadStatement("SELECT v FROM fact", weight=0)],
                     db)


class TestCandidates:
    def test_btree_candidate_from_predicate(self):
        db = make_db(5000)
        catalog = Catalog(db)
        generator = CandidateGenerator(catalog,
                                       consider_columnstores=False)
        wl = Workload.from_sql(
            ["SELECT sum(v) FROM fact WHERE dim_id = 5"], db)
        pool = CandidateSet()
        generated = generator.candidates_for_query(
            wl.statements[0].bound, pool)
        assert any(d.key_columns == ["dim_id"] for d in generated)
        seek = [d for d in generated if d.key_columns == ["dim_id"]][0]
        assert "v" in seek.included_columns

    def test_csi_candidates_primary_and_secondary(self):
        db = make_db(5000)
        generator = CandidateGenerator(Catalog(db), consider_btrees=False)
        wl = Workload.from_sql(["SELECT sum(v) FROM fact"], db)
        pool = CandidateSet()
        generated = generator.candidates_for_query(
            wl.statements[0].bound, pool)
        kinds = {(d.kind, d.is_primary) for d in generated}
        assert (KIND_CSI, False) in kinds
        assert (KIND_CSI, True) in kinds

    def test_xml_table_gets_no_primary_csi_candidate(self):
        db = make_db(1000)
        t = db.create_table(TableSchema("docs", [
            Column("id", INT, nullable=False),
            Column("payload", XML),
        ]))
        t.bulk_load([(i, f"<x>{i}</x>") for i in range(100)])
        generator = CandidateGenerator(Catalog(db), consider_btrees=False)
        wl = Workload.from_sql(["SELECT id FROM docs WHERE id < 5"], db)
        pool = CandidateSet()
        generated = generator.candidates_for_query(
            wl.statements[0].bound, pool)
        assert all(not d.is_primary for d in generated)
        # Secondary CSI exists but excludes the XML column.
        csis = [d for d in generated if d.kind == KIND_CSI]
        assert csis and "payload" not in csis[0].csi_columns

    def test_referenced_mode_narrows_csi(self):
        db = make_db(1000)
        generator = CandidateGenerator(Catalog(db), consider_btrees=False,
                                       csi_mode=CSI_MODE_REFERENCED,
                                       consider_primary_csi=False)
        wl = Workload.from_sql(["SELECT sum(v) FROM fact WHERE dim_id = 1"],
                               db)
        pool = CandidateSet()
        generated = generator.candidates_for_query(
            wl.statements[0].bound, pool)
        csis = [d for d in generated if d.kind == KIND_CSI]
        assert sorted(csis[0].csi_columns) == ["dim_id", "v"]

    def test_pool_deduplicates(self):
        db = make_db(1000)
        generator = CandidateGenerator(Catalog(db))
        wl = Workload.from_sql([
            "SELECT sum(v) FROM fact WHERE dim_id = 5",
            "SELECT sum(v) FROM fact WHERE dim_id = 9",
        ], db)
        pool = CandidateSet()
        for statement in wl.statements:
            generator.candidates_for_query(statement.bound, pool)
        signatures = [(tuple(d.key_columns),
                       tuple(sorted(d.included_columns)))
                      for d in pool.btrees.values()]
        assert len(signatures) == len(set(signatures))

    def test_winners_are_referenced_hypotheticals(self):
        db = make_db(20000)
        catalog = Catalog(db)
        session = WhatIfSession(db, catalog)
        generator = CandidateGenerator(catalog)
        wl = Workload.from_sql(
            ["SELECT sum(v) FROM fact WHERE dim_id = 5"], db)
        pool, winners = select_candidates_per_query(wl, generator, session)
        assert winners[0]
        assert all(d.hypothetical for d in winners[0])


class TestMerging:
    def test_can_merge_prefix_keys(self):
        from repro.optimizer.whatif import hypothetical_btree
        a = hypothetical_btree("t", ["x"], ["v"], n_rows=10)
        b = hypothetical_btree("t", ["x", "y"], ["w"], n_rows=10)
        assert can_merge_btrees(a, b)

    def test_cannot_merge_across_tables_or_kinds(self):
        from repro.optimizer.whatif import (
            hypothetical_btree,
            hypothetical_columnstore,
        )
        a = hypothetical_btree("t1", ["x"], n_rows=10)
        b = hypothetical_btree("t2", ["x"], n_rows=10)
        assert not can_merge_btrees(a, b)
        c = hypothetical_columnstore("t1", ["x"], {"x": 10})
        assert not can_merge_btrees(a, c)

    def test_merge_produces_union_includes(self):
        db = make_db(1000)
        catalog = Catalog(db)
        pool = CandidateSet()
        from repro.optimizer.whatif import hypothetical_btree
        pool.add(hypothetical_btree("fact", ["dim_id"], ["v"], n_rows=1000))
        pool.add(hypothetical_btree("fact", ["dim_id"], ["tag"],
                                    n_rows=1000))
        merged = merge_candidates(pool, catalog)
        assert len(merged) == 1
        assert sorted(merged[0].included_columns) == ["tag", "v"]


class TestEndToEndTuning:
    def scan_heavy_workload(self, db):
        return Workload.from_sql([
            "SELECT nation, sum(v) FROM fact GROUP BY nation",
            "SELECT dim_id, sum(v) FROM fact GROUP BY dim_id",
            "SELECT sum(v) FROM fact WHERE nation = 3",
        ], db)

    def seek_heavy_workload(self, db):
        return Workload.from_sql([
            "SELECT sum(v) FROM fact WHERE id = 17",
            "SELECT sum(v) FROM fact WHERE dim_id = 5",
            ("UPDATE TOP (5) fact SET v = v + 1 WHERE id < 100", 50.0),
        ], db)

    def test_scan_heavy_gets_columnstore(self):
        db = make_db()
        advisor = TuningAdvisor(db)
        rec = advisor.tune(self.scan_heavy_workload(db))
        kinds = {d.kind for d in rec.chosen}
        assert KIND_CSI in kinds
        assert rec.estimated_cost < rec.base_cost

    def test_seek_heavy_stays_btree(self):
        db = make_db()
        advisor = TuningAdvisor(db)
        rec = advisor.tune(self.seek_heavy_workload(db))
        assert all(d.kind == KIND_BTREE for d in rec.chosen)

    def test_btree_only_mode_never_recommends_csi(self):
        db = make_db()
        advisor = TuningAdvisor(db)
        rec = advisor.tune(self.scan_heavy_workload(db),
                           mode=MODE_BTREE_ONLY)
        assert all(d.kind == KIND_BTREE for d in rec.chosen)

    def test_csi_only_mode(self):
        db = make_db()
        advisor = TuningAdvisor(db)
        rec = advisor.tune(self.scan_heavy_workload(db), mode=MODE_CSI_ONLY)
        assert rec.chosen
        assert all(d.kind == KIND_CSI for d in rec.chosen)

    def test_storage_budget_respected(self):
        db = make_db()
        advisor = TuningAdvisor(db)
        unbudgeted = advisor.tune(self.scan_heavy_workload(db))
        budget = max(1, unbudgeted.storage_bytes // 4)
        rec = advisor.tune(self.scan_heavy_workload(db),
                           storage_budget_bytes=budget)
        assert rec.storage_bytes <= budget or not rec.chosen

    def test_apply_builds_real_indexes_and_speeds_up(self):
        db = make_db()
        advisor = TuningAdvisor(db)
        workload = self.scan_heavy_workload(db)
        ex = Executor(db, catalog=advisor.catalog)
        # Compare CPU time, like the paper's Figure 9: elapsed time can
        # mask work differences behind parallelism.
        before = sum(
            ex.execute(s.sql).metrics.cpu_ms
            for s in workload.statements)
        rec = advisor.tune(workload)
        created = advisor.apply(rec)
        assert created
        ex.refresh()
        after = sum(
            ex.execute(s.sql).metrics.cpu_ms
            for s in workload.statements)
        assert after < before

    def test_update_heavy_workload_rejects_primary_csi(self):
        db = make_db()
        advisor = TuningAdvisor(db)
        wl = Workload.from_sql([
            ("UPDATE TOP (100) fact SET v = v + 1 WHERE id < 5000", 100.0),
            "SELECT sum(v) FROM fact WHERE id < 100",
        ], db)
        rec = advisor.tune(wl)
        assert not any(d.kind == KIND_CSI and d.is_primary
                       for d in rec.chosen)

    def test_recommendation_ddl_renders(self):
        db = make_db()
        advisor = TuningAdvisor(db)
        rec = advisor.tune(self.scan_heavy_workload(db))
        ddl = rec.ddl()
        assert all(statement.startswith("CREATE") for statement in ddl)
        assert "COLUMNSTORE" in " ".join(ddl)
