"""Property-based tests (hypothesis) on core data structures and
invariants: B+ tree ordering, RLE round-trips, segment elimination
soundness, sargable-range extraction, the lock manager, and
SQL-vs-oracle query equivalence."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.executor import Executor
from repro.engine.expressions import (
    And,
    Between,
    ColumnRef,
    Comparison,
    Literal,
    eval_batch,
    eval_row,
    extract_column_ranges,
)
from repro.engine.batch import Batch
from repro.storage.btree import BPlusTree
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.compression import rle_runs
from repro.storage.database import Database
from repro.storage.table import Table

slow = settings(max_examples=25,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


# ----------------------------------------------------------- B+ tree
@slow
@given(st.lists(st.integers(min_value=-10_000, max_value=10_000),
                unique=True, min_size=0, max_size=300))
def test_btree_insert_preserves_sorted_iteration(keys):
    tree = BPlusTree(leaf_capacity=8, internal_capacity=6)
    for key in keys:
        tree.insert((key,), (key,))
    assert [k[0] for k, _ in tree.items()] == sorted(keys)
    tree.check_invariants()


@slow
@given(st.lists(st.integers(min_value=0, max_value=5_000), unique=True,
                min_size=1, max_size=200),
       st.data())
def test_btree_delete_subset_keeps_rest(keys, data):
    tree = BPlusTree(leaf_capacity=6, internal_capacity=5)
    for key in keys:
        tree.insert((key,), (key,))
    to_delete = data.draw(st.sets(st.sampled_from(keys),
                                  max_size=len(keys)))
    for key in to_delete:
        tree.delete((key,))
    remaining = sorted(set(keys) - set(to_delete))
    assert [k[0] for k, _ in tree.items()] == remaining
    tree.check_invariants()


@slow
@given(st.lists(st.integers(min_value=0, max_value=1_000), unique=True,
                min_size=1, max_size=200),
       st.integers(min_value=-10, max_value=1_010),
       st.integers(min_value=-10, max_value=1_010))
def test_btree_range_scan_matches_filter(keys, low, high):
    tree = BPlusTree(leaf_capacity=8, internal_capacity=6)
    for key in keys:
        tree.insert((key,), (key,))
    got = [k[0] for k, _ in tree.scan_range((low,), (high,))]
    expected = sorted(k for k in keys if low <= k <= high)
    assert got == expected


# ----------------------------------------------------------- RLE
@slow
@given(st.lists(st.integers(min_value=0, max_value=20), min_size=0,
                max_size=500))
def test_rle_roundtrip(values):
    arr = np.array(values, dtype=np.int64)
    run_values, run_lengths = rle_runs(arr)
    assert np.array_equal(np.repeat(run_values, run_lengths), arr)
    if len(values):
        assert int(run_lengths.sum()) == len(values)


# ------------------------------------------------- segment elimination
@slow
@given(st.lists(st.integers(min_value=0, max_value=100_000),
                min_size=64, max_size=400),
       st.integers(min_value=0, max_value=100_000),
       st.integers(min_value=0, max_value=100_000))
def test_segment_elimination_never_loses_rows(values, bound_a, bound_b):
    low, high = sorted((bound_a, bound_b))
    schema = TableSchema("t", [Column("a", INT, nullable=False)])
    rows = [(i, (v,)) for i, v in enumerate(values)]
    index = ColumnstoreIndex.build("csi", schema, rows, is_primary=True,
                                   rowgroup_size=64)
    survivors = []
    for batch in index.scan(["a"], elimination_ranges={"a": (low, high)}):
        survivors.extend(batch.column("a").tolist())
    expected = [v for v in values if low <= v <= high]
    # Elimination is a may-contain filter: every qualifying value must
    # survive (exact filtering happens above the scan).
    from collections import Counter
    surviving_counts = Counter(survivors)
    for value, count in Counter(expected).items():
        assert surviving_counts[value] >= count


# ------------------------------------------------------ sargable ranges
range_pred = st.tuples(
    st.sampled_from(["<", "<=", ">", ">=", "="]),
    st.integers(min_value=-100, max_value=100),
)


@slow
@given(st.lists(range_pred, min_size=1, max_size=4),
       st.lists(st.integers(min_value=-120, max_value=120), min_size=1,
                max_size=50))
def test_extracted_range_is_sound(predicates, values):
    """Any value satisfying all predicates must fall inside the
    extracted range."""
    conjuncts = [Comparison(op, ColumnRef("a"), Literal(bound))
                 for op, bound in predicates]
    expr = And(tuple(conjuncts)) if len(conjuncts) > 1 else conjuncts[0]
    ranges = extract_column_ranges(expr)
    column_range = ranges.get("a")
    assert column_range is not None
    for value in values:
        satisfies = eval_row(expr, (value,), {"a": 0})
        if satisfies:
            if column_range.low is not None:
                assert value >= column_range.low
            if column_range.high is not None:
                assert value <= column_range.high


# --------------------------------------------- row/batch eval agreement
@slow
@given(st.lists(st.integers(min_value=-50, max_value=50), min_size=1,
                max_size=60),
       st.integers(min_value=-60, max_value=60),
       st.integers(min_value=-60, max_value=60))
def test_row_and_batch_eval_agree(values, low, high):
    expr = Between(ColumnRef("a"), Literal(min(low, high)),
                   Literal(max(low, high)))
    batch = Batch({"a": np.array(values, dtype=np.int64)})
    batch_mask = eval_batch(expr, batch).tolist()
    row_mask = [bool(eval_row(expr, (v,), {"a": 0})) for v in values]
    assert batch_mask == row_mask


# -------------------------------------------------------- SQL vs oracle
@slow
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=30),
                          st.integers(min_value=0, max_value=1000)),
                min_size=1, max_size=120),
       st.integers(min_value=0, max_value=30))
def test_sql_aggregate_matches_python_oracle(rows, threshold):
    db = Database()
    table = db.create_table(TableSchema("t", [
        Column("k", INT, nullable=False),
        Column("v", INT, nullable=False),
    ]))
    table.bulk_load(rows)
    executor = Executor(db)
    result = executor.execute(
        f"SELECT k, sum(v) s FROM t WHERE k <= {threshold} "
        f"GROUP BY k ORDER BY k")
    expected = {}
    for k, v in rows:
        if k <= threshold:
            expected[k] = expected.get(k, 0) + v
    got = {row[0]: row[1] for row in result.rows}
    assert got == expected
    # And the same result under a columnstore design.
    db2 = Database()
    table2 = db2.create_table(TableSchema("t", [
        Column("k", INT, nullable=False),
        Column("v", INT, nullable=False),
    ]))
    table2.bulk_load(rows)
    table2.set_primary_columnstore(rowgroup_size=64)
    result2 = Executor(db2).execute(
        f"SELECT k, sum(v) s FROM t WHERE k <= {threshold} "
        f"GROUP BY k ORDER BY k")
    assert result2.rows == result.rows


# ------------------------------------------- interleaved DML + checker
def _dml_table(design):
    from repro.core.types import varchar

    db = Database()
    table = db.create_table(TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT, nullable=False),
        Column("s", varchar(8), nullable=False),
    ]))
    table.bulk_load([(i, i % 10, f"s{i % 3}") for i in range(120)])
    if design == "csi_primary":
        table.set_primary_columnstore(rowgroup_size=64)
        table.create_secondary_btree("ix_b", ["b"], included_columns=["s"])
    else:
        table.set_primary_btree(["a"])
        table.create_secondary_columnstore("csi", rowgroup_size=64)
        table.create_secondary_btree("ix_b", ["b"])
    return db, table


dml_step = st.tuples(
    st.sampled_from(["insert", "delete", "update", "update_batch",
                     "reorganize", "rebuild"]),
    st.integers(min_value=0, max_value=10_000),
)


@slow
@given(st.sampled_from(["csi_primary", "btree_primary"]),
       st.lists(dml_step, min_size=1, max_size=40))
def test_interleaved_dml_keeps_every_index_consistent(design, steps):
    """After every DML / maintenance step, each physical structure must
    agree exactly with the table's logical rows (CHECKDB-style)."""
    from repro.storage.checker import check_table

    db, table = _dml_table(design)
    next_a = 100_000
    for i, (op, pick) in enumerate(steps):
        rids = sorted(table._rows)
        if op == "insert" or not rids:
            table.insert_row((next_a + i, pick % 10, "ins"))
        elif op == "delete":
            table.delete_rid(rids[pick % len(rids)])
        elif op == "update":
            rid = rids[pick % len(rids)]
            table.update_rid(rid, (200_000 + i, pick % 10, "upd"))
        elif op == "update_batch":
            chosen = {rids[(pick + j) % len(rids)] for j in range(3)}
            table.update_rids([
                (rid, (300_000 + i * 10 + j, (pick + j) % 10, "ub"))
                for j, rid in enumerate(sorted(chosen))])
        elif op == "reorganize":
            for index in table.all_indexes:
                if index.kind == "csi":
                    index.reorganize()
        else:
            for index in table.all_indexes:
                if index.kind == "csi":
                    index.rebuild()
        result = check_table(table)
        assert result.ok, f"step {i} ({op}): {result.summary()}"


# ----------------------------------------------------------- locks
@slow
@given(st.lists(st.tuples(st.integers(min_value=0, max_value=4),
                          st.booleans()),
                min_size=1, max_size=30))
def test_lock_manager_exclusivity_invariant(requests):
    """At no point may an X holder coexist with any other holder."""
    from repro.engine.locks import LOCK_S, LOCK_X, LockManager
    manager = LockManager()
    held = {}
    for owner, (resource, exclusive) in enumerate(requests):
        mode = LOCK_X if exclusive else LOCK_S
        granted = manager.try_acquire_all(owner, [((resource,), mode)])
        if granted:
            held.setdefault(resource, []).append((owner, mode))
        holders = manager.holders_of((resource,))
        modes = list(holders.values())
        if LOCK_X in modes:
            assert len(modes) == 1
