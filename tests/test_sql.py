"""Tests for the SQL lexer, parser, and binder."""

import pytest

from repro.core.errors import SqlError
from repro.core.schema import Column, TableSchema
from repro.core.types import DATE, INT, date_to_int, decimal, varchar
from repro.engine.expressions import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Literal,
    Or,
)
from repro.sql.ast import AggregateCall, SelectStmt, UpdateStmt
from repro.sql.binder import Binder, BoundSelect, BoundUpdate
from repro.sql.lexer import tokenize
from repro.sql.parser import parse
from repro.storage.database import Database

import datetime


class TestLexer:
    def test_keywords_case_insensitive(self):
        tokens = tokenize("SeLeCt FROM where")
        assert [t.value for t in tokens[:-1]] == ["select", "from", "where"]

    def test_numbers(self):
        tokens = tokenize("1 2.5 0.01")
        assert [t.value for t in tokens[:-1]] == [1, 2.5, 0.01]

    def test_string_with_escape(self):
        tokens = tokenize("'it''s'")
        assert tokens[0].value == "it's"

    def test_unterminated_string(self):
        with pytest.raises(SqlError):
            tokenize("'oops")

    def test_operators(self):
        tokens = tokenize("<= >= != <> = < >")
        assert [t.value for t in tokens[:-1]] == [
            "<=", ">=", "!=", "!=", "=", "<", ">"]

    def test_qualified_name_dot(self):
        types = [t.type for t in tokenize("t.col")]
        assert types[:3] == ["IDENT", "DOT", "IDENT"]

    def test_comment_skipped(self):
        tokens = tokenize("select -- comment here\n 1")
        assert [t.value for t in tokens[:-1]] == ["select", 1]

    def test_unknown_character(self):
        with pytest.raises(SqlError):
            tokenize("select @x")


class TestParser:
    def test_simple_select(self):
        stmt = parse("SELECT a, b FROM t")
        assert isinstance(stmt, SelectStmt)
        assert len(stmt.items) == 2
        assert stmt.from_table.table == "t"

    def test_select_star(self):
        stmt = parse("SELECT * FROM t")
        from repro.sql.ast import Star
        assert isinstance(stmt.items[0].expr, Star)

    def test_aggregates(self):
        stmt = parse("SELECT sum(a), count(*), avg(b) FROM t")
        funcs = [item.expr.func for item in stmt.items]
        assert funcs == ["sum", "count", "avg"]
        assert stmt.items[1].expr.argument is None

    def test_sum_star_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT sum(*) FROM t")

    def test_where_precedence(self):
        stmt = parse("SELECT a FROM t WHERE a < 1 OR b > 2 AND c = 3")
        assert isinstance(stmt.where, Or)
        assert isinstance(stmt.where.operands[1], And)

    def test_between_and_in(self):
        stmt = parse("SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2)")
        conj = stmt.where.operands
        assert isinstance(conj[0], Between)
        assert isinstance(conj[1], InList)
        assert conj[1].values == (1, 2)

    def test_arithmetic_precedence(self):
        stmt = parse("SELECT sum(a + b * 2) FROM t")
        expr = stmt.items[0].expr.argument
        assert isinstance(expr, Arithmetic) and expr.op == "+"
        assert isinstance(expr.right, Arithmetic) and expr.right.op == "*"

    def test_parenthesized(self):
        stmt = parse("SELECT sum(e * (1 - d)) FROM t")
        expr = stmt.items[0].expr.argument
        assert expr.op == "*"
        assert expr.right.op == "-"

    def test_unary_minus_folds(self):
        stmt = parse("SELECT a FROM t WHERE a > -5")
        assert stmt.where.right == Literal(-5)

    def test_group_order_limit(self):
        stmt = parse("SELECT a, sum(b) FROM t GROUP BY a "
                     "ORDER BY a DESC LIMIT 10")
        assert len(stmt.group_by) == 1
        assert stmt.order_by[0].descending
        assert stmt.top == 10

    def test_top(self):
        stmt = parse("SELECT TOP (5) a FROM t")
        assert stmt.top == 5
        stmt2 = parse("SELECT TOP 5 a FROM t")
        assert stmt2.top == 5

    def test_joins(self):
        stmt = parse("SELECT a FROM t1 x JOIN t2 y ON x.a = y.b "
                     "INNER JOIN t3 z ON y.c = z.d")
        assert len(stmt.joins) == 2
        assert stmt.joins[0].table.alias == "y"

    def test_alias_forms(self):
        stmt = parse("SELECT a AS x, b y FROM t AS q")
        assert stmt.items[0].alias == "x"
        assert stmt.items[1].alias == "y"
        assert stmt.from_table.alias == "q"

    def test_date_literal(self):
        stmt = parse("SELECT a FROM t WHERE d = DATE '1995-06-17'")
        expected = date_to_int(datetime.date(1995, 6, 17))
        assert stmt.where.right == Literal(expected)

    def test_dateadd(self):
        stmt = parse("SELECT a FROM t WHERE d < DATEADD(day, 7, DATE '1995-01-01')")
        expr = stmt.where.right
        assert isinstance(expr, Arithmetic) and expr.op == "+"

    def test_update_compound_assignment(self):
        stmt = parse("UPDATE t SET a += 1 WHERE b = 2")
        assert isinstance(stmt, UpdateStmt)
        value = stmt.assignments[0].value
        assert isinstance(value, Arithmetic) and value.op == "+"

    def test_update_top(self):
        stmt = parse("UPDATE TOP (10) t SET a = 1")
        assert stmt.top == 10

    def test_delete(self):
        stmt = parse("DELETE FROM t WHERE a = 1")
        assert stmt.table.table == "t"

    def test_insert(self):
        stmt = parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')")
        assert stmt.columns == ["a", "b"]
        assert len(stmt.rows) == 2

    def test_params(self):
        stmt = parse("SELECT a FROM t WHERE a < ? AND b IN (?, ?)",
                     [10, 1, 2])
        conj = stmt.where.operands
        assert conj[0].right == Literal(10)
        assert conj[1].values == (1, 2)

    def test_missing_params_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t WHERE a < ?")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SqlError):
            parse("SELECT a FROM t garbage extra tokens ,")

    def test_empty_statement_rejected(self):
        with pytest.raises(SqlError):
            parse("")


def make_db():
    db = Database()
    lineitem = db.create_table(TableSchema("lineitem", [
        Column("l_orderkey", INT, nullable=False),
        Column("l_quantity", decimal(2)),
        Column("l_shipdate", DATE),
        Column("l_comment", varchar(44)),
    ]))
    lineitem.bulk_load([
        (i, float(i % 50), 9000 + (i % 100), f"c{i}") for i in range(100)
    ])
    orders = db.create_table(TableSchema("orders", [
        Column("o_orderkey", INT, nullable=False),
        Column("o_custkey", INT),
    ]))
    orders.bulk_load([(i, i % 10) for i in range(50)])
    return db


class TestBinder:
    def bind(self, sql, params=()):
        db = make_db()
        return Binder(db).bind(parse(sql, params)), db

    def test_qualifies_bare_columns(self):
        bound, _ = self.bind("SELECT l_quantity FROM lineitem "
                             "WHERE l_orderkey < 10")
        assert bound.outputs[0].source == "lineitem.l_quantity"
        assert "lineitem.l_orderkey" in str(bound.where)

    def test_ambiguous_column_rejected(self):
        db = make_db()
        with pytest.raises(SqlError):
            # both tables joined; fabricate ambiguity via same column name
            Binder(db).bind(parse(
                "SELECT l_quantity FROM lineitem JOIN orders "
                "ON l_orderkey = o_orderkey WHERE zzz = 1"))

    def test_unknown_table_rejected(self):
        db = make_db()
        with pytest.raises(Exception):
            Binder(db).bind(parse("SELECT a FROM missing"))

    def test_unknown_column_rejected(self):
        db = make_db()
        with pytest.raises(SqlError):
            Binder(db).bind(parse("SELECT nope FROM lineitem"))

    def test_star_expansion(self):
        bound, _ = self.bind("SELECT * FROM orders")
        assert [o.name for o in bound.outputs] == ["o_orderkey", "o_custkey"]

    def test_join_edges_extracted(self):
        bound, _ = self.bind(
            "SELECT l_quantity FROM lineitem l JOIN orders o "
            "ON l.l_orderkey = o.o_orderkey")
        assert len(bound.join_edges) == 1
        edge = bound.join_edges[0]
        assert {edge.left_qualified, edge.right_qualified} == {
            "l.l_orderkey", "o.o_orderkey"}

    def test_where_join_condition_becomes_edge(self):
        bound, _ = self.bind(
            "SELECT l_quantity FROM lineitem l JOIN orders o "
            "ON l.l_orderkey = o.o_orderkey "
            "WHERE l.l_orderkey = o.o_orderkey")
        assert len(bound.join_edges) == 2  # one from ON, one from WHERE

    def test_date_string_coerced(self):
        bound, _ = self.bind(
            "SELECT l_quantity FROM lineitem WHERE l_shipdate = '1994-09-01'")
        expected = date_to_int(datetime.date(1994, 9, 1))
        assert f"{expected}" in str(bound.where)

    def test_dateadd_folded_to_literal(self):
        bound, _ = self.bind(
            "SELECT sum(l_quantity) FROM lineitem WHERE l_shipdate "
            "BETWEEN '1994-09-01' AND DATEADD(day, 1, '1994-09-01')")
        from repro.engine.expressions import extract_column_ranges
        ranges = extract_column_ranges(bound.where)
        r = ranges["lineitem.l_shipdate"]
        assert r.high - r.low == 1

    def test_aggregate_classification(self):
        bound, _ = self.bind(
            "SELECT o_custkey, count(*) c FROM orders GROUP BY o_custkey")
        assert bound.is_aggregate
        assert bound.group_by == ["orders.o_custkey"]
        assert bound.aggregates[0].func == "count"
        assert bound.outputs[1].name == "c"

    def test_non_grouped_column_rejected(self):
        db = make_db()
        with pytest.raises(SqlError):
            Binder(db).bind(parse(
                "SELECT o_orderkey, count(*) FROM orders GROUP BY o_custkey"))

    def test_order_by_alias_resolves(self):
        bound, _ = self.bind(
            "SELECT o_custkey, count(*) AS c FROM orders "
            "GROUP BY o_custkey ORDER BY o_custkey")
        assert bound.order_by[0][0] == "orders.o_custkey"

    def test_referenced_columns(self):
        bound, _ = self.bind(
            "SELECT sum(l_quantity) FROM lineitem WHERE l_shipdate > "
            "'1994-01-01'")
        refs = bound.referenced_columns("lineitem")
        assert refs == ["l_quantity", "l_shipdate"]

    def test_bind_update(self):
        bound, _ = self.bind(
            "UPDATE TOP (5) lineitem SET l_quantity += 1 "
            "WHERE l_shipdate = '1994-09-01'")
        assert isinstance(bound, BoundUpdate)
        assert bound.top == 5
        assert bound.assignments[0][0] == "l_quantity"

    def test_bind_insert_with_date(self):
        bound, _ = self.bind(
            "INSERT INTO lineitem VALUES (999, 1.0, '1996-01-01', 'x')")
        from repro.sql.binder import BoundInsert
        assert isinstance(bound, BoundInsert)
        expected = date_to_int(datetime.date(1996, 1, 1))
        assert bound.rows[0][2] == expected

    def test_insert_arity_mismatch(self):
        db = make_db()
        with pytest.raises(SqlError):
            Binder(db).bind(parse("INSERT INTO orders (o_orderkey) "
                                  "VALUES (1, 2)"))
