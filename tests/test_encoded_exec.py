"""Differential tests for dictionary-coded (late materialization)
execution: every query must return identical rows AND identical modeled
metrics with the encoded path on and off — the encoded path changes real
wall-clock only. Also unit-tests the code-space primitives."""

import dataclasses

import numpy as np
import pytest

from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.encoded import (
    EncodedColumn,
    compare_codes,
    concat_encoded,
    encoded_execution_enabled,
    isin_codes,
    set_encoded_execution,
)
from repro.engine.executor import Executor
from repro.storage.compression import (
    Dictionary,
    ENCODING_RLE,
    compress_rowgroup,
)
from repro.storage.database import Database

# Counters expected to differ between the two modes by design.
_MODE_COUNTERS = (
    "columns_late_materialized", "code_path_hits", "code_path_fallbacks")


def schema():
    return TableSchema("t", [
        Column("id", INT, nullable=False),
        Column("city", varchar(16)),       # dict-coded strings, with NULLs
        Column("region", varchar(8)),      # long runs -> RLE + dictionary
        Column("qty", INT),
    ])


CITIES = ["athens", "berlin", "cairo", None, "delhi", "evora"]
REGIONS = ["north", "south"]


def rows(n=4000):
    return [
        (i, CITIES[i % len(CITIES)], REGIONS[(i * 2) // n], i % 50)
        for i in range(n)
    ]


def make_db(n=4000, cache=False):
    db = Database(segment_cache_enabled=True) if cache else Database()
    table = db.create_table(schema())
    table.bulk_load(rows(n))
    table.set_primary_columnstore(rowgroup_size=1024)
    return db


def make_join_db():
    db = make_db()
    dim = db.create_table(TableSchema("d", [
        Column("name", varchar(16)),
        Column("pop", INT, nullable=False),
    ]))
    dim.bulk_load([("athens", 1), ("cairo", 3), ("delhi", 4), ("zzz", 9)])
    return db


def run_query(db_factory, sql, enabled):
    prev = set_encoded_execution(enabled)
    try:
        return Executor(db_factory()).execute(sql)
    finally:
        set_encoded_execution(prev)


def metrics_dict(result):
    d = dataclasses.asdict(result.metrics)
    for name in _MODE_COUNTERS:
        d.pop(name)
    return d


def assert_differential(sql, db_factory=make_db):
    """Encoded and decoded runs agree on rows and modeled metrics."""
    off = run_query(db_factory, sql, enabled=False)
    on = run_query(db_factory, sql, enabled=True)
    assert on.rows == off.rows
    assert on.columns == off.columns
    assert metrics_dict(on) == metrics_dict(off)
    assert off.metrics.code_path_hits == 0
    assert off.metrics.columns_late_materialized == 0
    return on, off


class TestEncodedColumnUnit:
    def make(self):
        dictionary = Dictionary.build(
            np.array([None, "a", "b", "a", "c"], dtype=object))
        codes = dictionary.encode(
            np.array(["a", "b", None, "c", "a"], dtype=object))
        return EncodedColumn(codes, dictionary)

    def test_dtype_reports_object(self):
        assert self.make().dtype == np.dtype(object)

    def test_materialize_roundtrip(self):
        col = self.make()
        assert col.materialize().tolist() == ["a", "b", None, "c", "a"]
        assert list(col) == ["a", "b", None, "c", "a"]
        assert col[2] is None and col[3] == "c"

    def test_mask_and_slice_stay_encoded(self):
        col = self.make()
        masked = col[np.array([True, False, True, False, True])]
        assert isinstance(masked, EncodedColumn)
        assert masked.materialize().tolist() == ["a", None, "a"]
        assert isinstance(col[1:3], EncodedColumn)

    def test_null_sorts_first_in_dictionary(self):
        col = self.make()
        assert col.dictionary.values[0] is None
        assert col.dictionary.null_offset == 1

    def test_concat_same_dictionary(self):
        col = self.make()
        joined = concat_encoded([col, col[:2]])
        assert isinstance(joined, EncodedColumn)
        assert joined.materialize().tolist() == [
            "a", "b", None, "c", "a", "a", "b"]

    def test_concat_different_dictionaries_returns_none(self):
        other = EncodedColumn(
            np.array([0]), Dictionary.build(np.array(["x"], dtype=object)))
        assert concat_encoded([self.make(), other]) is None

    def test_flag_roundtrip(self):
        prev = set_encoded_execution(False)
        try:
            assert not encoded_execution_enabled()
        finally:
            set_encoded_execution(prev)
        assert encoded_execution_enabled() == prev


class TestCodeTranslation:
    """compare_codes/isin_codes agree with decoded comparison semantics
    (NULL is never true) for every operator and literal position."""

    def make(self):
        data = np.array(
            ["b", None, "a", "c", "b", None, "d"], dtype=object)
        dictionary = Dictionary.build(data)
        return EncodedColumn(dictionary.encode(data), dictionary), data

    def decoded_mask(self, data, op, literal):
        def check(v):
            if v is None or literal is None:
                return False
            return {"=": v == literal, "!=": v != literal,
                    "<": v < literal, "<=": v <= literal,
                    ">": v > literal, ">=": v >= literal}[op]
        return np.array([check(v) for v in data])

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    @pytest.mark.parametrize("literal", ["a", "b", "bb", "z", "", None])
    def test_all_ops_and_literals(self, op, literal):
        col, data = self.make()
        got = compare_codes(op, col, literal)
        np.testing.assert_array_equal(
            got, self.decoded_mask(data, op, literal))

    def test_isin_matches_decoded_membership(self):
        col, data = self.make()
        for allowed in (["a", "d"], ["zz"], [], ["b", None]):
            expected = np.array([v in allowed for v in data])
            np.testing.assert_array_equal(isin_codes(col, allowed), expected)


class TestDifferentialQueries:
    def test_equality_filter(self):
        on, _ = assert_differential(
            "SELECT id FROM t WHERE city = 'berlin' ORDER BY id")
        assert on.metrics.code_path_hits > 0

    def test_inequality_filter(self):
        assert_differential(
            "SELECT count(*) FROM t WHERE city != 'cairo'")

    def test_range_filter(self):
        assert_differential(
            "SELECT count(*) FROM t WHERE city >= 'berlin' AND city < 'dz'")

    def test_absent_literal(self):
        on, _ = assert_differential(
            "SELECT count(*) FROM t WHERE city = 'nowhere'")
        assert on.rows in ([], [(0,)])

    def test_in_list(self):
        assert_differential(
            "SELECT count(*) FROM t WHERE city IN ('athens', 'delhi', 'x')")

    def test_group_by_string_with_nulls(self):
        on, _ = assert_differential(
            "SELECT city, count(*) c, sum(qty) q FROM t "
            "GROUP BY city ORDER BY c, city")
        assert on.metrics.code_path_hits > 0

    def test_group_by_rle_column(self):
        assert_differential(
            "SELECT region, count(*) c FROM t GROUP BY region ORDER BY region")

    def test_order_by_string(self):
        assert_differential(
            "SELECT city, id FROM t WHERE qty = 7 ORDER BY city, id")

    def test_join_on_dict_column(self):
        on, _ = assert_differential(
            "SELECT d.name, count(*) c FROM t "
            "JOIN d ON t.city = d.name GROUP BY d.name ORDER BY d.name",
            db_factory=make_join_db)
        assert on.metrics.code_path_hits > 0

    def test_arithmetic_falls_back(self):
        # String concatenation is not translated; the encoded run counts
        # a fallback but still matches the decoded run exactly.
        on, _ = assert_differential(
            "SELECT count(*) FROM t WHERE city < region")
        assert on.metrics.code_path_fallbacks > 0

    def test_delta_store_rows_mix_with_encoded_groups(self):
        def factory():
            db = make_db(n=2000)
            Executor(db).execute(
                "INSERT INTO t (id, city, region, qty) "
                "VALUES (9001, 'berlin', 'north', 7), "
                "(9002, 'fargo', 'south', 7), (9003, NULL, 'north', 7)")
            return db
        on, _ = assert_differential(
            "SELECT city, count(*) c FROM t WHERE qty = 7 "
            "GROUP BY city ORDER BY c, city", db_factory=factory)
        assert on.metrics.code_path_hits > 0


class TestEncodedWithSegmentCache:
    def test_toggle_after_cache_populated(self):
        """Codes cached while encoding is on must decode correctly after
        the flag is turned off (same warm database)."""
        sql = "SELECT city, count(*) c FROM t GROUP BY city ORDER BY c, city"
        db = make_db(cache=True)
        executor = Executor(db)
        prev = set_encoded_execution(True)
        try:
            warm = executor.execute(sql)
            assert warm.metrics.segment_cache_misses > 0
            set_encoded_execution(False)
            cold_path = executor.execute(sql)
        finally:
            set_encoded_execution(prev)
        assert cold_path.rows == warm.rows
        assert cold_path.metrics.segment_cache_hits > 0
        assert cold_path.metrics.code_path_hits == 0

    def test_cache_accounting_identical_across_modes(self):
        sql = "SELECT count(*) FROM t WHERE city = 'athens'"
        stats = {}
        for enabled in (False, True):
            prev = set_encoded_execution(enabled)
            try:
                db = make_db(cache=True)
                executor = Executor(db)
                executor.execute(sql)
                executor.execute(sql)
                cache = db.segment_cache
                stats[enabled] = (cache.stats.hits, cache.stats.misses,
                                  cache.stats.evictions, cache.bytes_cached,
                                  len(cache))
            finally:
                set_encoded_execution(prev)
        assert stats[True] == stats[False]


class TestScanProducesEncodedColumns:
    def test_rle_segment_served_as_codes(self):
        data = rows(3000)
        group = compress_rowgroup(
            TableSchema("g", [Column("region", varchar(8))]),
            {"region": np.array([r[2] for r in data], dtype=object)},
            rids=np.arange(len(data)))
        segment = group.segments["region"]
        assert segment.encoding == ENCODING_RLE
        assert segment.dictionary is not None
        col = EncodedColumn(segment.codes_array(), segment.dictionary)
        np.testing.assert_array_equal(col.materialize(), segment.decode())

    def test_scan_counts_late_materialized_columns(self):
        db = make_db(n=1000)
        prev = set_encoded_execution(True)
        try:
            res = Executor(db).execute("SELECT city FROM t WHERE id < 10")
        finally:
            set_encoded_execution(prev)
        assert res.metrics.columns_late_materialized > 0
