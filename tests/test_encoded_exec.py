"""Differential tests for dictionary-coded (late materialization)
execution: every query must return identical rows AND identical modeled
metrics with the encoded path on and off — the encoded path changes real
wall-clock only. Also unit-tests the code-space primitives."""

import dataclasses

import numpy as np
import pytest

from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.encoded import (
    EncodedColumn,
    compare_codes,
    concat_encoded,
    encoded_execution_enabled,
    isin_codes,
    set_encoded_execution,
)
from repro.engine.executor import Executor
from repro.storage.compression import (
    Dictionary,
    ENCODING_RLE,
    compress_rowgroup,
)
from repro.storage.database import Database

# Counters expected to differ between the two modes by design.
_MODE_COUNTERS = (
    "columns_late_materialized", "code_path_hits", "code_path_fallbacks")


def schema():
    return TableSchema("t", [
        Column("id", INT, nullable=False),
        Column("city", varchar(16)),       # dict-coded strings, with NULLs
        Column("region", varchar(8)),      # long runs -> RLE + dictionary
        Column("qty", INT),
    ])


CITIES = ["athens", "berlin", "cairo", None, "delhi", "evora"]
REGIONS = ["north", "south"]


def rows(n=4000):
    return [
        (i, CITIES[i % len(CITIES)], REGIONS[(i * 2) // n], i % 50)
        for i in range(n)
    ]


def make_db(n=4000, cache=False):
    db = Database(segment_cache_enabled=True) if cache else Database()
    table = db.create_table(schema())
    table.bulk_load(rows(n))
    table.set_primary_columnstore(rowgroup_size=1024)
    return db


def make_join_db():
    db = make_db()
    dim = db.create_table(TableSchema("d", [
        Column("name", varchar(16)),
        Column("pop", INT, nullable=False),
    ]))
    dim.bulk_load([("athens", 1), ("cairo", 3), ("delhi", 4), ("zzz", 9)])
    return db


def run_query(db_factory, sql, enabled):
    prev = set_encoded_execution(enabled)
    try:
        return Executor(db_factory()).execute(sql)
    finally:
        set_encoded_execution(prev)


def metrics_dict(result):
    d = dataclasses.asdict(result.metrics)
    for name in _MODE_COUNTERS:
        d.pop(name)
    return d


def assert_differential(sql, db_factory=make_db):
    """Encoded and decoded runs agree on rows and modeled metrics."""
    off = run_query(db_factory, sql, enabled=False)
    on = run_query(db_factory, sql, enabled=True)
    assert on.rows == off.rows
    assert on.columns == off.columns
    assert metrics_dict(on) == metrics_dict(off)
    assert off.metrics.code_path_hits == 0
    assert off.metrics.columns_late_materialized == 0
    return on, off


class TestEncodedColumnUnit:
    def make(self):
        dictionary = Dictionary.build(
            np.array([None, "a", "b", "a", "c"], dtype=object))
        codes = dictionary.encode(
            np.array(["a", "b", None, "c", "a"], dtype=object))
        return EncodedColumn(codes, dictionary)

    def test_dtype_reports_object(self):
        assert self.make().dtype == np.dtype(object)

    def test_materialize_roundtrip(self):
        col = self.make()
        assert col.materialize().tolist() == ["a", "b", None, "c", "a"]
        assert list(col) == ["a", "b", None, "c", "a"]
        assert col[2] is None and col[3] == "c"

    def test_mask_and_slice_stay_encoded(self):
        col = self.make()
        masked = col[np.array([True, False, True, False, True])]
        assert isinstance(masked, EncodedColumn)
        assert masked.materialize().tolist() == ["a", None, "a"]
        assert isinstance(col[1:3], EncodedColumn)

    def test_null_sorts_first_in_dictionary(self):
        col = self.make()
        assert col.dictionary.values[0] is None
        assert col.dictionary.null_offset == 1

    def test_concat_same_dictionary(self):
        col = self.make()
        joined = concat_encoded([col, col[:2]])
        assert isinstance(joined, EncodedColumn)
        assert joined.materialize().tolist() == [
            "a", "b", None, "c", "a", "a", "b"]

    def test_concat_different_dictionaries_merges(self):
        # Batches from different rowgroups carry distinct per-segment
        # dictionaries; concatenation merges them (sorted union, NULL
        # first) and remaps codes so the result stays in code space.
        other = EncodedColumn(
            np.array([0]), Dictionary.build(np.array(["x"], dtype=object)))
        joined = concat_encoded([self.make(), other])
        assert isinstance(joined, EncodedColumn)
        assert joined.materialize().tolist() == [
            "a", "b", None, "c", "a", "x"]
        # The merged dictionary preserves the sortedness invariant, so
        # code order still equals value order (code-space sort legality).
        assert joined.dictionary.values[0] is None
        assert list(joined.dictionary.values[1:]) == ["a", "b", "c", "x"]

    def test_flag_roundtrip(self):
        prev = set_encoded_execution(False)
        try:
            assert not encoded_execution_enabled()
        finally:
            set_encoded_execution(prev)
        assert encoded_execution_enabled() == prev


class TestCodeTranslation:
    """compare_codes/isin_codes agree with decoded comparison semantics
    (NULL is never true) for every operator and literal position."""

    def make(self):
        data = np.array(
            ["b", None, "a", "c", "b", None, "d"], dtype=object)
        dictionary = Dictionary.build(data)
        return EncodedColumn(dictionary.encode(data), dictionary), data

    def decoded_mask(self, data, op, literal):
        def check(v):
            if v is None or literal is None:
                return False
            return {"=": v == literal, "!=": v != literal,
                    "<": v < literal, "<=": v <= literal,
                    ">": v > literal, ">=": v >= literal}[op]
        return np.array([check(v) for v in data])

    @pytest.mark.parametrize("op", ["=", "!=", "<", "<=", ">", ">="])
    @pytest.mark.parametrize("literal", ["a", "b", "bb", "z", "", None])
    def test_all_ops_and_literals(self, op, literal):
        col, data = self.make()
        got = compare_codes(op, col, literal)
        np.testing.assert_array_equal(
            got, self.decoded_mask(data, op, literal))

    def test_isin_matches_decoded_membership(self):
        col, data = self.make()
        for allowed in (["a", "d"], ["zz"], [], ["b", None]):
            expected = np.array([v in allowed for v in data])
            np.testing.assert_array_equal(isin_codes(col, allowed), expected)


class TestDifferentialQueries:
    def test_equality_filter(self):
        on, _ = assert_differential(
            "SELECT id FROM t WHERE city = 'berlin' ORDER BY id")
        assert on.metrics.code_path_hits > 0

    def test_inequality_filter(self):
        assert_differential(
            "SELECT count(*) FROM t WHERE city != 'cairo'")

    def test_range_filter(self):
        assert_differential(
            "SELECT count(*) FROM t WHERE city >= 'berlin' AND city < 'dz'")

    def test_absent_literal(self):
        on, _ = assert_differential(
            "SELECT count(*) FROM t WHERE city = 'nowhere'")
        assert on.rows in ([], [(0,)])

    def test_in_list(self):
        assert_differential(
            "SELECT count(*) FROM t WHERE city IN ('athens', 'delhi', 'x')")

    def test_group_by_string_with_nulls(self):
        on, _ = assert_differential(
            "SELECT city, count(*) c, sum(qty) q FROM t "
            "GROUP BY city ORDER BY c, city")
        assert on.metrics.code_path_hits > 0

    def test_group_by_rle_column(self):
        assert_differential(
            "SELECT region, count(*) c FROM t GROUP BY region ORDER BY region")

    def test_order_by_string(self):
        assert_differential(
            "SELECT city, id FROM t WHERE qty = 7 ORDER BY city, id")

    def test_join_on_dict_column(self):
        on, _ = assert_differential(
            "SELECT d.name, count(*) c FROM t "
            "JOIN d ON t.city = d.name GROUP BY d.name ORDER BY d.name",
            db_factory=make_join_db)
        assert on.metrics.code_path_hits > 0

    def test_arithmetic_falls_back(self):
        # String concatenation is not translated; the encoded run counts
        # a fallback but still matches the decoded run exactly.
        on, _ = assert_differential(
            "SELECT count(*) FROM t WHERE city < region")
        assert on.metrics.code_path_fallbacks > 0

    def test_delta_store_rows_mix_with_encoded_groups(self):
        def factory():
            db = make_db(n=2000)
            Executor(db).execute(
                "INSERT INTO t (id, city, region, qty) "
                "VALUES (9001, 'berlin', 'north', 7), "
                "(9002, 'fargo', 'south', 7), (9003, NULL, 'north', 7)")
            return db
        on, _ = assert_differential(
            "SELECT city, count(*) c FROM t WHERE qty = 7 "
            "GROUP BY city ORDER BY c, city", db_factory=factory)
        assert on.metrics.code_path_hits > 0


class TestEncodedWithSegmentCache:
    def test_toggle_after_cache_populated(self):
        """Codes cached while encoding is on must decode correctly after
        the flag is turned off (same warm database)."""
        sql = "SELECT city, count(*) c FROM t GROUP BY city ORDER BY c, city"
        db = make_db(cache=True)
        executor = Executor(db)
        prev = set_encoded_execution(True)
        try:
            warm = executor.execute(sql)
            assert warm.metrics.segment_cache_misses > 0
            set_encoded_execution(False)
            cold_path = executor.execute(sql)
        finally:
            set_encoded_execution(prev)
        assert cold_path.rows == warm.rows
        assert cold_path.metrics.segment_cache_hits > 0
        assert cold_path.metrics.code_path_hits == 0

    def test_cache_accounting_identical_across_modes(self):
        # Hit/miss/eviction counts and residency are mode-independent;
        # byte totals legitimately differ (encoded entries are charged
        # at stored code width, decoded ones at decoded width) and are
        # checked against residency in test_cache_bytes_match_residency.
        sql = "SELECT count(*) FROM t WHERE city = 'athens'"
        stats = {}
        resident_bytes = {}
        for enabled in (False, True):
            prev = set_encoded_execution(enabled)
            try:
                db = make_db(cache=True)
                executor = Executor(db)
                executor.execute(sql)
                executor.execute(sql)
                cache = db.segment_cache
                stats[enabled] = (cache.stats.hits, cache.stats.misses,
                                  cache.stats.evictions, len(cache))
                resident_bytes[enabled] = cache.bytes_cached
            finally:
                set_encoded_execution(prev)
        assert stats[True] == stats[False]
        # Codes are never wider than the decoded representation.
        assert resident_bytes[True] <= resident_bytes[False]

    def test_cache_bytes_match_residency(self):
        # The differential accounting audit: the cache's byte counter
        # must equal the sum of the accounting sizes of the entries that
        # are actually resident — encoded entries at their stored int32
        # code width, decoded arrays at their decoded width.
        from repro.storage.segment_cache import _array_bytes

        for enabled in (False, True):
            prev = set_encoded_execution(enabled)
            try:
                db = make_db(cache=True)
                executor = Executor(db)
                executor.execute(
                    "SELECT city, region, qty FROM t WHERE qty >= 0")
                cache = db.segment_cache
                resident = sum(_array_bytes(entry)
                               for entry in cache._entries.values())
                assert cache.bytes_cached == resident
                for entry in cache._entries.values():
                    if isinstance(entry, EncodedColumn):
                        assert _array_bytes(entry) == entry.codes.nbytes
            finally:
                set_encoded_execution(prev)


def numeric_schema():
    return TableSchema("n", [
        Column("id", INT, nullable=False),      # frame-of-reference codes
        Column("bucket", INT, nullable=False),  # long runs -> numeric RLE
        Column("meter", INT),                   # nullable ints, with NULLs
        Column("wide", INT, nullable=False),    # huge span -> decoded path
    ])


def numeric_rows(n=4000):
    return [
        (i, (i * 3) // n, i % 13 if i % 9 else None, i * 40_000)
        for i in range(n)
    ]


def make_numeric_db(n=4000):
    db = Database()
    table = db.create_table(numeric_schema())
    table.bulk_load(numeric_rows(n))
    table.set_primary_columnstore(rowgroup_size=1024)
    return db


class TestNumericCodeSpaceUnit:
    """Derived code spaces for dictionary-less numeric segments."""

    def _segment(self, values, nullable=True):
        arr = values if isinstance(values, np.ndarray) else np.array(values)
        group = compress_rowgroup(
            TableSchema("g", [Column("x", INT, nullable=nullable)]),
            {"x": arr}, rids=np.arange(len(arr)))
        return group.segments["x"]

    def test_numeric_rle_derives_sorted_dictionary(self):
        segment = self._segment(
            np.repeat(np.array([7, 3, 3, 11], dtype=np.int64), 500),
            nullable=False)
        assert segment.encoding == ENCODING_RLE
        assert segment.dictionary is None
        codes, dictionary = segment.code_space()
        assert dictionary.values.tolist() == [3, 7, 11]
        col = EncodedColumn(codes, dictionary)
        np.testing.assert_array_equal(col.materialize(), segment.decode())

    def test_bitpacked_ints_derive_frame_of_reference(self):
        segment = self._segment(
            np.arange(100, 3100, dtype=np.int64), nullable=False)
        code_space = segment.code_space()
        assert code_space is not None
        codes, dictionary = code_space
        # FOR dictionary: contiguous [lo, hi], codes = value - lo.
        assert dictionary.values[0] == 100
        col = EncodedColumn(codes, dictionary)
        np.testing.assert_array_equal(col.materialize(), segment.decode())

    def test_huge_span_has_no_code_space(self):
        segment = self._segment(
            np.arange(3000, dtype=np.int64) * 40_000, nullable=False)
        assert segment.code_space() is None

    def test_derived_code_space_is_cached(self):
        segment = self._segment(
            np.repeat(np.array([1, 2], dtype=np.int64), 1000),
            nullable=False)
        first = segment.code_space()
        assert segment.code_space() is first

    def test_nullable_ints_dictionary_encode_with_null_first(self):
        values = np.array([5, None, 2, 5, None, 9], dtype=object)
        segment = self._segment(values)
        codes, dictionary = segment.code_space()
        assert dictionary.values[0] is None
        col = EncodedColumn(codes, dictionary)
        assert col.materialize().tolist() == segment.decode().tolist()


class TestNumericDifferential:
    """Numeric code paths: identical rows and modeled metrics with the
    encoded flag on and off (the encoded run only changes wall-clock)."""

    def test_rle_group_by_with_sums(self):
        on, _ = assert_differential(
            "SELECT bucket, count(*) c, sum(id) s FROM n "
            "GROUP BY bucket ORDER BY bucket", db_factory=make_numeric_db)
        assert on.metrics.code_path_hits > 0

    def test_aggregates_over_nullable_ints(self):
        assert_differential(
            "SELECT count(*), sum(meter), min(meter), max(meter), "
            "avg(meter) FROM n", db_factory=make_numeric_db)

    def test_equality_filter_on_rle_ints(self):
        on, _ = assert_differential(
            "SELECT count(*) FROM n WHERE bucket = 1",
            db_factory=make_numeric_db)
        assert on.metrics.code_path_hits > 0

    def test_range_filter_on_frame_of_reference_codes(self):
        assert_differential(
            "SELECT count(*) FROM n WHERE id >= 100 AND id < 1000",
            db_factory=make_numeric_db)

    def test_group_by_nullable_ints_with_nulls(self):
        assert_differential(
            "SELECT meter, count(*) c FROM n GROUP BY meter "
            "ORDER BY c, meter", db_factory=make_numeric_db)

    def test_huge_span_column_still_matches(self):
        # 'wide' has no code space: the encoded run serves it decoded
        # and must stay byte-for-byte equivalent.
        assert_differential(
            "SELECT count(*), sum(wide) FROM n WHERE wide > 1000000",
            db_factory=make_numeric_db)

    def test_order_by_numeric_codes(self):
        assert_differential(
            "SELECT bucket, id FROM n WHERE meter = 5 "
            "ORDER BY bucket, id", db_factory=make_numeric_db)

    def test_numeric_delta_store_rows_mix_in(self):
        def factory():
            db = make_numeric_db(n=2000)
            Executor(db).execute(
                "INSERT INTO n (id, bucket, meter, wide) "
                "VALUES (9001, 1, 5, 12), (9002, 2, NULL, 13)")
            return db
        assert_differential(
            "SELECT bucket, count(*) c, sum(meter) s FROM n "
            "GROUP BY bucket ORDER BY bucket", db_factory=factory)


class TestCodeSpaceSortTopN:
    def test_top_n_matches_full_sort(self):
        on, _ = assert_differential(
            "SELECT TOP 10 city, id FROM t ORDER BY city",
            db_factory=make_db)
        assert len(on.rows) == 10

    def test_top_n_descending(self):
        assert_differential(
            "SELECT TOP 7 city FROM t ORDER BY city DESC",
            db_factory=make_db)

    def test_top_n_numeric(self):
        assert_differential(
            "SELECT TOP 5 bucket, id FROM n ORDER BY bucket",
            db_factory=make_numeric_db)

    def test_sort_unit_top_n_prefix_equals_stable_sort(self):
        from repro.engine.batch import Batch
        from repro.engine.operators.sorts import Sort, SortKey

        data = np.array(["b", "a", "c", "a", "b", "a"] * 50, dtype=object)
        dictionary = Dictionary.build(data)
        col = EncodedColumn(dictionary.encode(data), dictionary)
        batch = Batch({"k": col})
        for descending in (False, True):
            sort = Sort.__new__(Sort)
            sort.keys = [SortKey("k", descending=descending)]
            sort.limit = 9
            top = sort._top_n_order(batch, None)
            assert top is not None
            sort.limit = None  # full stable sort for comparison
            full = sort._argsort(batch)
            sort.limit = 9
            np.testing.assert_array_equal(top, full[:9])

    def test_top_n_early_close_releases_grant(self):
        from repro.engine.metrics import ExecutionContext
        from repro.engine.operators.sorts import Sort, SortKey
        from repro.engine.operators.base import PhysicalOperator
        from repro.engine.batch import Batch

        data = np.array(["b", "a", "c"] * 2000, dtype=object)
        dictionary = Dictionary.build(data)

        class _Feed(PhysicalOperator):
            mode = "batch"

            def __init__(self):
                super().__init__(children=())

            @property
            def output_columns(self):
                return ["k"]

            def execute(self, ctx):
                yield Batch(
                    {"k": EncodedColumn(dictionary.encode(data),
                                        dictionary)})

        sort = Sort(_Feed(), [SortKey("k")], limit=3)
        ctx = ExecutionContext()
        gen = sort.execute(ctx)
        first = next(gen)
        assert len(first) >= 3
        gen.close()
        assert ctx.memory_in_use == 0


class TestSpillingAggregates:
    SQL = ("SELECT city, qty, count(*) c, sum(id) s FROM t "
           "GROUP BY city, qty ORDER BY c, city, qty")

    def run_both(self):
        off = run_query(
            lambda: make_db(n=6000), self.SQL, enabled=False)
        on = run_query(
            lambda: make_db(n=6000), self.SQL, enabled=True)
        return on, off

    def run_tight(self, enabled):
        prev = set_encoded_execution(enabled)
        try:
            return Executor(make_db(n=6000)).execute(
                self.SQL, memory_grant_bytes=2048)
        finally:
            set_encoded_execution(prev)

    def test_spill_differential_under_tight_grant(self):
        on = self.run_tight(True)
        off = self.run_tight(False)
        assert on.metrics.spilled_bytes > 0
        assert on.rows == off.rows
        assert metrics_dict(on) == metrics_dict(off)

    def test_spill_runs_serialize_codes_not_values(self):
        # The modeled spill charge is identical across modes; the real
        # serialized bytes are the compact code representation, tracked
        # as operator-level counters.
        from repro.engine.metrics import ExecutionContext
        from repro.engine.operators import (
            AggregateSpec,
            ColumnstoreScan,
            HashAggregate,
        )
        from repro.engine.expressions import ColumnRef

        prev = set_encoded_execution(True)
        try:
            db = make_db(n=6000)
            table = db.table("t")
            agg = HashAggregate(
                ColumnstoreScan(table, table.primary, ["city", "qty"]),
                ["city", "qty"],
                [AggregateSpec("count", None, "c")])
            ctx = ExecutionContext(memory_grant_bytes=2048)
            list(agg.execute(ctx))
        finally:
            set_encoded_execution(prev)
        assert agg.spilled
        assert agg.spill_bytes_written > 0
        assert agg.spill_bytes_written < agg.spill_bytes_decoded
        assert "SPILLED" in agg.describe()


class TestAdaptiveLayouts:
    """ByteStore-style adaptive per-column layouts: the DMV-observed
    access mix drives the encodings a REBUILD chooses, both directions."""

    def _index(self):
        db = make_numeric_db(n=3000)
        return db, db.table("n").primary

    def test_point_heavy_mix_switches_to_positional(self):
        from repro.storage.layout import AdaptiveLayoutPolicy

        db, index = self._index()
        index.layout_policy = AdaptiveLayoutPolicy()
        before = index.column_encodings()
        assert before["bucket"] == ENCODING_RLE
        index.usage.reset()
        for _ in range(200):
            index.usage.record_seek()
        index.rebuild()
        after = index.column_encodings()
        assert after["bucket"] == "bitpack"
        # Rows survive the layout flip untouched.
        assert Executor(db).execute(
            "SELECT count(*) FROM n").scalar() == 3000

    def test_scan_heavy_mix_switches_back(self):
        from repro.storage.layout import AdaptiveLayoutPolicy

        db, index = self._index()
        index.layout_policy = AdaptiveLayoutPolicy()
        index.usage.reset()
        for _ in range(200):
            index.usage.record_seek()
        index.rebuild()
        assert index.column_encodings()["bucket"] == "bitpack"
        index.usage.reset()
        for _ in range(200):
            index.usage.record_scan()
        index.rebuild()
        assert index.column_encodings()["bucket"] == ENCODING_RLE

    def test_few_observations_keep_default_layout(self):
        from repro.storage.layout import AdaptiveLayoutPolicy

        db, index = self._index()
        index.layout_policy = AdaptiveLayoutPolicy(min_observations=16)
        index.usage.reset()
        index.usage.record_seek()
        decisions = index.layout_policy.choose(index.usage, index.columns)
        assert all(d.forced_encoding is None for d in decisions.values())
        assert all("keeping" in d.reason for d in decisions.values())

    def test_size_bytes_reflects_forced_encoding(self):
        db, index = self._index()
        before = index.size_bytes()
        from repro.storage.layout import AdaptiveLayoutPolicy
        index.layout_policy = AdaptiveLayoutPolicy()
        index.usage.reset()
        for _ in range(200):
            index.usage.record_seek()
        index.rebuild()
        # Positional bitpack forgoes RLE on the run-friendly column, so
        # the truthful size grows.
        assert index.size_bytes() > before


class TestCompressionAwareCosting:
    """Kimura-style costing: decode CPU differs by scheme, opt-in only."""

    def _options(self, aware):
        from repro.optimizer.cost_model import CostModel, CostingOptions
        return CostingOptions(cost_model=CostModel(),
                              compression_aware=aware)

    def _descriptor(self, encodings):
        from repro.optimizer.whatif import hypothetical_columnstore
        return hypothetical_columnstore(
            "t", ["a", "b"], {"a": 1000, "b": 1000},
            column_encodings=encodings)

    def test_flag_off_is_numerically_identical(self):
        from repro.optimizer import cost_model as cm

        descriptor = self._descriptor({"a": "rle", "b": "rle"})
        baseline = cm.cost_csi_scan(
            self._options(False), descriptor, 100_000,
            {"a": 1000, "b": 1000})
        with_enc = cm.cost_csi_scan(
            self._options(False), descriptor, 100_000,
            {"a": 1000, "b": 1000},
            encodings=descriptor.column_encodings)
        assert with_enc == baseline

    def test_same_sizes_different_encodings_different_costs(self):
        from repro.optimizer import cost_model as cm

        options = self._options(True)
        cost_rle = cm.cost_csi_scan(
            options, self._descriptor({"a": "rle", "b": "rle"}),
            100_000, {"a": 1000, "b": 1000},
            encodings={"a": "rle", "b": "rle"})
        cost_dict = cm.cost_csi_scan(
            options, self._descriptor({"a": "dict", "b": "dict"}),
            100_000, {"a": 1000, "b": 1000},
            encodings={"a": "dict", "b": "dict"})
        assert cost_rle < cost_dict

    def test_run_modelling_emits_encodings(self):
        from repro.advisor.size_estimation import estimate_run_modelling

        db = make_numeric_db(n=2000)
        estimate = estimate_run_modelling(
            db.table("n"), ["id", "bucket"], sampling_ratio=0.5)
        assert set(estimate.column_encodings) == {"id", "bucket"}
        assert all(e in ("rle", "dict", "bitpack", "raw")
                   for e in estimate.column_encodings.values())

    def test_real_descriptors_carry_encodings(self):
        from repro.optimizer.catalog import describe_physical_index

        db = make_numeric_db(n=2000)
        table = db.table("n")
        descriptor = describe_physical_index(table, table.primary)
        assert descriptor.column_encodings == table.primary.column_encodings()


class TestConcurrentEncodedSessions:
    def test_four_sessions_morsel_scans_match_serial_decoded(self):
        import threading

        from repro.server.session import SessionManager

        sqls = [
            "SELECT city, count(*) c FROM t GROUP BY city ORDER BY c, city",
            "SELECT count(*) FROM t WHERE city >= 'berlin'",
            "SELECT region, sum(qty) q FROM t GROUP BY region ORDER BY region",
            "SELECT count(*) FROM t WHERE city IN ('athens', 'delhi')",
        ]
        expected = {
            sql: run_query(lambda: make_db(n=8000), sql, enabled=False).rows
            for sql in sqls
        }
        db = make_db(n=8000)
        results = {}
        errors = []

        def worker(sql):
            try:
                with manager.session(cold=True) as session:
                    results[sql] = session.execute(sql).rows
            except Exception as exc:  # pragma: no cover - diagnostics
                errors.append((sql, exc))

        prev = set_encoded_execution(True)
        try:
            with SessionManager(db, morsel_workers=4) as manager:
                threads = [threading.Thread(target=worker, args=(sql,))
                           for sql in sqls]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
        finally:
            set_encoded_execution(prev)
        assert not errors
        assert results == expected


class TestScanProducesEncodedColumns:
    def test_rle_segment_served_as_codes(self):
        data = rows(3000)
        group = compress_rowgroup(
            TableSchema("g", [Column("region", varchar(8))]),
            {"region": np.array([r[2] for r in data], dtype=object)},
            rids=np.arange(len(data)))
        segment = group.segments["region"]
        assert segment.encoding == ENCODING_RLE
        assert segment.dictionary is not None
        col = EncodedColumn(segment.codes_array(), segment.dictionary)
        np.testing.assert_array_equal(col.materialize(), segment.decode())

    def test_scan_counts_late_materialized_columns(self):
        db = make_db(n=1000)
        prev = set_encoded_execution(True)
        try:
            res = Executor(db).execute("SELECT city FROM t WHERE id < 10")
        finally:
            set_encoded_execution(prev)
        assert res.metrics.columns_late_materialized > 0
