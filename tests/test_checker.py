"""CHECKDB-style consistency checker: clean databases pass, and each
class of deliberately planted corruption is detected."""

import pytest

from repro.core.errors import StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.storage.checker import check_database, check_table
from repro.storage.database import Database


def schema(name="t"):
    return TableSchema(name, [
        Column("a", INT, nullable=False),
        Column("b", INT, nullable=False),
        Column("s", varchar(8), nullable=False),
    ])


def make_db():
    """Heap table + hybrid table (primary CSI, secondary B+ tree) +
    B+ tree table with a secondary columnstore carrying shadows."""
    db = Database()
    heap_t = db.create_table(schema("h"))
    heap_t.bulk_load([(i, i % 5, f"h{i}") for i in range(50)])
    heap_t.create_secondary_btree("ix_hb", ["b"])

    csi_t = db.create_table(schema("c"))
    csi_t.bulk_load([(i, i % 7, f"c{i}") for i in range(200)])
    csi_t.set_primary_columnstore(rowgroup_size=64)
    csi_t.create_secondary_btree("ix_cb", ["b"], included_columns=["s"])
    for i in range(10):
        csi_t.insert_row((500 + i, i, "d"))
    csi_t.delete_rids([3, 4])
    csi_t.update_rid(8, (8, 77, "u"))

    bt_t = db.create_table(schema("b"))
    bt_t.bulk_load([(i, i % 3, f"b{i}") for i in range(150)])
    bt_t.set_primary_btree(["a"])
    bt_t.create_secondary_columnstore("csi_b", rowgroup_size=64)
    bt_t.update_rids([(i, (i, 900 + i, "sh")) for i in range(3)])
    bt_t.delete_rids([10, 11])
    return db


def csi_of(table):
    for index in table.all_indexes:
        if index.kind == "csi":
            return index
    raise AssertionError("no columnstore on table")


class TestCleanDatabase:
    def test_clean_database_passes(self):
        result = check_database(make_db())
        assert result.ok, result.summary()
        assert result.checked_tables == 3
        assert result.checked_indexes == 6
        result.raise_if_failed()  # must not raise

    def test_clean_after_maintenance(self):
        db = make_db()
        csi_of(db.table("c")).reorganize()
        csi_of(db.table("b")).rebuild()
        result = check_database(db)
        assert result.ok, result.summary()

    def test_summary_format(self):
        result = check_database(make_db())
        assert "3 table(s)" in result.summary()
        assert "OK" in result.summary()


class TestCorruptionDetection:
    def test_tampered_heap_row(self):
        db = make_db()
        heap = db.table("h").primary
        heap._rows[5] = (5, -1, "XX")
        result = check_table(db.table("h"))
        assert not result.ok
        assert any("row mismatch" in e for e in result.errors)

    def test_lost_btree_entry(self):
        db = make_db()
        table = db.table("h")
        row = table.get_row(7)
        ix = table.secondary_indexes["ix_hb"]
        ix.tree.delete((row[1], 7))
        result = check_table(table)
        assert not result.ok
        assert any("missing from index" in e for e in result.errors)

    def test_stale_secondary_key(self):
        db = make_db()
        table = db.table("h")
        # Mutate the logical row without maintaining the index.
        table._rows[9] = (9, 999, table._rows[9][2])
        result = check_table(table)
        assert not result.ok
        assert any("stale key" in e for e in result.errors)

    def test_wrong_delete_bitmap_counter(self):
        db = make_db()
        index = csi_of(db.table("c"))
        index._groups[0].n_deleted += 1
        result = check_table(db.table("c"))
        assert not result.ok
        assert any("bitmap popcount" in e for e in result.errors)

    def test_wrong_segment_min_metadata(self):
        db = make_db()
        index = csi_of(db.table("c"))
        segment = index._groups[0].group.column("a")
        segment.min_value = -12345
        result = check_table(db.table("c"))
        assert not result.ok
        assert any("min/max metadata" in e for e in result.errors)

    def test_orphan_delta_rid(self):
        db = make_db()
        index = csi_of(db.table("c"))
        index._delta[99999] = (99999, 0, "ghost")
        result = check_table(db.table("c"))
        assert not result.ok
        assert any("orphan rid 99999" in e for e in result.errors)

    def test_dropped_rid_locator(self):
        db = make_db()
        index = csi_of(db.table("c"))
        rid = next(iter(index._rid_location))
        del index._rid_location[rid]
        result = check_table(db.table("c"))
        assert not result.ok
        assert any("locator" in e for e in result.errors)

    def test_primary_columnstore_with_delete_buffer(self):
        db = make_db()
        index = csi_of(db.table("c"))
        rid = next(iter(index._rid_location))
        index._delete_buffer.add(rid)
        result = check_table(db.table("c"))
        assert not result.ok
        assert any("delete buffer" in e for e in result.errors)

    def test_unbuffered_shadow_is_flagged(self):
        db = make_db()
        index = csi_of(db.table("b"))
        # A delta version shadowing a compressed rid is only legal while
        # a buffered delete masks the compressed copy.
        shadowed = next(iter(index._delta.keys() & index._delete_buffer))
        index._delete_buffer.discard(shadowed)
        result = check_table(db.table("b"))
        assert not result.ok
        assert any("both delta store" in e for e in result.errors)

    def test_raise_if_failed(self):
        db = make_db()
        db.table("h").primary._rows[5] = (5, -1, "XX")
        with pytest.raises(StorageError, match="consistency check failed"):
            check_database(db).raise_if_failed()

    def test_database_merge_spans_tables(self):
        db = make_db()
        db.table("h").primary._rows[5] = (5, -1, "XX")
        index = csi_of(db.table("c"))
        index._groups[0].n_deleted += 1
        result = check_database(db)
        assert len(result.errors) >= 2
        assert result.checked_tables == 3
