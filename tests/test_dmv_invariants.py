"""Invariant tests reconciling the DMV telemetry with independent
ground truth after a mixed DML+query workload:

* per-index ``segments_scanned``/``segments_skipped`` sums equal the
  per-statement ``QueryMetrics`` totals (the per-index attribution adds
  a dimension to the counters, never changes their sum);
* ``user_updates`` is statement-granular and identical across every
  index of the maintained table;
* the logical clock equals the number of executed statements;
* ``dm_db_column_store_row_group_physical_stats`` matches the
  columnstore's actual rowgroup state, and live-row accounting agrees
  with both ``Table.row_count`` and the CHECKDB-style checker.
"""

from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.dmv import rowgroup_rows, snapshot
from repro.engine.executor import Executor
from repro.storage.checker import check_database, check_table
from repro.storage.database import Database


def build_database(n_rows: int = 6000) -> Database:
    database = Database()
    orders = database.create_table(TableSchema("orders", [
        Column("o_id", INT, nullable=False),
        Column("o_cust", INT, nullable=False),
        Column("o_status", varchar(1)),
        Column("o_amt", INT),
    ]))
    orders.bulk_load([
        (i, i % 211, "NPS"[i % 3], (i * 7) % 10_000) for i in range(n_rows)
    ])
    orders.set_primary_btree(["o_id"])
    orders.create_secondary_columnstore("csi_orders", rowgroup_size=1024)
    orders.create_secondary_btree("ix_cust", ["o_cust"])
    return database


MIXED_WORKLOAD = [
    # Queries spanning seeks, scans, lookups, and segment elimination.
    "SELECT sum(o_amt) FROM orders WHERE o_id BETWEEN 100 AND 220",
    "SELECT o_status, sum(o_amt) t FROM orders GROUP BY o_status",
    "SELECT count(*) c FROM orders WHERE o_cust = 17",
    "SELECT sum(o_amt) FROM orders WHERE o_amt < 500",
    # DML interleaved with reads.
    "UPDATE TOP (300) orders SET o_amt += 1 WHERE o_id >= 1000",
    "SELECT sum(o_amt) FROM orders WHERE o_id BETWEEN 1000 AND 1100",
    "DELETE TOP (250) FROM orders WHERE o_cust = 3",
    "INSERT INTO orders VALUES (90001, 3, 'N', 123), "
    "(90002, 4, 'P', 456)",
    "SELECT o_status, count(*) c FROM orders GROUP BY o_status",
    "UPDATE TOP (100) orders SET o_status = 'S' WHERE o_amt < 200",
    "SELECT sum(o_amt) FROM orders WHERE o_amt > 9000",
]

N_DML = 4  # UPDATE, DELETE, INSERT, UPDATE


class TestUsageReconciliation:
    def run_workload(self):
        database = build_database()
        executor = Executor(database)
        metrics = [executor.execute(sql).metrics for sql in MIXED_WORKLOAD]
        return database, metrics

    def test_segment_counters_reconcile_with_metrics_totals(self):
        database, metrics = self.run_workload()
        total_read = sum(m.segments_read for m in metrics)
        total_skipped = sum(m.segments_skipped for m in metrics)
        indexes = [
            structure for table in database.tables()
            for structure in table.all_indexes
        ]
        assert sum(i.usage.segments_scanned for i in indexes) == total_read
        assert sum(i.usage.segments_skipped for i in indexes) == total_skipped
        # The workload must actually have exercised both counters for
        # the reconciliation to mean anything.
        assert total_read > 0
        assert total_skipped > 0

    def test_user_updates_is_statement_granular_and_uniform(self):
        database, _ = self.run_workload()
        for structure in database.table("orders").all_indexes:
            assert structure.usage.user_updates == N_DML, structure.name

    def test_logical_clock_counts_statements(self):
        database, metrics = self.run_workload()
        assert database.telemetry.clock.now == len(MIXED_WORKLOAD)
        assert len(metrics) == len(MIXED_WORKLOAD)

    def test_last_used_stamps_bounded_by_clock(self):
        database, _ = self.run_workload()
        clock = database.telemetry.clock.now
        for structure in database.table("orders").all_indexes:
            usage = structure.usage
            for stamp in (usage.last_user_seek, usage.last_user_scan,
                          usage.last_user_lookup, usage.last_user_update):
                assert 0 <= stamp <= clock

    def test_telemetry_recording_has_zero_modeled_cost(self):
        # The same workload with recording implicitly on (it always is)
        # must produce metrics identical to the seed behaviour: no
        # charge_* call is reachable from any recording path, so the
        # modeled totals depend only on the plans. Guard by executing
        # twice on identical databases and comparing modeled totals.
        database_a = build_database()
        database_b = build_database()
        totals_a = [Executor(database_a).execute(sql).metrics.cpu_ms
                    for sql in MIXED_WORKLOAD]
        totals_b = [Executor(database_b).execute(sql).metrics.cpu_ms
                    for sql in MIXED_WORKLOAD]
        assert totals_a == totals_b


class TestRowgroupReconciliation:
    def test_view_matches_columnstore_state_and_checker(self):
        database = build_database()
        executor = Executor(database)
        for sql in MIXED_WORKLOAD:
            executor.execute(sql)
        orders = database.table("orders")
        csi = orders.index_by_name("csi_orders")
        # Fold buffered deletes so live-row accounting is exact.
        csi.compact_delete_buffer()

        rows = [r for r in rowgroup_rows(database)
                if r[1] == "csi_orders"]
        compressed = [r for r in rows if r[3] == "COMPRESSED"]
        open_groups = [r for r in rows if r[3] == "OPEN"]
        assert len(compressed) == csi.n_rowgroups
        for ordinal, row in enumerate(compressed):
            state = csi._groups[ordinal]
            assert row[4] == state.group.n_rows
            assert row[5] == state.n_deleted
            assert row[8] == csi.delta_rows
            assert row[9] == csi.delete_buffer_rows
        assert len(open_groups) == (1 if csi.delta_rows else 0)

        live_from_view = (
            sum(r[4] - r[5] for r in compressed) + csi.delta_rows)
        assert live_from_view == csi.n_rows
        assert csi.n_rows == orders.row_count

        check = check_table(orders)
        assert check.ok, check.summary()

    def test_fragmentation_column_matches_index_property(self):
        database = build_database()
        executor = Executor(database)
        for sql in MIXED_WORKLOAD:
            executor.execute(sql)
        csi = database.table("orders").index_by_name("csi_orders")
        rows = [r for r in rowgroup_rows(database) if r[1] == "csi_orders"]
        assert rows
        for row in rows:
            assert float(row[10]) == round(csi.fragmentation, 6)

    def test_snapshot_consistent_with_database_after_workload(self):
        database = build_database()
        executor = Executor(database)
        for sql in MIXED_WORKLOAD:
            executor.execute(sql)
        snap = snapshot(database)
        usage = {(r["table_name"], r["index_name"]): r
                 for r in snap["dm_db_index_usage_stats"]}
        for table in database.tables():
            for structure in table.all_indexes:
                row = usage[(table.name, structure.name)]
                assert row["user_seeks"] == structure.usage.user_seeks
                assert row["user_scans"] == structure.usage.user_scans
                assert row["user_updates"] == structure.usage.user_updates
        assert check_database(database).ok
