"""End-to-end integration tests: query correctness against Python
oracles across physical designs, DML consistency with all index types,
and smoke tests for the example scripts."""

import pathlib
import random
import runpy
import sys

import pytest

from repro.core.schema import Column, TableSchema
from repro.core.types import DATE, INT, decimal, varchar
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads.tpch import generate_tpch

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"


def tpch_db(scale=0.2):
    db = Database()
    generate_tpch(db, scale=scale, seed=13)
    return db


def oracle_rows(table):
    return [row for _, row in table.iter_rows()]


DESIGN_SETUPS = {
    "heap": lambda t: None,
    "btree": lambda t: t.set_primary_btree(["l_orderkey", "l_linenumber"]),
    "pri_csi": lambda t: t.set_primary_columnstore(rowgroup_size=4096),
    "hybrid": lambda t: (
        t.set_primary_btree(["l_orderkey", "l_linenumber"]),
        t.create_secondary_columnstore("csi", rowgroup_size=4096),
    ),
}


class TestCrossDesignCorrectness:
    @pytest.mark.parametrize("design", list(DESIGN_SETUPS))
    def test_q6_matches_oracle(self, design):
        db = tpch_db()
        DESIGN_SETUPS[design](db.table("lineitem"))
        executor = Executor(db)
        result = executor.execute(
            "SELECT sum(l_extendedprice * l_discount) revenue "
            "FROM lineitem WHERE l_shipdate BETWEEN '1994-01-01' AND "
            "'1994-12-31' AND l_discount BETWEEN 0.05 AND 0.07 "
            "AND l_quantity < 24")
        import datetime
        from repro.core.types import date_to_int
        low = date_to_int(datetime.date(1994, 1, 1))
        high = date_to_int(datetime.date(1994, 12, 31))
        expected = sum(
            row[5] * row[6] for row in oracle_rows(db.table("lineitem"))
            if low <= row[10] <= high and 0.05 <= row[6] <= 0.07
            and row[4] < 24)
        got = result.scalar()
        if expected == 0:
            assert got in (0, None)
        else:
            assert got == pytest.approx(expected, rel=1e-9)

    @pytest.mark.parametrize("design", list(DESIGN_SETUPS))
    def test_group_by_matches_oracle(self, design):
        db = tpch_db()
        DESIGN_SETUPS[design](db.table("lineitem"))
        executor = Executor(db)
        result = executor.execute(
            "SELECT l_returnflag, count(*) c, sum(l_quantity) q "
            "FROM lineitem GROUP BY l_returnflag ORDER BY l_returnflag")
        expected = {}
        for row in oracle_rows(db.table("lineitem")):
            flag = row[8]
            count, quantity = expected.get(flag, (0, 0.0))
            expected[flag] = (count + 1, quantity + row[4])
        assert len(result.rows) == len(expected)
        for flag, count, quantity in result.rows:
            assert expected[flag][0] == count
            assert expected[flag][1] == pytest.approx(quantity)

    def test_join_consistent_across_designs(self):
        sql = ("SELECT n.n_name, count(*) c FROM customer c "
               "JOIN nation n ON c.c_nationkey = n.n_nationkey "
               "GROUP BY n.n_name ORDER BY n.n_name")
        results = []
        for build_csi in (False, True):
            db = tpch_db()
            db.table("customer").set_primary_btree(["c_custkey"])
            db.table("nation").set_primary_btree(["n_nationkey"])
            if build_csi:
                db.table("customer").create_secondary_columnstore("csi_c")
            results.append(Executor(db).execute(sql).rows)
        assert results[0] == results[1]


class TestDmlConsistencyAcrossIndexes:
    def make_hybrid(self):
        db = tpch_db(scale=0.1)
        lineitem = db.table("lineitem")
        lineitem.set_primary_btree(["l_orderkey", "l_linenumber"])
        lineitem.create_secondary_btree("ix_ship", ["l_shipdate"])
        lineitem.create_secondary_columnstore("csi", rowgroup_size=2048)
        return db

    def test_update_visible_through_every_access_path(self):
        db = self.make_hybrid()
        executor = Executor(db)
        executor.execute(
            "UPDATE TOP (20) lineitem SET l_quantity = 999 "
            "WHERE l_shipdate >= '1992-01-01'")
        # Count through the CSI (scan) and through the B+ tree (seek).
        csi_count = executor.execute(
            "SELECT count(*) FROM lineitem WHERE l_quantity = 999").scalar()
        assert csi_count == 20

    def test_delete_then_totals_consistent(self):
        db = self.make_hybrid()
        executor = Executor(db)
        before = executor.execute("SELECT count(*) FROM lineitem").scalar()
        deleted = executor.execute(
            "DELETE FROM lineitem WHERE l_shipdate < '1992-06-01'")
        after = executor.execute("SELECT count(*) FROM lineitem").scalar()
        assert after == before - deleted.rows_affected

    def test_insert_visible_everywhere(self):
        db = self.make_hybrid()
        executor = Executor(db)
        executor.execute(
            "INSERT INTO lineitem VALUES (999999, 1, 1, 1, 5.0, 100.0, "
            "0.01, 0.02, 'N', 'O', '1997-05-05', '1997-06-01', "
            "'1997-06-10', 'NONE', 'AIR', 'inserted')")
        assert executor.execute(
            "SELECT count(*) FROM lineitem WHERE l_orderkey = 999999"
        ).scalar() == 1


@pytest.mark.parametrize("script", [
    "quickstart.py",
    "whatif_exploration.py",
    "hybrid_plans.py",
])
def test_example_scripts_run(script, capsys):
    """Smoke-run the fast example scripts end to end."""
    path = EXAMPLES_DIR / script
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert len(out) > 100
