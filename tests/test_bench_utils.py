"""Tests for the bench harness utilities: reporting, runner, and the
Figure 9 evaluation machinery."""

import pytest

from repro.bench.reporting import (
    SPEEDUP_BUCKET_LABELS,
    find_crossover,
    format_histogram,
    format_table,
    geometric_mean,
    speedup_histogram,
    summarize_speedups,
)
from repro.bench.runner import (
    DesignComparison,
    Measurement,
    measure,
    profile_statement,
    scan_lock_footprint,
    update_lock_footprint,
)
from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.executor import Executor
from repro.storage.database import Database


class TestSpeedupHistogram:
    def test_bucket_edges(self):
        counts = speedup_histogram([0.4, 0.7, 1.0, 1.4, 1.9, 4.0, 9.0, 50.0])
        assert counts == [1, 1, 1, 1, 1, 1, 1, 1]

    def test_boundary_values_inclusive(self):
        counts = speedup_histogram([0.5, 0.8, 1.2, 10.0])
        assert counts == [1, 1, 1, 0, 0, 0, 1, 0]

    def test_over_ten(self):
        assert speedup_histogram([10.01, 100])[-1] == 2

    def test_empty(self):
        assert speedup_histogram([]) == [0] * 8

    def test_label_alignment(self):
        assert len(SPEEDUP_BUCKET_LABELS) == len(speedup_histogram([]))


class TestFormatting:
    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [(1, 2.5), (300, "x")],
                            title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bbb" in lines[1]
        assert len(lines) == 5

    def test_format_histogram(self):
        text = format_histogram("H", [1, 0, 2, 0, 0, 0, 0, 3])
        assert "###" in text

    def test_cell_float_rendering(self):
        text = format_table(["x"], [(0.000123,), (12345.6,)])
        assert "0.000123" in text
        assert "1.23e+04" in text


class TestCrossover:
    def test_simple_crossover(self):
        x = [1, 2, 3, 4]
        a = [1, 2, 4, 8]
        b = [5, 5, 5, 5]
        crossover = find_crossover(x, a, b)
        assert 2 < crossover < 4

    def test_no_crossover(self):
        assert find_crossover([1, 2], [1, 1], [5, 5]) is None

    def test_crossed_from_start(self):
        assert find_crossover([1, 2], [9, 9], [5, 5]) == 1

    def test_log_interpolation_between_positive_points(self):
        crossover = find_crossover([1, 100], [1, 200], [100, 100])
        assert 1 < crossover < 100

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            find_crossover([1], [1, 2], [1, 2])


class TestStats:
    def test_geometric_mean(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([]) != geometric_mean([])  # nan

    def test_summarize(self):
        stats = summarize_speedups([0.5, 1, 2, 20, 40])
        assert stats["min"] == 0.5
        assert stats["max"] == 40
        assert stats["over_10x"] == 2


def small_executor():
    db = Database()
    table = db.create_table(TableSchema("t", [
        Column("a", INT, nullable=False), Column("b", INT)]))
    table.bulk_load([(i, i % 5) for i in range(2000)])
    table.set_primary_btree(["a"])
    return Executor(db)


class TestRunner:
    def test_measure_averages(self):
        executor = small_executor()
        measurement = measure(executor, "SELECT sum(b) FROM t", repeats=2)
        assert isinstance(measurement, Measurement)
        assert measurement.cpu_ms > 0
        assert measurement.runs == 2
        assert measurement.rows == 1

    def test_profile_statement_splits_cpu_io(self):
        executor = small_executor()
        profile = profile_statement(executor, "SELECT sum(b) FROM t",
                                    tag="q", cold=True)
        assert profile.cpu_ms > 0
        assert profile.io_ms >= 0
        assert profile.tag == "q"

    def test_design_comparison_speedups(self):
        comparison = DesignComparison(design_names=["x", "y"])
        comparison.record("q0", "x", 10.0)
        comparison.record("q0", "y", 2.0)
        assert comparison.speedups(over="y", base="x") == [5.0]

    def test_lock_footprints(self):
        resource = update_lock_footprint("t", "k", 99, bucket_width=10)
        assert resource == ("range", "t", "k", 9)
        groups = scan_lock_footprint("t", 3)
        assert len(groups) == 3
        assert groups[0] == ("rowgroup", "t", 0)


class TestFigure9Machinery:
    def test_evaluate_tiny_workload(self):
        from repro.bench.figure9 import evaluate_workload

        def factory():
            db = Database()
            table = db.create_table(TableSchema("f", [
                Column("k", INT, nullable=False),
                Column("v", INT, nullable=False),
                Column("g", INT, nullable=False),
            ]))
            import random
            rng = random.Random(1)
            table.bulk_load([
                (i, rng.randrange(1000), rng.randrange(4))
                for i in range(20_000)
            ])
            table.set_primary_btree(["k"])
            return db, [
                "SELECT sum(v) FROM f WHERE v = 7",
                "SELECT g, sum(v) FROM f GROUP BY g",
            ]

        evaluation = evaluate_workload("tiny", factory)
        assert set(evaluation.cpu_ms) == {"hybrid", "csi_only",
                                          "btree_only"}
        assert all(len(v) == 2 for v in evaluation.cpu_ms.values())
        assert evaluation.csi_leaf_pct + evaluation.btree_leaf_pct == \
            pytest.approx(100.0)
        # hybrid should not lose to either baseline in total.
        hybrid = sum(evaluation.cpu_ms["hybrid"])
        assert hybrid <= sum(evaluation.cpu_ms["csi_only"]) * 1.05
        assert hybrid <= sum(evaluation.cpu_ms["btree_only"]) * 1.05
