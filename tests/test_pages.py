"""On-disk page format: value codec, page framing, snapshot round trips.

The contract under test: ``save`` followed by ``open``/``recover``
reproduces the database *byte-identically* (state_digest equality) for
every physical design — heap, clustered B+ tree, primary and secondary
columnstores with live delta-store / delete-buffer / deleted-bitmap
state — and every corruption of a page is detected by its checksum.
"""

import os

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.storage.pages import (
    PAGE_HEADER,
    build_page,
    load_snapshot,
    pack_value,
    parse_page,
    snapshot_bytes,
    unpack_value,
)
from repro.storage.recovery import state_digest


def roundtrip(value):
    buf = bytearray()
    pack_value(value, buf)
    decoded, consumed = unpack_value(bytes(buf), 0)
    assert consumed == len(buf)
    return decoded


class TestValueCodec:
    def test_scalars(self):
        for value in (None, True, False, 0, 1, -1, 2**40, -(2**40),
                      2**100, -(2**100), 0.0, -1.5, 3.14159,
                      "", "hello", "ünïcode", b"", b"\x00\xff raw"):
            assert roundtrip(value) == value

    def test_containers(self):
        assert roundtrip([1, "a", None]) == [1, "a", None]
        assert roundtrip((1, (2, 3))) == (1, (2, 3))
        assert roundtrip({"b": 1, "a": (2,)}) == {"b": 1, "a": (2,)}
        assert roundtrip([]) == []
        assert roundtrip({}) == {}

    def test_ndarrays(self):
        for array in (np.array([1, 2, 3], dtype=np.int64),
                      np.array([1.5, -2.5]),
                      np.array([], dtype=np.int64),
                      np.array([True, False])):
            decoded = roundtrip(array)
            assert isinstance(decoded, np.ndarray)
            assert decoded.dtype == array.dtype
            assert np.array_equal(decoded, array)

    def test_object_array(self):
        array = np.array(["x", None, 3], dtype=object)
        decoded = roundtrip(array)
        assert decoded.dtype == object
        assert list(decoded) == ["x", None, 3]

    def test_deterministic_dict_order(self):
        one, two = bytearray(), bytearray()
        pack_value({"a": 1, "b": 2}, one)
        pack_value({"b": 2, "a": 1}, two)
        assert bytes(one) == bytes(two)

    def test_truncated_rejected(self):
        buf = bytearray()
        pack_value({"key": [1, 2, 3]}, buf)
        for cut in range(len(buf)):
            with pytest.raises(StorageError):
                unpack_value(bytes(buf[:cut]), 0)


class TestPageFraming:
    def test_roundtrip(self):
        page_bytes = build_page(17, 3, 9, {"rows": [1, 2]})
        page, consumed = parse_page(page_bytes)
        assert consumed == len(page_bytes)
        assert (page.page_type, page.page_id, page.lsn) == (3, 17, 9)
        assert page.payload == {"rows": [1, 2]}

    def test_every_byte_corruption_detected(self):
        page_bytes = build_page(1, 3, 2, {"k": "payload"})
        for position in range(len(page_bytes)):
            corrupt = bytearray(page_bytes)
            corrupt[position] ^= 0xFF
            with pytest.raises(StorageError):
                parse_page(bytes(corrupt))

    def test_truncation_detected(self):
        page_bytes = build_page(1, 3, 0, {"k": 1})
        with pytest.raises(StorageError):
            parse_page(page_bytes[:PAGE_HEADER.size - 1])
        with pytest.raises(StorageError):
            parse_page(page_bytes[:-1])


def make_database(design: str) -> Database:
    database = Database("snap")
    table = database.create_table(TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT),
        Column("s", varchar(8)),
    ]))
    table.bulk_load([(i, i % 7, f"s{i % 3}") for i in range(500)])
    if design == "heap":
        pass
    elif design == "btree":
        table.set_primary_btree(["a"])
        table.create_secondary_btree("ix_b", ["b"], included_columns=["s"])
    elif design == "csi":
        table.set_primary_columnstore(rowgroup_size=128)
    elif design == "hybrid":
        table.set_primary_btree(["a"])
        table.create_secondary_columnstore("csi_t", rowgroup_size=128)
    # DML so columnstores carry live delta / delete-buffer / bitmap state
    # and heaps/btrees see post-load churn.
    executor = Executor(database)
    executor.execute("INSERT INTO t (a, b, s) VALUES (1000, 1, 'new'), "
                     "(1001, 2, 'new')")
    executor.execute("DELETE FROM t WHERE a < 20")
    executor.execute("UPDATE t SET b = 99 WHERE a BETWEEN 100 AND 140")
    return database


@pytest.mark.parametrize("design", ["heap", "btree", "csi", "hybrid"])
class TestSnapshotRoundTrip:
    def test_digest_identical(self, design):
        database = make_database(design)
        blob = snapshot_bytes(database)
        restored, meta = load_snapshot(blob)
        assert meta["pages_read"] > 1
        assert state_digest(restored) == state_digest(database)

    def test_logical_state_identical(self, design, tmp_path):
        database = make_database(design)
        database.save(str(tmp_path))
        restored, _ = load_snapshot(str(tmp_path / "snapshot.db"))
        table, copy = database.table("t"), restored.table("t")
        assert copy.rows_with_rids() == table.rows_with_rids()
        assert copy._next_rid == table._next_rid
        assert copy.modification_counter == table.modification_counter
        assert [i.name for i in copy.all_indexes] == [
            i.name for i in table.all_indexes]
        # Queries answer identically through every access path.
        for sql in ("SELECT sum(b) FROM t",
                    "SELECT count(*) FROM t WHERE a BETWEEN 100 AND 300"):
            assert (Executor(restored).execute(sql).rows
                    == Executor(database).execute(sql).rows)

    def test_corruption_detected(self, design, tmp_path):
        database = make_database(design)
        path = database.save(str(tmp_path))
        blob = bytearray(open(path, "rb").read())
        blob[len(blob) // 2] ^= 0xFF
        with pytest.raises(StorageError):
            load_snapshot(bytes(blob))

    def test_trailing_garbage_detected(self, design):
        database = make_database(design)
        blob = snapshot_bytes(database) + b"x"
        with pytest.raises(StorageError):
            load_snapshot(blob)


class TestSnapshotProtocol:
    def test_save_is_atomic_publish(self, tmp_path):
        database = make_database("hybrid")
        path = database.save(str(tmp_path))
        assert os.path.basename(path) == "snapshot.db"
        assert not os.path.exists(str(tmp_path / "snapshot.tmp"))
        # Overwrite: save again after more DML replaces it atomically.
        Executor(database).execute(
            "INSERT INTO t (a, b, s) VALUES (5000, 5, 'x')")
        database.save(str(tmp_path))
        restored, _ = load_snapshot(path)
        assert state_digest(restored) == state_digest(database)

    def test_rid_allocation_continues_after_reload(self, tmp_path):
        database = make_database("btree")
        database.save(str(tmp_path))
        restored, _ = load_snapshot(str(tmp_path / "snapshot.db"))
        rid = restored.table("t").insert_row((9999, 1, "z"))
        assert rid == database.table("t")._next_rid

    def test_fresh_object_ids_above_restored(self, tmp_path):
        # Columnstore object ids key the shared segment cache; a fresh
        # index built after a restore must never reuse a restored id.
        database = make_database("hybrid")
        database.save(str(tmp_path))
        restored, _ = load_snapshot(str(tmp_path / "snapshot.db"))
        old_id = restored.table("t").secondary_indexes["csi_t"].object_id
        new_index = restored.table("t").create_secondary_columnstore(
            "csi_new", rowgroup_size=128, allow_multiple=True)
        assert new_index.object_id > old_id
