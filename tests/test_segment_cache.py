"""Tests for the decoded-segment cache: LRU/budget mechanics, scan
integration (hit/miss accounting, charge skipping), invalidation on
structural changes, and correctness of cached vs uncached scans."""

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.batch import concat_batches
from repro.engine.executor import Executor
from repro.engine.metrics import ExecutionContext
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.database import Database
from repro.storage.segment_cache import DecodedSegmentCache


def schema_ab():
    return TableSchema("t", [Column("a", INT, nullable=False), Column("b", INT)])


def make_rows(n, modulo=10):
    return [(i, (i, i % modulo)) for i in range(n)]


def build_cached_csi(n=4000, rowgroup_size=1000, is_primary=True,
                     budget=64 << 20):
    index = ColumnstoreIndex.build(
        "csi", schema_ab(), make_rows(n), is_primary=is_primary,
        rowgroup_size=rowgroup_size,
    )
    index.segment_cache = DecodedSegmentCache(budget_bytes=budget)
    return index


def scan_all(index, columns=("a",), **kwargs):
    return concat_batches(index.scan(list(columns), **kwargs))


class TestCacheUnit:
    def test_get_miss_then_hit(self):
        cache = DecodedSegmentCache(budget_bytes=1 << 20)
        key = (1, 0, "a")
        assert cache.get(key) is None
        arr = np.arange(10, dtype=np.int64)
        cache.put(key, arr)
        assert cache.get(key) is arr
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_ratio == pytest.approx(0.5)

    def test_budget_evicts_lru_first(self):
        # Each array is 800 bytes; budget fits exactly two.
        cache = DecodedSegmentCache(budget_bytes=1600)
        a, b, c = (np.arange(100, dtype=np.int64) for _ in range(3))
        cache.put((1, 0, "a"), a)
        cache.put((1, 1, "a"), b)
        cache.get((1, 0, "a"))  # refresh: (1, 1) is now LRU
        assert cache.put((1, 2, "a"), c) == 1
        assert (1, 1, "a") not in cache
        assert (1, 0, "a") in cache and (1, 2, "a") in cache
        assert cache.stats.evictions == 1
        assert cache.bytes_cached == 1600

    def test_oversized_array_not_cached(self):
        cache = DecodedSegmentCache(budget_bytes=100)
        assert cache.put((1, 0, "a"), np.arange(1000, dtype=np.int64)) == 0
        assert len(cache) == 0

    def test_replace_same_key_keeps_budget_accounting(self):
        cache = DecodedSegmentCache(budget_bytes=1 << 20)
        cache.put((1, 0, "a"), np.arange(100, dtype=np.int64))
        cache.put((1, 0, "a"), np.arange(50, dtype=np.int64))
        assert len(cache) == 1
        assert cache.bytes_cached == 400

    def test_object_dtype_budget_estimate(self):
        cache = DecodedSegmentCache(budget_bytes=1 << 20)
        strings = np.empty(10, dtype=object)
        strings[:] = ["x"] * 10
        cache.put((1, 0, "s"), strings)
        assert cache.bytes_cached == 240  # 24 bytes per element heuristic

    def test_invalidate_object_only_hits_that_object(self):
        cache = DecodedSegmentCache(budget_bytes=1 << 20)
        cache.put((1, 0, "a"), np.arange(10, dtype=np.int64))
        cache.put((2, 0, "a"), np.arange(10, dtype=np.int64))
        assert cache.invalidate_object(1) == 1
        assert (1, 0, "a") not in cache
        assert (2, 0, "a") in cache
        assert cache.stats.invalidations == 1

    def test_clear_resets_entries_and_stats(self):
        cache = DecodedSegmentCache(budget_bytes=1 << 20)
        cache.put((1, 0, "a"), np.arange(10, dtype=np.int64))
        cache.get((1, 0, "a"))
        cache.clear()
        assert len(cache) == 0
        assert cache.bytes_cached == 0
        assert cache.stats.hits == 0 and cache.stats.misses == 0

    def test_reset_stats_keeps_entries(self):
        cache = DecodedSegmentCache(budget_bytes=1 << 20)
        cache.put((1, 0, "a"), np.arange(10, dtype=np.int64))
        cache.get((1, 0, "a"))
        cache.reset_stats()
        assert cache.stats.hits == 0
        assert len(cache) == 1

    def test_disabled_cache_is_inert(self):
        cache = DecodedSegmentCache(budget_bytes=1 << 20, enabled=False)
        cache.put((1, 0, "a"), np.arange(10, dtype=np.int64))
        assert cache.get((1, 0, "a")) is None
        assert len(cache) == 0
        assert cache.stats.misses == 0

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(StorageError):
            DecodedSegmentCache(budget_bytes=0)


class TestScanIntegration:
    def test_second_scan_hits_and_skips_decode_charge(self):
        index = build_cached_csi(n=4000, rowgroup_size=1000)
        ctx_cold = ExecutionContext()
        scan_all(index, ["a"], ctx=ctx_cold)
        assert ctx_cold.metrics.segment_cache_misses == 4
        assert ctx_cold.metrics.segment_cache_hits == 0
        ctx_warm = ExecutionContext()
        scan_all(index, ["a"], ctx=ctx_warm)
        assert ctx_warm.metrics.segment_cache_hits == 4
        assert ctx_warm.metrics.segment_cache_misses == 0
        # The warm scan pays lookup CPU instead of decode CPU and skips
        # the logical data-read accounting for cached segments.
        assert ctx_warm.metrics.cpu_ms < ctx_cold.metrics.cpu_ms
        assert ctx_warm.metrics.data_read_mb < ctx_cold.metrics.data_read_mb

    def test_scan_results_identical_cache_on_vs_off(self):
        cached = build_cached_csi(n=3000, rowgroup_size=1000,
                                  is_primary=False)
        uncached = ColumnstoreIndex.build(
            "csi2", schema_ab(), make_rows(3000), is_primary=False,
            rowgroup_size=1000)
        # Mix in a delta row and a buffered delete on both.
        for index in (cached, uncached):
            index.insert(9000, (9000, 1))
            index.delete(7, (7, 7))
        for _ in range(2):  # second pass serves from the cache
            got = scan_all(cached, ["a", "b"])
            want = scan_all(uncached, ["a", "b"])
            for col in ("a", "b"):
                assert sorted(got.column(col).tolist()) == \
                    sorted(want.column(col).tolist())

    def test_delete_visible_through_warm_cache(self):
        # Delete bitmaps apply after cached decode, so a delete between
        # two scans must be visible without any invalidation.
        index = build_cached_csi(n=1000, rowgroup_size=500)
        scan_all(index, ["a"])
        index.delete(3, (3, 3))
        merged = scan_all(index, ["a"])
        assert 3 not in merged.column("a").tolist()
        assert index.segment_cache.stats.hits > 0

    def test_rebuild_invalidates(self):
        index = build_cached_csi(n=2000, rowgroup_size=1000)
        scan_all(index, ["a"])
        assert len(index.segment_cache) == 2
        index.delete(3, (3, 3))
        index.rebuild()
        assert len(index.segment_cache) == 0
        assert index.segment_cache.stats.invalidations == 2
        merged = scan_all(index, ["a"])
        assert sorted(merged.column("a").tolist()) == \
            [i for i in range(2000) if i != 3]

    def test_move_tuples_invalidates(self):
        index = build_cached_csi(n=1000, rowgroup_size=1000)
        scan_all(index, ["a"])
        assert len(index.segment_cache) == 1
        index.insert(5000, (5000, 0))
        index.move_tuples()
        assert len(index.segment_cache) == 0
        merged = scan_all(index, ["a"])
        assert 5000 in merged.column("a").tolist()

    def test_compact_delete_buffer_invalidates(self):
        index = build_cached_csi(n=1000, rowgroup_size=500,
                                 is_primary=False)
        index.delete_many(range(5))
        scan_all(index, ["a"])
        assert len(index.segment_cache) == 2
        index.compact_delete_buffer()
        assert len(index.segment_cache) == 0
        merged = scan_all(index, ["a"])
        assert sorted(merged.column("a").tolist()) == list(range(5, 1000))

    def test_tiny_budget_records_evictions(self):
        # Budget fits roughly one decoded int64 segment (1000 rows =
        # 8000 bytes), so scanning two columns over four groups evicts.
        index = build_cached_csi(n=4000, rowgroup_size=1000, budget=10_000)
        ctx = ExecutionContext()
        scan_all(index, ["a", "b"], ctx=ctx)
        scan_all(index, ["a", "b"], ctx=ctx)
        assert ctx.metrics.segment_cache_evictions > 0
        assert index.segment_cache.bytes_cached <= 10_000

    def test_uncached_index_charges_like_seed(self):
        cached = build_cached_csi(n=2000, rowgroup_size=1000)
        cached.segment_cache.enabled = False
        plain = ColumnstoreIndex.build(
            "csi2", schema_ab(), make_rows(2000), is_primary=True,
            rowgroup_size=1000)
        for index in (cached, plain):
            ctx = ExecutionContext()
            scan_all(index, ["a"], ctx=ctx)
            scan_all(index, ["a"], ctx=ctx)
            assert ctx.metrics.segment_cache_hits == 0
            assert ctx.metrics.segment_cache_misses == 0
        assert len(cached.segment_cache) == 0


class TestDatabaseWiring:
    def _make_db(self, **kwargs):
        db = Database("cachedb", **kwargs)
        table = db.create_table(TableSchema("t", [
            Column("a", INT, nullable=False),
            Column("s", varchar(8)),
        ]))
        table.bulk_load([(i, f"v{i % 7}") for i in range(2000)])
        return db

    def test_executor_reports_hits_on_second_run(self):
        db = self._make_db(segment_cache_enabled=True)
        db.table("t").set_primary_columnstore(rowgroup_size=500)
        executor = Executor(db)
        sql = "SELECT sum(a) FROM t"
        cold = executor.execute(sql)
        warm = executor.execute(sql)
        assert cold.metrics.segment_cache_hits == 0
        assert cold.metrics.segment_cache_misses > 0
        assert warm.metrics.segment_cache_hits > 0
        assert warm.scalar() == cold.scalar()
        assert warm.metrics.elapsed_ms < cold.metrics.elapsed_ms

    def test_cache_disabled_by_default(self):
        db = self._make_db()
        assert not db.segment_cache.enabled
        db.table("t").set_primary_columnstore(rowgroup_size=500)
        executor = Executor(db)
        first = executor.execute("SELECT sum(a) FROM t")
        second = executor.execute("SELECT sum(a) FROM t")
        assert first.metrics.elapsed_ms == second.metrics.elapsed_ms
        assert second.metrics.segment_cache_hits == 0

    def test_indexes_share_database_cache(self):
        db = self._make_db(segment_cache_enabled=True)
        csi = db.table("t").set_primary_columnstore(rowgroup_size=500)
        assert csi.segment_cache is db.segment_cache
        csi2 = db.table("t").create_secondary_columnstore(
            "csi2", columns=["a"], rowgroup_size=500, allow_multiple=True)
        assert csi2.segment_cache is db.segment_cache
        # Distinct object ids keep the two indexes' entries apart.
        assert csi.object_id != csi2.object_id

    def test_drop_index_evicts_entries(self):
        db = self._make_db(segment_cache_enabled=True)
        table = db.table("t")
        table.create_secondary_columnstore("csi2", rowgroup_size=500)
        list(table.secondary_indexes["csi2"].scan(["a"]))
        assert len(db.segment_cache) > 0
        table.drop_index("csi2")
        assert len(db.segment_cache) == 0

    def test_drop_table_evicts_entries(self):
        db = self._make_db(segment_cache_enabled=True)
        db.table("t").set_primary_columnstore(rowgroup_size=500)
        list(db.table("t").primary.scan(["a"]))
        assert len(db.segment_cache) > 0
        db.drop_table("t")
        assert len(db.segment_cache) == 0

    def test_replacing_primary_evicts_entries(self):
        db = self._make_db(segment_cache_enabled=True)
        db.table("t").set_primary_columnstore(rowgroup_size=500)
        list(db.table("t").primary.scan(["a"]))
        assert len(db.segment_cache) > 0
        db.table("t").set_primary_btree(["a"])
        assert len(db.segment_cache) == 0
