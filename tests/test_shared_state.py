"""Regression tests for the shared-state fixes behind the serving layer.

Each class targets one of the bugs the multi-session work exposed: the
process-global encoded-execution leak, the unsynchronized segment
cache, the statement-clock / usage-stamp races, and the fault
injector's shared suspend depth and one-shot arming race.
"""

import threading

import numpy as np
import pytest

from repro.engine.encoded import (
    encoded_execution,
    encoded_execution_enabled,
    set_encoded_execution,
)
from repro.engine.costs import CostModel
from repro.engine.metrics import ExecutionContext
from repro.storage.faults import FaultInjector, InjectedFault
from repro.storage.segment_cache import DecodedSegmentCache
from repro.storage.telemetry import IndexUsageStats, LogicalClock


class TestEncodedExecutionScoping:
    def teardown_method(self):
        set_encoded_execution(True)

    def test_context_manager_restores_previous_value(self):
        set_encoded_execution(True)
        with encoded_execution(False):
            assert not encoded_execution_enabled()
        assert encoded_execution_enabled()

    def test_context_manager_restores_on_exception(self):
        set_encoded_execution(True)
        with pytest.raises(RuntimeError):
            with encoded_execution(False):
                raise RuntimeError("boom")
        assert encoded_execution_enabled()

    def test_set_returns_previous_value(self):
        set_encoded_execution(True)
        assert set_encoded_execution(False) is True
        assert set_encoded_execution(True) is False

    def test_per_context_override_beats_global(self):
        model = CostModel()
        set_encoded_execution(True)
        ctx_off = ExecutionContext(model, encoded_execution=False)
        ctx_on = ExecutionContext(model, encoded_execution=True)
        ctx_default = ExecutionContext(model)
        assert not ctx_off.encoded_enabled()
        assert ctx_on.encoded_enabled()
        assert ctx_default.encoded_enabled()
        set_encoded_execution(False)
        assert not ctx_default.encoded_enabled()
        assert ctx_on.encoded_enabled()

    def test_worker_context_inherits_override(self):
        model = CostModel()
        set_encoded_execution(True)
        ctx = ExecutionContext(model, encoded_execution=False)
        worker = ctx.spawn_worker()
        assert not worker.encoded_enabled()


class TestSegmentCacheThreadSafety:
    N_THREADS = 8
    OPS_PER_THREAD = 300

    def test_concurrent_get_put_invalidate_stays_consistent(self):
        cache = DecodedSegmentCache(budget_bytes=64 * 1024)
        arrays = {i: np.arange(128, dtype=np.int64) for i in range(16)}
        errors = []

        def hammer(seed):
            try:
                for i in range(self.OPS_PER_THREAD):
                    key = ((seed + i) % 4, i % 4, "col1")
                    if i % 7 == 0:
                        cache.invalidate_object(key[0])
                    elif i % 3 == 0:
                        cache.put(key, arrays[i % 16])
                    else:
                        hit = cache.get(key)
                        if hit is not None:
                            assert len(hit) == 128
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        # Byte accounting must reconcile with the surviving entries.
        expected = sum(a.nbytes for a in cache._entries.values())
        assert cache.bytes_cached == expected
        assert cache.bytes_cached <= cache.budget_bytes
        lookups = cache.stats.hits + cache.stats.misses
        assert lookups > 0

    def test_clear_while_reading(self):
        cache = DecodedSegmentCache(budget_bytes=64 * 1024)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    cache.put((1, 0, "c"), np.arange(64, dtype=np.int64))
                    cache.get((1, 0, "c"))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(200):
            cache.clear()
        stop.set()
        thread.join()
        assert not errors, errors[0]


class TestLogicalClockConcurrency:
    def test_concurrent_advances_never_lose_or_repeat_a_stamp(self):
        clock = LogicalClock()
        n_threads, n_advances = 8, 500
        stamps = [[] for _ in range(n_threads)]

        def advance(slot):
            for _ in range(n_advances):
                stamps[slot].append(clock.advance())

        threads = [threading.Thread(target=advance, args=(n,))
                   for n in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        flat = [s for slot in stamps for s in slot]
        assert clock.now == n_threads * n_advances
        assert len(set(flat)) == len(flat)
        assert set(flat) == set(range(1, n_threads * n_advances + 1))

    def test_stamp_is_thread_local(self):
        clock = LogicalClock()
        mine = clock.advance()
        seen = {}

        def other():
            seen["stamp"] = clock.advance()
            seen["their_view"] = clock.stamp

        thread = threading.Thread(target=other)
        thread.start()
        thread.join()
        # The other thread moved the global clock, but this thread's
        # stamp still names *its* statement — the property the global
        # `now`-based stamping violated.
        assert clock.now == 2
        assert clock.stamp == mine == 1
        assert seen["their_view"] == seen["stamp"] == 2


class TestUsageStampDedup:
    def test_same_statement_counts_once(self):
        clock = LogicalClock()
        usage = IndexUsageStats(clock)
        clock.advance()
        usage.record_update()
        usage.record_update()  # same statement: delete+insert pair
        assert usage.user_updates == 1

    def test_interleaved_sessions_each_count_once(self):
        clock = LogicalClock()
        usage = IndexUsageStats(clock)
        barrier = threading.Barrier(2)

        def session():
            barrier.wait()
            clock.advance()
            for _ in range(3):  # one statement, three maintenance ops
                usage.record_update()

        threads = [threading.Thread(target=session) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        # Old scalar dedup ping-pongs under interleaving (over- or
        # under-counting); the per-stamp window counts each statement
        # exactly once.
        assert usage.user_updates == 2
        assert usage.last_user_update == 2

    def test_without_clock_every_call_counts(self):
        usage = IndexUsageStats()
        usage.record_update()
        usage.record_update()
        assert usage.user_updates == 2

    def test_reset_clears_dedup_window(self):
        clock = LogicalClock()
        usage = IndexUsageStats(clock)
        clock.advance()
        usage.record_update()
        usage.reset()
        usage.record_update()
        assert usage.user_updates == 1


class TestFaultInjectorThreadSafety:
    def test_one_shot_fires_exactly_once_across_racing_threads(self):
        injector = FaultInjector()
        injector.arm("heap.insert", on_hit=20)
        n_threads, hits_each = 8, 10
        fired = []
        barrier = threading.Barrier(n_threads)

        def worker():
            barrier.wait()
            for _ in range(hits_each):
                try:
                    injector.hit("heap.insert")
                except InjectedFault:
                    fired.append(threading.get_ident())

        threads = [threading.Thread(target=worker)
                   for _ in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(fired) == 1
        assert injector.injected["heap.insert"] == 1
        assert injector.hits["heap.insert"] == n_threads * hits_each
        assert "heap.insert" not in injector.armed_points()

    def test_suspension_is_thread_local(self):
        injector = FaultInjector()
        injector.arm("heap.insert", on_hit=1)
        result = {}

        def other_session():
            try:
                injector.hit("heap.insert")
                result["fired"] = False
            except InjectedFault:
                result["fired"] = True

        with injector.suspended():
            # This thread (mid-rollback) is masked...
            injector.hit("heap.insert")
            assert injector.injected["heap.insert"] == 0
            # ...but another session's foreground mutation is not.
            thread = threading.Thread(target=other_session)
            thread.start()
            thread.join()
        assert result["fired"] is True
        assert injector.injected["heap.insert"] == 1

    def test_suspension_nests_and_unwinds(self):
        injector = FaultInjector()
        with injector.suspended():
            with injector.suspended():
                assert not injector.active
            assert not injector.active
        assert injector.active

    def test_concurrent_arm_and_hit_do_not_corrupt(self):
        injector = FaultInjector()
        errors = []

        def armer():
            try:
                for i in range(200):
                    injector.arm("btree.insert", on_hit=2)
                    injector.disarm("btree.insert")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def hitter():
            try:
                for _ in range(200):
                    try:
                        injector.hit("btree.insert")
                    except InjectedFault:
                        pass
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=armer),
                   threading.Thread(target=hitter)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        assert injector.hits["btree.insert"] == 200


class TestBufferPoolThreadSafety:
    """The PR 9 satellite: BufferPool is shared by every serving session
    and morsel worker once paging is on, so touch/get_or_load/
    evict_object/clear must hold the pool lock — an unsynchronized
    ``move_to_end`` racing a ``popitem`` corrupts the OrderedDict."""

    N_THREADS = 8
    OPS_PER_THREAD = 400

    def test_concurrent_touch_load_evict_stays_consistent(self):
        from repro.storage.bufferpool import PAGE_BYTES, BufferPool

        pool = BufferPool(budget_bytes=32 * PAGE_BYTES)
        errors = []

        def hammer(seed):
            try:
                for i in range(self.OPS_PER_THREAD):
                    oid = (seed + i) % 4
                    page = (oid, i % 16)
                    if i % 11 == 0:
                        pool.evict_object(oid)
                    elif i % 5 == 0:
                        value = pool.get_or_load(
                            page, lambda: (b"x" * 64, PAGE_BYTES), pin=True)
                        assert value == b"x" * 64
                        pool.unpin(page)
                    elif i % 17 == 0:
                        pool.evict_all()
                    else:
                        pool.touch([page])
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(self.N_THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors, errors[0]
        pool.check_consistency()
        assert pool.bytes_resident <= pool.budget_bytes
        assert pool.hits + pool.misses > 0

    def test_clear_while_faulting(self):
        from repro.storage.bufferpool import PAGE_BYTES, BufferPool

        pool = BufferPool(budget_bytes=8 * PAGE_BYTES)
        stop = threading.Event()
        errors = []

        def reader():
            try:
                while not stop.is_set():
                    pool.get_or_load((1, 0),
                                     lambda: (b"v", PAGE_BYTES), pin=True)
                    pool.unpin((1, 0))
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        thread = threading.Thread(target=reader)
        thread.start()
        for _ in range(300):
            pool.clear()
        stop.set()
        thread.join()
        assert not errors, errors[0]
        pool.check_consistency()
