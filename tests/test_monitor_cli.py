"""CLI coverage for ``repro monitor`` (satellite of the observability
PR): the default DMV report, ``--snapshot``, ``--prometheus``,
``--watch N``, and ``--events-jsonl`` export."""

import json

from repro.__main__ import main
from repro.engine.dmv import SYSTEM_VIEW_NAMES

TINY = ["monitor", "--scale", "0.05", "--queries", "2"]


def _run(capsys, extra):
    assert main(TINY + extra) == 0
    return capsys.readouterr().out


class TestMonitorCli:
    def test_default_report_includes_observability_panels(self, capsys):
        out = _run(capsys, [])
        assert "dm_os_wait_stats (top waits)" in out
        assert "dm_xe_ring_buffer (most recent events)" in out
        assert "statement_begin" in out
        assert "telemetry history (interval=" in out
        assert "logical clock:" in out

    def test_snapshot_is_json_with_every_view(self, capsys):
        out = _run(capsys, ["--snapshot"])
        snap = json.loads(out)
        assert set(SYSTEM_VIEW_NAMES) <= set(snap)
        assert snap["logical_clock"] > 0
        wait_rows = snap["dm_os_wait_stats"]
        assert any(row["wait_type"] == "LATCH_EX" for row in wait_rows)
        assert any(row["event_name"] == "statement_end"
                   for row in snap["dm_xe_ring_buffer"])

    def test_prometheus_includes_wait_histogram(self, capsys):
        out = _run(capsys, ["--prometheus"])
        assert 'repro_wait_time_ms_bucket{' in out
        assert 'le="+Inf"' in out
        assert "repro_wait_time_ms_sum" in out
        assert "repro_xe_events_emitted" in out
        for line in out.splitlines():
            assert line.startswith(("#", "repro_"))

    def test_watch_prints_each_round_and_history(self, capsys):
        out = _run(capsys, ["--watch", "2"])
        assert "=== round 1/2 ===" in out
        assert "=== round 2/2 ===" in out
        # Every watch round closes an interval, so the history panel of
        # the final round shows at least two samples (two clock rows).
        history = out.rsplit("telemetry history", 1)[1]
        assert len(history.strip().splitlines()) >= 4

    def test_events_jsonl_export(self, capsys, tmp_path):
        path = tmp_path / "events.jsonl"
        out = _run(capsys, ["--events-jsonl", str(path)])
        assert f"events written to {path}" in out
        lines = path.read_text().splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert any(e["name"] == "statement_begin" for e in events)
        assert all({"event_id", "timestamp", "name", "session_id",
                    "payload"} <= set(e) for e in events)
