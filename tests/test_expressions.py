"""Tests for expression evaluation (row + batch) and sargable analysis."""

import numpy as np
import pytest

from repro.core.errors import ExecutionError
from repro.engine.batch import Batch
from repro.engine.expressions import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    InList,
    Literal,
    Not,
    Or,
    compile_row_predicate,
    conjuncts,
    elimination_ranges,
    eval_batch,
    eval_row,
    extract_column_ranges,
    make_and,
)


def col(name):
    return ColumnRef(name)


def lit(value):
    return Literal(value)


POS = {"a": 0, "b": 1, "s": 2}
ROW = (10, 4, "hello")


def batch():
    return Batch({
        "a": np.array([1, 10, 20, 30]),
        "b": np.array([5, 4, 3, 2]),
        "s": np.array(["x", "hello", None, "z"], dtype=object),
    })


class TestRowEval:
    def test_column_and_literal(self):
        assert eval_row(col("a"), ROW, POS) == 10
        assert eval_row(lit(7), ROW, POS) == 7

    def test_arithmetic(self):
        expr = Arithmetic("+", col("a"), Arithmetic("*", col("b"), lit(2)))
        assert eval_row(expr, ROW, POS) == 18

    def test_division(self):
        assert eval_row(Arithmetic("/", col("a"), lit(4)), ROW, POS) == 2.5

    def test_arithmetic_null_propagates(self):
        expr = Arithmetic("+", col("a"), lit(None))
        assert eval_row(expr, ROW, POS) is None

    def test_comparisons(self):
        assert eval_row(Comparison("<", col("a"), lit(11)), ROW, POS)
        assert not eval_row(Comparison("=", col("b"), lit(5)), ROW, POS)
        assert eval_row(Comparison("!=", col("s"), lit("bye")), ROW, POS)

    def test_comparison_with_null_is_false(self):
        assert eval_row(Comparison("=", col("a"), lit(None)), ROW, POS) is False

    def test_between(self):
        assert eval_row(Between(col("a"), lit(5), lit(15)), ROW, POS)
        assert not eval_row(Between(col("a"), lit(11), lit(15)), ROW, POS)

    def test_in_list(self):
        assert eval_row(InList(col("b"), (1, 4, 9)), ROW, POS)
        assert not eval_row(InList(col("b"), (1, 9)), ROW, POS)

    def test_and_or_not(self):
        t = Comparison(">", col("a"), lit(0))
        f = Comparison("<", col("a"), lit(0))
        assert eval_row(And((t, t)), ROW, POS)
        assert not eval_row(And((t, f)), ROW, POS)
        assert eval_row(Or((f, t)), ROW, POS)
        assert eval_row(Not(f), ROW, POS)

    def test_unknown_column_raises(self):
        with pytest.raises(ExecutionError):
            eval_row(col("zzz"), ROW, POS)

    def test_bad_operator_rejected(self):
        with pytest.raises(ExecutionError):
            Comparison("<>", col("a"), lit(1))
        with pytest.raises(ExecutionError):
            Arithmetic("%", col("a"), lit(1))

    def test_compiled_predicate(self):
        pred = compile_row_predicate(Comparison(">", col("a"), lit(5)), POS)
        assert pred(ROW) is True
        always = compile_row_predicate(None, POS)
        assert always(ROW) is True


class TestBatchEval:
    def test_comparison_mask(self):
        mask = eval_batch(Comparison("<", col("a"), lit(15)), batch())
        assert mask.tolist() == [True, True, False, False]

    def test_between_mask(self):
        mask = eval_batch(Between(col("a"), lit(10), lit(20)), batch())
        assert mask.tolist() == [False, True, True, False]

    def test_arithmetic_array(self):
        values = eval_batch(Arithmetic("+", col("a"), col("b")), batch())
        assert values.tolist() == [6, 14, 23, 32]

    def test_in_list_numeric(self):
        mask = eval_batch(InList(col("a"), (10, 30)), batch())
        assert mask.tolist() == [False, True, False, True]

    def test_in_list_object(self):
        mask = eval_batch(InList(col("s"), ("x", "z")), batch())
        assert mask.tolist() == [True, False, False, True]

    def test_null_comparison_not_true(self):
        mask = eval_batch(Comparison("=", col("s"), lit("hello")), batch())
        assert mask.tolist() == [False, True, False, False]

    def test_and_or(self):
        expr = And((Comparison(">", col("a"), lit(5)),
                    Comparison("<", col("b"), lit(4))))
        assert eval_batch(expr, batch()).tolist() == [False, False, True, True]
        expr = Or((Comparison("=", col("a"), lit(1)),
                   Comparison("=", col("a"), lit(30))))
        assert eval_batch(expr, batch()).tolist() == [True, False, False, True]

    def test_not(self):
        mask = eval_batch(Not(Comparison("<", col("a"), lit(15))), batch())
        assert mask.tolist() == [False, False, True, True]


class TestAnalysis:
    def test_make_and_flattens(self):
        a = Comparison(">", col("a"), lit(1))
        b = Comparison("<", col("a"), lit(9))
        c = Comparison("=", col("b"), lit(2))
        combined = make_and([And((a, b)), c, None])
        assert isinstance(combined, And)
        assert len(combined.operands) == 3

    def test_make_and_trivial_cases(self):
        assert make_and([]) is None
        single = Comparison("=", col("a"), lit(1))
        assert make_and([single]) is single

    def test_conjuncts(self):
        a = Comparison(">", col("a"), lit(1))
        b = Comparison("<", col("b"), lit(9))
        assert conjuncts(make_and([a, b])) == [a, b]
        assert conjuncts(None) == []
        assert conjuncts(a) == [a]

    def test_range_from_inequalities(self):
        expr = make_and([
            Comparison(">=", col("a"), lit(5)),
            Comparison("<", col("a"), lit(10)),
        ])
        ranges = extract_column_ranges(expr)
        r = ranges["a"]
        assert (r.low, r.high) == (5, 10)
        assert r.low_inclusive and not r.high_inclusive

    def test_range_tightens(self):
        expr = make_and([
            Comparison(">", col("a"), lit(1)),
            Comparison(">", col("a"), lit(5)),
            Comparison("<=", col("a"), lit(100)),
            Comparison("<", col("a"), lit(50)),
        ])
        r = extract_column_ranges(expr)["a"]
        assert (r.low, r.high) == (5, 50)
        assert not r.low_inclusive and not r.high_inclusive

    def test_equality_gives_point(self):
        r = extract_column_ranges(Comparison("=", col("a"), lit(7)))["a"]
        assert r.is_point
        assert r.as_bounds() == (7, 7)

    def test_flipped_literal_comparison(self):
        r = extract_column_ranges(Comparison(">", lit(10), col("a")))["a"]
        assert r.high == 10 and not r.high_inclusive

    def test_between_contributes(self):
        r = extract_column_ranges(Between(col("a"), lit(2), lit(8)))["a"]
        assert r.as_bounds() == (2, 8)

    def test_or_not_sargable(self):
        expr = Or((Comparison("=", col("a"), lit(1)),
                   Comparison("=", col("a"), lit(2))))
        assert extract_column_ranges(expr) == {}

    def test_not_equal_not_sargable(self):
        assert extract_column_ranges(
            Comparison("!=", col("a"), lit(1))) == {}

    def test_elimination_ranges(self):
        expr = make_and([
            Comparison(">=", col("a"), lit(5)),
            Comparison("=", col("b"), lit(3)),
        ])
        assert elimination_ranges(expr) == {"a": (5, None), "b": (3, 3)}

    def test_columns_collection(self):
        expr = make_and([
            Comparison(">", col("a"), lit(1)),
            Between(col("b"), lit(0), col("c")),
        ])
        assert sorted(set(expr.columns())) == ["a", "b", "c"]
