"""Tests for the Section 4.5 extension allowing multiple columnstores
(projections) per table."""

import random

import pytest

from repro.advisor.advisor import TuningAdvisor
from repro.advisor.workload import Workload
from repro.core.errors import CatalogError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.executor import Executor
from repro.optimizer.plans import KIND_CSI
from repro.optimizer.whatif import Configuration, hypothetical_columnstore
from repro.storage.database import Database


def make_db(n=60_000):
    rng = random.Random(12)
    db = Database()
    table = db.create_table(TableSchema("events", [
        Column("ts", INT, nullable=False),
        Column("geo", INT, nullable=False),
        Column("value", INT),
    ]))
    table.bulk_load([
        (rng.randrange(1_000_000), rng.randrange(1_000_000),
         rng.randrange(10_000)) for _ in range(n)
    ])
    table.set_primary_btree(["value"])
    return db


TWO_AXIS_QUERIES = [
    "SELECT sum(value) FROM events WHERE ts BETWEEN 100000 AND 180000",
    "SELECT sum(value) FROM events WHERE ts BETWEEN 600000 AND 650000",
    "SELECT sum(value) FROM events WHERE geo BETWEEN 200000 AND 260000",
    "SELECT sum(value) FROM events WHERE geo BETWEEN 800000 AND 880000",
]


class TestEngineRule:
    def test_second_csi_rejected_by_default(self):
        db = make_db(5_000)
        table = db.table("events")
        table.create_secondary_columnstore("csi1", rowgroup_size=1024)
        with pytest.raises(CatalogError):
            table.create_secondary_columnstore("csi2", rowgroup_size=1024)

    def test_allow_multiple_builds_two_projections(self):
        db = make_db(5_000)
        table = db.table("events")
        table.create_secondary_columnstore(
            "proj_ts", rowgroup_size=1024, sorted_on="ts")
        table.create_secondary_columnstore(
            "proj_geo", rowgroup_size=1024, sorted_on="geo",
            allow_multiple=True)
        csis = [i for i in table.secondary_indexes.values()]
        assert len(csis) == 2

    def test_dml_maintains_every_projection(self):
        db = make_db(2_000)
        table = db.table("events")
        table.create_secondary_columnstore(
            "proj_ts", rowgroup_size=512, sorted_on="ts")
        table.create_secondary_columnstore(
            "proj_geo", rowgroup_size=512, sorted_on="geo",
            allow_multiple=True)
        executor = Executor(db)
        executor.execute("INSERT INTO events VALUES (5, 6, 7)")
        for name in ("proj_ts", "proj_geo"):
            index = table.secondary_indexes[name]
            assert index.n_rows == 2_001

    def test_configuration_flag(self):
        csi_a = hypothetical_columnstore("t", ["a"], {"a": 1})
        csi_b = hypothetical_columnstore("t", ["a"], {"a": 1},
                                         sorted_on="a")
        from repro.optimizer.whatif import hypothetical_btree
        primary = hypothetical_btree("t", ["a"], n_rows=1)
        primary.is_primary = True
        strict = Configuration(indexes={"t": [primary, csi_a, csi_b]})
        with pytest.raises(CatalogError):
            strict.validate()
        relaxed = Configuration(indexes={"t": [primary, csi_a, csi_b]},
                                allow_multiple_csi=True)
        relaxed.validate()


class TestAdvisorWithProjections:
    def test_advisor_picks_two_sorted_projections(self):
        db = make_db()
        workload = Workload.from_sql(TWO_AXIS_QUERIES, db)
        advisor = TuningAdvisor(db)
        single = advisor.tune(workload, consider_sorted_csi=True)
        multi = advisor.tune(workload, consider_sorted_csi=True,
                             allow_multiple_columnstores=True)
        single_sorted = {d.sorted_on for d in single.chosen
                         if d.kind == KIND_CSI and d.sorted_on}
        multi_sorted = {d.sorted_on for d in multi.chosen
                        if d.kind == KIND_CSI and d.sorted_on}
        # With the rule lifted, both sort axes get a projection.
        assert multi_sorted == {"ts", "geo"}
        assert len(single_sorted) <= 1
        # And the multi-projection design estimates no worse.
        assert multi.estimated_cost <= single.estimated_cost + 1e-9

    def test_apply_and_run_with_two_projections(self):
        db = make_db()
        workload = Workload.from_sql(TWO_AXIS_QUERIES, db)
        advisor = TuningAdvisor(db)
        recommendation = advisor.tune(
            workload, consider_sorted_csi=True,
            allow_multiple_columnstores=True)
        advisor.apply(recommendation)
        executor = Executor(db, catalog=advisor.catalog)
        executor.refresh()
        skipped = 0
        for sql in TWO_AXIS_QUERIES:
            result = executor.execute(sql)
            skipped += result.metrics.segments_skipped
        assert skipped > 0
