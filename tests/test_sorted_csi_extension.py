"""Tests for the Section 4.5 extension: sorted (projection-style)
columnstore candidates in the advisor."""

import random

import pytest

from repro.advisor.advisor import TuningAdvisor
from repro.advisor.candidates import CandidateGenerator, CandidateSet
from repro.advisor.workload import Workload
from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.executor import Executor
from repro.optimizer.catalog import Catalog
from repro.optimizer.plans import KIND_CSI
from repro.storage.database import Database


def make_db(n=60_000):
    rng = random.Random(8)
    db = Database()
    table = db.create_table(TableSchema("readings", [
        Column("ts", INT, nullable=False),
        Column("sensor", INT, nullable=False),
        Column("value", INT),
    ]))
    # Rows arrive in random ts order (no accidental sortedness).
    rows = [(rng.randrange(1_000_000), rng.randrange(50),
             rng.randrange(10_000)) for _ in range(n)]
    table.bulk_load(rows)
    table.set_primary_btree(["sensor"])
    return db


RANGE_QUERIES = [
    "SELECT sum(value) FROM readings WHERE ts BETWEEN 100000 AND 150000",
    "SELECT sum(value) FROM readings WHERE ts BETWEEN 400000 AND 420000",
    "SELECT count(*) FROM readings WHERE ts BETWEEN 700000 AND 760000",
]


class TestSortedTableBuild:
    def test_sorted_secondary_csi_has_disjoint_segments(self):
        db = make_db(20_000)
        table = db.table("readings")
        csi = table.create_secondary_columnstore(
            "csi_sorted", rowgroup_size=2048, sorted_on="ts")
        ranges = csi.segment_ranges("ts")
        assert all(ranges[i][1] <= ranges[i + 1][0]
                   for i in range(len(ranges) - 1))

    def test_unsorted_build_has_overlapping_segments(self):
        db = make_db(20_000)
        csi = db.table("readings").create_secondary_columnstore(
            "csi_plain", rowgroup_size=2048)
        ranges = csi.segment_ranges("ts")
        overlaps = sum(1 for i in range(len(ranges) - 1)
                       if ranges[i][1] > ranges[i + 1][0])
        assert overlaps > 0

    def test_catalog_detects_sorted_column(self):
        db = make_db(20_000)
        db.table("readings").create_secondary_columnstore(
            "csi_sorted", rowgroup_size=2048, sorted_on="ts")
        catalog = Catalog(db)
        descriptors = catalog.indexes_for("readings")
        csi = [d for d in descriptors if d.kind == KIND_CSI][0]
        assert csi.sorted_on == "ts"


class TestSortedCandidates:
    def test_generator_emits_sorted_candidate_for_range_column(self):
        db = make_db(5_000)
        catalog = Catalog(db)
        generator = CandidateGenerator(catalog, consider_btrees=False,
                                       consider_sorted_csi=True)
        workload = Workload.from_sql(RANGE_QUERIES[:1], db)
        pool = CandidateSet()
        generated = generator.candidates_for_query(
            workload.statements[0].bound, pool)
        sorted_candidates = [d for d in generated if d.sorted_on == "ts"]
        assert len(sorted_candidates) == 1

    def test_no_sorted_candidate_without_flag(self):
        db = make_db(5_000)
        generator = CandidateGenerator(Catalog(db), consider_btrees=False)
        workload = Workload.from_sql(RANGE_QUERIES[:1], db)
        pool = CandidateSet()
        generated = generator.candidates_for_query(
            workload.statements[0].bound, pool)
        assert all(d.sorted_on is None for d in generated)

    def test_point_predicates_get_no_sorted_candidate(self):
        db = make_db(5_000)
        generator = CandidateGenerator(Catalog(db), consider_btrees=False,
                                       consider_sorted_csi=True)
        workload = Workload.from_sql(
            ["SELECT sum(value) FROM readings WHERE sensor = 3"], db)
        pool = CandidateSet()
        generated = generator.candidates_for_query(
            workload.statements[0].bound, pool)
        assert all(d.sorted_on is None for d in generated)


class TestEndToEndSortedCsi:
    def test_sorted_csi_improves_range_workload(self):
        db = make_db()
        workload = Workload.from_sql(RANGE_QUERIES, db)
        advisor = TuningAdvisor(db)
        plain = advisor.tune(workload)
        with_sorted = advisor.tune(workload, consider_sorted_csi=True)
        # The sorted-CSI recommendation estimates a cheaper workload.
        assert with_sorted.estimated_cost <= plain.estimated_cost
        assert any(d.sorted_on == "ts" for d in with_sorted.chosen)

    def test_applied_sorted_csi_skips_segments_at_runtime(self):
        db = make_db()
        workload = Workload.from_sql(RANGE_QUERIES, db)
        advisor = TuningAdvisor(db)
        recommendation = advisor.tune(workload, consider_sorted_csi=True)
        advisor.apply(recommendation)
        executor = Executor(db, catalog=advisor.catalog)
        executor.refresh()
        result = executor.execute(RANGE_QUERIES[0])
        assert result.metrics.segments_skipped > 0
        # Answer must match a plain computation.
        expected = sum(
            row[2] for _, row in db.table("readings").iter_rows()
            if 100_000 <= row[0] <= 150_000)
        assert result.scalar() == expected
