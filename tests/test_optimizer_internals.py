"""Unit tests for optimizer internals: cost-model estimation functions,
plan descriptors, and the catalog."""

import random

import pytest

from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.costs import DEFAULT_COST_MODEL
from repro.optimizer import cost_model as cm
from repro.optimizer.catalog import Catalog, describe_physical_index
from repro.optimizer.cost_model import CostingOptions
from repro.optimizer.plans import (
    KIND_BTREE,
    KIND_CSI,
    KIND_HEAP,
    AccessPathNode,
    IndexDescriptor,
    PlannedQuery,
)
from repro.storage.database import Database
from repro.storage.table import Table


def options(cold=False, grant=None, concurrent=1):
    return CostingOptions(cost_model=DEFAULT_COST_MODEL, cold=cold,
                          memory_grant_bytes=grant,
                          concurrent_queries=concurrent)


def btree_descriptor(primary=True):
    return IndexDescriptor(name="ix", table_name="t", kind=KIND_BTREE,
                           is_primary=primary, key_columns=["a"])


def csi_descriptor(sorted_on=None):
    return IndexDescriptor(
        name="csi", table_name="t", kind=KIND_CSI, is_primary=False,
        csi_columns=["a", "b"], column_sizes={"a": 1 << 20, "b": 1 << 19},
        sorted_on=sorted_on)


class TestCostFunctions:
    def test_choose_dop_serial_below_threshold(self):
        assert cm.choose_dop(options(), 100) == 1
        assert cm.choose_dop(options(), 10_000) == \
            DEFAULT_COST_MODEL.max_dop

    def test_choose_dop_divides_by_concurrency(self):
        assert cm.choose_dop(options(concurrent=10), 10_000) == \
            DEFAULT_COST_MODEL.max_dop // 10

    def test_parallel_adjusted_adds_startup(self):
        serial = cm.parallel_adjusted(options(), 40.0, 1)
        parallel = cm.parallel_adjusted(options(), 40.0, 40)
        assert serial == 40.0
        assert parallel < serial
        assert parallel > 40.0 / 40  # startup + overhead included

    def test_btree_access_cold_adds_io(self):
        hot = cm.cost_btree_access(options(False), btree_descriptor(),
                                   rows_scanned=500, entry_bytes=20)
        cold = cm.cost_btree_access(options(True), btree_descriptor(),
                                    rows_scanned=500, entry_bytes=20)
        assert cold > hot

    def test_btree_lookup_rows_increase_cost(self):
        base = cm.cost_btree_access(options(), btree_descriptor(),
                                    rows_scanned=500, entry_bytes=20)
        with_lookup = cm.cost_btree_access(
            options(), btree_descriptor(), rows_scanned=500,
            entry_bytes=20, lookup_rows=500)
        assert with_lookup > base

    def test_csi_read_fraction(self):
        plain = csi_descriptor()
        sorted_csi = csi_descriptor(sorted_on="a")
        assert cm.csi_read_fraction(plain, "a", 0.01) == 1.0
        assert cm.csi_read_fraction(sorted_csi, "a", 0.01) == \
            pytest.approx(0.03)
        assert cm.csi_read_fraction(sorted_csi, None, 0.01) == 1.0
        assert cm.csi_read_fraction(sorted_csi, "b", 0.01) == 1.0

    def test_csi_scan_scales_with_columns_read(self):
        narrow = cm.cost_csi_scan(options(True), csi_descriptor(),
                                  100_000, {"a": 1 << 20})
        wide = cm.cost_csi_scan(options(True), csi_descriptor(),
                                100_000, {"a": 1 << 20, "b": 1 << 20})
        assert wide > narrow

    def test_hash_join_spills_past_grant(self):
        small_grant = options(grant=1 << 12)
        fits = cm.cost_hash_join(options(), 1_000, 10_000, 10_000, "row")
        spills = cm.cost_hash_join(small_grant, 1_000, 10_000, 10_000,
                                   "row")
        assert spills > fits

    def test_inl_join_lookup_penalty(self):
        covered = cm.cost_inl_join(options(), 100, 5.0, inner_lookup=False)
        lookup = cm.cost_inl_join(options(), 100, 5.0, inner_lookup=True)
        assert lookup > covered

    def test_hash_aggregate_spill_flag(self):
        _, no_spill = cm.cost_hash_aggregate(options(), 10_000, 100,
                                             "row", 1)
        _, spill = cm.cost_hash_aggregate(options(grant=1 << 10), 10_000,
                                          100_000, "row", 1)
        assert not no_spill
        assert spill

    def test_sort_spill_flag(self):
        _, fits = cm.cost_sort(options(), 1_000, 64, 1)
        _, spills = cm.cost_sort(options(grant=1 << 10), 100_000, 64, 1)
        assert not fits and spills

    def test_stream_cheaper_than_spilled_hash(self):
        opts = options(grant=1 << 10)
        stream = cm.cost_stream_aggregate(opts, 100_000, 1)
        hashed, spilled = cm.cost_hash_aggregate(opts, 100_000, 100_000,
                                                 "row", 1)
        assert spilled and stream < hashed

    def test_btree_entry_bytes(self):
        primary = btree_descriptor(primary=True)
        assert cm.btree_entry_bytes(primary, 100, {}) == 100
        secondary = IndexDescriptor(
            name="s", table_name="t", kind=KIND_BTREE, is_primary=False,
            key_columns=["a"], included_columns=["b"])
        assert cm.btree_entry_bytes(secondary, 100, {"a": 4, "b": 8}) == 20


class TestDescriptors:
    def test_covers(self):
        heap = IndexDescriptor(name="h", table_name="t", kind=KIND_HEAP,
                               is_primary=True)
        assert heap.covers(["anything"])
        primary = btree_descriptor(primary=True)
        assert primary.covers(["x", "y"])
        secondary = IndexDescriptor(
            name="s", table_name="t", kind=KIND_BTREE, is_primary=False,
            key_columns=["a"], included_columns=["b"])
        assert secondary.covers(["a", "b"])
        assert not secondary.covers(["a", "c"])
        csi = csi_descriptor()
        assert csi.covers(["a"])
        assert not csi.covers(["z"])

    def test_ddl_rendering(self):
        assert "CLUSTERED INDEX" in btree_descriptor(True).ddl()
        assert "COLUMNSTORE" in csi_descriptor().ddl()
        heap = IndexDescriptor(name="h", table_name="t", kind=KIND_HEAP,
                               is_primary=True)
        assert "heap" in heap.ddl()

    def test_describe_mentions_hypothetical(self):
        hypo = csi_descriptor()
        hypo.hypothetical = True
        assert "hypothetical" in hypo.describe()


class TestCatalog:
    def make_db(self):
        rng = random.Random(3)
        db = Database()
        table = db.create_table(TableSchema("t", [
            Column("a", INT, nullable=False),
            Column("b", varchar(8)),
        ]))
        table.bulk_load([(i, f"s{i % 4}") for i in range(5000)])
        table.set_primary_btree(["a"])
        table.create_secondary_btree("ix_b", ["b"])
        return db

    def test_indexes_for_lists_all(self):
        db = self.make_db()
        catalog = Catalog(db)
        descriptors = catalog.indexes_for("t")
        assert len(descriptors) == 2
        kinds = {d.kind for d in descriptors}
        assert kinds == {KIND_BTREE}
        assert sum(d.is_primary for d in descriptors) == 1

    def test_stats_cached_and_invalidated(self):
        db = self.make_db()
        catalog = Catalog(db)
        first = catalog.stats("t")
        assert catalog.stats("t") is first
        catalog.invalidate("t")
        assert catalog.stats("t") is not first

    def test_design_cache_invalidated(self):
        db = self.make_db()
        catalog = Catalog(db)
        before = catalog.indexes_for("t")
        db.table("t").create_secondary_columnstore("csi")
        assert len(catalog.indexes_for("t")) == len(before)  # cached
        catalog.invalidate()
        assert len(catalog.indexes_for("t")) == len(before) + 1

    def test_describe_physical_index_unknown_type(self):
        from repro.core.errors import CatalogError
        db = self.make_db()
        with pytest.raises(CatalogError):
            describe_physical_index(db.table("t"), object())

    def test_column_and_row_bytes(self):
        db = self.make_db()
        catalog = Catalog(db)
        widths = catalog.column_bytes("t")
        assert widths["a"] == 4
        assert catalog.row_bytes("t") > 4


class TestPlannedQueryIntrospection:
    def test_hybrid_detection(self):
        btree_leaf = AccessPathNode("x", btree_descriptor(), "scan", ["a"])
        csi_leaf = AccessPathNode("y", csi_descriptor(), "scan", ["a"])
        from repro.optimizer.plans import JoinNode
        join = JoinNode("hash", btree_leaf, csi_leaf, ["x.a"], ["y.a"])
        planned = PlannedQuery(root=join, est_cost=1.0, est_rows=1.0,
                               uses_hypothetical=False)
        assert planned.is_hybrid()
        assert sorted(planned.index_kinds_at_leaves()) == ["btree", "csi"]

    def test_non_hybrid(self):
        leaf = AccessPathNode("x", btree_descriptor(), "scan", ["a"])
        planned = PlannedQuery(root=leaf, est_cost=1.0, est_rows=1.0,
                               uses_hypothetical=False)
        assert not planned.is_hybrid()
