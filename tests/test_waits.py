"""Wait-statistics tests: the taxonomy, session attribution, the
differential invariant (per-session sums == server-wide totals), the
DMV surface, and a concurrent 4-session run that provokes genuine
LATCH_EX / RESOURCE_SEMAPHORE / CXPACKET waits while the statements'
modeled metrics stay identical to a serial run."""

import dataclasses
import threading
import time

import pytest

from repro.core.errors import ExecutionError
from repro.engine.analyze import AnalyzedQuery
from repro.engine.executor import Executor
from repro.engine.query_store import QueryStore
from repro.server.scheduler import DatabaseLatch, MemoryGrantPool
from repro.server.session import SessionManager
from repro.storage.database import Database
from repro.storage.waits import (
    HISTOGRAM_BUCKETS_MS,
    WAIT_CXPACKET,
    WAIT_LATCH_EX,
    WAIT_LATCH_SH,
    WAIT_PAGEIOLATCH,
    WAIT_RESOURCE_SEMAPHORE,
    WAIT_SEGCACHE_MISS,
    WAIT_TYPES,
    WAIT_WRITELOG,
    WaitAccumulator,
    WaitStatsCollector,
)
from repro.workloads.synthetic import make_uniform_table, q1_scan


def _micro_db(n_rows=40_000, rowgroup_size=4096, seed=5) -> Database:
    database = Database()
    make_uniform_table(database, "micro", n_rows, 2, seed=seed)
    database.table("micro").set_primary_columnstore(
        rowgroup_size=rowgroup_size)
    return database


class TestAccumulator:
    def test_record_tracks_count_sum_max(self):
        acc = WaitAccumulator()
        acc.record(2.0)
        acc.record(7.0)
        acc.record(1.0)
        assert acc.waiting_tasks_count == 3
        assert acc.wait_time_ms == pytest.approx(10.0)
        assert acc.max_wait_time_ms == pytest.approx(7.0)

    def test_histogram_buckets_are_cumulative_ready(self):
        acc = WaitAccumulator()
        acc.record(0.5)      # <= 1
        acc.record(3.0)      # <= 5
        acc.record(2000.0)   # +Inf
        assert len(acc.bucket_counts) == len(HISTOGRAM_BUCKETS_MS) + 1
        assert acc.bucket_counts[0] == 1
        assert acc.bucket_counts[1] == 1
        assert acc.bucket_counts[-1] == 1
        assert sum(acc.bucket_counts) == acc.waiting_tasks_count

    def test_copy_is_independent(self):
        acc = WaitAccumulator()
        acc.record(1.0)
        clone = acc.copy()
        acc.record(1.0)
        assert clone.waiting_tasks_count == 1
        assert acc.waiting_tasks_count == 2


class TestCollector:
    def test_unknown_wait_type_rejected(self):
        collector = WaitStatsCollector()
        with pytest.raises(ValueError):
            collector.record("NO_SUCH_WAIT", 1.0)

    def test_server_stats_always_carries_every_type(self):
        collector = WaitStatsCollector()
        stats = collector.server_stats()
        assert tuple(stats) == WAIT_TYPES
        assert all(acc.waiting_tasks_count == 0 for acc in stats.values())

    def test_unattributed_waits_land_in_session_zero(self):
        collector = WaitStatsCollector()
        collector.record(WAIT_WRITELOG, 2.0)
        sessions = collector.session_stats()
        assert list(sessions) == [0]
        assert sessions[0][WAIT_WRITELOG].waiting_tasks_count == 1

    def test_session_scope_attributes_and_restores(self):
        collector = WaitStatsCollector()
        with collector.session_scope(7):
            assert collector.current_session_id == 7
            with collector.session_scope(9):
                collector.record(WAIT_LATCH_SH, 1.0)
            assert collector.current_session_id == 7
        assert collector.current_session_id == 0
        assert collector.session_stats()[9][
            WAIT_LATCH_SH].waiting_tasks_count == 1

    def test_session_scope_is_thread_local(self):
        collector = WaitStatsCollector()
        seen = []

        def other():
            seen.append(collector.current_session_id)

        with collector.session_scope(3):
            thread = threading.Thread(target=other)
            thread.start()
            thread.join()
        assert seen == [0]

    def test_statement_profile_collects_this_threads_waits(self):
        collector = WaitStatsCollector()
        with collector.statement() as profile:
            collector.record(WAIT_LATCH_EX, 2.0)
            collector.record(WAIT_LATCH_EX, 3.0)
            collector.record(WAIT_CXPACKET, 1.0)
        assert profile[WAIT_LATCH_EX][0] == 2
        assert profile[WAIT_LATCH_EX][1] == pytest.approx(5.0)
        assert profile[WAIT_CXPACKET][0] == 1

    def test_nested_statement_scopes_share_one_profile(self):
        collector = WaitStatsCollector()
        with collector.statement() as outer:
            with collector.statement() as inner:
                collector.record(WAIT_WRITELOG, 1.0)
            assert inner is outer
        assert outer[WAIT_WRITELOG][0] == 1

    def test_reset_clears_server_and_sessions(self):
        collector = WaitStatsCollector()
        with collector.session_scope(2):
            collector.record(WAIT_LATCH_SH, 1.0)
        collector.reset()
        assert collector.total_waits() == 0
        assert collector.session_stats() == {}

    def test_differential_under_concurrent_recording(self):
        """The load-bearing invariant: per-session sums == server-wide
        totals, exactly for counts, approximately for float ms."""
        collector = WaitStatsCollector()

        def worker(session_id):
            with collector.session_scope(session_id):
                for i in range(200):
                    collector.record(
                        WAIT_TYPES[i % len(WAIT_TYPES)],
                        0.1 * session_id)

        threads = [threading.Thread(target=worker, args=(sid,))
                   for sid in (1, 2, 3, 4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        server = collector.server_stats()
        sessions = collector.session_stats()
        for wait_type in WAIT_TYPES:
            count = sum(
                buckets[wait_type].waiting_tasks_count
                for buckets in sessions.values() if wait_type in buckets)
            ms = sum(
                buckets[wait_type].wait_time_ms
                for buckets in sessions.values() if wait_type in buckets)
            assert count == server[wait_type].waiting_tasks_count
            assert ms == pytest.approx(server[wait_type].wait_time_ms)


class TestPrimitiveInstrumentation:
    def test_uncontended_acquires_record_nothing(self):
        collector = WaitStatsCollector()
        latch = DatabaseLatch(waits=collector)
        with latch.shared("a"):
            pass
        with latch.exclusive("a"):
            pass
        pool = MemoryGrantPool(capacity_bytes=1000, waits=collector)
        with pool.grant(500):
            pass
        assert collector.total_waits() == 0

    def test_blocked_grant_records_resource_semaphore(self):
        collector = WaitStatsCollector()
        pool = MemoryGrantPool(capacity_bytes=1000, waits=collector)
        holding, release = threading.Event(), threading.Event()

        def holder():
            with pool.grant(900):
                holding.set()
                release.wait()

        thread = threading.Thread(target=holder)
        thread.start()
        holding.wait()

        def waiter():
            with pool.grant(900):
                pass

        blocked = threading.Thread(target=waiter)
        blocked.start()
        time.sleep(0.05)
        release.set()
        blocked.join(timeout=5)
        thread.join(timeout=5)
        acc = collector.server_stats()[WAIT_RESOURCE_SEMAPHORE]
        assert acc.waiting_tasks_count == 1
        assert acc.wait_time_ms > 0

    def test_grant_timeout_raises_and_counts(self):
        collector = WaitStatsCollector()
        pool = MemoryGrantPool(capacity_bytes=1000, waits=collector)
        holding, release = threading.Event(), threading.Event()

        def holder():
            with pool.grant(1000):
                holding.set()
                release.wait()

        thread = threading.Thread(target=holder)
        thread.start()
        holding.wait()
        with pytest.raises(ExecutionError, match="timed out"):
            with pool.grant(1000, timeout_s=0.05):
                pass
        release.set()
        thread.join(timeout=5)
        assert pool.grant_timeouts == 1
        # The timed-out wait still accumulates under the taxonomy.
        acc = collector.server_stats()[WAIT_RESOURCE_SEMAPHORE]
        assert acc.waiting_tasks_count == 1
        assert acc.wait_time_ms >= 40.0

    def test_blocked_latch_records_both_modes(self):
        collector = WaitStatsCollector()
        latch = DatabaseLatch(waits=collector)
        entered, release = threading.Event(), threading.Event()

        def writer():
            with latch.exclusive("w"):
                entered.set()
                release.wait()

        thread = threading.Thread(target=writer)
        thread.start()
        entered.wait()

        def reader():
            with latch.shared("r"):
                pass

        def second_writer():
            with latch.exclusive("w2"):
                pass

        blocked = [threading.Thread(target=reader),
                   threading.Thread(target=second_writer)]
        for t in blocked:
            t.start()
        time.sleep(0.05)
        release.set()
        for t in blocked:
            t.join(timeout=5)
        thread.join(timeout=5)
        stats = collector.server_stats()
        assert stats[WAIT_LATCH_SH].waiting_tasks_count == 1
        assert stats[WAIT_LATCH_EX].waiting_tasks_count == 1
        assert latch.shared_waits == 1
        assert latch.exclusive_waits == 1

    def test_reset_stats_zeroes_scheduler_counters(self):
        pool = MemoryGrantPool(capacity_bytes=1000)
        with pool.grant(400):
            pass
        latch = DatabaseLatch()
        with latch.shared("a"):
            pass
        pool.reset_stats()
        latch.reset_stats()
        assert pool.grants_admitted == 0
        assert pool.grant_waits == 0
        assert pool.total_wait_ms == 0.0
        assert latch.shared_waits == 0
        assert latch.exclusive_waits == 0
        assert latch.total_wait_ms == 0.0


class TestEngineIntegration:
    def test_writelog_recorded_on_durable_commit(self, tmp_path):
        database = _micro_db(n_rows=2000, rowgroup_size=1024)
        database.enable_durability(str(tmp_path / "data"))
        executor = Executor(database)
        executor.execute("UPDATE TOP (10) micro SET col2 += 1 "
                         "WHERE col1 >= 0")
        acc = database.waits.server_stats()[WAIT_WRITELOG]
        assert acc.waiting_tasks_count >= 1
        assert database.wal.flushes >= 1

    def test_wal_counter_rows_in_wait_stats_view(self, tmp_path):
        database = _micro_db(n_rows=2000, rowgroup_size=1024)
        database.enable_durability(str(tmp_path / "data"))
        executor = Executor(database)
        executor.execute("UPDATE TOP (5) micro SET col2 += 1 "
                         "WHERE col1 >= 0")
        result = executor.execute(
            "SELECT wait_type, waiting_tasks_count FROM dm_os_wait_stats")
        rows = dict(result.rows)
        assert set(rows) == set(WAIT_TYPES) | {"WAL_FLUSH", "WAL_FSYNC"}
        assert rows["WAL_FLUSH"] >= 1

    def test_pageiolatch_recorded_on_demand_paging(self, tmp_path):
        database = _micro_db(n_rows=4000, rowgroup_size=1024)
        database.save(str(tmp_path / "paged"))
        reopened = Database.open(str(tmp_path / "paged"), paging=True)
        Executor(reopened).execute("SELECT sum(col1) FROM micro")
        acc = reopened.waits.server_stats()[WAIT_PAGEIOLATCH]
        assert acc.waiting_tasks_count >= 1
        assert reopened.buffer_pool.misses >= 1

    def test_segcache_miss_requires_session_attribution(self):
        # Embedded (sessionless) runs keep the ledger clean so DMV
        # snapshots stay deterministic for the figure harnesses...
        database = _micro_db(n_rows=8000, rowgroup_size=1024)
        database.segment_cache.enabled = True
        Executor(database).execute("SELECT sum(col1) FROM micro")
        assert database.waits.server_stats()[
            WAIT_SEGCACHE_MISS].waiting_tasks_count == 0
        # ...while serving-layer scans (serial: the scan runs on the
        # session's own thread) time their decode misses.
        database2 = _micro_db(n_rows=8000, rowgroup_size=1024)
        database2.segment_cache.enabled = True
        with SessionManager(database2) as manager:
            with manager.session() as session:
                session.execute("SELECT sum(col1) FROM micro")
        acc = database2.waits.server_stats()[WAIT_SEGCACHE_MISS]
        assert acc.waiting_tasks_count >= 1
        sessions = database2.waits.session_stats()
        assert WAIT_SEGCACHE_MISS in sessions[session.session_id]

    def test_statement_wait_profile_and_analyze_line(self):
        database = _micro_db(n_rows=2000, rowgroup_size=1024)
        store = QueryStore()
        with SessionManager(database, query_store=store) as manager:
            with manager.session() as blocked:
                with manager.session() as holder:
                    entered, release = threading.Event(), threading.Event()
                    results = []

                    def hold_txn():
                        with holder.transaction():
                            entered.set()
                            release.wait()

                    thread = threading.Thread(target=hold_txn)
                    thread.start()
                    entered.wait()

                    def run_blocked():
                        results.append(blocked.execute(
                            "SELECT sum(col1) FROM micro"))

                    runner = threading.Thread(target=run_blocked)
                    runner.start()
                    time.sleep(0.05)
                    release.set()
                    runner.join(timeout=10)
                    thread.join(timeout=10)
        (result,) = results
        assert WAIT_LATCH_SH in result.wait_profile
        assert result.wait_profile[WAIT_LATCH_SH]["count"] == 1
        # EXPLAIN ANALYZE surfaces the same profile as a waits: line.
        text = AnalyzedQuery("SELECT sum(col1) FROM micro", result).format()
        assert "waits: " in text
        assert WAIT_LATCH_SH in text
        # ...and the Query Store accumulated it per statement.
        stats = store.stats("SELECT sum(col1) FROM micro")
        assert stats.wait_count[WAIT_LATCH_SH] == 1
        assert stats.wait_time_ms[WAIT_LATCH_SH] > 0

    def test_uncontended_statement_has_empty_profile(self):
        database = _micro_db(n_rows=2000, rowgroup_size=1024)
        result = Executor(database).execute("SELECT sum(col1) FROM micro")
        assert result.wait_profile == {}
        text = AnalyzedQuery("q", result).format()
        assert "waits: " not in text


class TestConcurrentSessions:
    """The acceptance scenario: 4 sessions, morsel scans, a grant pool
    sized to one default grant — LATCH_EX, RESOURCE_SEMAPHORE, and
    CXPACKET all accumulate, the per-session ledgers sum exactly to the
    server ledger, and modeled metrics match an embedded serial run."""

    N_SESSIONS = 4
    ROUNDS = 3

    def _run_contended(self):
        database = _micro_db()
        # DML goes to a side table so the SELECT's modeled costs are
        # untouched by concurrent updates.
        from repro.core.schema import Column, TableSchema
        from repro.core.types import INT
        side = database.create_table(TableSchema("side", [
            Column("k", INT, nullable=False),
            Column("v", INT),
        ]))
        side.bulk_load([(i, 0) for i in range(256)])
        select_sql = q1_scan(10.0)
        update_sql = "UPDATE TOP (8) side SET v += 1 WHERE k >= 0"
        capacity = database.cost_model.default_memory_grant_bytes
        barrier = threading.Barrier(self.N_SESSIONS)
        select_results = {}

        with SessionManager(database, morsel_workers=2,
                            io_replay_scale=0.02,
                            grant_capacity_bytes=capacity) as manager:
            def client(idx):
                with manager.session(cold=True) as session:
                    barrier.wait()
                    for _ in range(self.ROUNDS):
                        result = session.execute(select_sql)
                        session.execute(update_sql)
                    select_results[session.session_id] = result

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(self.N_SESSIONS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        return database, select_sql, select_results

    def test_contention_populates_taxonomy_and_differential_holds(self):
        database, select_sql, select_results = self._run_contended()
        server = database.waits.server_stats()
        assert server[WAIT_LATCH_EX].waiting_tasks_count > 0
        assert server[WAIT_RESOURCE_SEMAPHORE].waiting_tasks_count > 0
        assert server[WAIT_CXPACKET].waiting_tasks_count > 0

        # Differential: per-session sums reproduce the server ledger
        # exactly (counts) / to float tolerance (ms).
        sessions = database.waits.session_stats()
        for wait_type in WAIT_TYPES:
            count = sum(
                buckets[wait_type].waiting_tasks_count
                for buckets in sessions.values() if wait_type in buckets)
            ms = sum(
                buckets[wait_type].wait_time_ms
                for buckets in sessions.values() if wait_type in buckets)
            assert count == server[wait_type].waiting_tasks_count
            assert ms == pytest.approx(server[wait_type].wait_time_ms)

        # The same SELECT on a fresh identical database, embedded and
        # serial: modeled metrics are identical — waits are observation
        # only and never leak into the figures' numbers.
        reference = Executor(_micro_db()).execute(select_sql, cold=True)
        ref = dataclasses.asdict(reference.metrics)
        for result in select_results.values():
            got = dataclasses.asdict(result.metrics)
            assert got.keys() == ref.keys()
            for name, expected in ref.items():
                if isinstance(expected, float):
                    assert got[name] == pytest.approx(
                        expected, rel=1e-9, abs=1e-12), name
                else:
                    assert got[name] == expected, name

    def test_wait_views_queryable_during_serving(self):
        database, _, _ = self._run_contended()
        executor = Executor(database)
        total = executor.execute(
            "SELECT wait_type, waiting_tasks_count FROM dm_os_wait_stats "
            "WHERE waiting_tasks_count > 0 ORDER BY wait_type")
        assert ("LATCH_EX", database.waits.server_stats()[
            WAIT_LATCH_EX].waiting_tasks_count) in total.rows
        per_session = executor.execute(
            "SELECT session_id, wait_type, waiting_tasks_count "
            "FROM dm_exec_session_wait_stats ORDER BY session_id")
        assert per_session.rows
        # SQL-level differential: grouping the session view by wait_type
        # reproduces the server view.
        summed = executor.execute(
            "SELECT wait_type, sum(waiting_tasks_count) "
            "FROM dm_exec_session_wait_stats GROUP BY wait_type")
        server = database.waits.server_stats()
        for wait_type, count in summed.rows:
            assert count == server[wait_type].waiting_tasks_count
