"""Figure-output identity: durability must be invisible by default.

The simulator is the default backend; every paper figure and demo
output must be byte-identical whether or not the durability subsystem
has ever been exercised in the process, and a durable database must
report exactly the same modeled metrics as its in-memory twin.
"""

import contextlib
import io

from repro.__main__ import main
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.executor import Executor
from repro.storage.database import Database


def capture(argv):
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        code = main(argv)
    assert code == 0
    return out.getvalue()


def exercise_durability(tmp_path):
    """Run a full durability round trip (snapshot + WAL + recovery) so
    any global side effect it might have would poison the re-run."""
    from repro.storage.recovery import recover

    database = Database("side")
    table = database.create_table(TableSchema("s", [
        Column("a", INT, nullable=False), Column("t", varchar(4))]))
    table.bulk_load([(i, "x") for i in range(300)])
    table.set_primary_btree(["a"])
    table.create_secondary_columnstore("csi_s", rowgroup_size=64)
    database.enable_durability(str(tmp_path))
    executor = Executor(database)
    executor.execute("INSERT INTO s (a, t) VALUES (900, 'y')")
    executor.execute("DELETE FROM s WHERE a < 10")
    database.checkpoint()
    _, report = recover(str(tmp_path))
    assert report.check_ok
    database.wal.close()


class TestFigureIdentity:
    def test_micro_selectivity_output_identical(self, tmp_path):
        argv = ["micro", "--experiment", "selectivity", "--rows", "4000"]
        before = capture(argv)
        exercise_durability(tmp_path / "d1")
        after = capture(argv)
        assert before == after
        assert "Figure 1" in before

    def test_micro_updates_output_identical(self, tmp_path):
        argv = ["micro", "--experiment", "updates", "--rows", "4000"]
        before = capture(argv)
        exercise_durability(tmp_path / "d1")
        after = capture(argv)
        assert before == after
        assert "Figure 5" in before

    def test_demo_output_identical(self, tmp_path):
        before = capture(["demo"])
        exercise_durability(tmp_path / "d1")
        after = capture(["demo"])
        assert before == after

    def test_durable_database_metrics_identical(self, tmp_path):
        """The same statements on a durable database and its in-memory
        twin produce identical rows and identical modeled metrics —
        logging must never leak into the cost model."""
        def build():
            database = Database("twin")
            table = database.create_table(TableSchema("t", [
                Column("a", INT, nullable=False), Column("b", INT)]))
            table.bulk_load([(i, i % 7) for i in range(2000)])
            table.set_primary_btree(["a"])
            table.create_secondary_columnstore("csi_t", rowgroup_size=256)
            return database

        plain, durable = build(), build()
        durable.enable_durability(str(tmp_path))
        statements = [
            "INSERT INTO t (a, b) VALUES (5000, 1), (5001, 2)",
            "UPDATE t SET b = 9 WHERE a BETWEEN 100 AND 160",
            "DELETE FROM t WHERE a < 30",
            "SELECT sum(b) FROM t WHERE a BETWEEN 0 AND 1500",
            "SELECT count(*) FROM t",
        ]
        ex_plain, ex_durable = Executor(plain), Executor(durable)
        for sql in statements:
            lhs, rhs = ex_plain.execute(sql), ex_durable.execute(sql)
            assert lhs.rows == rhs.rows
            assert lhs.metrics.elapsed_ms == rhs.metrics.elapsed_ms
            assert lhs.metrics.cpu_ms == rhs.metrics.cpu_ms
            assert lhs.metrics.data_read_mb == rhs.metrics.data_read_mb
            assert lhs.metrics.data_written_mb == rhs.metrics.data_written_mb
