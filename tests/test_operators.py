"""Tests for the physical operators: scans, filters, sorts, aggregates,
joins, and their cost-charging behaviour."""

import numpy as np
import pytest

from repro.core.errors import ExecutionError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.batch import batch_to_rows, concat_batches
from repro.engine.expressions import (
    ColumnRange,
    ColumnRef,
    Comparison,
    Literal,
)
from repro.engine.metrics import ExecutionContext
from repro.engine.operators import (
    AggregateSpec,
    BTreeSeek,
    ColumnstoreScan,
    Filter,
    HashAggregate,
    HashJoin,
    HeapScan,
    IndexNestedLoopJoin,
    MergeJoin,
    Project,
    SecondaryBTreeSeek,
    Sort,
    SortKey,
    StreamAggregate,
    Top,
)
from repro.storage.table import Table


def make_table(n=1000, with_btree=True):
    schema = TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT, nullable=False),
        Column("s", varchar(8)),
    ])
    table = Table(schema)
    table.bulk_load([(i, i % 10, f"g{i % 3}") for i in range(n)])
    if with_btree:
        table.set_primary_btree(["a"])
    return table


def drain(op, ctx=None):
    ctx = ctx or ExecutionContext()
    rows = []
    for batch in op.execute(ctx):
        rows.extend(batch_to_rows(batch, op.output_columns))
    return rows, ctx


def pred(column, op, value):
    return Comparison(op, ColumnRef(column), Literal(value))


class TestScans:
    def test_heap_scan_all(self):
        table = make_table(100, with_btree=False)
        rows, ctx = drain(HeapScan(table, ["a", "b"]))
        assert len(rows) == 100
        assert rows[0] == (0, 0)
        assert ctx.metrics.leaf_accesses == {"heap": 1}

    def test_heap_scan_residual(self):
        table = make_table(100, with_btree=False)
        rows, _ = drain(HeapScan(table, ["a"], residual=pred("a", "<", 10)))
        assert len(rows) == 10

    def test_btree_seek_range(self):
        table = make_table(1000)
        rng = ColumnRange(low=100, high=110)
        rows, ctx = drain(BTreeSeek(table, ["a", "b"], key_range=rng))
        assert [r[0] for r in rows] == list(range(100, 111))
        assert ctx.metrics.leaf_accesses == {"btree": 1}

    def test_btree_seek_exclusive_bounds(self):
        table = make_table(100)
        rng = ColumnRange(low=10, high=20, low_inclusive=False,
                          high_inclusive=False)
        rows, _ = drain(BTreeSeek(table, ["a"], key_range=rng))
        assert [r[0] for r in rows] == list(range(11, 20))

    def test_btree_full_scan_ordered(self):
        table = make_table(500)
        op = BTreeSeek(table, ["a"])
        assert op.output_ordering == ["a"]
        rows, _ = drain(op)
        assert [r[0] for r in rows] == list(range(500))

    def test_btree_prefix_output_naming(self):
        table = make_table(10)
        op = BTreeSeek(table, ["a", "b"], prefix="t.")
        assert op.output_columns == ["t.a", "t.b"]
        assert op.output_ordering == ["t.a"]

    def test_secondary_seek_covered(self):
        table = make_table(1000)
        index = table.create_secondary_btree("ix_b", ["b"], ["s"])
        op = SecondaryBTreeSeek(table, index, ["b", "s"],
                                key_range=ColumnRange(low=3, high=3))
        rows, ctx = drain(op)
        assert len(rows) == 100
        assert all(r[0] == 3 for r in rows)
        assert not op.needs_lookup
        assert ctx.metrics.pages_read == 0  # hot

    def test_secondary_seek_with_lookup_charges_random_io(self):
        table = make_table(1000)
        index = table.create_secondary_btree("ix_b", ["b"])
        op = SecondaryBTreeSeek(table, index, ["b", "a", "s"],
                                key_range=ColumnRange(low=3, high=3))
        assert op.needs_lookup
        ctx = ExecutionContext(cold=True)
        rows, _ = drain(op, ctx)
        assert len(rows) == 100
        # One random page read per looked-up row, plus traversal pages.
        assert ctx.metrics.pages_read >= 100

    def test_csi_scan_all(self):
        table = make_table(1000, with_btree=False)
        csi = table.create_secondary_columnstore("csi", rowgroup_size=256)
        rows, ctx = drain(ColumnstoreScan(table, csi, ["a", "b"]))
        assert len(rows) == 1000
        assert ctx.metrics.leaf_accesses == {"csi": 1}

    def test_csi_scan_residual_filters(self):
        table = make_table(1000, with_btree=False)
        csi = table.create_secondary_columnstore("csi", rowgroup_size=256)
        op = ColumnstoreScan(table, csi, ["a"], residual=pred("a", "<", 50))
        rows, _ = drain(op)
        assert sorted(r[0] for r in rows) == list(range(50))

    def test_csi_scan_prefixed_residual(self):
        table = make_table(100, with_btree=False)
        csi = table.create_secondary_columnstore("csi", rowgroup_size=64)
        op = ColumnstoreScan(table, csi, ["a"], prefix="t.",
                             residual=pred("t.a", "<", 5))
        rows, _ = drain(op)
        assert len(rows) == 5
        assert op.output_columns == ["t.a"]


class TestFilterProjectTop:
    def test_filter_modes_follow_child(self):
        table = make_table(100, with_btree=False)
        csi = table.create_secondary_columnstore("csi", rowgroup_size=64)
        scan = ColumnstoreScan(table, csi, ["a"])
        filt = Filter(scan, pred("a", "<", 10))
        assert filt.mode == "batch"
        rows, _ = drain(filt)
        assert len(rows) == 10

    def test_project_arithmetic(self):
        table = make_table(10, with_btree=False)
        scan = HeapScan(table, ["a", "b"])
        proj = Project(scan, [
            ("twice", ColumnRef("a")),
            ("sum_ab", Comparison("=", ColumnRef("a"), ColumnRef("a"))),
        ])
        assert proj.output_columns == ["twice", "sum_ab"]

    def test_top_limits(self):
        table = make_table(100)
        top = Top(BTreeSeek(table, ["a"]), 7)
        rows, _ = drain(top)
        assert [r[0] for r in rows] == list(range(7))

    def test_top_zero(self):
        table = make_table(10)
        rows, _ = drain(Top(BTreeSeek(table, ["a"]), 0))
        assert rows == []

    def test_top_negative_rejected(self):
        table = make_table(10)
        with pytest.raises(ExecutionError):
            Top(BTreeSeek(table, ["a"]), -1)


class TestSort:
    def test_sort_ascending(self):
        table = make_table(100, with_btree=False)
        op = Sort(HeapScan(table, ["b", "a"]), [SortKey("b"), SortKey("a")])
        rows, _ = drain(op)
        assert rows == sorted(rows)
        assert op.output_ordering == ["b", "a"]

    def test_sort_descending(self):
        table = make_table(50, with_btree=False)
        op = Sort(HeapScan(table, ["a"]), [SortKey("a", descending=True)])
        rows, _ = drain(op)
        assert [r[0] for r in rows] == list(range(49, -1, -1))
        assert op.output_ordering == []

    def test_sort_strings(self):
        table = make_table(30, with_btree=False)
        op = Sort(HeapScan(table, ["s", "a"]), [SortKey("s"), SortKey("a")])
        rows, _ = drain(op)
        assert [r[0] for r in rows] == sorted(
            [r[0] for r in rows])

    def test_sort_within_grant_uses_memory(self):
        table = make_table(1000, with_btree=False)
        op = Sort(HeapScan(table, ["a"]), [SortKey("a")])
        _, ctx = drain(op)
        assert ctx.metrics.memory_peak_bytes > 0
        assert ctx.metrics.spilled_bytes == 0

    def test_sort_spills_when_grant_small(self):
        table = make_table(5000, with_btree=False)
        op = Sort(HeapScan(table, ["a"]), [SortKey("a")])
        ctx = ExecutionContext(memory_grant_bytes=1024)
        rows, _ = drain(op, ctx)
        assert ctx.metrics.spilled_bytes > 0
        assert [r[0] for r in rows] == list(range(5000))  # still exact


class TestAggregates:
    def test_hash_aggregate_basic(self):
        table = make_table(1000, with_btree=False)
        scan = HeapScan(table, ["b", "a"])
        agg = HashAggregate(scan, ["b"], [
            AggregateSpec("sum", ColumnRef("a"), "sum_a"),
            AggregateSpec("count", None, "cnt"),
        ])
        rows, _ = drain(agg)
        assert len(rows) == 10
        by_key = {r[0]: r for r in rows}
        assert by_key[0][2] == 100
        assert by_key[3][1] == sum(i for i in range(1000) if i % 10 == 3)

    def test_hash_aggregate_min_max_avg(self):
        table = make_table(100, with_btree=False)
        agg = HashAggregate(HeapScan(table, ["s", "a"]), ["s"], [
            AggregateSpec("min", ColumnRef("a"), "lo"),
            AggregateSpec("max", ColumnRef("a"), "hi"),
            AggregateSpec("avg", ColumnRef("a"), "mean"),
        ])
        rows, _ = drain(agg)
        by_key = {r[0]: r for r in rows}
        assert by_key["g0"][1] == 0
        assert by_key["g2"][2] == 98
        assert abs(by_key["g0"][3] - np.mean(range(0, 100, 3))) < 1e-9

    def test_hash_aggregate_no_groups(self):
        table = make_table(100, with_btree=False)
        agg = HashAggregate(HeapScan(table, ["a"]), [], [
            AggregateSpec("sum", ColumnRef("a"), "total")])
        rows, _ = drain(agg)
        assert rows == [(sum(range(100)),)]

    def test_hash_aggregate_spills_with_tiny_grant(self):
        table = make_table(5000, with_btree=False)
        agg = HashAggregate(HeapScan(table, ["a"]), ["a"], [
            AggregateSpec("count", None, "cnt")])
        ctx = ExecutionContext(memory_grant_bytes=2048)
        rows, _ = drain(agg, ctx)
        assert agg.spilled
        assert ctx.metrics.spilled_bytes > 0
        assert len(rows) == 5000

    def test_stream_aggregate_requires_order(self):
        table = make_table(100, with_btree=False)
        with pytest.raises(ExecutionError):
            StreamAggregate(HeapScan(table, ["b", "a"]), ["b"], [
                AggregateSpec("sum", ColumnRef("a"), "s")])

    def test_stream_aggregate_matches_hash(self):
        table = make_table(1000)
        seek = BTreeSeek(table, ["a", "b"])
        stream = StreamAggregate(seek, ["a"], [
            AggregateSpec("sum", ColumnRef("b"), "sum_b")])
        stream_rows, ctx = drain(stream)
        hash_rows, _ = drain(HashAggregate(
            BTreeSeek(table, ["a", "b"]), ["a"],
            [AggregateSpec("sum", ColumnRef("b"), "sum_b")]))
        assert sorted(stream_rows) == sorted(hash_rows)
        # Streaming aggregation needs no workspace memory.
        assert ctx.metrics.memory_peak_bytes == 0


class TestJoins:
    def make_dim(self):
        schema = TableSchema("d", [
            Column("id", INT, nullable=False),
            Column("label", varchar(8)),
        ])
        dim = Table(schema)
        dim.bulk_load([(i, f"d{i}") for i in range(10)])
        return dim

    def test_hash_join(self):
        fact = make_table(100, with_btree=False)
        dim = self.make_dim()
        join = HashJoin(
            HeapScan(dim, ["id", "label"], prefix="d."),
            HeapScan(fact, ["a", "b"], prefix="t."),
            build_keys=["d.id"], probe_keys=["t.b"],
        )
        rows, _ = drain(join)
        assert len(rows) == 100
        assert join.output_columns == ["d.id", "d.label", "t.a", "t.b"]
        for d_id, label, _, b in rows:
            assert d_id == b
            assert label == f"d{b}"

    def test_hash_join_no_matches(self):
        fact = make_table(10, with_btree=False)
        dim = self.make_dim()
        join = HashJoin(
            HeapScan(dim, ["id"], prefix="d."),
            Filter(HeapScan(fact, ["a", "b"], prefix="t."),
                   pred("t.b", ">", 100)),
            build_keys=["d.id"], probe_keys=["t.b"],
        )
        rows, _ = drain(join)
        assert rows == []

    def test_hash_join_spill_on_tiny_grant(self):
        fact = make_table(2000, with_btree=False)
        dim = self.make_dim()
        join = HashJoin(
            HeapScan(fact, ["a", "b"], prefix="t."),
            HeapScan(dim, ["id", "label"], prefix="d."),
            build_keys=["t.b"], probe_keys=["d.id"],
        )
        ctx = ExecutionContext(memory_grant_bytes=512)
        rows, _ = drain(join, ctx)
        assert ctx.metrics.spilled_bytes > 0
        assert len(rows) == 2000

    def test_merge_join_requires_order(self):
        fact = make_table(100, with_btree=False)
        dim = self.make_dim()
        with pytest.raises(ExecutionError):
            MergeJoin(HeapScan(fact, ["a"]), HeapScan(dim, ["id"]),
                      ["a"], ["id"])

    def test_merge_join(self):
        left = make_table(50)
        right = make_table(80)
        join = MergeJoin(
            BTreeSeek(left, ["a"], prefix="l."),
            BTreeSeek(right, ["a"], prefix="r."),
            ["l.a"], ["r.a"],
        )
        rows, _ = drain(join)
        assert len(rows) == 50
        assert all(l == r for l, r in rows)
        assert join.output_ordering == ["l.a"]

    def test_merge_join_duplicates(self):
        schema = TableSchema("x", [Column("k", INT, nullable=False)])
        t1 = Table(schema)
        t1.bulk_load([(1,), (1,), (2,)])
        t1.set_primary_btree(["k"])
        schema2 = TableSchema("y", [Column("k", INT, nullable=False)])
        t2 = Table(schema2)
        t2.bulk_load([(1,), (2,), (2,)])
        t2.set_primary_btree(["k"])
        join = MergeJoin(BTreeSeek(t1, ["k"], prefix="x."),
                         BTreeSeek(t2, ["k"], prefix="y."),
                         ["x.k"], ["y.k"])
        rows, _ = drain(join)
        assert sorted(rows) == [(1, 1), (1, 1), (2, 2), (2, 2)]

    def test_index_nested_loop_join(self):
        fact = make_table(1000)  # clustered on a
        dim = self.make_dim()
        # outer: dim rows with id < 3; inner: fact rows with a == id
        outer = Filter(HeapScan(dim, ["id", "label"], prefix="d."),
                       pred("d.id", "<", 3))
        join = IndexNestedLoopJoin(
            outer, fact, fact.primary, outer_keys=["d.id"],
            inner_columns=["a", "b"], inner_prefix="t.",
        )
        rows, ctx = drain(join)
        assert len(rows) == 3
        for d_id, _, a, _ in rows:
            assert d_id == a
        assert "btree" in ctx.metrics.leaf_accesses

    def test_index_nested_loop_on_secondary(self):
        fact = make_table(1000)
        ix = fact.create_secondary_btree("ix_b", ["b"])
        dim = self.make_dim()
        outer = Filter(HeapScan(dim, ["id"], prefix="d."),
                       pred("d.id", "=", 4))
        join = IndexNestedLoopJoin(
            outer, fact, ix, outer_keys=["d.id"],
            inner_columns=["b", "s"], inner_prefix="t.",
        )
        rows, _ = drain(join)
        assert len(rows) == 100  # b == 4 appears 100 times in 1000 rows
        assert all(r[1] == 4 for r in rows)


class TestPlanIntrospection:
    def test_walk_and_explain(self):
        table = make_table(100)
        plan = Top(Sort(BTreeSeek(table, ["a", "b"]), [SortKey("b")]), 5)
        kinds = [type(op).__name__ for op in plan.walk()]
        assert kinds == ["Top", "Sort", "BTreeSeek"]
        text = plan.explain()
        assert "Top(5)" in text
        assert "BTreeSeek" in text
