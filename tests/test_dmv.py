"""Tests for the DMV-style system views (repro.engine.dmv) and the
always-on telemetry feeding them (repro.storage.telemetry).

Covers the SQL surface (each view selectable, filterable, joinable
through the normal parser/binder/executor path), the recording
semantics (seek vs scan vs lookup vs update, statement granularity,
missing-index observations, what-if isolation), counter lifetime across
rebuild/reorganize, the JSON/Prometheus exports, and the advisor
integrations (missing-index seeding; unused-index report).
"""

import pytest

from repro.advisor.advisor import TuningAdvisor
from repro.advisor.candidates import missing_index_candidates
from repro.advisor.workload import Workload
from repro.core.errors import SqlError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.dmv import (
    SYSTEM_VIEW_NAMES,
    build_view,
    snapshot,
    to_prometheus,
    unused_index_report,
    view_schema,
)
from repro.engine.executor import Executor
from repro.engine.query_store import QueryStore
from repro.optimizer.catalog import Catalog
from repro.optimizer.whatif import WhatIfSession, hypothetical_btree
from repro.storage.bufferpool import BufferPool
from repro.storage.database import Database
from repro.storage.telemetry import IndexUsageStats, LogicalClock
from repro.storage.waits import WAIT_TYPES


def make_db(n_rows: int = 2000) -> Database:
    """orders(o_id, o_cust, o_status, o_amt) clustered on o_id."""
    database = Database()
    orders = database.create_table(TableSchema("orders", [
        Column("o_id", INT, nullable=False),
        Column("o_cust", INT, nullable=False),
        Column("o_status", varchar(1)),
        Column("o_amt", INT),
    ]))
    orders.bulk_load([
        (i, i % 97, "NPS"[i % 3], i * 3) for i in range(n_rows)
    ])
    orders.set_primary_btree(["o_id"])
    return database


def make_hybrid_db(n_rows: int = 4000) -> Database:
    """make_db plus a secondary columnstore and a secondary B+ tree."""
    database = make_db(n_rows)
    orders = database.table("orders")
    orders.create_secondary_columnstore("csi_orders", rowgroup_size=1024)
    orders.create_secondary_btree("ix_cust", ["o_cust"],
                                  included_columns=["o_amt"])
    return database


def usage_of(database, table, index):
    return database.table(table).index_by_name(index).usage


class TestSqlSurface:
    def test_every_view_is_selectable(self):
        executor = Executor(make_hybrid_db())
        for name in SYSTEM_VIEW_NAMES:
            result = executor.execute(f"SELECT * FROM {name}")
            expected = [c.name for c in view_schema(name).columns]
            assert result.columns == expected

    def test_views_selectable_on_empty_database(self):
        executor = Executor(Database())
        for name in SYSTEM_VIEW_NAMES:
            result = executor.execute(f"SELECT * FROM {name}")
            if name == "dm_os_memory_cache_counters":
                # The segment cache always exists, even in an empty db.
                assert [row[0] for row in result.rows] == ["segment_cache"]
            elif name == "dm_os_wait_stats":
                # Every canonical wait type is present (zeros included),
                # like the real view.
                assert [row[0] for row in result.rows] == list(WAIT_TYPES)
                assert all(row[1] == 0 for row in result.rows)
            elif name == "dm_xe_ring_buffer":
                # The SELECTs of this very loop emit statement events.
                assert any(row[2] == "statement_begin"
                           for row in result.rows)
            else:
                assert result.rows == []

    def test_usage_view_filterable(self):
        database = make_hybrid_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders "
                         "WHERE o_id BETWEEN 5 AND 9")
        result = executor.execute(
            "SELECT index_name, user_seeks FROM dm_db_index_usage_stats "
            "WHERE user_seeks > 0")
        assert ("orders_pk_btree", 1) in result.rows
        assert all(row[1] > 0 for row in result.rows)

    def test_views_joinable_with_each_other(self):
        database = make_hybrid_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders GROUP BY o_status")
        result = executor.execute(
            "SELECT u.index_name un, g.state st "
            "FROM dm_db_index_usage_stats u "
            "JOIN dm_db_column_store_row_group_physical_stats g "
            "ON u.index_name = g.index_name")
        assert result.rows
        assert all(row[0] == "csi_orders" for row in result.rows)

    def test_view_joinable_with_ordinary_query_shape(self):
        database = make_hybrid_db()
        executor = Executor(database)
        result = executor.execute(
            "SELECT count(*) c FROM dm_db_index_usage_stats "
            "WHERE table_name = 'orders'")
        assert result.scalar() == 3  # pk btree + csi + ix_cust

    def test_order_by_and_aggregate_over_view(self):
        database = make_hybrid_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders "
                         "WHERE o_id BETWEEN 1 AND 3")
        result = executor.execute(
            "SELECT index_name, user_seeks FROM dm_db_index_usage_stats "
            "ORDER BY index_name")
        names = [row[0] for row in result.rows]
        assert names == sorted(names)

    def test_dml_against_view_is_rejected(self):
        executor = Executor(make_db())
        with pytest.raises(SqlError, match="read-only"):
            executor.execute(
                "UPDATE dm_db_index_usage_stats SET user_seeks = 0 "
                "WHERE user_seeks > 0")
        with pytest.raises(SqlError, match="read-only"):
            executor.execute(
                "DELETE FROM dm_db_missing_index_details "
                "WHERE statement_count > 0")

    def test_real_table_shadows_view_name(self):
        database = make_db()
        shadow = database.create_table(TableSchema(
            "dm_db_index_usage_stats", [
                Column("table_name", varchar(16), nullable=False),
                Column("x", INT),
            ]))
        shadow.bulk_load([("mine", 1)])
        executor = Executor(database)
        result = executor.execute(
            "SELECT table_name, x FROM dm_db_index_usage_stats")
        assert result.rows == [("mine", 1)]

    def test_view_snapshot_is_refreshed_per_statement(self):
        database = make_db()
        executor = Executor(database)
        before = executor.execute(
            "SELECT user_seeks FROM dm_db_index_usage_stats "
            "WHERE index_name = 'orders_pk_btree'").scalar()
        executor.execute("SELECT sum(o_amt) FROM orders "
                         "WHERE o_id BETWEEN 0 AND 4")
        after = executor.execute(
            "SELECT user_seeks FROM dm_db_index_usage_stats "
            "WHERE index_name = 'orders_pk_btree'").scalar()
        assert after == before + 1


class TestRecordingSemantics:
    def test_range_query_records_seek(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders "
                         "WHERE o_id BETWEEN 10 AND 20")
        usage = usage_of(database, "orders", "orders_pk_btree")
        assert usage.user_seeks == 1
        assert usage.user_scans == 0
        assert usage.last_user_seek == 1

    def test_full_scan_records_scan(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders")
        usage = usage_of(database, "orders", "orders_pk_btree")
        assert usage.user_scans == 1
        assert usage.user_seeks == 0

    def test_secondary_seek_records_primary_lookup(self):
        database = make_db()
        orders = database.table("orders")
        orders.create_secondary_btree("ix_cust", ["o_cust"])
        executor = Executor(database)
        executor.execute("SELECT sum(o_id) FROM orders WHERE o_cust = 11")
        secondary = usage_of(database, "orders", "ix_cust")
        primary = usage_of(database, "orders", "orders_pk_btree")
        assert secondary.user_seeks == 1
        # Bookmark lookups count against the primary structure.
        assert primary.user_lookups > 0

    def test_update_counts_once_per_statement_on_every_index(self):
        database = make_hybrid_db()
        executor = Executor(database)
        executor.execute("UPDATE TOP (50) orders SET o_amt += 1 "
                         "WHERE o_id >= 0")
        for index_name in ("orders_pk_btree", "csi_orders", "ix_cust"):
            usage = usage_of(database, "orders", index_name)
            assert usage.user_updates == 1, index_name

    def test_delete_statement_records_update(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("DELETE TOP (10) FROM orders WHERE o_id < 100")
        assert usage_of(
            database, "orders", "orders_pk_btree").user_updates == 1

    def test_noop_dml_records_nothing(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("DELETE FROM orders WHERE o_id = -1")
        assert usage_of(
            database, "orders", "orders_pk_btree").user_updates == 0

    def test_bulk_load_and_internal_reads_record_nothing(self):
        database = make_hybrid_db()
        from repro.storage.checker import check_database
        check_database(database)
        from repro.optimizer.statistics import build_table_stats
        build_table_stats(database.table("orders"))
        for structure in database.table("orders").all_indexes:
            usage = structure.usage
            assert usage.total_reads == 0
            assert usage.user_updates == 0

    def test_csi_segment_counts_attributed_per_index(self):
        database = make_db(8000)
        orders = database.table("orders")
        orders.create_secondary_columnstore("csi_orders",
                                            rowgroup_size=1024)
        executor = Executor(database)
        result = executor.execute(
            "SELECT sum(o_amt) FROM orders WHERE o_amt < 300")
        usage = usage_of(database, "orders", "csi_orders")
        if result.metrics.segments_read or result.metrics.segments_skipped:
            assert usage.segments_scanned == result.metrics.segments_read
            assert usage.segments_skipped == result.metrics.segments_skipped

    def test_clock_stamps_are_statement_sequence_numbers(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders")          # stmt 1
        executor.execute("SELECT sum(o_amt) FROM orders "
                         "WHERE o_id BETWEEN 1 AND 2")             # stmt 2
        usage = usage_of(database, "orders", "orders_pk_btree")
        assert usage.last_user_scan == 1
        assert usage.last_user_seek == 2
        assert database.telemetry.clock.now == 2


class TestCounterLifetime:
    def test_counters_survive_rebuild_and_reorganize(self):
        # Policy: usage stats live on the index object, so REBUILD and
        # REORGANIZE preserve them (SQL Server 2016 SP2+ behaviour).
        database = make_hybrid_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders GROUP BY o_status")
        executor.execute("UPDATE TOP (20) orders SET o_amt += 1 "
                         "WHERE o_id >= 0")
        csi = database.table("orders").index_by_name("csi_orders")
        before = (csi.usage.user_scans, csi.usage.user_updates)
        csi.rebuild()
        assert (csi.usage.user_scans, csi.usage.user_updates) == before
        csi.reorganize()
        assert (csi.usage.user_scans, csi.usage.user_updates) == before

    def test_reset_clears_counters(self):
        usage = IndexUsageStats(clock=LogicalClock())
        usage.clock.advance()
        usage.record_seek()
        usage.record_update()
        usage.reset()
        assert usage.user_seeks == 0
        assert usage.user_updates == 0
        assert usage.last_user_seek == 0


class TestMissingIndexTelemetry:
    def test_selective_unserved_predicate_is_recorded(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders WHERE o_cust = 13")
        details = database.telemetry.missing_indexes()
        assert len(details) == 1
        detail = details[0]
        assert detail.table_name == "orders"
        assert detail.equality_columns == ("o_cust",)
        assert detail.inequality_columns == ()
        assert "o_amt" in detail.included_columns
        assert detail.statement_count == 1
        assert 0 < detail.avg_selectivity <= 0.25

    def test_observations_fold_by_column_signature(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders WHERE o_cust = 13")
        executor.execute("SELECT count(*) c FROM orders WHERE o_cust = 40")
        details = database.telemetry.missing_indexes()
        assert len(details) == 1
        assert details[0].statement_count == 2

    def test_served_predicate_not_recorded(self):
        database = make_db()
        orders = database.table("orders")
        orders.create_secondary_btree("ix_cust", ["o_cust"])
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders WHERE o_cust = 13")
        assert database.telemetry.missing_indexes() == []

    def test_unselective_predicate_not_recorded(self):
        database = make_db()
        executor = Executor(database)
        # o_cust < 90 matches ~93% of rows: not a missing-index case.
        executor.execute("SELECT sum(o_amt) FROM orders WHERE o_cust < 90")
        assert database.telemetry.missing_indexes() == []

    def test_whatif_probing_never_pollutes_telemetry(self):
        database = make_db()
        catalog = Catalog(database)
        session = WhatIfSession(database, catalog)
        workload = Workload.from_sql(
            ["SELECT sum(o_amt) FROM orders WHERE o_cust = 13"], database)
        bound = workload.statements[0].bound
        hypo = hypothetical_btree("orders", ["o_cust"], ["o_amt"],
                                  n_rows=2000)
        config = session.configuration_with([hypo])
        session.cost_query(bound, config)
        assert database.telemetry.missing_indexes() == []

    def test_dmv_queries_never_record_missing_indexes(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("SELECT table_name FROM dm_db_missing_index_details "
                         "WHERE statement_count > 5")
        assert database.telemetry.missing_indexes() == []


class TestAdvisorIntegration:
    def test_missing_index_candidates_built_from_telemetry(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders WHERE o_cust = 13")
        catalog = Catalog(database)
        candidates = missing_index_candidates(database, catalog)
        assert len(candidates) == 1
        descriptor = candidates[0]
        assert descriptor.hypothetical
        assert descriptor.table_name == "orders"
        assert tuple(descriptor.key_columns) == ("o_cust",)
        assert "o_amt" in descriptor.included_columns
        assert descriptor.name.startswith("mi_orders_")

    def test_stale_observations_are_skipped(self):
        database = make_db()
        database.telemetry.record_missing_index(
            "ghost_table", ("a",), (), (), selectivity=0.01)
        database.telemetry.record_missing_index(
            "orders", ("no_such_column",), (), (), selectivity=0.01)
        assert missing_index_candidates(database, Catalog(database)) == []

    def test_tune_seeds_candidates_from_telemetry(self):
        database = make_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders WHERE o_cust = 13")
        # A tuning workload that on its own would not generate the
        # o_cust candidate: a pure rollup with no sargable predicate.
        advisor = TuningAdvisor(database)
        workload = Workload.from_sql(
            ["SELECT sum(o_amt) FROM orders GROUP BY o_status"], database)
        seeded = advisor.tune(workload)
        unseeded = advisor.tune(workload, seed_missing_indexes=False)
        assert seeded.n_candidates == unseeded.n_candidates + 1

    def test_unused_index_report(self):
        database = make_hybrid_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_id) FROM orders WHERE o_cust = 5")
        executor.execute("UPDATE TOP (10) orders SET o_amt += 1 "
                         "WHERE o_id >= 0")
        report = unused_index_report(database)
        names = [entry["index_name"] for entry in report]
        # ix_cust served the query; the CSI never did, yet pays updates.
        assert "csi_orders" in names
        assert "ix_cust" not in names
        entry = next(e for e in report if e["index_name"] == "csi_orders")
        assert entry["user_updates"] == 1
        assert entry["size_bytes"] > 0


class TestExports:
    def test_snapshot_shape(self):
        database = make_hybrid_db()
        store = QueryStore()
        executor = Executor(database, query_store=store)
        executor.execute("SELECT sum(o_amt) FROM orders GROUP BY o_status")
        snap = snapshot(database, query_store=store)
        assert set(snap) == {"logical_clock", *SYSTEM_VIEW_NAMES}
        assert snap["logical_clock"] == 1
        usage = {(r["table_name"], r["index_name"]): r
                 for r in snap["dm_db_index_usage_stats"]}
        assert usage[("orders", "csi_orders")]["user_scans"] == 1
        assert snap["dm_exec_query_stats"][0]["execution_count"] == 1

    def test_snapshot_of_empty_database(self):
        database = Database()
        snap = snapshot(database)
        assert snap["logical_clock"] == 0
        assert snap["dm_db_index_usage_stats"] == []
        assert snap["dm_db_missing_index_details"] == []
        assert len(snap["dm_os_memory_cache_counters"]) == 1

    def test_prometheus_exposition_format(self):
        database = make_hybrid_db()
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders GROUP BY o_status")
        text = to_prometheus(database)
        assert text.endswith("\n")
        lines = text.splitlines()
        helps = {ln.split()[2] for ln in lines if ln.startswith("# HELP")}
        types = {ln.split()[2] for ln in lines if ln.startswith("# TYPE")}
        assert helps == types
        samples = [ln for ln in lines if not ln.startswith("#")]
        for line in samples:
            name_and_labels, value = line.rsplit(" ", 1)
            float(value)  # every sample value parses as a number
            metric = name_and_labels.split("{", 1)[0]
            assert metric.startswith("repro_")
        assert any(ln.startswith("repro_logical_clock") for ln in samples)
        assert any('index="csi_orders"' in ln for ln in samples)

    def test_prometheus_escapes_label_values(self):
        from repro.engine.dmv import _prom_line
        line = _prom_line("m", {"a": 'x"y\\z\nw'}, 1)
        assert line == 'm{a="x\\"y\\\\z\\nw"} 1'

    def test_prometheus_of_empty_database(self):
        text = to_prometheus(Database())
        assert "repro_logical_clock 0" in text

    def test_memory_cache_counters_with_buffer_pool(self):
        database = make_db()
        pool = BufferPool(capacity_pages=64)
        pool.touch([1])
        pool.touch([1])
        table = build_view("dm_os_memory_cache_counters", database,
                           buffer_pool=pool)
        rows = {row[0]: row for _, row in table.iter_rows()}
        assert "segment_cache" in rows
        assert "buffer_pool" in rows
        assert rows["buffer_pool"][4] == pool.hits

    def test_segment_cache_counters_reflect_hits(self):
        database = Database(segment_cache_enabled=True)
        orders = database.create_table(TableSchema("orders", [
            Column("o_id", INT, nullable=False),
            Column("o_amt", INT),
        ]))
        orders.bulk_load([(i, i) for i in range(4000)])
        orders.set_primary_columnstore(rowgroup_size=1024)
        executor = Executor(database)
        executor.execute("SELECT sum(o_amt) FROM orders")
        executor.execute("SELECT sum(o_amt) FROM orders")
        result = executor.execute(
            "SELECT hits FROM dm_os_memory_cache_counters "
            "WHERE cache_name = 'segment_cache'")
        assert result.scalar() > 0


class TestDeterminism:
    def test_identical_runs_produce_identical_snapshots(self):
        import json

        def run():
            database = make_hybrid_db()
            store = QueryStore()
            executor = Executor(database, query_store=store)
            executor.execute("SELECT sum(o_amt) FROM orders "
                             "WHERE o_id BETWEEN 10 AND 40")
            executor.execute("SELECT sum(o_amt) FROM orders "
                             "GROUP BY o_status")
            executor.execute("UPDATE TOP (25) orders SET o_amt += 1 "
                             "WHERE o_cust = 3")
            executor.execute("SELECT count(*) c FROM orders "
                             "WHERE o_cust = 9")
            return json.dumps(snapshot(database, query_store=store),
                              default=str, sort_keys=True)

        assert run() == run()

    def test_prometheus_output_is_deterministic(self):
        def run():
            database = make_hybrid_db()
            executor = Executor(database)
            executor.execute("SELECT sum(o_amt) FROM orders "
                             "WHERE o_cust = 3")
            executor.execute("DELETE TOP (5) FROM orders WHERE o_id < 50")
            return to_prometheus(database)

        assert run() == run()
