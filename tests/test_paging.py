"""Demand paging: differential paged vs fully-loaded databases.

The tentpole contract under test: ``Database.open(..., paging=True)``
serves exactly the same database as the default fully-loaded open —
identical rows, identical modeled metrics, identical ``state_digest``,
identical checker verdicts — while B+ leaf pages and columnstore
segment pages stay on disk behind the buffer pool until first touch.
The eviction test proves a table ~4x the pool budget scans with peak
residency bounded by the budget.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.executor import Executor
from repro.engine.metrics import ExecutionContext
from repro.storage.checker import check_database
from repro.storage.database import Database
from repro.storage.recovery import recover, state_digest


def build_mixed_db():
    """Hybrid physical design: clustered B+ tree + secondary B+ tree on
    one table, primary columnstore on another."""
    database = Database("paging")
    t = database.create_table(TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", varchar(16)),
        Column("c", INT),
    ]))
    t.bulk_load([(i, f"v{i % 7}", i * 3) for i in range(5000)])
    t.set_primary_btree(["a"])
    t.create_secondary_btree("ix_c", ["c"])
    u = database.create_table(TableSchema("u", [
        Column("a", INT, nullable=False),
        Column("b", INT),
    ]))
    u.bulk_load([(i, i * 2) for i in range(4096)])
    u.set_primary_columnstore(name="u_csi", rowgroup_size=1024)
    return database


@pytest.fixture
def durable_dir(tmp_path):
    database = build_mixed_db()
    database.enable_durability(str(tmp_path))
    database.wal.close()
    return str(tmp_path)


def open_both(durable_dir, pool_bytes=1 << 20):
    full = Database.open(durable_dir)
    paged = Database.open(durable_dir, paging=True, pool_bytes=pool_bytes)
    return full, paged


def csi_rows(database):
    rows = []
    for batch in database.table("u").primary.scan(["a", "b"]):
        a, b = batch.column("a"), batch.column("b")
        a = a.materialize() if hasattr(a, "materialize") else a
        b = b.materialize() if hasattr(b, "materialize") else b
        rows.extend(zip(a.tolist(), b.tolist()))
    return rows


class TestPagedOpen:
    def test_open_is_lazy(self, durable_dir):
        paged = Database.open(durable_dir, paging=True, pool_bytes=1 << 20)
        assert paged.buffer_pool is not None
        # Nothing replayed, nothing faulted: the checker was deferred
        # and no deferred page is resident yet.
        assert paged.last_recovery.check_mode == "deferred"
        assert paged.last_recovery.check_ok
        assert paged.buffer_pool.bytes_resident == 0
        assert paged.table("t").primary.is_paged
        assert paged.table("t").secondary_indexes["ix_c"].is_paged
        assert all(s.group.is_paged
                   for s in paged.table("u").primary._groups)

    def test_default_open_has_no_pool(self, durable_dir):
        full = Database.open(durable_dir)
        assert full.buffer_pool is None
        assert full.last_recovery.check_mode == "full"

    def test_pool_bytes_requires_paging(self, durable_dir):
        from repro.core.errors import StorageError
        with pytest.raises(StorageError):
            Database.open(durable_dir, pool_bytes=1 << 20)


class TestDifferentialReads:
    def test_scans_and_seeks_identical(self, durable_dir):
        full, paged = open_both(durable_dir)
        assert (list(full.table("t").primary.scan())
                == list(paged.table("t").primary.scan()))
        assert csi_rows(full) == csi_rows(paged)
        assert (list(full.table("t").primary.seek_range((100,), (200,)))
                == list(paged.table("t").primary.seek_range((100,), (200,))))
        ix_f = full.table("t").secondary_indexes["ix_c"]
        ix_p = paged.table("t").secondary_indexes["ix_c"]
        assert (list(ix_f.seek_range((300,), (600,)))
                == list(ix_p.seek_range((300,), (600,))))
        # Exclusive bounds and point lookups too.
        assert (list(ix_f.seek_range((300,), (600,), low_inclusive=False,
                                     high_inclusive=False))
                == list(ix_p.seek_range((300,), (600,), low_inclusive=False,
                                        high_inclusive=False)))
        rid, row = full.table("t").rows_with_rids()[0]
        assert (full.table("t").primary.lookup_rid(row, rid)
                == paged.table("t").primary.lookup_rid(row, rid))

    def test_modeled_metrics_identical(self, durable_dir):
        """Paged reads charge exactly the modeled costs of the in-memory
        path: traversal from the simulated bulk-load height, range I/O
        from rows touched, segment reads from stored sizes."""
        full, paged = open_both(durable_dir)
        for cold in (False, True):
            ctx_f = ExecutionContext(cold=cold)
            ctx_p = ExecutionContext(cold=cold)
            list(full.table("t").primary.seek_range((50,), (950,), ctx=ctx_f))
            list(paged.table("t").primary.seek_range((50,), (950,),
                                                     ctx=ctx_p))
            list(full.table("u").primary.scan(
                ["a", "b"], ctx=ctx_f,
                elimination_ranges={"a": (0, 1500)}))
            list(paged.table("u").primary.scan(
                ["a", "b"], ctx=ctx_p,
                elimination_ranges={"a": (0, 1500)}))
            assert (dataclasses.asdict(ctx_f.metrics)
                    == dataclasses.asdict(ctx_p.metrics))

    def test_state_digest_and_checker_identical(self, durable_dir):
        full, paged = open_both(durable_dir)
        result = check_database(paged)
        assert result.ok, result.errors
        assert state_digest(paged) == state_digest(full)

    def test_sql_results_identical(self, durable_dir):
        full, paged = open_both(durable_dir)
        for sql in (
            "SELECT COUNT(*) FROM t WHERE c > 600",
            "SELECT a, b FROM t WHERE a BETWEEN 10 AND 40",
            "SELECT SUM(b) FROM u WHERE a < 2000",
        ):
            rf = Executor(full).execute(sql)
            rp = Executor(paged).execute(sql)
            assert [tuple(r) for r in rf.rows] == [tuple(r) for r in rp.rows]

    def test_warm_scan_hits_pool(self, durable_dir):
        _, paged = open_both(durable_dir)
        csi_rows(paged)
        cold_misses = paged.buffer_pool.misses
        assert cold_misses > 0
        assert paged.buffer_pool.hits == 0
        csi_rows(paged)
        assert paged.buffer_pool.misses == cold_misses
        assert paged.buffer_pool.hits > 0


class TestDifferentialDml:
    def test_dml_and_recovery_identical(self, tmp_path):
        database = build_mixed_db()
        database.enable_durability(str(tmp_path))
        # Logged DML after the checkpoint: the paged reopen must redo it
        # (forcing residency of the touched structures) and converge to
        # the same digest as the fully-loaded reopen.
        t = database.table("t")
        t.delete_rids([10, 11, 12])
        t.insert_row((99999, "zz", 42))
        t.update_rids([(20, (20, "upd", -1))])
        database.wal.close()
        full, paged = open_both(str(tmp_path))
        assert paged.last_recovery.ops_replayed > 0
        # With redo work the consistency check is NOT deferred.
        assert paged.last_recovery.check_mode == "full"
        assert paged.last_recovery.check_ok
        assert state_digest(paged) == state_digest(full)

    def test_dml_on_paged_database(self, durable_dir):
        full, paged = open_both(durable_dir)
        for db in (full, paged):
            db.table("t").delete_rids([100, 101])
            db.table("t").insert_row((88888, "new", 7))
            db.table("u").primary.rebuild()
        assert state_digest(paged) == state_digest(full)
        result = check_database(paged)
        assert result.ok, result.errors

    def test_checkpoint_of_paged_database(self, durable_dir, tmp_path):
        _, paged = open_both(durable_dir)
        paged.table("t").insert_row((77777, "ck", 1))
        path = paged.checkpoint()
        reopened = Database.open(durable_dir)
        assert reopened.last_recovery.check_ok
        assert 77777 in {row[0] for _, row in
                         reopened.table("t").iter_rows()}
        assert state_digest(reopened) == state_digest(paged)

    def test_rebuild_invalidates_pool(self, durable_dir):
        _, paged = open_both(durable_dir)
        csi_rows(paged)
        oid = paged.table("u").primary.object_id
        pool = paged.buffer_pool
        assert any(page[0] == oid for page in pool._resident)
        paged.table("u").primary.rebuild()
        assert not any(page[0] == oid for page in pool._resident)
        assert pool.invalidations > 0
        # Rebuilt groups are in-memory: scans no longer fault.
        before = pool.misses
        csi_rows(paged)
        assert pool.misses == before


class TestEvictionBound:
    def test_peak_residency_bounded_by_budget(self, tmp_path):
        """Scan a table ~4x the pool budget, twice; peak residency never
        exceeds the budget and eviction (not growth) absorbs the excess."""
        rng = np.random.RandomState(0)
        database = Database("big")
        table = database.create_table(TableSchema("big", [
            Column("k", INT, nullable=False),
            Column("x", INT),
        ]))
        # Random payloads defeat RLE so segments stay ~raw-sized.
        table.bulk_load([(i, int(rng.randint(0, 2 ** 31)))
                         for i in range(64 * 1024)])
        table.set_primary_columnstore(name="big_csi", rowgroup_size=1024)
        total_bytes = database.table("big").primary.size_bytes()
        database.enable_durability(str(tmp_path))
        database.wal.close()

        budget = total_bytes // 4
        paged = Database.open(str(tmp_path), paging=True,
                              pool_bytes=budget)
        index = paged.table("big").primary
        pool = paged.buffer_pool
        assert pool.budget_bytes == budget
        for _ in range(2):
            n = 0
            for batch in index.scan(["k", "x"]):
                n += len(batch)
            assert n == 64 * 1024
        assert pool.evictions > 0
        assert pool.peak_bytes <= budget, (
            f"peak residency {pool.peak_bytes} exceeded budget {budget}")
        assert pool.bytes_resident <= budget
        # And the data really was larger than the pool.
        assert total_bytes >= 4 * budget
