"""Telemetry-history tests: logical-clock interval sampling, delta
semantics, retention, determinism digest, and the executor hookup."""

import pytest

from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.storage.timeseries import (
    DEFAULT_SAMPLE_INTERVAL,
    TelemetryHistory,
)
from repro.workloads.synthetic import make_uniform_table


def _db(n_rows=512) -> Database:
    database = Database()
    make_uniform_table(database, "micro", n_rows, 2, seed=7)
    database.table("micro").set_primary_columnstore(rowgroup_size=256)
    return database


def _run(statements: int, interval=None, enable_cache=False) -> Database:
    database = _db()
    if interval is not None:
        database.history = TelemetryHistory(interval=interval)
    if enable_cache:
        database.segment_cache.enabled = True
    executor = Executor(database)
    for _ in range(statements):
        executor.execute("SELECT sum(col1) FROM micro")
    return database


class TestSampling:
    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            TelemetryHistory(interval=0)
        with pytest.raises(ValueError):
            TelemetryHistory(retention=0)

    def test_no_sample_before_first_boundary(self):
        database = _run(DEFAULT_SAMPLE_INTERVAL - 1)
        assert len(database.history) == 0
        assert database.history.last() is None

    def test_executor_samples_each_interval(self):
        database = _run(10, interval=4)
        # Statements 4 and 8 cross boundaries.
        samples = database.history.samples()
        assert [s["clock"] for s in samples] == [4, 8]
        assert all(s["statements"] == 4 for s in samples)
        assert database.history.samples_taken == 2

    def test_burst_crossing_many_boundaries_yields_one_sample(self):
        database = _db()
        history = TelemetryHistory(interval=4)
        clock = database.telemetry.clock
        for _ in range(11):
            clock.advance()
        sample = history.maybe_sample(database)
        assert sample is not None and sample["statements"] == 11
        # Boundary realigned past the current clock: 12 is next due.
        assert history.maybe_sample(database) is None
        clock.advance()
        assert history.maybe_sample(database)["clock"] == 12

    def test_deltas_not_cumulative(self):
        database = _run(8, interval=4, enable_cache=True)
        first, second = database.history.samples()
        # Interval 1 decodes cold (misses), interval 2 is all cache
        # hits — deltas make that visible; cumulative counters wouldn't.
        assert first["cache_misses"] > 0
        assert second["cache_misses"] == 0
        assert second["cache_hits"] > 0
        assert second["events"] == first["events"] > 0

    def test_sample_now_forces_off_boundary_sample(self):
        database = _run(3)
        sample = database.history.sample_now(database)
        assert sample["clock"] == 3
        assert sample["statements"] == 3
        assert len(database.history) == 1

    def test_retention_bound(self):
        database = _db()
        history = TelemetryHistory(interval=1, retention=5)
        clock = database.telemetry.clock
        for _ in range(9):
            clock.advance()
            history.maybe_sample(database)
        samples = history.samples()
        assert len(samples) == 5
        assert [s["clock"] for s in samples] == [5, 6, 7, 8, 9]
        assert history.samples_taken == 9

    def test_wait_rows_cover_taxonomy(self):
        database = _run(5, interval=4)
        from repro.storage.waits import WAIT_TYPES
        (sample,) = database.history.samples()
        assert set(sample["waits"]) == set(WAIT_TYPES)
        assert all(row["count"] == 0 and row["wait_ms"] == 0.0
                   for row in sample["waits"].values())

    def test_pool_keys_only_with_buffer_pool(self, tmp_path):
        database = _run(5, interval=4)
        (sample,) = database.history.samples()
        assert "pool_hits" not in sample

        data_dir = str(tmp_path / "data")
        database.save(data_dir)
        paged = Database.open(data_dir, paging=True)
        paged.history = TelemetryHistory(interval=2)
        executor = Executor(paged)
        executor.execute("SELECT sum(col1) FROM micro")
        executor.execute("SELECT sum(col1) FROM micro")
        (paged_sample,) = paged.history.samples()
        assert "pool_hits" in paged_sample
        assert paged_sample["pool_misses"] >= 0

    def test_reset(self):
        database = _run(10, interval=4)
        database.history.reset()
        assert len(database.history) == 0
        assert database.history.samples_taken == 0
        # Interval tracking restarts relative to the original spacing.
        Executor(database).execute("SELECT sum(col1) FROM micro")
        assert len(database.history) == 1


class TestDeterminism:
    def test_digest_identical_across_identical_runs(self):
        digests = []
        for _ in range(2):
            database = _run(20, interval=4, enable_cache=True)
            digests.append(database.history.digest())
        assert digests[0] == digests[1]

    def test_digest_excludes_wall_clock_overlay(self):
        database = _run(10, interval=4)
        before = database.history.digest()
        for sample in database.history._samples:
            sample["wall_time_s"] += 1000.0
            for row in sample["waits"].values():
                row["wait_ms"] += 5.0
        assert database.history.digest() == before

    def test_digest_sensitive_to_counts(self):
        database = _run(10, interval=4)
        before = database.history.digest()
        database.history._samples[0]["statements"] += 1
        assert database.history.digest() != before
