"""Write-ahead logging and crash recovery.

Covers the durability contract at the WAL level: committed statements
survive recovery, aborted/uncommitted statements never do, recovery is
idempotent, DDL and explicit maintenance replay, checkpoints bound the
redo work, and — the property test — truncating the log at *every*
byte boundary still recovers to exactly some committed prefix of the
history.
"""

import os
import shutil

import pytest

from repro.core.errors import RecoveryError
from repro.storage.faults import InjectedFault
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.storage.recovery import recover, state_digest
from repro.storage.wal import (
    REC_BEGIN,
    REC_CHECKPOINT,
    REC_COMMIT,
    REC_OP,
    WAL_FILENAME,
    WriteAheadLog,
    read_wal,
)


def schema(name="t"):
    return TableSchema(name, [
        Column("a", INT, nullable=False),
        Column("b", INT),
        Column("s", varchar(8)),
    ])


def durable_db(tmp_path, design="hybrid", n_rows=200):
    database = Database("wal")
    table = database.create_table(schema())
    table.bulk_load([(i, i % 5, f"s{i % 3}") for i in range(n_rows)])
    if design in ("btree", "hybrid"):
        table.set_primary_btree(["a"])
    if design == "hybrid":
        table.create_secondary_columnstore("csi_t", rowgroup_size=64)
    if design == "csi":
        table.set_primary_columnstore(rowgroup_size=64)
    database.enable_durability(str(tmp_path))
    return database


class TestWalFile:
    def test_records_roundtrip(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        txn = wal.begin()
        wal.log_op(txn, {"op": "insert", "rid": 1, "row": (1, "x")})
        wal.commit(txn)
        wal.log_ops([{"op": "delete", "rids": [4]}])
        wal.close()
        scan = read_wal(path)
        assert not scan.torn
        assert [r.rec_type for r in scan.records] == [
            REC_BEGIN, REC_OP, REC_COMMIT, REC_BEGIN, REC_OP, REC_COMMIT]
        assert scan.records[1].payload == {
            "op": "insert", "rid": 1, "row": (1, "x")}
        assert [r.lsn for r in scan.records] == list(range(1, 7))
        assert scan.committed_txns() == {1, 2}

    def test_statement_scope_is_atomic(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        with wal.statement():
            wal.log_ops([{"op": "a"}])
            with wal.statement():  # nested scope joins the outer txn
                wal.log_ops([{"op": "b"}])
        scan = read_wal(path)
        assert {r.txn for r in scan.records} == {1}
        assert len([r for r in scan.records
                    if r.rec_type == REC_COMMIT]) == 1

    def test_failed_statement_aborts(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        with pytest.raises(RuntimeError):
            with wal.statement():
                wal.log_ops([{"op": "doomed"}])
                raise RuntimeError("statement failed")
        scan = read_wal(path)
        assert scan.committed_txns() == frozenset()
        assert scan.aborted_txns() == {1}
        # The buffered op was discarded, never written.
        assert not [r for r in scan.records if r.rec_type == REC_OP]

    def test_checkpoint_resets_log(self, tmp_path):
        path = str(tmp_path / WAL_FILENAME)
        wal = WriteAheadLog(path)
        for _ in range(5):
            wal.log_ops([{"op": "x"}])
        wal.checkpoint(wal.last_lsn)
        wal.close()
        scan = read_wal(path)
        assert len(scan.records) == 1
        assert scan.records[0].rec_type == REC_CHECKPOINT
        assert scan.checkpoint_lsn() == 15


class TestRecovery:
    def test_committed_statements_survive(self, tmp_path):
        database = durable_db(tmp_path)
        executor = Executor(database)
        executor.execute("INSERT INTO t (a, b, s) VALUES (900, 1, 'n')")
        executor.execute("DELETE FROM t WHERE a < 10")
        executor.execute("UPDATE t SET b = 77 WHERE a BETWEEN 50 AND 60")
        recovered, report = recover(str(tmp_path))
        assert report.check_ok
        assert report.txns_committed == 3
        assert state_digest(recovered) == state_digest(database)

    def test_aborted_statement_invisible(self, tmp_path):
        database = durable_db(tmp_path)
        executor = Executor(database)
        # An organic failure mid-statement: the engine rolls the
        # statement back in memory and the WAL scope writes an ABORT.
        database.fault_injector.arm("table.secondary_apply", on_hit=1)
        with pytest.raises(InjectedFault):
            executor.execute("INSERT INTO t (a, b, s) VALUES (901, 1, 'n')")
        executor.execute("INSERT INTO t (a, b, s) VALUES (902, 2, 'y')")
        recovered, report = recover(str(tmp_path))
        assert report.check_ok
        assert report.txns_aborted == 1
        values = {row[0] for _, row in recovered.table("t").iter_rows()}
        assert 901 not in values and 902 in values
        assert state_digest(recovered) == state_digest(database)

    def test_ddl_and_maintenance_replay(self, tmp_path):
        database = durable_db(tmp_path, design="btree")
        table = database.table("t")
        table.create_secondary_columnstore("csi_t", rowgroup_size=64)
        Executor(database).execute("DELETE FROM t WHERE a < 50")
        table.secondary_indexes["csi_t"].rebuild()
        table.create_secondary_btree("ix_b", ["b"])
        table.drop_index("ix_b")
        other = database.create_table(schema("t2"))
        for i in range(20):
            other.insert_row((i, i, "x"))
        database.drop_table("t2")
        recovered, report = recover(str(tmp_path))
        assert report.check_ok
        assert not recovered.has_table("t2")
        assert state_digest(recovered) == state_digest(database)

    def test_checkpoint_bounds_redo(self, tmp_path):
        database = durable_db(tmp_path)
        executor = Executor(database)
        executor.execute("INSERT INTO t (a, b, s) VALUES (900, 1, 'n')")
        database.checkpoint()
        executor.execute("INSERT INTO t (a, b, s) VALUES (901, 1, 'n')")
        recovered, report = recover(str(tmp_path))
        assert report.check_ok
        # Only the post-checkpoint statement replays.
        assert report.ops_replayed == 1
        assert state_digest(recovered) == state_digest(database)

    def test_recovery_idempotent(self, tmp_path):
        database = durable_db(tmp_path)
        executor = Executor(database)
        for i in range(10):
            executor.execute(
                f"INSERT INTO t (a, b, s) VALUES ({1000 + i}, 1, 'n')")
            if i == 4:
                database.checkpoint()
        first, _ = recover(str(tmp_path))
        second, _ = recover(str(tmp_path))
        assert state_digest(first) == state_digest(second)

    def test_reopen_continues_lsn_and_txn(self, tmp_path):
        database = durable_db(tmp_path)
        Executor(database).execute(
            "INSERT INTO t (a, b, s) VALUES (900, 1, 'n')")
        database.wal.close()
        reopened = Database.open(str(tmp_path))
        Executor(reopened).execute(
            "INSERT INTO t (a, b, s) VALUES (901, 1, 'n')")
        reopened.wal.close()
        scan = read_wal(str(tmp_path / WAL_FILENAME))
        lsns = [r.lsn for r in scan.records]
        assert lsns == sorted(lsns) and len(set(lsns)) == len(lsns)
        final = Database.open(str(tmp_path))
        values = {row[0] for _, row in final.table("t").iter_rows()}
        assert {900, 901} <= values
        assert final.last_recovery.check_ok

    def test_unrecoverable_snapshot_raises(self, tmp_path):
        database = durable_db(tmp_path)
        del database
        snapshot = str(tmp_path / "snapshot.db")
        blob = bytearray(open(snapshot, "rb").read())
        blob[len(blob) // 3] ^= 0xFF
        with open(snapshot, "wb") as handle:
            handle.write(bytes(blob))
        with pytest.raises(RecoveryError):
            recover(str(tmp_path))


class TestTruncationProperty:
    """Chop the WAL at every byte boundary: recovery must always land
    on exactly some committed prefix of the history, idempotently."""

    def test_every_truncation_recovers_a_prefix(self, tmp_path):
        source = tmp_path / "src"
        database = durable_db(source, n_rows=50)
        executor = Executor(database)
        # Digest after each committed statement = the allowed states.
        allowed = {state_digest(database)}
        statements = [
            "INSERT INTO t (a, b, s) VALUES (900, 1, 'n')",
            "UPDATE t SET b = 9 WHERE a < 5",
            "DELETE FROM t WHERE a = 20",
        ]
        for sql in statements:
            executor.execute(sql)
            allowed.add(state_digest(database))
        wal_path = str(source / WAL_FILENAME)
        wal_bytes = open(wal_path, "rb").read()

        work = tmp_path / "cut"
        for cut in range(len(wal_bytes) + 1):
            if work.exists():
                shutil.rmtree(str(work))
            os.makedirs(str(work))
            shutil.copy(str(source / "snapshot.db"),
                        str(work / "snapshot.db"))
            with open(str(work / WAL_FILENAME), "wb") as handle:
                handle.write(wal_bytes[:cut])
            recovered, report = recover(str(work))
            assert report.check_ok, (
                f"cut at byte {cut}: checker findings "
                f"{report.check_findings}")
            digest = state_digest(recovered)
            assert digest in allowed, (
                f"cut at byte {cut} recovered a state that matches no "
                f"committed prefix (torn={report.torn_tail}: "
                f"{report.torn_reason})")
            again, _ = recover(str(work))
            assert state_digest(again) == digest, (
                f"cut at byte {cut}: recovery not idempotent")

    def test_truncation_is_monotone(self, tmp_path):
        """More bytes can only ever mean more committed statements."""
        source = tmp_path / "src"
        database = durable_db(source, n_rows=30)
        executor = Executor(database)
        for i in range(4):
            executor.execute(
                f"INSERT INTO t (a, b, s) VALUES ({800 + i}, 1, 'n')")
        wal_path = str(source / WAL_FILENAME)
        wal_bytes = open(wal_path, "rb").read()
        work = tmp_path / "cut"
        previous = -1
        for cut in range(0, len(wal_bytes) + 1, 13):
            if work.exists():
                shutil.rmtree(str(work))
            os.makedirs(str(work))
            shutil.copy(str(source / "snapshot.db"),
                        str(work / "snapshot.db"))
            with open(str(work / WAL_FILENAME), "wb") as handle:
                handle.write(wal_bytes[:cut])
            _, report = recover(str(work))
            assert report.txns_committed >= previous
            previous = report.txns_committed
