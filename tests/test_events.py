"""Extended-events stream tests: ring-buffer semantics, subscriber
hooks, JSONL export, and every engine emitter (statement lifecycle,
checkpoint, recovery, plan change, grant timeout, fault injection,
eviction storm)."""

import json
import random
import threading

import pytest

from repro.core.errors import ExecutionError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.executor import Executor
from repro.engine.query_store import QueryStore
from repro.server.session import SessionManager
from repro.storage.bufferpool import EVICTION_STORM_THRESHOLD
from repro.storage.database import Database
from repro.storage.events import EVENT_NAMES, EventStream
from repro.storage.faults import InjectedFault
from repro.storage.telemetry import LogicalClock
from repro.workloads.synthetic import make_uniform_table


def _small_db(n_rows=2000) -> Database:
    database = Database()
    make_uniform_table(database, "micro", n_rows, 2, seed=5)
    database.table("micro").set_primary_columnstore(rowgroup_size=1024)
    return database


class TestRing:
    def test_emit_assigns_ids_and_timestamps(self):
        clock = LogicalClock()
        stream = EventStream(clock=clock)
        clock.advance()
        event = stream.emit("checkpoint", {"tables": 2})
        assert event.event_id == 1
        assert event.timestamp == 1
        assert event.payload == {"tables": 2}
        assert stream.emitted == 1

    def test_unknown_event_name_rejected(self):
        stream = EventStream()
        with pytest.raises(ValueError):
            stream.emit("not_an_event")

    def test_every_canonical_name_is_emittable(self):
        stream = EventStream()
        for name in EVENT_NAMES:
            stream.emit(name)
        assert [e.name for e in stream.events()] == list(EVENT_NAMES)

    def test_ring_drops_oldest_past_capacity(self):
        stream = EventStream(capacity=4)
        for i in range(7):
            stream.emit("checkpoint", {"i": i})
        events = stream.events()
        assert len(events) == 4
        assert [e.payload["i"] for e in events] == [3, 4, 5, 6]
        assert stream.dropped == 3
        assert stream.emitted == 7

    def test_filter_by_name(self):
        stream = EventStream()
        stream.emit("checkpoint")
        stream.emit("recovery")
        stream.emit("checkpoint")
        assert len(stream.events("checkpoint")) == 2
        assert len(stream.events("recovery")) == 1

    def test_subscriber_sees_events_and_unsubscribes(self):
        stream = EventStream()
        seen = []
        unsubscribe = stream.subscribe(lambda e: seen.append(e.name))
        stream.emit("checkpoint")
        unsubscribe()
        stream.emit("recovery")
        assert seen == ["checkpoint"]

    def test_subscriber_exception_is_swallowed_and_counted(self):
        stream = EventStream()

        def bad(_event):
            raise RuntimeError("observer bug")

        stream.subscribe(bad)
        event = stream.emit("checkpoint")
        assert event.event_id == 1
        assert stream.subscriber_errors == 1

    def test_jsonl_roundtrip(self, tmp_path):
        stream = EventStream()
        stream.emit("checkpoint", {"tables": 3})
        stream.emit("recovery", {"ops_replayed": 7})
        path = tmp_path / "events.jsonl"
        assert stream.write_jsonl(str(path)) == 2
        lines = path.read_text().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert parsed[0]["name"] == "checkpoint"
        assert parsed[1]["payload"]["ops_replayed"] == 7
        # Deterministic serialisation: keys are sorted.
        assert lines[0] == json.dumps(parsed[0], sort_keys=True)

    def test_clear_keeps_ids_monotonic(self):
        stream = EventStream()
        stream.emit("checkpoint")
        stream.clear()
        event = stream.emit("checkpoint")
        assert event.event_id == 2
        assert stream.emitted == 1

    def test_concurrent_emits_unique_ids(self):
        stream = EventStream(capacity=4096)

        def emitter():
            for _ in range(200):
                stream.emit("checkpoint")

        threads = [threading.Thread(target=emitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        ids = [e.event_id for e in stream.events()]
        assert len(ids) == len(set(ids)) == 800


class TestEngineEmitters:
    def test_statement_lifecycle_events(self):
        database = _small_db()
        Executor(database).execute("SELECT sum(col1) FROM micro")
        begins = database.events.events("statement_begin")
        ends = database.events.events("statement_end")
        assert len(begins) == 1 and len(ends) == 1
        assert begins[0].payload["sql"].startswith("SELECT sum(col1)")
        assert begins[0].payload["statement"] == 1
        end = ends[0].payload
        assert end["rows"] == 1
        assert end["elapsed_ms"] > 0
        # Uncontended single-threaded run: no waits key at all, keeping
        # the payload deterministic.
        assert "waits" not in end

    def test_failed_statement_emits_end_with_error(self):
        database = _small_db()
        executor = Executor(database)
        with pytest.raises(Exception):
            executor.execute("SELECT nope FROM micro")
        ends = database.events.events("statement_end")
        assert len(ends) == 1
        assert ends[0].payload["error"] == "SqlError"

    def test_statement_begin_visible_to_its_own_ring_query(self):
        database = _small_db()
        result = Executor(database).execute(
            "SELECT event_name FROM dm_xe_ring_buffer")
        assert ("statement_begin",) in result.rows

    def test_checkpoint_and_recovery_events(self, tmp_path):
        database = _small_db()
        data_dir = str(tmp_path / "data")
        database.enable_durability(data_dir)
        Executor(database).execute(
            "UPDATE TOP (5) micro SET col2 += 1 WHERE col1 >= 0")
        database.checkpoint()
        checkpoints = database.events.events("checkpoint")
        assert checkpoints
        assert checkpoints[-1].payload["durable"] is True

        reopened = Database.open(data_dir)
        (recovery,) = reopened.events.events("recovery")
        assert recovery.payload["check_ok"] is True
        assert recovery.payload["torn_tail"] is False

    def test_plan_change_event(self):
        rng = random.Random(4)
        database = Database()
        table = database.create_table(TableSchema("t", [
            Column("k", INT, nullable=False),
            Column("g", INT, nullable=False),
            Column("v", INT),
        ]))
        table.bulk_load([(i, rng.randrange(8), rng.randrange(1000))
                         for i in range(30_000)])
        table.set_primary_btree(["k"])
        executor = Executor(database, query_store=QueryStore())
        sql = "SELECT g, sum(v) FROM t GROUP BY g"
        executor.execute(sql)
        assert database.events.events("plan_change") == []
        database.table("t").create_secondary_columnstore("csi")
        executor.refresh()
        executor.execute(sql)
        (change,) = database.events.events("plan_change")
        assert change.payload["sql"] == sql
        assert change.payload["new_plan"] != change.payload["previous_plan"]

    def test_grant_timeout_event(self):
        database = _small_db()
        with SessionManager(database) as manager:
            manager.admission.grants.default_timeout_s = 0.05
            holding, release = threading.Event(), threading.Event()
            capacity = manager.admission.grants.capacity_bytes

            def holder():
                with manager.admission.grants.grant(capacity):
                    holding.set()
                    release.wait()

            thread = threading.Thread(target=holder)
            thread.start()
            holding.wait()
            with manager.session() as session:
                with pytest.raises(ExecutionError, match="timed out"):
                    session.execute("SELECT sum(col1) FROM micro")
            release.set()
            thread.join(timeout=5)
        (timeout_event,) = database.events.events("grant_timeout")
        assert timeout_event.payload["requested_bytes"] > 0
        assert timeout_event.session_id == session.session_id

    def test_fault_injection_event(self):
        database = _small_db()
        database.fault_injector.arm("csi.delta_insert", on_hit=1)
        executor = Executor(database)
        with pytest.raises(InjectedFault):
            executor.execute("INSERT INTO micro (col1, col2) "
                             "VALUES (1, 2)")
        (fault,) = database.events.events("fault_injection")
        assert fault.payload["point"] == "csi.delta_insert"
        assert fault.payload["crash_point"] is False

    def test_eviction_storm_event(self):
        from repro.storage.bufferpool import BufferPool, PAGE_BYTES
        n_small = EVICTION_STORM_THRESHOLD + 8
        pool = BufferPool(budget_bytes=PAGE_BYTES * n_small)
        stream = EventStream()
        pool.events = stream
        for page in range(n_small):
            pool.get_or_load(("t", page), lambda: (b"x", PAGE_BYTES))
        assert stream.events("eviction_storm") == []
        # One frame the size of the whole budget forces every resident
        # small frame out in a single insertion — a storm.
        pool.get_or_load(("t", "huge"),
                         lambda: (b"y", PAGE_BYTES * n_small))
        (storm,) = stream.events("eviction_storm")
        assert storm.payload["evicted"] >= EVICTION_STORM_THRESHOLD
