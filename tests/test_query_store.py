"""Tests for the Query Store: recording, aggregates, plan-change
detection, and workload export into the advisor."""

import random

import pytest

from repro.advisor.advisor import TuningAdvisor
from repro.advisor.workload import Workload
from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.executor import Executor
from repro.engine.query_store import QueryStore, plan_fingerprint
from repro.storage.database import Database


def make_executor(store=None):
    rng = random.Random(4)
    db = Database()
    table = db.create_table(TableSchema("t", [
        Column("k", INT, nullable=False),
        Column("g", INT, nullable=False),
        Column("v", INT),
    ]))
    table.bulk_load([(i, rng.randrange(8), rng.randrange(1000))
                     for i in range(30_000)])
    table.set_primary_btree(["k"])
    return Executor(db, query_store=store)


class TestRecording:
    def test_executions_recorded(self):
        store = QueryStore()
        executor = make_executor(store)
        executor.execute("SELECT sum(v) FROM t WHERE k < 100")
        executor.execute("SELECT sum(v) FROM t WHERE k < 100")
        executor.execute("SELECT g, sum(v) FROM t GROUP BY g")
        assert len(store) == 2
        assert store.recorded_executions == 3
        stats = store.stats("SELECT sum(v) FROM t WHERE k < 100")
        assert stats.count == 2
        assert stats.total_cpu_ms > 0
        assert stats.mean_cpu_ms == pytest.approx(
            stats.total_cpu_ms / 2)

    def test_dml_recorded_too(self):
        store = QueryStore()
        executor = make_executor(store)
        executor.execute("UPDATE TOP (2) t SET v = 0 WHERE k < 50")
        assert store.recorded_executions == 1

    def test_no_store_no_failure(self):
        executor = make_executor(None)
        executor.execute("SELECT count(*) FROM t")

    def test_capacity_bounds_history(self):
        store = QueryStore(capacity=3)
        executor = make_executor(store)
        for _ in range(6):
            executor.execute("SELECT count(*) FROM t")
        stats = store.stats("SELECT count(*) FROM t")
        assert stats.count == 3

    def test_clear(self):
        store = QueryStore()
        executor = make_executor(store)
        executor.execute("SELECT count(*) FROM t")
        store.clear()
        assert len(store) == 0
        assert store.recorded_executions == 0

    def test_totals_survive_history_trimming(self):
        # Regression: total_cpu_ms used to sum only the retained window,
        # under-reporting once history was trimmed.
        store = QueryStore(capacity=3)
        executor = make_executor(store)
        metrics = [executor.execute("SELECT count(*) FROM t").metrics
                   for _ in range(6)]
        stats = store.stats("SELECT count(*) FROM t")
        assert stats.count == 3          # retained window
        assert stats.recorded == 6       # lifetime
        expected_cpu = sum(m.cpu_ms for m in metrics)
        assert stats.total_cpu_ms == pytest.approx(expected_cpu)
        assert stats.mean_cpu_ms == pytest.approx(expected_cpu / 6)
        assert store.total_cpu_ms == pytest.approx(expected_cpu)

    def test_statement_lru_bound(self):
        store = QueryStore(max_statements=2)
        executor = make_executor(store)
        executor.execute("SELECT count(*) FROM t")
        executor.execute("SELECT sum(v) FROM t WHERE k = 1")
        executor.execute("SELECT g, sum(v) FROM t GROUP BY g")
        assert len(store) == 2
        assert store.evicted_statements == 1
        # Oldest (least recently used) statement was evicted.
        assert store.stats("SELECT count(*) FROM t") is None
        assert store.stats("SELECT g, sum(v) FROM t GROUP BY g") is not None

    def test_lru_reexecution_protects_from_eviction(self):
        store = QueryStore(max_statements=2)
        executor = make_executor(store)
        executor.execute("SELECT count(*) FROM t")
        executor.execute("SELECT sum(v) FROM t WHERE k = 1")
        # Touch the first statement again: it becomes most recent.
        executor.execute("SELECT count(*) FROM t")
        executor.execute("SELECT g, sum(v) FROM t GROUP BY g")
        assert store.stats("SELECT count(*) FROM t") is not None
        assert store.stats("SELECT sum(v) FROM t WHERE k = 1") is None

    def test_store_totals_survive_eviction(self):
        store = QueryStore(max_statements=1)
        executor = make_executor(store)
        m1 = executor.execute("SELECT count(*) FROM t").metrics
        m2 = executor.execute("SELECT sum(v) FROM t WHERE k = 1").metrics
        assert len(store) == 1
        assert store.recorded_executions == 2
        assert store.total_cpu_ms == pytest.approx(m1.cpu_ms + m2.cpu_ms)


class TestAggregates:
    def test_top_by_cpu_orders(self):
        store = QueryStore()
        executor = make_executor(store)
        executor.execute("SELECT sum(v) FROM t WHERE k = 1")  # cheap
        executor.execute("SELECT g, sum(v) FROM t GROUP BY g")  # scan
        top = store.top_by_cpu(1)
        assert "GROUP BY" in top[0].sql

    def test_median_elapsed(self):
        store = QueryStore()
        executor = make_executor(store)
        for _ in range(3):
            executor.execute("SELECT count(*) FROM t")
        stats = store.stats("SELECT count(*) FROM t")
        assert stats.median_elapsed_ms > 0


class TestPlanChangeDetection:
    def test_plan_fingerprint_stable(self):
        executor = make_executor()
        planned = executor.plan("SELECT sum(v) FROM t WHERE k < 10")
        assert plan_fingerprint(planned) == plan_fingerprint(planned)
        assert "BTreeSeek" in plan_fingerprint(planned) or \
            "AccessPathNode" in plan_fingerprint(planned)

    def test_design_change_detected_as_plan_change(self):
        store = QueryStore()
        executor = make_executor(store)
        sql = "SELECT g, sum(v) FROM t GROUP BY g"
        executor.execute(sql)
        # Physical design change flips the plan to a columnstore scan.
        executor.database.table("t").create_secondary_columnstore("csi")
        executor.refresh()
        executor.execute(sql)
        stats = store.stats(sql)
        assert stats.had_plan_change
        assert stats in store.regressed_queries()

    def test_fingerprint_none_plan(self):
        assert plan_fingerprint(None) == ""


class TestWorkloadExport:
    def test_export_feeds_advisor(self):
        store = QueryStore()
        executor = make_executor(store)
        for _ in range(5):
            executor.execute("SELECT g, sum(v) FROM t GROUP BY g")
        executor.execute("SELECT sum(v) FROM t WHERE k = 7")
        pairs = store.as_workload()
        weights = dict(pairs)
        assert weights["SELECT g, sum(v) FROM t GROUP BY g"] == 5.0
        workload = Workload.from_sql(pairs, executor.database)
        advisor = TuningAdvisor(executor.database)
        recommendation = advisor.tune(workload)
        assert recommendation.estimated_cost <= recommendation.base_cost
