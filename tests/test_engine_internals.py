"""Tests for engine internals: metrics/context charging, the cost-model
dataclass, the Batch container, the buffer pool, and the CLI."""

import numpy as np
import pytest

from repro.core.errors import ExecutionError, StorageError
from repro.engine.batch import (
    Batch,
    batch_to_rows,
    concat_batches,
    iter_rows,
    rows_to_batch,
)
from repro.engine.costs import DEFAULT_COST_MODEL, MB, CostModel
from repro.engine.metrics import ExecutionContext, QueryMetrics
from repro.storage.bufferpool import BufferPool, PageAllocator


class TestExecutionContext:
    def test_serial_cpu_adds_to_both(self):
        ctx = ExecutionContext()
        ctx.charge_serial_cpu(5.0)
        assert ctx.metrics.cpu_ms == 5.0
        assert ctx.metrics.elapsed_ms == 5.0

    def test_parallel_cpu_divides_elapsed_inflates_cpu(self):
        ctx = ExecutionContext()
        ctx.charge_parallel_cpu(40.0, dop=40)
        cm = ctx.cost_model
        assert ctx.metrics.elapsed_ms == pytest.approx(1.0)
        assert ctx.metrics.cpu_ms == pytest.approx(
            40.0 * cm.parallel_cpu_overhead)
        assert ctx.metrics.dop == 40

    def test_parallel_dop_one_is_serial(self):
        ctx = ExecutionContext()
        ctx.charge_parallel_cpu(3.0, dop=1)
        assert ctx.metrics.cpu_ms == 3.0
        assert ctx.metrics.elapsed_ms == 3.0

    def test_dop_clamped_to_max(self):
        ctx = ExecutionContext()
        ctx.charge_parallel_cpu(80.0, dop=1000)
        assert ctx.metrics.dop == ctx.cost_model.max_dop

    def test_cold_io_charged_hot_not(self):
        hot = ExecutionContext(cold=False)
        hot.charge_random_read(10)
        assert hot.metrics.pages_read == 0
        cold = ExecutionContext(cold=True)
        cold.charge_random_read(10)
        assert cold.metrics.pages_read == 10
        assert cold.metrics.elapsed_ms == pytest.approx(
            10 * cold.cost_model.random_io_ms_per_page)

    def test_memory_grant_accounting(self):
        ctx = ExecutionContext(memory_grant_bytes=1000)
        assert ctx.acquire_memory(600)
        assert not ctx.acquire_memory(600)
        assert ctx.acquire_memory(400)
        assert ctx.metrics.memory_peak_bytes == 1000
        ctx.release_memory(1000)
        assert ctx.memory_in_use == 0

    def test_memory_underflow_raises(self):
        ctx = ExecutionContext()
        with pytest.raises(ExecutionError):
            ctx.release_memory(1)

    def test_spill_charges_io_both_ways(self):
        ctx = ExecutionContext(cold=False)
        ctx.charge_spill(MB)
        cm = ctx.cost_model
        assert ctx.metrics.spilled_bytes == MB
        assert ctx.metrics.elapsed_ms == pytest.approx(
            cm.write_io_ms_per_mb + cm.seq_io_ms_per_mb)

    def test_choose_dop_threshold(self):
        ctx = ExecutionContext()
        threshold = ctx.cost_model.parallel_row_threshold
        assert ctx.choose_dop(threshold - 1) == 1
        assert ctx.choose_dop(threshold) == ctx.cost_model.max_dop

    def test_metrics_merge(self):
        a = QueryMetrics(elapsed_ms=1, cpu_ms=2, rows_returned=3,
                         memory_peak_bytes=10, dop=4)
        b = QueryMetrics(elapsed_ms=10, cpu_ms=20, rows_returned=30,
                         memory_peak_bytes=5, dop=2,
                         leaf_accesses={"csi": 1})
        a.merge(b)
        assert a.elapsed_ms == 11
        assert a.memory_peak_bytes == 10  # max, not sum
        assert a.dop == 4
        assert a.leaf_accesses == {"csi": 1}


class TestCostModel:
    def test_scaled_storage_touches_only_io(self):
        scaled = DEFAULT_COST_MODEL.scaled_storage(3.0)
        assert scaled.seq_io_ms_per_mb == \
            DEFAULT_COST_MODEL.seq_io_ms_per_mb * 3
        assert scaled.row_cpu_ms_per_row == \
            DEFAULT_COST_MODEL.row_cpu_ms_per_row

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COST_MODEL.max_dop = 1  # type: ignore[misc]

    def test_row_batch_gap(self):
        cm = DEFAULT_COST_MODEL
        assert cm.row_cpu_ms_per_row / cm.batch_cpu_ms_per_row > 20


class TestBatch:
    def test_ragged_rejected(self):
        with pytest.raises(ExecutionError):
            Batch({"a": np.arange(3), "b": np.arange(4)})

    def test_filter_take_project_head(self):
        batch = Batch({"a": np.arange(6), "b": np.arange(6) * 10})
        filtered = batch.filter(batch.column("a") % 2 == 0)
        assert filtered.column("a").tolist() == [0, 2, 4]
        taken = batch.take(np.array([5, 0]))
        assert taken.column("b").tolist() == [50, 0]
        assert batch.project(["b"]).column_names() == ["b"]
        assert len(batch.head(2)) == 2

    def test_with_column(self):
        batch = Batch({"a": np.arange(3)})
        extended = batch.with_column("b", np.arange(3) + 1)
        assert extended.column("b").tolist() == [1, 2, 3]
        with pytest.raises(ExecutionError):
            batch.with_column("c", np.arange(5))

    def test_rows_roundtrip(self):
        rows = [(1, "x", None), (2, "y", 3.5)]
        batch = rows_to_batch(rows, ["i", "s", "f"])
        assert batch_to_rows(batch, ["i", "s", "f"]) == rows

    def test_rows_to_batch_empty(self):
        assert rows_to_batch([], ["a"]) is None

    def test_concat_mixed_dtypes(self):
        b1 = rows_to_batch([(1,)], ["a"])
        b2 = rows_to_batch([(None,)], ["a"])
        merged = concat_batches([b1, b2])
        assert list(merged.column("a")) == [1, None]

    def test_concat_empty(self):
        assert concat_batches([]) is None

    def test_iter_rows(self):
        batches = [rows_to_batch([(1,), (2,)], ["a"]),
                   rows_to_batch([(3,)], ["a"])]
        assert list(iter_rows(batches, ["a"])) == [(1,), (2,), (3,)]

    def test_payload_bytes(self):
        numeric = Batch({"a": np.arange(100, dtype=np.int64)})
        assert numeric.payload_bytes() == 800

    def test_mixed_int_float_promotes_to_float64(self):
        # Regression: an int in the first position used to degrade the
        # whole column to dtype=object, disabling vectorized batch ops.
        batch = rows_to_batch([(1,), (2.5,), (3,)], ["a"])
        assert batch.column("a").dtype == np.float64
        assert batch.column("a").tolist() == [1.0, 2.5, 3.0]

    def test_float_first_mixed_list_still_float64(self):
        batch = rows_to_batch([(2.5,), (1,)], ["a"])
        assert batch.column("a").dtype == np.float64

    def test_all_int_stays_int64(self):
        batch = rows_to_batch([(1,), (2,)], ["a"])
        assert batch.column("a").dtype == np.int64

    def test_bools_stay_object(self):
        batch = rows_to_batch([(True,), (1,)], ["a"])
        assert batch.column("a").dtype == object


class TestBufferPool:
    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=2)
        assert pool.touch([(1, 0), (1, 1)]) == 2
        assert pool.touch([(1, 0)]) == 0  # hit, refreshes LRU position
        assert pool.touch([(1, 2)]) == 1  # evicts (1, 1)
        assert pool.is_resident((1, 0))
        assert not pool.is_resident((1, 1))

    def test_touch_range_and_hit_ratio(self):
        pool = BufferPool(capacity_pages=10)
        assert pool.touch_range(5, 0, 4) == 4
        assert pool.touch_range(5, 0, 4) == 0
        assert pool.hit_ratio == pytest.approx(0.5)

    def test_evict_object(self):
        pool = BufferPool(capacity_pages=10)
        pool.touch_range(1, 0, 3)
        pool.touch_range(2, 0, 2)
        pool.evict_object(1)
        assert len(pool) == 2

    def test_zero_capacity_rejected(self):
        with pytest.raises(StorageError):
            BufferPool(0)

    def test_clear_resets_hit_ratio(self):
        # Regression: clear() left hits/misses intact, so hit_ratio bled
        # across back-to-back experiments sharing one pool.
        pool = BufferPool(capacity_pages=10)
        pool.touch_range(1, 0, 4)
        pool.touch_range(1, 0, 4)
        assert pool.hit_ratio == pytest.approx(0.5)
        pool.clear()
        assert pool.hit_ratio == 0.0
        assert len(pool) == 0
        assert pool.touch_range(1, 0, 2) == 2  # all cold again

    def test_evict_all_keeps_stats(self):
        pool = BufferPool(capacity_pages=10)
        pool.touch_range(1, 0, 4)
        pool.evict_all()
        assert len(pool) == 0
        assert pool.misses == 4

    def test_reset_stats_keeps_residency(self):
        pool = BufferPool(capacity_pages=10)
        pool.touch_range(1, 0, 4)
        pool.reset_stats()
        assert pool.hits == 0 and pool.misses == 0
        assert pool.touch_range(1, 0, 4) == 0  # still resident

    def test_evict_object_no_cross_object_evictions(self):
        # Regression: evict_object used to scan every resident frame;
        # the per-object page index must drop exactly the target
        # object's pages and leave every other object untouched.
        pool = BufferPool(capacity_pages=100)
        for oid in range(5):
            pool.touch_range(oid, 0, 10)
        dropped = pool.evict_object(3)
        assert dropped == 10
        assert not any(page[0] == 3 for page in pool._resident)
        for oid in (0, 1, 2, 4):
            assert pool.touch_range(oid, 0, 10) == 0, (
                f"object {oid} lost pages to another object's eviction")
        assert pool.evictions == 0  # invalidation is not LRU eviction
        assert pool.invalidations == 10
        assert pool.evict_object(3) == 0  # idempotent
        pool.check_consistency()

    def test_pin_blocks_eviction(self):
        from repro.storage.bufferpool import PAGE_BYTES

        pool = BufferPool(capacity_pages=2)
        pool.get_or_load((1, 0), lambda: ("a", PAGE_BYTES), pin=True)
        pool.get_or_load((1, 1), lambda: ("b", PAGE_BYTES))
        # Over budget: the pinned page must survive, the unpinned not.
        pool.get_or_load((1, 2), lambda: ("c", PAGE_BYTES))
        assert pool.is_resident((1, 0))
        assert not pool.is_resident((1, 1))
        pool.unpin((1, 0))
        pool.get_or_load((1, 3), lambda: ("d", PAGE_BYTES))
        assert not pool.is_resident((1, 0))  # unpinned: evictable again
        pool.check_consistency()

    def test_peak_bytes_never_exceeds_budget(self):
        from repro.storage.bufferpool import PAGE_BYTES

        pool = BufferPool(budget_bytes=4 * PAGE_BYTES)
        for i in range(32):
            pool.get_or_load((1, i), lambda: (i, PAGE_BYTES))
        assert pool.peak_bytes <= pool.budget_bytes
        assert pool.evictions == 28

    def test_allocator_unique(self):
        allocator = PageAllocator()
        ids = {allocator.allocate_object() for _ in range(10)}
        assert len(ids) == 10


class TestCli:
    def test_inventory_command(self, capsys):
        from repro.__main__ import main
        assert main(["inventory"]) == 0
        out = capsys.readouterr().out
        assert "lineitem" in out and "csi" in out

    def test_micro_updates_command(self, capsys):
        from repro.__main__ import main
        assert main(["micro", "--experiment", "updates"]) == 0
        out = capsys.readouterr().out
        assert "pri_csi" in out

    def test_unknown_command_rejected(self):
        from repro.__main__ import main
        with pytest.raises(SystemExit):
            main(["nonsense"])


class TestExplain:
    def test_explain_returns_plan_text(self):
        from repro.core.schema import Column, TableSchema
        from repro.core.types import INT
        from repro.engine.executor import Executor
        from repro.storage.database import Database

        db = Database()
        table = db.create_table(TableSchema("t", [
            Column("a", INT, nullable=False)]))
        table.bulk_load([(i,) for i in range(100)])
        text = Executor(db).explain("SELECT sum(a) FROM t WHERE a < 5")
        assert "HASH AGG" in text
        assert "SCAN t" in text

    def test_explain_rejects_dml(self):
        from repro.core.errors import ExecutionError
        from repro.core.schema import Column, TableSchema
        from repro.core.types import INT
        from repro.engine.executor import Executor
        from repro.storage.database import Database

        db = Database()
        table = db.create_table(TableSchema("t", [
            Column("a", INT, nullable=False)]))
        table.bulk_load([(1,)])
        with pytest.raises(ExecutionError):
            Executor(db).explain("DELETE FROM t")
