"""Tests for the workload generators: synthetic micro-bench, TPC-H,
TPC-DS, TPC-C/CH, and the customer analogs."""

import pytest

from repro.core.types import int_to_date
from repro.engine.executor import Executor
from repro.storage.database import Database
from repro.workloads import synthetic, tpcds, tpch
from repro.workloads.ch import (
    apply_ch_btree_design,
    apply_ch_hybrid_design,
    ch_analytic_queries,
    ch_point_queries,
    generate_ch,
)
from repro.workloads.customer import (
    CUSTOMER_SPECS,
    CustomerSpec,
    generate_customer,
)
from repro.workloads.tpcc import (
    DISTRICTS_PER_WAREHOUSE,
    TpccTransactionGenerator,
    apply_oltp_btree_design,
    generate_tpcc,
)


class TestSynthetic:
    def test_uniform_table_shape(self):
        db = Database()
        table = synthetic.make_uniform_table(db, "m", 1000, 3, seed=1)
        assert table.row_count == 1000
        assert table.schema.column_names() == ["col1", "col2", "col3"]

    def test_sorted_on_orders_rows(self):
        db = Database()
        table = synthetic.make_uniform_table(db, "m", 500, 2, seed=1,
                                             sorted_on="col1")
        values = [row[0] for _, row in table.iter_rows()]
        assert values == sorted(values)

    def test_selectivity_threshold_linear(self):
        full = synthetic.selectivity_to_threshold(100.0)
        half = synthetic.selectivity_to_threshold(50.0)
        assert abs(half / full - 0.5) < 1e-6
        assert synthetic.selectivity_to_threshold(0.0) == 0

    def test_q1_selectivity_approximates_target(self):
        db = Database()
        synthetic.make_uniform_table(db, "micro", 50_000, 1, seed=2)
        executor = Executor(db)
        sql = synthetic.q1_scan(10.0).replace("sum(col1)", "count(*)")
        count = executor.execute(sql).scalar()
        assert 0.08 < count / 50_000 < 0.12

    def test_group_table_distincts(self):
        db = Database()
        synthetic.make_group_table(db, "g", 20_000, 37, seed=3)
        executor = Executor(db)
        distinct = executor.execute(
            "SELECT col1, count(*) c FROM g GROUP BY col1")
        assert len(distinct.rows) == 37


class TestTpch:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        tpch.generate_tpch(database, scale=0.2, seed=13)
        return database

    def test_cardinality_ratios(self, db):
        assert db.table("nation").row_count == 25
        assert db.table("region").row_count == 5
        lineitem = db.table("lineitem").row_count
        orders = db.table("orders").row_count
        assert 2 <= lineitem / orders <= 8

    def test_shipdate_range(self, db):
        dates = [row[10] for _, row in db.table("lineitem").iter_rows()]
        assert int_to_date(min(dates)).year >= 1992
        assert int_to_date(max(dates)).year <= 1998

    def test_analytic_queries_run(self, db):
        executor = Executor(db)
        for sql in tpch.analytic_queries():
            result = executor.execute(sql)
            assert result.metrics.cpu_ms > 0

    def test_q4_and_q5_roundtrip(self, db):
        executor = Executor(db)
        import random
        date = tpch.random_ship_date(random.Random(3))
        before = executor.execute(tpch.q5_scan(date))
        update = executor.execute(tpch.q4_update(5, date).replace(
            "l_shipdate = ", "l_shipdate >= "))
        assert update.rows_affected == 5
        after = executor.execute(tpch.q5_scan(date))
        assert after.metrics.cpu_ms > 0
        del before


class TestTpcds:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        tpcds.generate_tpcds(database, scale=0.2, seed=29)
        return database

    def test_star_schema_fk_integrity(self, db):
        item_count = db.table("item").row_count
        for _, row in db.table("store_sales").iter_rows():
            assert 0 <= row[1] < item_count
            break  # spot check the first row; full check is slow

    def test_generated_queries_parse_and_run(self, db):
        executor = Executor(db)
        for sql in tpcds.generate_queries(16, seed=5):
            result = executor.execute(sql)
            assert result.metrics.cpu_ms >= 0

    def test_query_count_respected(self):
        assert len(tpcds.generate_queries(97)) == 97


class TestTpcc:
    @pytest.fixture(scope="class")
    def db(self):
        database = Database()
        generate_tpcc(database, n_warehouses=1, seed=17)
        apply_oltp_btree_design(database)
        return database

    def test_cardinalities(self, db):
        assert db.table("warehouse").row_count == 1
        assert db.table("district").row_count == DISTRICTS_PER_WAREHOUSE

    def test_transaction_mix_frequencies(self):
        generator = TpccTransactionGenerator(2, seed=5)
        counts = {}
        for _ in range(2000):
            txn = generator.next_transaction()
            counts[txn.name] = counts.get(txn.name, 0) + 1
        assert 0.40 < counts["NewOrder"] / 2000 < 0.50
        assert 0.38 < counts["Payment"] / 2000 < 0.48
        for name in ("OrderStatus", "Delivery", "StockLevel"):
            assert 0.01 < counts[name] / 2000 < 0.08

    def test_transactions_execute(self, db):
        executor = Executor(db)
        generator = TpccTransactionGenerator(1, seed=9)
        for _ in range(10):
            txn = generator.next_transaction()
            for sql in txn.statements:
                executor.execute(sql)

    def test_payment_changes_balance(self, db):
        executor = Executor(db)
        generator = TpccTransactionGenerator(1, seed=2)
        txn = generator.payment()
        before = executor.execute(
            "SELECT sum(c_balance) FROM customer").scalar()
        for sql in txn.statements:
            executor.execute(sql)
        after = executor.execute(
            "SELECT sum(c_balance) FROM customer").scalar()
        assert after < before


class TestCh:
    def test_ch_adds_three_tables(self):
        db = Database()
        tables = generate_ch(db, n_warehouses=1)
        for name in ("supplier", "nation", "region"):
            assert name in tables

    def test_designs_and_queries(self):
        db = Database()
        generate_ch(db, n_warehouses=1)
        apply_ch_hybrid_design(db)
        executor = Executor(db)
        for name, sql in ch_analytic_queries() + ch_point_queries(1):
            result = executor.execute(sql)
            assert result.metrics.cpu_ms > 0, name

    def test_hybrid_design_has_columnstores(self):
        db = Database()
        generate_ch(db, n_warehouses=1)
        apply_ch_hybrid_design(db)
        assert db.table("order_line").columnstore_index() is not None
        assert db.table("orders").columnstore_index() is not None


class TestCustomerWorkloads:
    def test_all_specs_generate_and_run(self):
        for name, spec in CUSTOMER_SPECS.items():
            db = Database()
            workload = generate_customer(db, name)
            assert len(workload.queries) == spec.n_queries
            assert workload.n_tables == (
                spec.n_stub_tables + spec.n_active_tables)
            executor = Executor(db)
            for sql in workload.queries[:3]:
                result = executor.execute(sql)
                assert result.metrics.cpu_ms >= 0

    def test_unknown_customer_rejected(self):
        db = Database()
        with pytest.raises(KeyError):
            generate_customer(db, "cust99")

    def test_cust5_has_deep_joins(self):
        db = Database()
        workload = generate_customer(db, "cust5")
        join_counts = [sql.count("JOIN") for sql in workload.queries]
        assert max(join_counts) >= 6
