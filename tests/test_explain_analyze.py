"""Tests for per-operator spans and EXPLAIN ANALYZE.

The core differential invariant: for every plan shape, the sum of the
per-node span charges equals the statement's QueryMetrics totals — no
charge is lost and none is double-attributed.
"""

import json

import pytest

from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.executor import Executor
from repro.engine.metrics import SPAN_ATTRIBUTED_FIELDS, ExecutionContext
from repro.engine.query_store import QueryStore
from repro.storage.database import Database


def build_db(design="btree", n=4000):
    db = Database()
    schema = TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT, nullable=False),
        Column("s", varchar(10)),
    ])
    table = db.create_table(schema)
    table.bulk_load([(i, i % 16, f"name{i % 7:03d}") for i in range(n)])
    if design == "btree":
        table.set_primary_btree(["a"])
    elif design == "csi":
        table.set_primary_columnstore(rowgroup_size=1024)
    dim_schema = TableSchema("u", [
        Column("k", INT, nullable=False),
        Column("v", INT, nullable=False),
    ])
    dim = db.create_table(dim_schema)
    dim.bulk_load([(i, i * 100) for i in range(16)])
    dim.set_primary_btree(["k"])
    return db


def assert_span_sums_match(result):
    root = result.root_span
    assert root is not None
    for field in SPAN_ATTRIBUTED_FIELDS:
        statement_total = getattr(result.metrics, field)
        span_total = root.total(field)
        if isinstance(statement_total, int):
            assert span_total == statement_total, field
        else:
            assert span_total == pytest.approx(
                statement_total, rel=1e-9, abs=1e-12), field


PLAN_SHAPES = [
    # (name, design, sql, execute kwargs)
    ("row_mode_seek_sort", "btree",
     "SELECT a, b FROM t WHERE a BETWEEN 100 AND 1200 ORDER BY b", {}),
    ("batch_mode_csi_groupby", "csi",
     "SELECT b, count(*) c, sum(a) q FROM t GROUP BY b", {}),
    ("encoded_string_groupby", "csi",
     "SELECT s, count(*) c FROM t GROUP BY s", {}),
    ("spilling_sort", "btree",
     "SELECT a, b, s FROM t ORDER BY b",
     {"memory_grant_bytes": 1024}),
    ("cold_csi_scan", "csi",
     "SELECT sum(a) q FROM t WHERE b < 8", {"cold": True}),
    ("cold_btree_seek", "btree",
     "SELECT a, b FROM t WHERE a < 500", {"cold": True}),
    ("hash_join_groupby", "csi",
     "SELECT u.v, count(*) c FROM t JOIN u ON t.b = u.k GROUP BY u.v", {}),
    ("top_early_close", "btree",
     "SELECT TOP 7 a, b FROM t ORDER BY b", {}),
]


class TestSpanSumInvariant:
    @pytest.mark.parametrize(
        "name,design,sql,kwargs",
        PLAN_SHAPES, ids=[shape[0] for shape in PLAN_SHAPES])
    def test_span_sums_equal_statement_totals(self, name, design, sql,
                                              kwargs):
        result = Executor(build_db(design)).execute(sql, **kwargs)
        assert_span_sums_match(result)

    def test_spilling_shape_actually_spills(self):
        result = Executor(build_db("btree")).execute(
            "SELECT a, b, s FROM t ORDER BY b", memory_grant_bytes=1024)
        assert result.metrics.spilled_bytes > 0
        assert_span_sums_match(result)

    def test_encoded_shape_takes_code_path(self):
        result = Executor(build_db("csi")).execute(
            "SELECT s, count(*) c FROM t GROUP BY s")
        assert result.metrics.code_path_hits > 0
        assert_span_sums_match(result)

    def test_cold_shape_reads_pages(self):
        result = Executor(build_db("csi")).execute(
            "SELECT sum(a) q FROM t WHERE b < 8", cold=True)
        assert result.metrics.pages_read > 0
        assert_span_sums_match(result)

    def test_dml_charges_land_on_statement_span(self):
        db = build_db("btree")
        result = Executor(db).execute(
            "UPDATE t SET b = 0 WHERE a < 10", cold=True)
        assert result.rows_affected == 10
        assert_span_sums_match(result)
        # DML has no operator tree: everything is statement overhead.
        assert result.root_span.children == []
        assert result.root_span.pages_read == result.metrics.pages_read


class TestSpanTree:
    def test_span_tree_mirrors_operator_tree(self):
        result = Executor(build_db("btree")).execute(
            "SELECT a, b FROM t WHERE a BETWEEN 100 AND 1200 ORDER BY b")
        root = result.root_span
        assert len(root.children) == 1
        top = root.children[0]
        assert top.operator is not None

        def check(span, operator):
            assert span.operator is operator
            assert span.label == operator.describe()
            assert len(span.children) == len(operator.children)
            for child_span, child_op in zip(span.children,
                                            operator.children):
                check(child_span, child_op)

        check(top, top.operator)

    def test_top_operator_rows_match_rows_returned(self):
        result = Executor(build_db("csi")).execute(
            "SELECT b, count(*) c FROM t GROUP BY b")
        assert result.root_span.children[0].rows_out == \
            result.metrics.rows_returned == 16

    def test_operators_carry_plan_nodes_with_estimates(self):
        result = Executor(build_db("btree")).execute(
            "SELECT a, b FROM t WHERE a < 100 ORDER BY b")
        for span in result.root_span.walk():
            if span.operator is not None:
                assert span.operator.plan_node is not None
                assert span.operator.plan_node.est_rows >= 0

    def test_memory_peak_attributed_to_sort(self):
        result = Executor(build_db("btree")).execute(
            "SELECT a, b FROM t ORDER BY b")
        peaks = {span.label: span.memory_peak_bytes
                 for span in result.root_span.walk()}
        sort_peaks = [v for k, v in peaks.items() if k.startswith("Sort")]
        assert sort_peaks and sort_peaks[0] > 0

    def test_span_stack_corruption_detected(self):
        from repro.core.errors import ExecutionError
        ctx = ExecutionContext()
        span = ctx.begin_operator_span(None)
        ctx.push_span(span)
        with pytest.raises(ExecutionError):
            ctx.pop_span(ctx.root_span)


class TestAnalyzedQueryRendering:
    def test_format_shows_estimates_and_actuals(self):
        analyzed = Executor(build_db("btree")).explain_analyze(
            "SELECT a, b FROM t WHERE a BETWEEN 100 AND 1200 ORDER BY b")
        text = analyzed.format()
        assert text.startswith("EXPLAIN ANALYZE")
        assert "est rows=" in text
        assert "actual rows=" in text
        assert "Sort" in text and "BTreeSeek" in text
        assert "statement overhead" in text

    def test_format_flags_never_executed_subtrees(self):
        analyzed = Executor(build_db("btree")).explain_analyze(
            "SELECT TOP 0 a FROM t")
        assert "[never executed]" in analyzed.format()

    def test_chrome_trace_structure(self):
        analyzed = Executor(build_db("csi")).explain_analyze(
            "SELECT b, count(*) c FROM t GROUP BY b")
        trace = analyzed.to_chrome_trace()
        events = trace["traceEvents"]
        spans = list(analyzed.root_span.walk())
        complete = [e for e in events if e["ph"] == "X"]
        assert len(complete) == len(spans)
        by_name = {e["name"]: e for e in complete}
        root_event = by_name["<statement>"]
        # Root duration is the statement's inclusive modeled elapsed time.
        assert root_event["dur"] / 1000.0 == pytest.approx(
            analyzed.result.metrics.elapsed_ms, rel=1e-6, abs=1e-3)
        for event in complete:
            assert event["dur"] >= 0
            assert event["ts"] >= 0
            # Children fit inside the root interval.
            assert event["ts"] + event["dur"] <= \
                root_event["ts"] + root_event["dur"] + 1e-6
        assert json.dumps(trace)  # serializable

    def test_trace_args_carry_actuals(self):
        analyzed = Executor(build_db("csi")).explain_analyze(
            "SELECT b, count(*) c FROM t GROUP BY b")
        events = analyzed.to_chrome_trace()["traceEvents"]
        scan = [e for e in events
                if e["ph"] == "X" and "ColumnstoreScan" in e["name"]]
        assert scan
        assert scan[0]["args"]["rows_out"] == 4000
        assert scan[0]["args"]["mode"] == "batch"


class TestQueryStoreNodeStats:
    def test_node_stats_recorded_per_fingerprint(self):
        store = QueryStore()
        executor = Executor(build_db("btree"), query_store=store)
        sql = "SELECT b, count(*) c FROM t GROUP BY b"
        executor.execute(sql)
        executor.execute(sql)
        stats = store.stats(sql)
        assert stats is not None and stats.recorded == 2
        summary = stats.node_summary()
        assert summary
        labels = [node.op for node in summary]
        assert "<statement>" in labels
        scans = [node for node in summary if "Seek" in node.op
                 or "Scan" in node.op]
        assert scans and scans[0].executions == 2
        assert scans[0].total_rows > 0

    def test_plan_change_report_names_changed_operator(self):
        db = build_db("btree")
        store = QueryStore()
        executor = Executor(db, query_store=store)
        sql = "SELECT b, count(*) c, sum(a) q FROM t GROUP BY b"
        executor.execute(sql)
        db.table("t").create_secondary_columnstore("csi_t")
        executor.refresh()
        executor.execute(sql)
        stats = store.stats(sql)
        assert stats.had_plan_change
        report = store.plan_change_report(sql)
        assert "+ColumnstoreScan" in report
        assert "-BTreeSeek" in report


class TestAnalyzeCli:
    def test_cli_analyze_prints_tree_and_writes_trace(self, tmp_path,
                                                      capsys):
        from repro.__main__ import main
        trace_path = tmp_path / "trace.json"
        rc = main([
            "analyze", "SELECT n_name FROM nation ORDER BY n_name",
            "--workload", "tpch", "--scale", "0.01",
            "--trace", str(trace_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "EXPLAIN ANALYZE" in out
        assert "actual rows=" in out
        payload = json.loads(trace_path.read_text())
        assert payload["traceEvents"]
