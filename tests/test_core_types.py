"""Tests for the column type system and schema objects."""

import datetime

import pytest

from repro.core.errors import SchemaError
from repro.core.schema import Column, SchemaBuilder, TableSchema, key_tuple
from repro.core.types import (
    BIGINT,
    INT,
    XML,
    ColumnType,
    TypeKind,
    date_to_int,
    decimal,
    int_to_date,
    varchar,
)
from repro.core.types import DATE


class TestColumnType:
    def test_int_validate_accepts_int(self):
        assert INT.validate(42) == 42

    def test_int_validate_rejects_bool(self):
        with pytest.raises(SchemaError):
            INT.validate(True)

    def test_int_validate_rejects_string(self):
        with pytest.raises(SchemaError):
            INT.validate("7")

    def test_null_allowed_for_every_type(self):
        for col_type in (INT, BIGINT, DATE, XML, decimal(2), varchar(10)):
            assert col_type.validate(None) is None

    def test_decimal_accepts_int_and_float(self):
        assert decimal(2).validate(3) == 3.0
        assert decimal(2).validate(3.25) == 3.25

    def test_varchar_length_enforced(self):
        with pytest.raises(SchemaError):
            varchar(3).validate("abcd")
        assert varchar(3).validate("abc") == "abc"

    def test_varchar_requires_positive_length(self):
        with pytest.raises(SchemaError):
            varchar(0)

    def test_date_roundtrip(self):
        day = datetime.date(1995, 6, 17)
        encoded = DATE.validate(day)
        assert isinstance(encoded, int)
        assert int_to_date(encoded) == day
        assert date_to_int(day) == encoded

    def test_date_accepts_raw_int(self):
        assert DATE.validate(9000) == 9000

    def test_byte_widths_positive(self):
        for col_type in (INT, BIGINT, DATE, XML, decimal(2), varchar(32)):
            assert col_type.byte_width > 0

    def test_int_width_is_4_bigint_8(self):
        assert INT.byte_width == 4
        assert BIGINT.byte_width == 8

    def test_xml_not_columnstore_supported(self):
        assert not XML.columnstore_supported
        assert INT.columnstore_supported
        assert varchar(10).columnstore_supported

    def test_numeric_flag(self):
        assert INT.is_numeric
        assert decimal(2).is_numeric
        assert not varchar(5).is_numeric
        assert not DATE.is_numeric

    def test_str_rendering(self):
        assert str(varchar(12)) == "varchar(12)"
        assert str(INT) == "int"
        assert str(decimal(2)) == "decimal(18,2)"


class TestTableSchema:
    def make_schema(self):
        return TableSchema("t", [
            Column("a", INT, nullable=False),
            Column("b", varchar(8)),
            Column("c", decimal(2)),
        ])

    def test_ordinals(self):
        schema = self.make_schema()
        assert schema.ordinal("a") == 0
        assert schema.ordinal("c") == 2
        assert schema.ordinals(["c", "a"]) == [2, 0]

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            self.make_schema().ordinal("zzz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [Column("a", INT), Column("a", INT)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema("t", [])

    def test_contains_and_iter(self):
        schema = self.make_schema()
        assert "a" in schema
        assert "nope" not in schema
        assert [c.name for c in schema] == ["a", "b", "c"]
        assert len(schema) == 3

    def test_validate_row_normalises(self):
        schema = self.make_schema()
        row = schema.validate_row([1, "hi", 2])
        assert row == (1, "hi", 2.0)

    def test_validate_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            self.make_schema().validate_row([1, "hi"])

    def test_validate_row_null_in_not_null_column(self):
        with pytest.raises(SchemaError):
            self.make_schema().validate_row([None, "hi", 1.0])

    def test_row_byte_width_accounts_for_all_columns(self):
        schema = self.make_schema()
        assert schema.row_byte_width >= 4 + 2 + 8

    def test_columnstore_columns_excludes_xml(self):
        schema = TableSchema("t", [Column("a", INT), Column("x", XML)])
        assert schema.columnstore_columns() == ["a"]
        assert schema.has_unsupported_columns()

    def test_schema_builder(self):
        schema = (SchemaBuilder("orders")
                  .add("o_id", BIGINT, nullable=False)
                  .add("o_comment", varchar(40))
                  .build())
        assert schema.name == "orders"
        assert schema.column("o_id").col_type is BIGINT
        assert schema.column("o_id").nullable is False

    def test_key_tuple(self):
        assert key_tuple((10, 20, 30), [2, 0]) == (30, 10)


class TestColumnTypeEquality:
    def test_frozen_and_hashable(self):
        assert ColumnType(TypeKind.INT) == INT
        assert hash(varchar(5)) == hash(varchar(5))
        assert varchar(5) != varchar(6)
