"""Serving-layer tests: morsel-parallel scans, sessions, admission, and
the concurrent-session differential suite.

The differential suite is the acceptance gate for this layer: N session
threads replay the same statement mix and the engine must produce
byte-identical modeled metrics to the serial run (a), a consistent
database after interleaved DML (b), and DMV counters that match the
statement counts (c) — 50 iterations without a mismatch.
"""

import dataclasses
import json
import socket
import threading
import time

import pytest

from repro.core.errors import ExecutionError
from repro.engine.executor import Executor
from repro.engine.metrics import SPAN_ATTRIBUTED_FIELDS
from repro.server.frontend import ReproServer
from repro.server.parallel_scan import MorselPool
from repro.server.scheduler import DatabaseLatch, MemoryGrantPool
from repro.server.session import SessionManager, statement_writes
from repro.storage.checker import check_database
from repro.storage.database import Database
from repro.workloads.synthetic import make_uniform_table, q1_scan

DIFFERENTIAL_ITERATIONS = 50


def _micro_db(n_rows=40_000, rowgroup_size=4096, sorted_on=None,
              seed=5) -> Database:
    database = Database()
    make_uniform_table(database, "micro", n_rows, 2, seed=seed,
                       sorted_on=sorted_on)
    database.table("micro").set_primary_columnstore(
        rowgroup_size=rowgroup_size)
    return database


def _metrics_dict(metrics):
    return dataclasses.asdict(metrics)


def assert_metrics_equivalent(got, expected):
    """Field-by-field metric equality; float fields tolerate the
    last-ulp drift of summing per-morsel charges in a different order
    than one serial accumulation (everything else must match exactly)."""
    got_d, expected_d = _metrics_dict(got), _metrics_dict(expected)
    assert got_d.keys() == expected_d.keys()
    for name, expected_value in expected_d.items():
        got_value = got_d[name]
        if isinstance(expected_value, float):
            assert got_value == pytest.approx(expected_value,
                                              rel=1e-9, abs=1e-12), name
        else:
            assert got_value == expected_value, name


class TestMorselScan:
    """Morsel-parallel scans must be indistinguishable from serial ones
    in rows, order, modeled metrics, spans, and DMV usage."""

    def _run_both(self, sql, **db_kwargs):
        serial_db = _micro_db(**db_kwargs)
        serial = Executor(serial_db).execute(sql, cold=True)
        morsel_db = _micro_db(**db_kwargs)
        with SessionManager(morsel_db, morsel_workers=4) as manager:
            with manager.session(cold=True) as session:
                parallel = session.execute(sql)
        return serial_db, serial, morsel_db, parallel

    def test_rows_and_metrics_identical(self):
        serial_db, serial, morsel_db, parallel = self._run_both(
            q1_scan(10.0))
        assert parallel.rows == serial.rows
        assert_metrics_equivalent(parallel.metrics, serial.metrics)

    def test_span_sum_equals_statement_totals(self):
        _, _, _, parallel = self._run_both(q1_scan(30.0))
        for name in SPAN_ATTRIBUTED_FIELDS:
            total = parallel.root_span.total(name)
            statement = getattr(parallel.metrics, name)
            assert total == pytest.approx(statement), name

    def test_segment_elimination_matches_serial(self):
        serial_db, serial, morsel_db, parallel = self._run_both(
            q1_scan(1.0), sorted_on="col1")
        assert parallel.metrics.segments_skipped > 0
        assert_metrics_equivalent(parallel.metrics, serial.metrics)
        assert parallel.rows == serial.rows

    def test_usage_counters_match_serial(self):
        serial_db, _, morsel_db, _ = self._run_both(q1_scan(10.0))
        serial_usage = serial_db.table("micro").primary.usage
        morsel_usage = morsel_db.table("micro").primary.usage
        assert morsel_usage.user_scans == serial_usage.user_scans == 1
        assert (morsel_usage.segments_scanned
                == serial_usage.segments_scanned)
        assert (morsel_usage.segments_skipped
                == serial_usage.segments_skipped)

    def test_delta_store_rows_appear_once(self):
        database = _micro_db()
        executor = Executor(database)
        executor.execute("INSERT INTO micro (col1, col2) VALUES (1, 2)")
        executor.execute("INSERT INTO micro (col1, col2) VALUES (3, 4)")
        serial = executor.execute(
            "SELECT count(*) FROM micro", cold=True)
        with SessionManager(database, morsel_workers=4) as manager:
            with manager.session(cold=True) as session:
                parallel = session.execute("SELECT count(*) FROM micro")
        assert parallel.scalar() == serial.scalar() == 40_002

    def test_small_indexes_stay_serial(self):
        database = Database()
        make_uniform_table(database, "micro", 1000, 1, seed=5)
        database.table("micro").set_primary_columnstore()
        index = database.table("micro").primary
        pool = MorselPool(n_workers=2, min_rowgroups=2)
        try:
            assert index.n_rowgroups == 1
            assert not pool.eligible(index)
        finally:
            pool.close()

    def test_pool_disabled_is_serial_manager(self):
        database = _micro_db()
        with SessionManager(database, morsel_workers=0) as manager:
            assert manager.morsel_pool is None
            with manager.session(cold=True) as session:
                result = session.execute(q1_scan(10.0))
        assert result.metrics.segments_read > 0


class TestDifferentialSuite:
    """The ISSUE's concurrent-session differential acceptance suite."""

    READ_MIX = (
        q1_scan(0.4),
        q1_scan(30.0),
        "SELECT count(*) FROM micro",
        "SELECT sum(col2) FROM micro WHERE col2 < 1000000000",
    )
    SESSIONS = 4

    def test_concurrent_metrics_equal_serial_sum(self):
        """(a) each concurrent session's merged QueryMetrics equals the
        serial replay's, for 50 iterations."""
        database = _micro_db(n_rows=5000, rowgroup_size=1024)
        with SessionManager(database) as manager:
            with manager.session(cold=True) as session:
                baseline = [
                    _metrics_dict(session.execute(sql).metrics)
                    for sql in self.READ_MIX
                ]
            for iteration in range(DIFFERENTIAL_ITERATIONS):
                mismatches = []

                def client():
                    with manager.session(cold=True) as session:
                        for sql, expected in zip(self.READ_MIX, baseline):
                            got = _metrics_dict(session.execute(sql).metrics)
                            if got != expected:
                                mismatches.append((sql, expected, got))

                threads = [threading.Thread(target=client)
                           for _ in range(self.SESSIONS)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
                assert not mismatches, (
                    f"iteration {iteration}: {mismatches[0]}")

    def test_interleaved_dml_keeps_database_consistent(self):
        """(b) interleaved multi-session DML leaves a checkable database."""
        database = _micro_db(n_rows=4000, rowgroup_size=1024)
        database.table("micro").create_secondary_btree("ix_col2", ["col2"])
        errors = []
        with SessionManager(database) as manager:
            def writer(offset):
                try:
                    with manager.session() as session:
                        for i in range(DIFFERENTIAL_ITERATIONS):
                            value = offset * 1000 + i
                            session.execute(
                                f"INSERT INTO micro (col1, col2) "
                                f"VALUES ({value}, {value})")
                            session.execute(
                                f"UPDATE TOP (5) micro SET col2 += 1 "
                                f"WHERE col1 >= {offset}")
                            if i % 5 == 0:
                                session.execute(
                                    f"DELETE TOP (2) FROM micro "
                                    f"WHERE col1 = {value}")
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=writer, args=(n,))
                       for n in range(self.SESSIONS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors, errors[0]
        result = check_database(database)
        assert result.ok, result.summary()

    def test_dmv_counters_match_statement_counts(self):
        """(c) usage counters and the statement clock add up after a
        concurrent read+write mix."""
        database = _micro_db(n_rows=5000, rowgroup_size=1024)
        index = database.table("micro").primary
        before_clock = database.telemetry.clock.now
        scans_per_session = 6
        updates_per_session = 3
        with SessionManager(database) as manager:
            def client():
                with manager.session() as session:
                    for _ in range(scans_per_session):
                        session.execute("SELECT count(*) FROM micro")
                    for i in range(updates_per_session):
                        session.execute(
                            f"UPDATE TOP (2) micro SET col2 += 1 "
                            f"WHERE col1 >= {i}")

            threads = [threading.Thread(target=client)
                       for _ in range(self.SESSIONS)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        statements = self.SESSIONS * (scans_per_session
                                      + updates_per_session)
        assert database.telemetry.clock.now - before_clock == statements
        # Every statement scans the primary once: SELECTs directly, and
        # each UPDATE's read side scans to find qualifying rows.
        assert index.usage.user_scans == statements
        # One user_updates bump per UPDATE statement — the stamp-dedup
        # race would overcount, the old single-stamp dedup undercounts.
        assert (index.usage.user_updates
                == self.SESSIONS * updates_per_session)


class TestSessionLayer:
    def test_statement_classification(self):
        assert not statement_writes("SELECT 1 FROM micro")
        assert not statement_writes("  select col1 from micro")
        assert statement_writes("UPDATE micro SET col1 = 1")
        assert statement_writes("DELETE FROM micro")
        assert statement_writes("INSERT INTO micro (col1) VALUES (1)")

    def test_statement_classification_is_not_lexical(self):
        """Leading comments/parens must not misclassify a SELECT as DML
        (classification uses the parsed statement type, not a prefix)."""
        assert not statement_writes("-- warm cache\nSELECT count(*) FROM micro")
        assert not statement_writes("(SELECT count(*) FROM micro)")
        assert not statement_writes(
            "SELECT count(*) FROM micro WHERE col1 = ?", (1,))
        assert statement_writes("-- audited\nDELETE FROM micro WHERE col1 = 1")
        # Unparseable syntax defaults to the exclusive latch.
        assert statement_writes("???")

    def test_per_session_encoded_override(self):
        from repro.core.schema import Column, TableSchema
        from repro.core.types import INT, varchar
        database = Database()
        table = database.create_table(TableSchema("t", [
            Column("k", INT, nullable=False),
            Column("s", varchar(10)),
        ]))
        table.bulk_load([(i, f"v{i % 5}") for i in range(5000)])
        table.set_primary_columnstore(rowgroup_size=1024)
        with SessionManager(database) as manager:
            encoded = manager.session(encoded_execution=True)
            decoded = manager.session(encoded_execution=False)
            sql = "SELECT count(*) FROM t WHERE s = 'v3'"
            on = encoded.execute(sql)
            off = decoded.execute(sql)
            assert on.scalar() == off.scalar()
            assert on.metrics.columns_late_materialized > 0
            assert off.metrics.columns_late_materialized == 0
            encoded.close()
            decoded.close()

    def test_transaction_blocks_other_sessions(self):
        database = _micro_db(n_rows=2000, rowgroup_size=1024)
        order = []
        with SessionManager(database) as manager:
            ready = threading.Event()
            inside = threading.Event()

            def other():
                with manager.session() as session:
                    ready.set()
                    inside.wait()
                    session.execute("SELECT count(*) FROM micro")
                    order.append("other")

            thread = threading.Thread(target=other)
            thread.start()
            ready.wait()
            with manager.session() as session:
                with session.transaction():
                    assert session.in_transaction
                    inside.set()
                    session.execute(
                        "INSERT INTO micro (col1, col2) VALUES (1, 1)")
                    session.execute(
                        "UPDATE TOP (1) micro SET col2 += 1 WHERE col1 = 1")
                    order.append("txn")
                assert not session.in_transaction
            thread.join()
        assert order == ["txn", "other"]

    def test_transaction_owner_never_deadlocks_on_grant_pool(self):
        """Regression: statements queued on the latch behind an open
        transaction must not pin memory grants the transaction owner
        needs. With the broken grant-then-latch ordering and a pool of
        exactly one default grant, the owner's execute() would hang
        forever here."""
        database = _micro_db(n_rows=2000, rowgroup_size=1024)
        default = database.cost_model.default_memory_grant_bytes
        with SessionManager(database,
                            grant_capacity_bytes=default) as manager:
            in_txn = threading.Event()
            owner_done = threading.Event()
            finished = []

            def owner():
                with manager.session() as session:
                    with session.transaction():
                        in_txn.set()
                        # Give the readers time to queue on the latch.
                        time.sleep(0.2)
                        session.execute("SELECT count(*) FROM micro")
                        session.execute(
                            "INSERT INTO micro (col1, col2) VALUES (1, 1)")
                owner_done.set()

            def reader():
                in_txn.wait()
                with manager.session() as session:
                    session.execute("SELECT count(*) FROM micro")
                    finished.append(True)

            threads = [threading.Thread(target=owner, daemon=True)]
            threads += [threading.Thread(target=reader, daemon=True)
                        for _ in range(3)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert owner_done.is_set(), (
                "transaction owner deadlocked waiting for a memory grant")
            assert len(finished) == 3
            assert not any(thread.is_alive() for thread in threads)

    def test_grant_pool_fifo_prevents_large_request_starvation(self):
        """A queued large request is served before later small requests
        even when the small ones would fit in the free bytes."""
        pool = MemoryGrantPool(capacity_bytes=1000)
        holding = threading.Event()
        release = threading.Event()
        order = []

        def holder():
            with pool.grant(800):
                holding.set()
                release.wait()

        def requester(amount, name):
            def run():
                with pool.grant(amount):
                    order.append(name)
            return threading.Thread(target=run, daemon=True)

        holder_thread = threading.Thread(target=holder, daemon=True)
        holder_thread.start()
        holding.wait()
        big = requester(900, "big")
        big.start()
        deadline = time.monotonic() + 5
        while len(pool._waiters) < 1 and time.monotonic() < deadline:
            time.sleep(0.005)
        small = requester(100, "small")
        small.start()
        while len(pool._waiters) < 2 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert len(pool._waiters) == 2
        # 200 bytes are free; a non-FIFO pool would admit `small` now.
        time.sleep(0.1)
        assert order == []
        release.set()
        for thread in (holder_thread, big, small):
            thread.join(timeout=10)
        assert order == ["big", "small"]

    def test_grant_pool_queues_when_exhausted(self):
        pool = MemoryGrantPool(capacity_bytes=1000)
        holding = threading.Event()
        release = threading.Event()

        def holder():
            with pool.grant(800):
                holding.set()
                release.wait()

        thread = threading.Thread(target=holder)
        thread.start()
        holding.wait()
        waited = []

        def waiter():
            with pool.grant(800):
                waited.append(True)

        blocked = threading.Thread(target=waiter)
        blocked.start()
        blocked.join(timeout=0.2)
        assert blocked.is_alive() and not waited
        release.set()
        blocked.join(timeout=5)
        assert waited == [True]
        assert pool.grant_waits >= 1
        thread.join()

    def test_grant_larger_than_pool_is_clamped(self):
        pool = MemoryGrantPool(capacity_bytes=100)
        with pool.grant(10_000) as granted:
            assert granted == 100

    def test_latch_upgrade_raises(self):
        latch = DatabaseLatch()
        with latch.shared("s1"):
            with pytest.raises(ExecutionError):
                with latch.exclusive("s1"):
                    pass

    def test_closed_session_rejects_statements(self):
        database = _micro_db(n_rows=2000, rowgroup_size=1024)
        with SessionManager(database) as manager:
            session = manager.session()
            session.close()
            with pytest.raises(ExecutionError):
                session.execute("SELECT count(*) FROM micro")


class TestFrontend:
    def test_line_protocol_roundtrip(self):
        database = _micro_db(n_rows=2000, rowgroup_size=1024)
        with SessionManager(database) as manager:
            server = ReproServer(manager, host="127.0.0.1", port=0)
            server.serve_background()
            try:
                host, port = server.server_address
                with socket.create_connection((host, port), timeout=10) as conn:
                    reader = conn.makefile("r", encoding="utf-8")
                    hello = json.loads(reader.readline())
                    assert hello["ok"] and "session" in hello
                    conn.sendall(b"SELECT count(*) FROM micro\n")
                    reply = json.loads(reader.readline())
                    assert reply["ok"]
                    assert reply["rows"] == [[2000]]
                    conn.sendall(b"SELECT broken FROM nowhere\n")
                    failure = json.loads(reader.readline())
                    assert not failure["ok"] and failure["error"]
            finally:
                server.shutdown()
                server.server_close()
