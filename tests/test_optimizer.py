"""Tests for statistics, access-path selection, join planning, and the
executor's end-to-end correctness."""

import random

import numpy as np
import pytest

from repro.core.schema import Column, TableSchema
from repro.core.types import DATE, INT, decimal, varchar
from repro.engine.executor import Executor
from repro.engine.expressions import ColumnRange
from repro.optimizer.catalog import Catalog
from repro.optimizer.statistics import build_column_stats, build_table_stats
from repro.storage.database import Database
from repro.storage.table import Table


def make_db(n=20000, seed=0):
    rng = random.Random(seed)
    db = Database()
    fact = db.create_table(TableSchema("fact", [
        Column("id", INT, nullable=False),
        Column("dim_id", INT, nullable=False),
        Column("v", INT),
        Column("grp", INT),
    ]))
    fact.bulk_load([
        (i, rng.randrange(200), rng.randrange(1000), rng.randrange(8))
        for i in range(n)
    ])
    dim = db.create_table(TableSchema("dim", [
        Column("id", INT, nullable=False),
        Column("label", varchar(16)),
        Column("region", INT),
    ]))
    dim.bulk_load([(i, f"lab{i}", i % 4) for i in range(200)])
    return db


class TestColumnStats:
    def test_basic_counts(self):
        stats = build_column_stats([1, 2, 2, 3, None])
        assert stats.n_rows == 5
        assert stats.n_nulls == 1
        assert stats.n_distinct == 3
        assert stats.min_value == 1 and stats.max_value == 3

    def test_equality_selectivity(self):
        stats = build_column_stats(list(range(100)))
        assert abs(stats.equality_selectivity(50) - 0.01) < 1e-9
        assert stats.equality_selectivity(500) == 0.0

    def test_range_selectivity_uniform(self):
        stats = build_column_stats(list(range(1000)))
        r = ColumnRange(low=0, high=99)
        sel = stats.range_selectivity(r)
        assert 0.05 < sel < 0.2

    def test_open_range(self):
        stats = build_column_stats(list(range(1000)))
        sel = stats.range_selectivity(ColumnRange(low=900, high=None))
        assert 0.05 < sel < 0.2

    def test_point_range_uses_equality(self):
        stats = build_column_stats([1] * 50 + [2] * 50)
        r = ColumnRange(low=1, high=1)
        assert abs(stats.range_selectivity(r) - 0.5) < 0.01

    def test_string_column_no_histogram(self):
        stats = build_column_stats(["a", "b", "a"])
        assert stats.bucket_bounds == []
        assert stats.n_distinct == 2

    def test_table_stats_sampled(self):
        db = make_db(5000)
        stats = build_table_stats(db.table("fact"), sample_rows=500)
        assert stats.row_count == 5000
        assert stats.column("grp").n_distinct <= 16


class TestAccessPathSelection:
    def test_selective_predicate_prefers_btree(self):
        db = make_db()
        fact = db.table("fact")
        fact.set_primary_btree(["id"])
        fact.create_secondary_columnstore("csi_fact")
        # Random-order column => no segment elimination on dim_id.
        ex = Executor(db)
        plan = ex.plan("SELECT sum(v) FROM fact WHERE id = 5")
        assert plan.index_kinds_at_leaves() == ["btree"]

    def test_large_scan_prefers_csi(self):
        db = make_db()
        fact = db.table("fact")
        fact.set_primary_btree(["id"])
        fact.create_secondary_columnstore("csi_fact")
        ex = Executor(db)
        plan = ex.plan("SELECT grp, sum(v) FROM fact GROUP BY grp")
        assert plan.index_kinds_at_leaves() == ["csi"]

    def test_no_csi_falls_back_to_btree_scan(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        ex = Executor(db)
        plan = ex.plan("SELECT grp, sum(v) FROM fact GROUP BY grp")
        assert plan.index_kinds_at_leaves() == ["btree"]

    def test_secondary_btree_seek_chosen_when_covering(self):
        db = make_db()
        fact = db.table("fact")
        fact.set_primary_btree(["id"])
        fact.create_secondary_btree("ix_dim", ["dim_id"], ["v"])
        ex = Executor(db)
        plan = ex.plan("SELECT sum(v) FROM fact WHERE dim_id = 7")
        leaves = plan.root.leaves()
        assert leaves[0].descriptor.name == "ix_dim"
        assert not leaves[0].needs_lookup

    def test_executor_results_identical_across_designs(self):
        sql = ("SELECT grp, sum(v) s FROM fact WHERE dim_id < 50 "
               "GROUP BY grp ORDER BY grp")
        results = []
        for design in ("heap", "btree", "csi"):
            db = make_db()
            fact = db.table("fact")
            if design == "btree":
                fact.set_primary_btree(["id"])
            elif design == "csi":
                fact.set_primary_columnstore(rowgroup_size=4096)
            ex = Executor(db)
            results.append(ex.execute(sql).rows)
        assert results[0] == results[1] == results[2]


class TestJoinPlanning:
    def make_joined_db(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        db.table("dim").set_primary_btree(["id"])
        return db

    def test_join_result_correct(self):
        db = self.make_joined_db()
        ex = Executor(db)
        result = ex.execute(
            "SELECT d.region, sum(f.v) s FROM fact f "
            "JOIN dim d ON f.dim_id = d.id "
            "WHERE d.region = 2 GROUP BY d.region")
        assert len(result.rows) == 1
        assert result.rows[0][0] == 2
        # Verify against a manual computation.
        fact, dim = db.table("fact"), db.table("dim")
        regions = {rid: row[2] for rid, row in dim.iter_rows()}
        by_id = {row[0]: row[2] for _, row in dim.iter_rows()}
        expected = sum(
            row[2] for _, row in fact.iter_rows() if by_id[row[1]] == 2)
        assert result.rows[0][1] == expected

    def test_inl_join_chosen_for_selective_outer(self):
        db = self.make_joined_db()
        # fact has a secondary index on dim_id for the INL inner side.
        db.table("fact").create_secondary_btree("ix_dimid", ["dim_id"],
                                                ["v"])
        ex = Executor(db)
        plan = ex.plan(
            "SELECT sum(f.v) FROM fact f JOIN dim d ON f.dim_id = d.id "
            "WHERE d.id = 3")
        methods = [n.method for n in plan.root.walk()
                   if hasattr(n, "method")]
        assert "inl" in methods

    def test_hash_join_chosen_for_large_inputs(self):
        db = self.make_joined_db()
        ex = Executor(db)
        plan = ex.plan(
            "SELECT d.region, sum(f.v) FROM fact f "
            "JOIN dim d ON f.dim_id = d.id GROUP BY d.region")
        methods = [n.method for n in plan.root.walk()
                   if hasattr(n, "method")]
        assert "hash" in methods

    def test_three_way_join(self):
        db = self.make_joined_db()
        extra = db.create_table(TableSchema("region", [
            Column("id", INT, nullable=False),
            Column("name", varchar(8)),
        ]))
        extra.bulk_load([(i, f"r{i}") for i in range(4)])
        ex = Executor(db)
        result = ex.execute(
            "SELECT r.name, count(*) c FROM fact f "
            "JOIN dim d ON f.dim_id = d.id "
            "JOIN region r ON d.region = r.id "
            "GROUP BY r.name ORDER BY r.name")
        assert len(result.rows) == 4
        assert sum(row[1] for row in result.rows) == 20000

    def test_disconnected_join_rejected(self):
        db = self.make_joined_db()
        ex = Executor(db)
        from repro.core.errors import OptimizerError
        with pytest.raises(OptimizerError):
            ex.plan("SELECT f.v FROM fact f JOIN dim d ON f.id = f.id")


class TestAggregationPlanning:
    def test_stream_agg_on_sorted_input(self):
        db = make_db()
        db.table("fact").set_primary_btree(["grp"])
        ex = Executor(db)
        plan = ex.plan("SELECT grp, sum(v) FROM fact GROUP BY grp")
        strategies = [n.strategy for n in plan.root.walk()
                      if hasattr(n, "strategy")]
        assert strategies == ["stream"]

    def test_hash_agg_spill_expected_with_tiny_grant(self):
        db = make_db()
        # Primary order (dim_id) does not match the GROUP BY column (id),
        # so the planner must hash — and with a tiny grant, expect a spill.
        db.table("fact").set_primary_btree(["dim_id"])
        ex = Executor(db)
        plan = ex.plan("SELECT id, sum(v) FROM fact GROUP BY id",
                       memory_grant_bytes=4096)
        agg = [n for n in plan.root.walk() if hasattr(n, "strategy")][0]
        assert agg.strategy == "hash"
        assert agg.spill_expected

    def test_stream_agg_avoids_spill_under_tiny_grant(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        ex = Executor(db)
        plan = ex.plan("SELECT id, sum(v) FROM fact GROUP BY id",
                       memory_grant_bytes=4096)
        agg = [n for n in plan.root.walk() if hasattr(n, "strategy")][0]
        assert agg.strategy == "stream"


class TestOrderingPlanning:
    def test_sort_skipped_when_index_provides_order(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        ex = Executor(db)
        plan = ex.plan("SELECT id, v FROM fact WHERE id < 100 ORDER BY id")
        from repro.optimizer.plans import SortNode
        assert not any(isinstance(n, SortNode) for n in plan.root.walk())

    def test_sort_added_when_needed(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        ex = Executor(db)
        plan = ex.plan("SELECT id, v FROM fact WHERE id < 100 ORDER BY v")
        from repro.optimizer.plans import SortNode
        assert any(isinstance(n, SortNode) for n in plan.root.walk())

    def test_top_with_order(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        ex = Executor(db)
        result = ex.execute(
            "SELECT TOP (5) id, v FROM fact WHERE id < 100 ORDER BY id")
        assert [row[0] for row in result.rows] == [0, 1, 2, 3, 4]


class TestDml:
    def test_update_through_secondary_index(self):
        db = make_db()
        fact = db.table("fact")
        fact.set_primary_btree(["id"])
        fact.create_secondary_btree("ix_dim", ["dim_id"])
        ex = Executor(db)
        before = ex.execute("SELECT sum(v) FROM fact WHERE dim_id = 7").scalar()
        n = ex.execute("UPDATE fact SET v = v + 10 WHERE dim_id = 7")
        after = ex.execute("SELECT sum(v) FROM fact WHERE dim_id = 7").scalar()
        assert after == before + 10 * n.rows_affected

    def test_update_top_limits_rows(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        ex = Executor(db)
        result = ex.execute("UPDATE TOP (3) fact SET v = 0 WHERE id < 100")
        assert result.rows_affected == 3

    def test_delete(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        ex = Executor(db)
        result = ex.execute("DELETE FROM fact WHERE id < 10")
        assert result.rows_affected == 10
        remaining = ex.execute("SELECT count(*) FROM fact").scalar()
        assert remaining == 19990

    def test_insert(self):
        db = make_db()
        ex = Executor(db)
        ex.execute("INSERT INTO dim VALUES (999, 'new', 1)")
        got = ex.execute("SELECT label FROM dim WHERE id = 999")
        assert got.rows == [("new",)]

    def test_update_on_primary_csi(self):
        db = make_db(5000)
        fact = db.table("fact")
        fact.set_primary_columnstore(rowgroup_size=1024)
        ex = Executor(db)
        result = ex.execute("UPDATE TOP (5) fact SET v = 1 WHERE dim_id = 3")
        assert result.rows_affected == 5
        # Updated rows visible through the CSI.
        count = ex.execute(
            "SELECT count(*) FROM fact WHERE dim_id = 3 AND v = 1").scalar()
        assert count >= 5

    def test_cold_execution_reports_io(self):
        db = make_db()
        db.table("fact").set_primary_btree(["id"])
        ex = Executor(db)
        hot = ex.execute("SELECT sum(v) FROM fact", cold=False)
        cold = ex.execute("SELECT sum(v) FROM fact", cold=True)
        assert cold.metrics.pages_read > 0
        assert hot.metrics.pages_read == 0
        assert cold.metrics.elapsed_ms > hot.metrics.elapsed_ms
