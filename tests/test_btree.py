"""Tests for the B+ tree and its index wrappers."""

import random

import pytest

from repro.core.errors import StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.metrics import ExecutionContext
from repro.storage.btree import (
    BPlusTree,
    PrimaryBTreeIndex,
    SecondaryBTreeIndex,
)


def schema_two_ints():
    return TableSchema("t", [Column("a", INT, nullable=False),
                             Column("b", INT)])


class TestBPlusTree:
    def test_insert_and_get(self):
        tree = BPlusTree(leaf_capacity=4, internal_capacity=4)
        for i in range(100):
            tree.insert((i,), (i, i * 2))
        assert len(tree) == 100
        assert tree.get((37,)) == (37, 74)
        assert tree.get((1000,)) is None
        tree.check_invariants()

    def test_insert_random_order(self):
        tree = BPlusTree(leaf_capacity=6, internal_capacity=5)
        keys = list(range(500))
        random.Random(7).shuffle(keys)
        for k in keys:
            tree.insert((k,), (k,))
        assert [k for k, _ in tree.items()] == [(i,) for i in range(500)]
        tree.check_invariants()

    def test_duplicate_key_raises(self):
        tree = BPlusTree()
        tree.insert((1,), ("x",))
        with pytest.raises(StorageError):
            tree.insert((1,), ("y",))

    def test_delete_returns_payload(self):
        tree = BPlusTree(leaf_capacity=4, internal_capacity=4)
        for i in range(50):
            tree.insert((i,), (i * 10,))
        assert tree.delete((25,)) == (250,)
        assert tree.get((25,)) is None
        assert len(tree) == 49
        tree.check_invariants()

    def test_delete_missing_raises(self):
        tree = BPlusTree()
        with pytest.raises(StorageError):
            tree.delete((9,))

    def test_delete_everything_random_order(self):
        tree = BPlusTree(leaf_capacity=4, internal_capacity=4)
        keys = list(range(300))
        for k in keys:
            tree.insert((k,), (k,))
        random.Random(3).shuffle(keys)
        for k in keys:
            tree.delete((k,))
            tree.check_invariants()
        assert len(tree) == 0

    def test_interleaved_insert_delete(self):
        tree = BPlusTree(leaf_capacity=4, internal_capacity=4)
        rng = random.Random(11)
        alive = set()
        for step in range(2000):
            if alive and rng.random() < 0.4:
                k = rng.choice(sorted(alive))
                tree.delete((k,))
                alive.discard(k)
            else:
                k = rng.randrange(10000)
                if k not in alive:
                    tree.insert((k,), (k,))
                    alive.add(k)
        assert sorted(k[0] for k, _ in tree.items()) == sorted(alive)
        tree.check_invariants()

    def test_scan_range_inclusive(self):
        tree = BPlusTree(leaf_capacity=4, internal_capacity=4)
        for i in range(100):
            tree.insert((i,), (i,))
        got = [k[0] for k, _ in tree.scan_range((10,), (20,))]
        assert got == list(range(10, 21))

    def test_scan_range_exclusive(self):
        tree = BPlusTree(leaf_capacity=4, internal_capacity=4)
        for i in range(50):
            tree.insert((i,), (i,))
        got = [k[0] for k, _ in tree.scan_range(
            (10,), (20,), low_inclusive=False, high_inclusive=False)]
        assert got == list(range(11, 20))

    def test_scan_open_bounds(self):
        tree = BPlusTree(leaf_capacity=4, internal_capacity=4)
        for i in range(30):
            tree.insert((i,), (i,))
        assert len(list(tree.scan_range(None, None))) == 30
        assert [k[0] for k, _ in tree.scan_range(None, (5,))] == list(range(6))
        assert [k[0] for k, _ in tree.scan_range((25,), None)] == list(range(25, 30))

    def test_bulk_load_matches_inserts(self):
        items = [((i,), (i, str(i))) for i in range(1000)]
        tree = BPlusTree.bulk_load(items, leaf_capacity=16)
        assert len(tree) == 1000
        assert tree.get((512,)) == (512, "512")
        assert [k for k, _ in tree.items()] == [k for k, _ in items]
        tree.check_invariants()

    def test_bulk_load_rejects_unsorted(self):
        with pytest.raises(StorageError):
            BPlusTree.bulk_load([((2,), (2,)), ((1,), (1,))], leaf_capacity=4)

    def test_bulk_load_then_insert_delete(self):
        items = [((i,), (i,)) for i in range(0, 1000, 2)]
        tree = BPlusTree.bulk_load(items, leaf_capacity=8)
        for i in range(1, 1000, 2):
            tree.insert((i,), (i,))
        assert len(tree) == 1000
        for i in range(0, 1000, 3):
            tree.delete((i,))
        tree.check_invariants()

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(leaf_capacity=8, internal_capacity=8)
        for i in range(5000):
            tree.insert((i,), (i,))
        assert 3 <= tree.height <= 8

    def test_leaf_count(self):
        tree = BPlusTree.bulk_load(
            [((i,), (i,)) for i in range(100)], leaf_capacity=10)
        assert tree.leaf_count >= 10

    def test_min_capacity_enforced(self):
        with pytest.raises(StorageError):
            BPlusTree(leaf_capacity=2)


class TestPrimaryBTreeIndex:
    def test_build_and_seek(self):
        schema = schema_two_ints()
        rows = [(i, (i, i % 7)) for i in range(200)]
        index = PrimaryBTreeIndex.build("pk", schema, ["a"], rows)
        got = [(rid, row) for rid, row in index.seek_range((50,), (59,))]
        assert [row[0] for _, row in got] == list(range(50, 60))

    def test_nonunique_keys_allowed(self):
        schema = schema_two_ints()
        rows = [(i, (i % 5, i)) for i in range(100)]
        index = PrimaryBTreeIndex.build("pk", schema, ["a"], rows)
        hits = list(index.seek_range((3,), (3,)))
        assert len(hits) == 20
        assert all(row[0] == 3 for _, row in hits)

    def test_insert_delete_update(self):
        schema = schema_two_ints()
        index = PrimaryBTreeIndex("pk", schema, ["a"])
        index.insert(1, (10, 100))
        index.insert(2, (20, 200))
        index.update(1, (10, 100), (10, 111))
        assert [row for _, row in index.seek_range((10,), (10,))] == [(10, 111)]
        index.update(2, (20, 200), (5, 200))  # key change
        assert [row for _, row in index.scan()] == [(5, 200), (10, 111)]
        index.delete(1, (10, 111))
        assert [row for _, row in index.scan()] == [(5, 200)]

    def test_null_key_rejected(self):
        schema = schema_two_ints()
        index = PrimaryBTreeIndex("pk", TableSchema("t", [
            Column("a", INT), Column("b", INT)]), ["a"])
        with pytest.raises(StorageError):
            index.insert(1, (None, 5))

    def test_cold_seek_charges_io(self):
        schema = schema_two_ints()
        rows = [(i, (i, i)) for i in range(5000)]
        index = PrimaryBTreeIndex.build("pk", schema, ["a"], rows)
        ctx = ExecutionContext(cold=True)
        list(index.seek_range((0,), (4999,), ctx))
        assert ctx.metrics.pages_read > 0
        assert ctx.metrics.elapsed_ms > 0

    def test_hot_seek_records_logical_read(self):
        schema = schema_two_ints()
        rows = [(i, (i, i)) for i in range(1000)]
        index = PrimaryBTreeIndex.build("pk", schema, ["a"], rows)
        ctx = ExecutionContext(cold=False)
        list(index.seek_range((0,), (999,), ctx))
        assert ctx.metrics.pages_read == 0
        assert ctx.metrics.data_read_mb > 0

    def test_size_bytes_scales_with_rows(self):
        schema = schema_two_ints()
        small = PrimaryBTreeIndex.build(
            "pk", schema, ["a"], [(i, (i, i)) for i in range(100)])
        big = PrimaryBTreeIndex.build(
            "pk", schema, ["a"], [(i, (i, i)) for i in range(10000)])
        assert big.size_bytes() > small.size_bytes() * 10


class TestSecondaryBTreeIndex:
    def schema(self):
        return TableSchema("t", [
            Column("a", INT, nullable=False),
            Column("b", INT),
            Column("c", varchar(8)),
        ])

    def test_covered_columns_order(self):
        index = SecondaryBTreeIndex("ix", self.schema(), ["b"], ["c"])
        assert index.covered_columns == ["b", "c"]

    def test_key_included_overlap_rejected(self):
        with pytest.raises(StorageError):
            SecondaryBTreeIndex("ix", self.schema(), ["b"], ["b"])

    def test_build_and_seek_returns_covered_values(self):
        rows = [(i, (i, i * 2, f"s{i}")) for i in range(50)]
        index = SecondaryBTreeIndex.build(
            "ix", self.schema(), ["b"], rows, included_columns=["c"])
        hits = list(index.seek_range((20,), (24,)))
        assert [(rid, vals) for rid, vals in hits] == [
            (10, (20, "s10")), (11, (22, "s11")), (12, (24, "s12"))]

    def test_update_skips_uncovered_columns(self):
        rows = [(i, (i, i, f"s{i}")) for i in range(10)]
        index = SecondaryBTreeIndex.build("ix", self.schema(), ["b"], rows)
        before = list(index.scan())
        # Change only column c, which the index neither keys nor includes.
        index.update(3, (3, 3, "s3"), (3, 3, "zzz"))
        assert list(index.scan()) == before

    def test_update_rewrites_on_key_change(self):
        rows = [(i, (i, i, f"s{i}")) for i in range(10)]
        index = SecondaryBTreeIndex.build("ix", self.schema(), ["b"], rows)
        index.update(3, (3, 3, "s3"), (3, 99, "s3"))
        assert [rid for rid, _ in index.seek_range((99,), (99,))] == [3]

    def test_entry_width_smaller_than_row(self):
        schema = self.schema()
        index = SecondaryBTreeIndex("ix", schema, ["b"])
        assert index.entry_byte_width < schema.row_byte_width + 8
