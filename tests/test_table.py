"""Tests for Table (index maintenance across DML) and Database."""

import pytest

from repro.core.errors import CatalogError, StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, XML, varchar
from repro.engine.batch import concat_batches
from repro.engine.metrics import ExecutionContext
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.database import Database
from repro.storage.heap import HeapFile
from repro.storage.table import Table


def schema():
    return TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT),
        Column("s", varchar(8)),
    ])


def loaded_table(n=500):
    table = Table(schema())
    table.bulk_load([(i, i % 10, f"s{i % 3}") for i in range(n)])
    return table


class TestHeap:
    def test_insert_fetch_scan(self):
        heap = HeapFile("h", schema())
        heap.insert(1, (1, 2, "x"))
        heap.insert(2, (3, 4, "y"))
        assert heap.fetch(1) == (1, 2, "x")
        assert [rid for rid, _ in heap.scan()] == [1, 2]
        assert len(heap) == 2

    def test_delete_and_update(self):
        heap = HeapFile("h", schema())
        heap.insert(1, (1, 2, "x"))
        heap.update(1, (1, 2, "x"), (1, 9, "x"))
        assert heap.fetch(1) == (1, 9, "x")
        heap.delete(1, (1, 9, "x"))
        with pytest.raises(StorageError):
            heap.fetch(1)

    def test_duplicate_rid_rejected(self):
        heap = HeapFile("h", schema())
        heap.insert(1, (1, 2, "x"))
        with pytest.raises(StorageError):
            heap.insert(1, (1, 2, "x"))

    def test_cold_fetch_charges_random_io(self):
        heap = HeapFile("h", schema())
        heap.insert(1, (1, 2, "x"))
        ctx = ExecutionContext(cold=True)
        heap.fetch(1, ctx)
        assert ctx.metrics.pages_read == 1


class TestTableBasics:
    def test_default_primary_is_heap(self):
        table = Table(schema())
        assert isinstance(table.primary, HeapFile)

    def test_bulk_load_and_row_access(self):
        table = loaded_table(100)
        assert table.row_count == 100
        assert table.get_row(5) == (5, 5, "s2")
        assert table.has_rid(99)
        assert not table.has_rid(100)

    def test_bulk_load_requires_empty_table(self):
        table = loaded_table(10)
        with pytest.raises(StorageError):
            table.bulk_load([(1, 1, "x")])

    def test_insert_assigns_increasing_rids(self):
        table = Table(schema())
        rid1 = table.insert_row((1, 2, "x"))
        rid2 = table.insert_row((3, 4, "y"))
        assert rid2 == rid1 + 1

    def test_insert_validates(self):
        table = Table(schema())
        from repro.core.errors import SchemaError
        with pytest.raises(SchemaError):
            table.insert_row((None, 2, "x"))  # a is not nullable


class TestPhysicalDesignChanges:
    def test_set_primary_btree_preserves_rows(self):
        table = loaded_table(200)
        table.set_primary_btree(["a"])
        rows = [row for _, row in table.primary.scan()]
        assert len(rows) == 200
        assert rows[0][0] == 0

    def test_set_primary_columnstore(self):
        table = loaded_table(200)
        table.set_primary_columnstore(rowgroup_size=64)
        assert isinstance(table.primary, ColumnstoreIndex)
        assert table.primary.is_primary

    def test_primary_csi_rejected_with_xml_column(self):
        table = Table(TableSchema("t", [Column("a", INT), Column("x", XML)]))
        with pytest.raises(CatalogError):
            table.set_primary_columnstore()

    def test_single_columnstore_per_table(self):
        table = loaded_table(100)
        table.create_secondary_columnstore("csi1")
        with pytest.raises(CatalogError):
            table.create_secondary_columnstore("csi2")

    def test_secondary_csi_after_primary_csi_rejected(self):
        table = loaded_table(100)
        table.set_primary_columnstore(rowgroup_size=64)
        with pytest.raises(CatalogError):
            table.create_secondary_columnstore("csi2")

    def test_duplicate_index_name_rejected(self):
        table = loaded_table(100)
        table.create_secondary_btree("ix", ["b"])
        with pytest.raises(CatalogError):
            table.create_secondary_btree("ix", ["a"])

    def test_drop_index(self):
        table = loaded_table(100)
        table.create_secondary_btree("ix", ["b"])
        table.drop_index("ix")
        assert table.secondary_indexes == {}
        with pytest.raises(CatalogError):
            table.drop_index("ix")

    def test_index_by_name_finds_primary(self):
        table = loaded_table(10)
        table.set_primary_btree(["a"], name="my_pk")
        assert table.index_by_name("my_pk") is table.primary

    def test_columnstore_index_lookup(self):
        table = loaded_table(100)
        assert table.columnstore_index() is None
        csi = table.create_secondary_columnstore("csi")
        assert table.columnstore_index() is csi

    def test_set_primary_heap_back(self):
        table = loaded_table(50)
        table.set_primary_btree(["a"])
        table.set_primary_heap()
        assert isinstance(table.primary, HeapFile)
        assert len(table.primary) == 50


class TestDmlMaintainsAllIndexes:
    def make_hybrid_table(self):
        table = loaded_table(300)
        table.set_primary_btree(["a"])
        table.create_secondary_btree("ix_b", ["b"], included_columns=["s"])
        table.create_secondary_columnstore("csi", rowgroup_size=64)
        return table

    def all_a_values(self, table):
        csi = table.columnstore_index()
        merged = concat_batches(csi.scan(["a"]))
        return sorted(merged.column("a").tolist())

    def test_insert_reaches_every_index(self):
        table = self.make_hybrid_table()
        rid = table.insert_row((1000, 77, "new"))
        assert table.get_row(rid) == (1000, 77, "new")
        assert [r for _, r in table.primary.seek_range((1000,), (1000,))]
        ix = table.secondary_indexes["ix_b"]
        assert any(got_rid == rid for got_rid, _ in ix.seek_range((77,), (77,)))
        assert 1000 in self.all_a_values(table)

    def test_delete_reaches_every_index(self):
        table = self.make_hybrid_table()
        table.delete_rid(5)
        assert not table.has_rid(5)
        assert 5 not in self.all_a_values(table)
        assert not list(table.primary.seek_range((5,), (5,)))

    def test_update_reaches_every_index(self):
        table = self.make_hybrid_table()
        table.update_rid(5, (5, 999, "upd"))
        assert table.get_row(5) == (5, 999, "upd")
        ix = table.secondary_indexes["ix_b"]
        hits = list(ix.seek_range((999,), (999,)))
        assert [vals for _, vals in hits] == [(999, "upd")]

    def test_batch_delete(self):
        table = self.make_hybrid_table()
        deleted = table.delete_rids([1, 2, 3])
        assert deleted == 3
        assert table.row_count == 297
        values = self.all_a_values(table)
        assert 1 not in values and 3 not in values

    def test_batch_update(self):
        table = self.make_hybrid_table()
        table.update_rids([(1, (1, 500, "u1")), (2, (2, 501, "u2"))])
        assert table.get_row(1) == (1, 500, "u1")
        assert table.get_row(2) == (2, 501, "u2")

    def test_total_index_bytes_grows_with_indexes(self):
        plain = loaded_table(300)
        hybrid = self.make_hybrid_table()
        assert hybrid.total_index_bytes() > plain.total_index_bytes()

    def test_fetch_columns(self):
        table = loaded_table(10)
        ctx = ExecutionContext(cold=True)
        values = table.fetch_columns(3, [2, 0], ctx)
        assert values == ("s0", 3)
        assert ctx.metrics.pages_read == 1


class TestDatabase:
    def test_create_and_lookup(self):
        db = Database("mydb")
        db.create_table(schema())
        assert db.has_table("t")
        assert "t" in db
        assert db.table("t").name == "t"
        assert db.table_names() == ["t"]

    def test_duplicate_table_rejected(self):
        db = Database()
        db.create_table(schema())
        with pytest.raises(CatalogError):
            db.create_table(schema())

    def test_unknown_table_raises(self):
        with pytest.raises(CatalogError):
            Database().table("missing")

    def test_drop_table(self):
        db = Database()
        db.create_table(schema())
        db.drop_table("t")
        assert not db.has_table("t")
        with pytest.raises(CatalogError):
            db.drop_table("t")

    def test_total_size_and_inventory(self):
        db = Database()
        table = db.create_table(schema())
        table.bulk_load([(i, i, "x") for i in range(100)])
        table.create_secondary_btree("ix", ["b"])
        assert db.total_size_bytes() > 0
        inventory = db.index_inventory()
        assert any("ix" in line for line in inventory)
        assert any("heap" in line for line in inventory)


class TestUpdateRidsDedup:
    def make_hybrid_table(self):
        table = loaded_table(300)
        table.set_primary_btree(["a"])
        table.create_secondary_btree("ix_b", ["b"], included_columns=["s"])
        table.create_secondary_columnstore("csi", rowgroup_size=64)
        return table

    def test_duplicate_rid_last_write_wins(self):
        table = self.make_hybrid_table()
        # Two updates to the same rid in one batch: before dedup the
        # second entry tripped "already deleted" in the secondary
        # columnstore; now the batch collapses to the last write.
        updated = table.update_rids([
            (5, (5, 111, "first")),
            (5, (5, 222, "last")),
        ])
        assert updated == 1
        assert table.get_row(5) == (5, 222, "last")
        ix = table.secondary_indexes["ix_b"]
        assert not list(ix.seek_range((111,), (111,)))
        hits = list(ix.seek_range((222,), (222,)))
        assert [vals for _, vals in hits] == [(222, "last")]

    def test_duplicate_rid_batch_stays_consistent(self):
        from repro.storage.checker import check_table
        table = self.make_hybrid_table()
        table.update_rids([
            (7, (7, 300, "a")),
            (8, (8, 301, "b")),
            (7, (7, 302, "c")),
        ])
        assert table.get_row(7) == (7, 302, "c")
        result = check_table(table)
        assert result.ok, result.summary()


class TestBulkLoadGuard:
    def test_bulk_load_bumps_modification_counter(self):
        table = Table(schema())
        before = table.modification_counter
        table.bulk_load([(i, i, "x") for i in range(40)])
        assert table.modification_counter == before + 40

    def test_bulk_load_error_names_the_obstruction(self):
        table = loaded_table(10)
        table.create_secondary_btree("ix", ["b"])
        with pytest.raises(StorageError) as exc:
            table.bulk_load([(1000, 0, "x")])
        message = str(exc.value)
        assert "10 rows" in message and "1 secondary" in message
