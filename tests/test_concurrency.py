"""Tests for the lock manager and the discrete-event concurrency
simulator."""

import pytest

from repro.core.errors import TransactionError
from repro.engine.concurrency import (
    ConcurrencySimulator,
    SimulationResult,
    StatementProfile,
)
from repro.engine.locks import (
    LOCK_S,
    LOCK_X,
    READ_COMMITTED,
    SERIALIZABLE,
    SNAPSHOT,
    LockManager,
    compatible,
    range_bucket,
    read_cpu_multiplier,
    read_lock_requests,
    write_lock_requests,
)


class TestLockManager:
    def test_shared_locks_compatible(self):
        lm = LockManager()
        assert lm.try_acquire_all(1, [(("t", 1), LOCK_S)])
        assert lm.try_acquire_all(2, [(("t", 1), LOCK_S)])

    def test_exclusive_blocks_shared(self):
        lm = LockManager()
        assert lm.try_acquire_all(1, [(("t", 1), LOCK_X)])
        assert not lm.try_acquire_all(2, [(("t", 1), LOCK_S)])

    def test_shared_blocks_exclusive(self):
        lm = LockManager()
        assert lm.try_acquire_all(1, [(("t", 1), LOCK_S)])
        assert not lm.try_acquire_all(2, [(("t", 1), LOCK_X)])

    def test_release_wakes_waiters(self):
        lm = LockManager()
        lm.try_acquire_all(1, [(("t", 1), LOCK_X)])
        assert not lm.try_acquire_all(2, [(("t", 1), LOCK_X)])
        woken = lm.release_all(1)
        assert 2 in woken
        assert lm.try_acquire_all(2, [(("t", 1), LOCK_X)])

    def test_fifo_ordering(self):
        lm = LockManager()
        lm.try_acquire_all(1, [(("t", 1), LOCK_X)])
        assert not lm.try_acquire_all(2, [(("t", 1), LOCK_X)])
        assert not lm.try_acquire_all(3, [(("t", 1), LOCK_X)])
        lm.release_all(1)
        # Client 3 must not jump ahead of client 2.
        assert not lm.try_acquire_all(3, [(("t", 1), LOCK_X)])
        assert lm.try_acquire_all(2, [(("t", 1), LOCK_X)])

    def test_multi_resource_all_or_nothing(self):
        lm = LockManager()
        lm.try_acquire_all(1, [(("t", 2), LOCK_X)])
        granted = lm.try_acquire_all(
            2, [(("t", 1), LOCK_X), (("t", 2), LOCK_X)])
        assert not granted
        # Resource ("t", 1) must not be held by the failed request.
        assert lm.try_acquire_all(3, [(("t", 1), LOCK_X)])

    def test_reacquire_same_owner(self):
        lm = LockManager()
        assert lm.try_acquire_all(1, [(("t", 1), LOCK_S)])
        assert lm.try_acquire_all(1, [(("t", 1), LOCK_S)])

    def test_compatibility_matrix(self):
        assert compatible(LOCK_S, LOCK_S)
        assert not compatible(LOCK_S, LOCK_X)
        assert not compatible(LOCK_X, LOCK_S)
        assert not compatible(LOCK_X, LOCK_X)

    def test_isolation_lock_footprints(self):
        resources = [("t", 1), ("t", 2)]
        assert read_lock_requests(READ_COMMITTED, resources) == []
        assert read_lock_requests(SNAPSHOT, resources) == []
        sr = read_lock_requests(SERIALIZABLE, resources)
        assert len(sr) == 2 and all(m == LOCK_S for _, m in sr)
        writes = write_lock_requests(resources)
        assert all(m == LOCK_X for _, m in writes)

    def test_unknown_isolation_rejected(self):
        with pytest.raises(TransactionError):
            read_lock_requests("chaos", [("t", 1)])

    def test_snapshot_read_overhead(self):
        assert read_cpu_multiplier(SNAPSHOT) > 1.0
        assert read_cpu_multiplier(READ_COMMITTED) == 1.0

    def test_range_bucket(self):
        assert range_bucket(100, 10) == 10
        assert range_bucket(109, 10) == 10
        assert range_bucket(110, 10) == 11
        assert isinstance(range_bucket("abc"), int)


def reader(cpu=10.0, dop=4, resource=("t", "rg", 0), tag="read"):
    def make():
        return StatementProfile(tag, cpu_ms=cpu, dop=dop,
                                read_resources=(resource,))
    return make


def writer(cpu=1.0, resource=("t", "rg", 0), tag="write"):
    def make():
        return StatementProfile(tag, cpu_ms=cpu, dop=1, is_write=True,
                                write_resources=(resource,))
    return make


class TestSimulator:
    def test_single_client_latency_matches_cost(self):
        sim = ConcurrencySimulator(n_cores=40)
        result = sim.run([reader(cpu=20.0, dop=4)], duration_ms=1000)
        # 20ms of CPU at dop 4 on idle 40 cores => 5ms latency.
        assert abs(result.median_latency("read") - 5.0) < 0.1

    def test_io_phase_adds_fixed_latency(self):
        def with_io():
            return StatementProfile("r", cpu_ms=4.0, dop=4, io_ms=10.0)
        result = ConcurrencySimulator(n_cores=40).run([with_io],
                                                      duration_ms=500)
        assert abs(result.median_latency("r") - 11.0) < 0.1

    def test_cpu_contention_slows_everyone(self):
        solo = ConcurrencySimulator(n_cores=8).run(
            [reader(cpu=8.0, dop=8)], duration_ms=1000)
        crowded = ConcurrencySimulator(n_cores=8).run(
            [reader(cpu=8.0, dop=8) for _ in range(8)], duration_ms=1000)
        assert crowded.median_latency("read") > \
            solo.median_latency("read") * 4

    def test_serial_statements_unaffected_by_spare_cores(self):
        # 4 serial statements on 8 cores: no contention.
        result = ConcurrencySimulator(n_cores=8).run(
            [reader(cpu=5.0, dop=1) for _ in range(4)], duration_ms=500)
        assert abs(result.median_latency("read") - 5.0) < 0.1

    def test_read_committed_readers_not_blocked(self):
        sim = ConcurrencySimulator(n_cores=8, isolation=READ_COMMITTED)
        result = sim.run([reader(cpu=2.0, dop=1), writer(cpu=2.0)],
                         duration_ms=500)
        read_waits = [r.lock_wait_ms for r in result.records
                      if r.tag == "read"]
        assert all(w == 0 for w in read_waits)

    def test_serializable_readers_wait_for_writers(self):
        sim = ConcurrencySimulator(n_cores=8, isolation=SERIALIZABLE)
        result = sim.run(
            [reader(cpu=2.0, dop=1) for _ in range(2)]
            + [writer(cpu=2.0) for _ in range(2)],
            duration_ms=500)
        assert result.total_lock_wait_ms() > 0

    def test_snapshot_reads_cost_more_cpu_than_rc(self):
        rc = ConcurrencySimulator(n_cores=8, isolation=READ_COMMITTED).run(
            [reader(cpu=8.0, dop=1)], duration_ms=500)
        si = ConcurrencySimulator(n_cores=8, isolation=SNAPSHOT).run(
            [reader(cpu=8.0, dop=1)], duration_ms=500)
        assert si.median_latency("read") > rc.median_latency("read")

    def test_disjoint_resources_no_conflict(self):
        sim = ConcurrencySimulator(n_cores=8, isolation=SERIALIZABLE)
        result = sim.run(
            [reader(cpu=1.0, dop=1, resource=("t", 1)),
             writer(cpu=1.0, resource=("t", 2))],
            duration_ms=200)
        assert result.total_lock_wait_ms() == 0

    def test_resource_pools_isolate_cpu(self):
        # H pool gets 6 cores, C pool 2 cores (paper's affinitization).
        def h_query():
            return StatementProfile("h", cpu_ms=12.0, dop=6, pool="H")

        def c_txn():
            return StatementProfile("c", cpu_ms=1.0, dop=1, pool="C",
                                    is_write=True)
        sim = ConcurrencySimulator(
            n_cores=8, pool_cores={"H": 6, "C": 2})
        result = sim.run([h_query, c_txn, c_txn], duration_ms=500)
        # H runs at dop 6 on its 6 cores: 2ms.
        assert abs(result.median_latency("h") - 2.0) < 0.2
        assert abs(result.median_latency("c") - 1.0) < 0.2

    def test_throughput_and_stats(self):
        result = ConcurrencySimulator(n_cores=4).run(
            [reader(cpu=1.0, dop=1)], duration_ms=1000)
        assert result.throughput_per_sec("read") == pytest.approx(
            1000, rel=0.05)
        assert result.tags() == ["read"]
        assert result.mean_latency("read") == pytest.approx(1.0, rel=0.05)

    def test_max_statements_cap(self):
        result = ConcurrencySimulator(n_cores=4).run(
            [reader(cpu=1.0, dop=1)], duration_ms=100000,
            max_statements=50)
        assert len(result.records) == 50
