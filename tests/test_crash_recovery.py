"""Crash-style fault points and the chaos harness.

In-process sweep: every crash point fires mid-workload, the uncatchable
:class:`~repro.core.errors.ProcessAbort` sentinel unwinds, and the
directory left behind recovers to exactly a committed prefix —
checker-clean and idempotently. A subprocess smoke test then runs the
real harness (genuine ``os._exit`` / SIGKILL children) end to end.
"""

import pytest

from repro.core.errors import ProcessAbort
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.executor import Executor
from repro.storage.crashtest import (
    run_chaos,
    session_statements,
    verify_recovered,
)
from repro.storage.database import Database
from repro.storage.faults import CRASH_POINTS
from repro.storage.recovery import recover, state_digest


def durable_db(tmp_path):
    database = Database("crash")
    table = database.create_table(TableSchema("t", [
        Column("a", INT, nullable=False),
        Column("b", INT),
        Column("s", varchar(8)),
    ]))
    table.bulk_load([(i, i % 5, f"s{i % 3}") for i in range(100)])
    table.set_primary_btree(["a"])
    table.create_secondary_columnstore("csi_t", rowgroup_size=64)
    database.enable_durability(str(tmp_path))
    return database


def insert_sql(i):
    return f"INSERT INTO t (a, b, s) VALUES ({1000 + i}, 1, 'n')"


@pytest.mark.parametrize("point", CRASH_POINTS)
@pytest.mark.parametrize("hit", [1, 3, 7])
class TestCrashPointSweep:
    def test_crash_then_recover_to_committed_prefix(self, tmp_path,
                                                    point, hit):
        database = durable_db(tmp_path)
        executor = Executor(database)
        database.fault_injector.arm(point, on_hit=hit)
        completed = 0
        crashed = False
        try:
            for i in range(12):
                executor.execute(insert_sql(i))
                completed += 1
                if (i + 1) % 4 == 0:
                    database.checkpoint()
        except ProcessAbort:
            crashed = True
        if point in ("checkpoint_mid", "page_flush_torn") and not crashed:
            # Points inside the snapshot writer need a checkpoint with
            # enough pages to reach the armed hit; hit 7 may never fire
            # for the one-table snapshot. Nothing to assert then.
            assert hit > 1
            return
        assert crashed, f"{point} (hit {hit}) never fired"

        recovered, report = recover(str(tmp_path))
        assert report.check_ok, report.check_findings
        values = sorted(row[0] for _, row in
                        recovered.table("t").iter_rows() if row[0] >= 1000)
        # Exactly a prefix: every acknowledged insert present, at most
        # one unacknowledged (in-flight) insert beyond it.
        assert values == [1000 + i for i in range(len(values))]
        assert completed <= len(values) <= completed + 1
        again, _ = recover(str(tmp_path))
        assert state_digest(again) == state_digest(recovered)

    def test_crash_is_uncatchable_by_except_exception(self, tmp_path,
                                                      point, hit):
        if hit != 1:
            pytest.skip("one arming is enough per point")
        database = durable_db(tmp_path)
        executor = Executor(database)
        database.fault_injector.arm(point, on_hit=1)

        def run_all():
            for i in range(12):
                try:
                    executor.execute(insert_sql(i))
                except Exception:  # noqa: BLE001 - the point of the test
                    pytest.fail("ProcessAbort was caught by Exception")
                if (i + 1) % 4 == 0:
                    database.checkpoint()

        with pytest.raises(ProcessAbort) as exc:
            run_all()
        assert exc.value.point == point
        assert not isinstance(exc.value, Exception)


class TestDeadWal:
    def test_no_commit_after_crash(self, tmp_path):
        """A crashed WAL must refuse to acknowledge later statements —
        otherwise a concurrent session could acknowledge work that
        recovery cannot see."""
        database = durable_db(tmp_path)
        executor = Executor(database)
        database.fault_injector.arm("wal_append", on_hit=2)
        with pytest.raises(ProcessAbort):
            for i in range(5):
                executor.execute(insert_sql(i))
        assert database.wal.dead
        with pytest.raises(ProcessAbort):
            executor.execute(insert_sql(99))
        recovered, report = recover(str(tmp_path))
        assert report.check_ok
        values = {row[0] for _, row in recovered.table("t").iter_rows()}
        assert 1099 not in values


class TestHarnessModel:
    def test_session_statements_deterministic(self):
        first = session_statements(7, 2, 40)
        second = session_statements(7, 2, 40)
        assert first == second
        statements, states = first
        assert len(statements) == 40 and len(states) == 41
        assert states[0] == {}

    def test_verify_flags_lost_commit(self, tmp_path):
        database = Database("v")
        table = database.create_table(TableSchema("kv", [
            Column("session_id", INT, nullable=False),
            Column("k", INT, nullable=False),
            Column("v", INT),
        ]))
        statements, states = session_statements(3, 0, 10)
        executor = Executor(database)
        for sql in statements[:4]:
            executor.execute(sql)
        # Oracle says 4 committed: state == states[4] passes...
        assert verify_recovered(database, {0: 4}, 3, 1, 10) == []
        # ...but an oracle claiming more must be flagged as data loss.
        problems = verify_recovered(database, {0: 6}, 3, 1, 10)
        assert problems and "matches no" in problems[0]


@pytest.mark.slow
class TestSubprocessSmoke:
    def test_chaos_iteration_per_crash_point(self, tmp_path):
        report = run_chaos(n_random=1, seed=11, n_sessions=2,
                           n_statements=15,
                           out_path=str(tmp_path / "report.json"))
        assert report["total"] == len(CRASH_POINTS) + 1
        failed = [e for e in report["iterations"] if not e["ok"]]
        assert not failed, failed
        assert (tmp_path / "report.json").exists()
