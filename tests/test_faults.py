"""Fault injection and multi-index DML atomicity.

The headline test is the exhaustive fault sweep: for every injection
point, inject on the Nth hit while each DML / maintenance operation runs
against each physical design, then assert that the statement was either
fully applied or fully rolled back and that the CHECKDB-style checker
finds every index consistent.
"""

import pytest

from repro.core.errors import ProcessAbort, StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.metrics import ExecutionContext
from repro.storage.checker import check_database, check_table
from repro.storage.database import Database
from repro.storage.faults import (
    ALL_POINTS,
    CRASH_POINTS,
    INJECTION_POINTS,
    FaultInjector,
    InjectedFault,
    trip,
)


def schema(name="t"):
    return TableSchema(name, [
        Column("a", INT, nullable=False),
        Column("b", INT, nullable=False),
        Column("s", varchar(8), nullable=False),
    ])


def base_rows(n):
    return [(i, i % 10, f"s{i % 3}") for i in range(n)]


# ------------------------------------------------------------ unit tests
class TestFaultInjector:
    def test_unknown_point_rejected(self):
        injector = FaultInjector()
        with pytest.raises(StorageError):
            injector.arm("no.such.point")
        with pytest.raises(StorageError):
            injector.hit("no.such.point")

    def test_nth_hit_fires_once(self):
        injector = FaultInjector()
        injector.arm("heap.insert", on_hit=3)
        injector.hit("heap.insert")
        injector.hit("heap.insert")
        with pytest.raises(InjectedFault) as exc:
            injector.hit("heap.insert")
        assert exc.value.point == "heap.insert"
        assert exc.value.hit_number == 3
        injector.hit("heap.insert")  # one-shot: consumed
        assert injector.hits["heap.insert"] == 4
        assert injector.injected["heap.insert"] == 1

    def test_scripted_schedule(self):
        injector = FaultInjector()
        injector.arm_script("btree.insert", [False, True, True])
        injector.hit("btree.insert")
        with pytest.raises(InjectedFault):
            injector.hit("btree.insert")
        with pytest.raises(InjectedFault):
            injector.hit("btree.insert")
        injector.hit("btree.insert")  # script exhausted -> disarmed
        assert injector.injected["btree.insert"] == 2

    def test_probabilistic_is_reproducible(self):
        def run():
            injector = FaultInjector()
            injector.arm_probabilistic("csi.delete", 0.5, seed=42)
            fired = []
            for _ in range(20):
                try:
                    injector.hit("csi.delete")
                    fired.append(False)
                except InjectedFault:
                    fired.append(True)
            return fired

        first, second = run(), run()
        assert first == second
        assert any(first) and not all(first)

    def test_probability_bounds_validated(self):
        injector = FaultInjector()
        with pytest.raises(StorageError):
            injector.arm_probabilistic("csi.delete", 1.5)
        with pytest.raises(StorageError):
            injector.arm("csi.delete", on_hit=0)

    def test_disarm_and_reset(self):
        injector = FaultInjector()
        injector.arm("heap.insert")
        injector.arm("heap.delete")
        injector.disarm("heap.insert")
        assert injector.armed_points() == ("heap.delete",)
        injector.hit("heap.insert")
        injector.reset()
        assert injector.armed_points() == ()
        assert injector.total_hits == 0

    def test_suspended_masks_hits_and_faults(self):
        injector = FaultInjector()
        injector.arm("heap.insert", on_hit=1)
        with injector.suspended():
            injector.hit("heap.insert")  # neither counts nor fires
        assert injector.total_hits == 0
        with pytest.raises(InjectedFault):
            injector.hit("heap.insert")

    def test_disabled_injector_is_inert(self):
        injector = FaultInjector(enabled=False)
        injector.arm("heap.insert")
        injector.hit("heap.insert")
        assert injector.total_hits == 0

    def test_trip_none_is_noop(self):
        trip(None, "heap.insert")  # must not raise

    def test_validation_error_lists_armed_and_known_points(self):
        injector = FaultInjector()
        injector.arm("heap.insert")
        injector.arm("wal_append")
        with pytest.raises(StorageError) as exc:
            injector.arm("wal_appendd")
        message = str(exc.value)
        assert "'wal_appendd'" in message
        assert "armed points: heap.insert, wal_append" in message
        for point in ALL_POINTS:
            assert point in message

    def test_validation_error_with_nothing_armed(self):
        with pytest.raises(StorageError) as exc:
            FaultInjector().hit("bogus")
        assert "armed points: <none>" in str(exc.value)


class TestScenario:
    def test_int_spec_arms_nth_hit(self):
        injector = FaultInjector()
        injector.scenario({"heap.insert": 2})
        injector.hit("heap.insert")
        with pytest.raises(InjectedFault):
            injector.hit("heap.insert")

    def test_dict_and_sequence_specs(self):
        injector = FaultInjector()
        injector.scenario({
            "heap.insert": {"kind": "nth", "on_hit": 1},
            "btree.insert": {"kind": "probability", "probability": 1.0,
                             "seed": 3},
            "csi.delta_insert": [False, True],
        })
        assert sorted(injector.armed_points()) == [
            "btree.insert", "csi.delta_insert", "heap.insert"]
        with pytest.raises(InjectedFault):
            injector.hit("heap.insert")
        with pytest.raises(InjectedFault):
            injector.hit("btree.insert")
        injector.hit("csi.delta_insert")
        with pytest.raises(InjectedFault):
            injector.hit("csi.delta_insert")

    def test_bare_bool_rejected(self):
        # bool is an int subclass; silently treating True as on_hit=1
        # would mask a typo'd spec.
        with pytest.raises(StorageError):
            FaultInjector().scenario({"heap.insert": True})

    def test_unknown_kind_and_type_rejected(self):
        injector = FaultInjector()
        with pytest.raises(StorageError):
            injector.scenario({"heap.insert": {"kind": "sometimes"}})
        with pytest.raises(StorageError):
            injector.scenario({"heap.insert": 1.5})

    def test_unknown_point_in_scenario_rejected(self):
        with pytest.raises(StorageError):
            FaultInjector().scenario({"no.such.point": 1})


class TestCrashPoints:
    def test_point_catalogs(self):
        assert ALL_POINTS == INJECTION_POINTS + CRASH_POINTS
        assert set(CRASH_POINTS) == {
            "wal_append", "wal_fsync", "checkpoint_mid", "page_flush_torn"}
        assert not set(CRASH_POINTS) & set(INJECTION_POINTS)

    @pytest.mark.parametrize("point", CRASH_POINTS)
    def test_crash_point_raises_process_abort(self, point):
        injector = FaultInjector()
        injector.arm(point, on_hit=2)
        injector.hit(point)
        with pytest.raises(ProcessAbort) as exc:
            injector.hit(point)
        assert exc.value.point == point
        assert exc.value.hit_number == 2
        assert injector.hits[point] == 2
        assert injector.injected[point] == 1

    def test_process_abort_is_not_an_exception(self):
        # Rollback code catches Exception; a simulated process death must
        # sail straight through it, like a real kill -9 would.
        assert not issubclass(ProcessAbort, Exception)
        assert issubclass(ProcessAbort, BaseException)
        injector = FaultInjector()
        injector.arm("wal_fsync")
        with pytest.raises(ProcessAbort):
            try:
                injector.hit("wal_fsync")
            except Exception:  # noqa: BLE001 - the point of the test
                pytest.fail("ProcessAbort was caught by Exception")


# --------------------------------------------------- targeted atomicity
def make_hybrid_db():
    """Primary B+ tree + secondary B+ tree + secondary columnstore."""
    db = Database()
    table = db.create_table(schema())
    table.bulk_load(base_rows(200))
    table.set_primary_btree(["a"])
    table.create_secondary_btree("ix_b", ["b"], included_columns=["s"])
    table.create_secondary_columnstore("csi", rowgroup_size=64)
    return db


class TestDmlRollback:
    def test_insert_rollback_removes_partial_state(self):
        db = make_hybrid_db()
        table = db.table("t")
        ctx = ExecutionContext()
        db.fault_injector.arm("table.secondary_apply", on_hit=2)
        with pytest.raises(InjectedFault):
            table.insert_row((900, 1, "x"), ctx)
        assert not table.has_rid(200)
        assert table.row_count == 200
        result = check_table(table)
        assert result.ok, result.summary()
        assert ctx.metrics.rollbacks == 1
        assert ctx.metrics.faults_injected == 1
        # The burned rid is not reused, and the retry succeeds everywhere.
        rid = table.insert_row((900, 1, "x"))
        assert rid == 201
        assert check_table(table).ok

    def test_delete_rollback_restores_every_index(self):
        db = make_hybrid_db()
        table = db.table("t")
        row = table.get_row(5)
        db.fault_injector.arm("csi.delete", on_hit=1)
        with pytest.raises(InjectedFault):
            table.delete_rid(5)
        assert table.get_row(5) == row
        result = check_table(table)
        assert result.ok, result.summary()

    def test_update_rollback_restores_old_values(self):
        db = make_hybrid_db()
        table = db.table("t")
        old = table.get_row(7)
        db.fault_injector.arm("csi.delta_insert", on_hit=1)
        ctx = ExecutionContext()
        with pytest.raises(InjectedFault):
            table.update_rid(7, (7, 555, "upd"), ctx)
        assert table.get_row(7) == old
        assert ctx.metrics.rollbacks == 1
        result = check_table(table)
        assert result.ok, result.summary()

    def test_batch_update_rollback(self):
        db = make_hybrid_db()
        table = db.table("t")
        before = dict(table._rows)
        db.fault_injector.arm("btree.update", on_hit=3)
        with pytest.raises(InjectedFault):
            table.update_rids([(i, (i, 700 + i, "bu")) for i in range(4)])
        assert dict(table._rows) == before
        result = check_table(table)
        assert result.ok, result.summary()

    def test_secondary_btree_update_restores_entry_on_insert_fault(self):
        db = make_hybrid_db()
        table = db.table("t")
        # Fault the re-insert half of a key-changing secondary update; the
        # deleted old entry must be put back before the fault surfaces.
        db.fault_injector.arm("btree.insert", on_hit=1)
        with pytest.raises(InjectedFault):
            table.update_rid(3, (3, 444, "kk"))
        ix = table.secondary_indexes["ix_b"]
        assert any(rid == 3 for rid, _ in ix.seek_range((3,), (3,)))
        assert check_table(table).ok

    def test_executor_rollback_surfaces_metrics(self):
        from repro.engine.executor import Executor

        db = make_hybrid_db()
        executor = Executor(db)
        db.fault_injector.arm("csi.delete", on_hit=1)
        with pytest.raises(InjectedFault):
            executor.execute("DELETE FROM t WHERE a = 5")
        assert check_database(db).ok
        assert executor.execute("SELECT count(*) FROM t").scalar() == 200


# ------------------------------------------------- exhaustive fault sweep
def build_csi_primary():
    db = Database()
    table = db.create_table(schema())
    table.bulk_load(base_rows(200))
    table.set_primary_columnstore(rowgroup_size=64)
    table.create_secondary_btree("ix_b", ["b"], included_columns=["s"])
    # Seed the delta store so the tuple mover has work.
    for i in range(40):
        table.insert_row((1000 + i, i % 10, "d"))
    return db


def build_btree_primary():
    db = Database()
    table = db.create_table(schema())
    table.bulk_load(base_rows(200))
    table.set_primary_btree(["a"])
    table.create_secondary_columnstore("csi", rowgroup_size=64)
    table.create_secondary_btree("ix_b", ["b"])
    # Seed delta-store shadows and buffered deletes on the secondary CSI.
    table.update_rids([(i, (i, 500 + i, "sh")) for i in range(3)])
    table.delete_rids([5, 6])
    return db


def build_heap_primary():
    db = Database()
    table = db.create_table(schema())
    table.bulk_load(base_rows(80))
    table.create_secondary_btree("ix_b", ["b"])
    return db


def table_csi(table):
    for index in table.all_indexes:
        if index.kind == "csi":
            return index
    return None


# (name, applies_to_builder, single_statement, op) — ``single_statement``
# marks ops whose whole effect must be all-or-nothing; multi-statement
# ops commit earlier statements, so only consistency is asserted.
def _op_insert(table):
    table.insert_row((9000, 1, "new"))


def _op_insert_burst(table):
    # Enough inserts to push a columnstore delta store over the
    # rowgroup-size threshold mid-burst (tuple move inside a statement).
    for i in range(70):
        table.insert_row((9100 + i, i % 10, "bu"))


def _op_delete(table):
    table.delete_rid(10)


def _op_delete_batch(table):
    table.delete_rids([11, 12, 13])


def _op_update(table):
    table.update_rid(20, (20, 999, "up"))


def _op_update_batch(table):
    table.update_rids([(21, (21, 901, "u1")), (22, (22, 902, "u2")),
                       (23, (23, 903, "u3"))])


def _op_reorganize(table):
    table_csi(table).reorganize()


def _op_rebuild(table):
    table_csi(table).rebuild()


BUILDERS = {
    "csi_primary": build_csi_primary,
    "btree_primary": build_btree_primary,
    "heap_primary": build_heap_primary,
}

OPERATIONS = [
    ("insert", ("csi_primary", "btree_primary", "heap_primary"), True,
     _op_insert),
    ("insert_burst", ("csi_primary", "btree_primary"), False,
     _op_insert_burst),
    ("delete", ("csi_primary", "btree_primary", "heap_primary"), True,
     _op_delete),
    ("delete_batch", ("csi_primary", "btree_primary"), True,
     _op_delete_batch),
    ("update", ("csi_primary", "btree_primary", "heap_primary"), True,
     _op_update),
    ("update_batch", ("csi_primary", "btree_primary"), True,
     _op_update_batch),
    ("reorganize", ("csi_primary", "btree_primary"), True, _op_reorganize),
    ("rebuild", ("csi_primary", "btree_primary"), True, _op_rebuild),
]


def test_exhaustive_fault_sweep():
    """For every injection point each operation reaches, inject on the
    first and last observed hit; every outcome must be fully applied or
    fully rolled back, and the checker must pass."""
    injected_points = set()
    for op_name, designs, single_statement, op in OPERATIONS:
        for design in designs:
            builder = BUILDERS[design]
            # Dry run: discover which points this op hits, and how often.
            dry = builder()
            dry.fault_injector.reset()
            op(dry.table("t"))
            hits = {p: n for p, n in dry.fault_injector.hits.items() if n}
            assert hits, f"{op_name}/{design} hit no injection points"
            for point, n_hits in hits.items():
                for on_hit in sorted({1, min(2, n_hits), n_hits}):
                    db = builder()
                    table = db.table("t")
                    snapshot = dict(table._rows)
                    db.fault_injector.arm(point, on_hit=on_hit)
                    with pytest.raises(InjectedFault):
                        op(table)
                    injected_points.add(point)
                    result = check_database(db)
                    assert result.ok, (
                        f"{op_name}/{design} fault at {point} hit "
                        f"{on_hit}: {result.summary()}")
                    if single_statement:
                        assert dict(table._rows) == snapshot, (
                            f"{op_name}/{design} fault at {point} hit "
                            f"{on_hit}: statement partially applied")
                    # The engine recovered: the same operation succeeds
                    # and leaves everything consistent.
                    op(table)
                    after = check_database(db)
                    assert after.ok, (
                        f"{op_name}/{design} retry after {point}: "
                        f"{after.summary()}")
    assert injected_points == set(INJECTION_POINTS), (
        "sweep never injected: "
        f"{sorted(set(INJECTION_POINTS) - injected_points)}")


def test_probabilistic_chaos_run_stays_consistent():
    """Chaos flavour: every point armed with a seeded coin; interleaved
    DML with rollbacks must keep every index consistent throughout."""
    db = build_btree_primary()
    table = db.table("t")
    for seed, point in enumerate(INJECTION_POINTS):
        db.fault_injector.arm_probabilistic(point, 0.10, seed=seed)
    next_a = 20_000
    for step in range(60):
        try:
            if step % 4 == 0:
                table.insert_row((next_a + step, step % 10, "ch"))
            elif step % 4 == 1:
                rids = sorted(table._rows)
                table.update_rid(rids[step % len(rids)],
                                 (30_000 + step, step % 10, "cu"))
            elif step % 4 == 2:
                rids = sorted(table._rows)
                table.delete_rid(rids[step % len(rids)])
            else:
                table_csi(table).reorganize()
        except InjectedFault:
            pass
        result = check_table(table)
        assert result.ok, f"step {step}: {result.summary()}"
    assert db.fault_injector.total_injected > 0
