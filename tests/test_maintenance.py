"""Tests for maintenance operations: columnstore REBUILD/REORGANIZE,
fragmentation tracking, and automatic statistics refresh."""

import pytest

from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.batch import concat_batches
from repro.engine.executor import Executor
from repro.engine.metrics import ExecutionContext
from repro.optimizer.catalog import Catalog
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.database import Database


def schema():
    return TableSchema("t", [Column("a", INT, nullable=False),
                             Column("b", INT)])


def build_csi(n=4000, rowgroup=512, is_primary=True):
    rows = [(i, (i, i % 7)) for i in range(n)]
    return ColumnstoreIndex.build("csi", schema(), rows,
                                  is_primary=is_primary,
                                  rowgroup_size=rowgroup)


def scan_values(index):
    merged = concat_batches(index.scan(["a"]))
    return sorted(merged.column("a").tolist())


class TestRebuild:
    def test_rebuild_drops_deleted_rows(self):
        index = build_csi()
        index.delete_many(range(100))
        assert index.fragmentation > 0
        index.rebuild()
        assert index.fragmentation == 0.0
        assert index.n_rows == 3900
        assert scan_values(index) == list(range(100, 4000))

    def test_rebuild_drains_delta_store(self):
        index = build_csi(n=1000, rowgroup=512)
        for i in range(50):
            index.insert(10_000 + i, (10_000 + i, 0))
        assert index.delta_rows > 0
        index.rebuild()
        assert index.delta_rows == 0
        assert index.n_rows == 1050

    def test_rebuild_folds_delete_buffer(self):
        index = build_csi(is_primary=False)
        index.delete_many(range(10))
        assert index.delete_buffer_rows == 10
        index.rebuild()
        assert index.delete_buffer_rows == 0
        assert index.n_rows == 3990

    def test_rebuild_refills_rowgroups(self):
        index = build_csi(n=4096, rowgroup=512)
        # Delete half the rows: groups become half-empty.
        index.delete_many(range(0, 4096, 2))
        groups_before = index.n_rowgroups
        index.rebuild()
        assert index.n_rowgroups < groups_before
        assert index.n_rows == 2048

    def test_rebuild_charges_compression_cost(self):
        index = build_csi(n=2000)
        ctx = ExecutionContext()
        index.rebuild(ctx)
        assert ctx.metrics.cpu_ms > 0
        assert ctx.metrics.data_written_mb > 0

    def test_rebuild_preserves_update_roundtrip(self):
        index = build_csi(n=1000, rowgroup=256)
        index.update(5, (5, 5), (5, 999))
        index.rebuild()
        merged = concat_batches(index.scan(["a", "b"]))
        rows = dict(zip(merged.column("a").tolist(),
                        merged.column("b").tolist()))
        assert rows[5] == 999

    def test_scan_cheaper_after_rebuild_of_dirty_secondary(self):
        index = build_csi(is_primary=False)
        index.delete_many(range(500))
        ctx_dirty = ExecutionContext()
        list(index.scan(["a"], ctx_dirty))
        index.rebuild()
        ctx_clean = ExecutionContext()
        list(index.scan(["a"], ctx_clean))
        # No anti-semi join and fewer live rows after the rebuild.
        assert ctx_clean.metrics.cpu_ms < ctx_dirty.metrics.cpu_ms


class TestReorganize:
    def test_reorganize_moves_delta_and_compacts_buffer(self):
        index = build_csi(n=1000, rowgroup=512, is_primary=False)
        for i in range(20):
            index.insert(5_000 + i, (5_000 + i, 1))
        index.delete_many(range(5))
        index.reorganize()
        assert index.delta_rows == 0
        assert index.delete_buffer_rows == 0
        assert index.n_rows == 1015

    def test_reorganize_keeps_dead_slots(self):
        # REORGANIZE does not rewrite compressed groups; fragmentation
        # from bitmap deletes remains until REBUILD.
        index = build_csi(n=1000, rowgroup=512, is_primary=True)
        index.delete_many(range(100))
        index.reorganize()
        assert index.fragmentation > 0


class TestAutoStatsRefresh:
    def make(self):
        db = Database()
        table = db.create_table(schema())
        table.bulk_load([(i, i % 5) for i in range(2000)])
        table.set_primary_btree(["a"])
        return db, table

    def test_counter_tracks_dml(self):
        db, table = self.make()
        executor = Executor(db)
        base = table.modification_counter
        executor.execute("INSERT INTO t VALUES (99999, 1)")
        executor.execute("UPDATE TOP (5) t SET b = 9 WHERE a < 100")
        executor.execute("DELETE FROM t WHERE a = 3")
        assert table.modification_counter == base + 7

    def test_stats_refresh_after_churn(self):
        db, table = self.make()
        catalog = Catalog(db)
        before = catalog.stats("t")
        # Modify more than the staleness threshold (max(500, 20%)).
        executor = Executor(db, catalog=catalog)
        executor.execute("UPDATE t SET b = b + 1 WHERE a >= 0")
        after = catalog.stats("t")
        assert after is not before

    def test_stats_stable_under_light_churn(self):
        db, table = self.make()
        catalog = Catalog(db)
        before = catalog.stats("t")
        executor = Executor(db, catalog=catalog)
        executor.execute("UPDATE TOP (10) t SET b = 9 WHERE a < 100")
        assert catalog.stats("t") is before
