"""Tests for columnstore compression: RLE, dictionary, sort selection."""

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.storage.compression import (
    ColumnSegment,
    Dictionary,
    choose_sort_order,
    compress_rowgroup,
    count_runs,
    encode_segment,
    rle_runs,
)


class TestRleRuns:
    def test_empty(self):
        values, lengths = rle_runs(np.array([], dtype=np.int64))
        assert len(values) == 0 and len(lengths) == 0

    def test_single_run(self):
        values, lengths = rle_runs(np.array([5, 5, 5, 5]))
        assert values.tolist() == [5]
        assert lengths.tolist() == [4]

    def test_alternating(self):
        values, lengths = rle_runs(np.array([1, 2, 1, 2]))
        assert values.tolist() == [1, 2, 1, 2]
        assert lengths.tolist() == [1, 1, 1, 1]

    def test_paper_figure8_example(self):
        # Figure 8(d): column A sorted by <B, A> has runs (0,1),(1,1),(3,4).
        col_a = np.array([0, 1, 3, 3, 3, 3])
        values, lengths = rle_runs(col_a)
        assert values.tolist() == [0, 1, 3]
        assert lengths.tolist() == [1, 1, 4]

    def test_object_dtype(self):
        arr = np.array(["a", "a", "b"], dtype=object)
        values, lengths = rle_runs(arr)
        assert list(values) == ["a", "b"]
        assert lengths.tolist() == [2, 1]

    def test_reconstruction(self):
        rng = np.random.default_rng(0)
        arr = rng.integers(0, 5, size=1000)
        values, lengths = rle_runs(arr)
        assert np.array_equal(np.repeat(values, lengths), arr)

    def test_count_runs_matches(self):
        rng = np.random.default_rng(1)
        arr = np.sort(rng.integers(0, 50, size=500))
        values, _ = rle_runs(arr)
        assert count_runs(arr) == len(values)

    def test_count_runs_empty(self):
        assert count_runs(np.array([], dtype=np.int64)) == 0


class TestDictionary:
    def test_roundtrip(self):
        raw = np.array(["cherry", "apple", "banana", "apple"], dtype=object)
        d = Dictionary.build(raw)
        codes = d.encode(raw)
        assert np.array_equal(d.decode(codes), raw)
        assert len(d) == 3

    def test_size_bytes_counts_strings(self):
        d = Dictionary.build(np.array(["aa", "bbbb"], dtype=object))
        assert d.size_bytes() == (2 + 4) + (4 + 4)


class TestEncodeSegment:
    def test_constant_column_uses_rle(self):
        seg = encode_segment("c", np.full(10000, 7, dtype=np.int64), 4)
        assert seg.encoding == "rle"
        assert seg.size_bytes < 100
        assert np.array_equal(seg.decode(), np.full(10000, 7))

    def test_sorted_low_cardinality_uses_rle(self):
        arr = np.sort(np.random.default_rng(2).integers(0, 25, size=5000))
        seg = encode_segment("c", arr, 4)
        assert seg.encoding == "rle"
        assert np.array_equal(seg.decode(), arr)

    def test_random_high_cardinality_avoids_rle(self):
        arr = np.random.default_rng(3).permutation(100000).astype(np.int64)
        seg = encode_segment("c", arr, 4)
        assert seg.encoding in ("bitpack", "raw")
        assert np.array_equal(seg.decode(), arr)

    def test_min_max_recorded(self):
        seg = encode_segment("c", np.array([3, 9, 1, 7]), 4)
        assert seg.min_value == 1
        assert seg.max_value == 9

    def test_overlaps(self):
        seg = encode_segment("c", np.array([10, 20, 30]), 4)
        assert seg.overlaps(5, 15)
        assert seg.overlaps(None, 10)
        assert seg.overlaps(30, None)
        assert not seg.overlaps(31, None)
        assert not seg.overlaps(None, 9)
        assert seg.overlaps(None, None)

    def test_string_column_requires_dictionary(self):
        arr = np.array(["x", "y"], dtype=object)
        with pytest.raises(StorageError):
            encode_segment("c", arr, 8, dictionary=None)

    def test_string_column_with_dictionary(self):
        arr = np.array(["x", "y", "x", "x"], dtype=object)
        seg = encode_segment("c", arr, 8, Dictionary.build(arr))
        assert list(seg.decode()) == ["x", "y", "x", "x"]

    def test_empty_segment_rejected(self):
        with pytest.raises(StorageError):
            encode_segment("c", np.array([], dtype=np.int64), 4)

    def test_low_cardinality_smaller_than_high(self):
        rng = np.random.default_rng(4)
        low = encode_segment("c", rng.integers(0, 4, size=10000), 4)
        high = encode_segment("c", rng.integers(0, 2**30, size=10000), 4)
        assert low.size_bytes < high.size_bytes


class TestChooseSortOrder:
    def test_fewest_distinct_first(self):
        rng = np.random.default_rng(5)
        columns = {
            "many": rng.integers(0, 1000, size=2000),
            "few": rng.integers(0, 3, size=2000),
            "mid": rng.integers(0, 40, size=2000),
        }
        assert choose_sort_order(columns) == ["few", "mid", "many"]

    def test_tie_broken_by_name(self):
        columns = {
            "b": np.array([1, 2, 1, 2]),
            "a": np.array([5, 6, 5, 6]),
        }
        assert choose_sort_order(columns) == ["a", "b"]


class TestCompressRowGroup:
    def schema(self):
        return TableSchema("t", [
            Column("a", INT), Column("b", INT), Column("s", varchar(8)),
        ])

    def test_sorting_improves_compression(self):
        rng = np.random.default_rng(6)
        n = 20000
        columns = {
            "a": rng.integers(0, 8, size=n),
            "b": rng.integers(0, 100, size=n),
            "s": np.array(rng.choice(["x", "y", "z"], size=n), dtype=object),
        }
        rids = np.arange(n)
        sorted_group = compress_rowgroup(self.schema(), dict(columns), rids.copy())
        raw_group = compress_rowgroup(
            self.schema(), dict(columns), rids.copy(), presorted=True)
        assert sorted_group.size_bytes() < raw_group.size_bytes()

    def test_rids_permuted_with_rows(self):
        n = 1000
        rng = np.random.default_rng(7)
        a = rng.integers(0, 5, size=n)
        rids = np.arange(n)
        group = compress_rowgroup(
            TableSchema("t", [Column("a", INT)]), {"a": a}, rids)
        decoded = group.column("a").decode()
        # Each stored position's rid must map back to the original value.
        for pos in range(0, n, 97):
            original_rid = group.rids[pos]
            assert decoded[pos] == a[original_rid]

    def test_presorted_preserves_order(self):
        a = np.arange(1000)
        group = compress_rowgroup(
            TableSchema("t", [Column("a", INT)]),
            {"a": a}, np.arange(1000), presorted=True)
        assert np.array_equal(group.column("a").decode(), a)
        assert group.sort_order == []

    def test_length_mismatch_rejected(self):
        with pytest.raises(StorageError):
            compress_rowgroup(
                TableSchema("t", [Column("a", INT), Column("b", INT)]),
                {"a": np.arange(5), "b": np.arange(6)}, np.arange(5))

    def test_size_bytes_is_sum_of_segments(self):
        group = compress_rowgroup(
            self.schema(),
            {"a": np.arange(100), "b": np.arange(100),
             "s": np.array(["q"] * 100, dtype=object)},
            np.arange(100))
        assert group.size_bytes() == sum(
            s.size_bytes for s in group.segments.values())
