"""Tests for the columnstore index: row groups, delta store, deletes,
segment elimination, and the primary/secondary behavioural split."""

import numpy as np
import pytest

from repro.core.errors import StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import INT, varchar
from repro.engine.batch import concat_batches
from repro.engine.metrics import ExecutionContext
from repro.storage.columnstore import RID_COLUMN, ColumnstoreIndex


def schema_ab():
    return TableSchema("t", [Column("a", INT, nullable=False), Column("b", INT)])


def make_rows(n, modulo=10):
    return [(i, (i, i % modulo)) for i in range(n)]


def build_csi(n=5000, rowgroup_size=1000, is_primary=True, presorted=False):
    return ColumnstoreIndex.build(
        "csi", schema_ab(), make_rows(n), is_primary=is_primary,
        rowgroup_size=rowgroup_size, presorted=presorted,
    )


def scan_all(index, columns=("a",), **kwargs):
    batches = list(index.scan(list(columns), **kwargs))
    return concat_batches(batches)


class TestBuild:
    def test_rowgroup_partitioning(self):
        index = build_csi(n=5000, rowgroup_size=1000)
        assert index.n_rowgroups == 5
        assert index.n_rows == 5000
        assert index.delta_rows == 0

    def test_partial_last_group(self):
        index = build_csi(n=2500, rowgroup_size=1000)
        assert index.n_rowgroups == 3

    def test_scan_returns_all_values(self):
        index = build_csi(n=3000, rowgroup_size=1000)
        merged = scan_all(index, ["a"])
        assert sorted(merged.column("a").tolist()) == list(range(3000))

    def test_primary_requires_all_columns(self):
        with pytest.raises(StorageError):
            ColumnstoreIndex("csi", schema_ab(), columns=["a"], is_primary=True)

    def test_unsupported_type_rejected(self):
        from repro.core.types import XML
        schema = TableSchema("t", [Column("a", INT), Column("x", XML)])
        with pytest.raises(StorageError):
            ColumnstoreIndex("csi", schema, columns=["a", "x"])

    def test_secondary_subset_allowed(self):
        index = ColumnstoreIndex.build(
            "csi", schema_ab(), make_rows(100), columns=["b"],
            is_primary=False, rowgroup_size=64)
        assert index.columns == ["b"]

    def test_scan_unknown_column_rejected(self):
        index = build_csi(n=100, rowgroup_size=64)
        with pytest.raises(StorageError):
            list(index.scan(["zzz"]))

    def test_tiny_rowgroup_size_rejected(self):
        with pytest.raises(StorageError):
            ColumnstoreIndex("csi", schema_ab(), rowgroup_size=10)


class TestSegmentElimination:
    def test_sorted_build_gives_disjoint_ranges(self):
        index = build_csi(n=4000, rowgroup_size=1000, presorted=True)
        ranges = index.segment_ranges("a")
        for (lo1, hi1), (lo2, _) in zip(ranges, ranges[1:]):
            assert hi1 < lo2

    def test_elimination_skips_segments(self):
        index = build_csi(n=4000, rowgroup_size=1000, presorted=True)
        ctx = ExecutionContext()
        merged = scan_all(index, ["a"], ctx=ctx,
                          elimination_ranges={"a": (0, 500)})
        assert ctx.metrics.segments_skipped == 3
        assert ctx.metrics.segments_read == 1
        # Elimination is conservative: all qualifying values survive.
        assert set(range(501)) <= set(merged.column("a").tolist())

    def test_unsorted_build_cannot_skip(self):
        # Random order means every segment spans nearly the full domain.
        rng = np.random.default_rng(0)
        perm = rng.permutation(4000)
        rows = [(i, (int(perm[i]), i % 5)) for i in range(4000)]
        index = ColumnstoreIndex.build(
            "csi", schema_ab(), rows, is_primary=True, rowgroup_size=1000)
        ctx = ExecutionContext()
        scan_all(index, ["a"], ctx=ctx, elimination_ranges={"a": (0, 10)})
        assert ctx.metrics.segments_skipped == 0

    def test_cold_scan_charges_only_needed_columns(self):
        index = build_csi(n=20000, rowgroup_size=4000)
        ctx_one = ExecutionContext(cold=True)
        scan_all(index, ["a"], ctx=ctx_one)
        ctx_two = ExecutionContext(cold=True)
        scan_all(index, ["a", "b"], ctx=ctx_two)
        assert ctx_two.metrics.data_read_mb > ctx_one.metrics.data_read_mb


class TestDeltaStore:
    def test_insert_goes_to_delta(self):
        index = build_csi(n=1000, rowgroup_size=1000)
        index.insert(5000, (5000, 1))
        assert index.delta_rows == 1
        merged = scan_all(index, ["a"])
        assert 5000 in merged.column("a").tolist()

    def test_tuple_mover_compresses_at_threshold(self):
        index = ColumnstoreIndex("csi", schema_ab(), is_primary=True,
                                 rowgroup_size=64)
        for i in range(64):
            index.insert(i, (i, i))
        assert index.delta_rows == 0
        assert index.n_rowgroups == 1

    def test_explicit_move_tuples(self):
        index = build_csi(n=1000, rowgroup_size=1000)
        for i in range(10):
            index.insert(2000 + i, (2000 + i, 0))
        index.move_tuples()
        assert index.delta_rows == 0
        assert index.n_rowgroups == 2
        assert index.n_rows == 1010

    def test_duplicate_rid_rejected(self):
        index = build_csi(n=100, rowgroup_size=64)
        with pytest.raises(StorageError):
            index.insert(0, (0, 0))


class TestDeletes:
    def test_primary_delete_uses_bitmap(self):
        index = build_csi(n=1000, rowgroup_size=500, is_primary=True)
        index.delete(3, (3, 3))
        assert index.n_rows == 999
        assert index.delete_buffer_rows == 0
        merged = scan_all(index, ["a"])
        assert 3 not in merged.column("a").tolist()

    def test_secondary_delete_uses_buffer(self):
        index = build_csi(n=1000, rowgroup_size=500, is_primary=False)
        index.delete(3, (3, 3))
        assert index.delete_buffer_rows == 1
        merged = scan_all(index, ["a"])
        assert 3 not in merged.column("a").tolist()

    def test_compact_delete_buffer(self):
        index = build_csi(n=1000, rowgroup_size=500, is_primary=False)
        index.delete_many(range(10))
        index.compact_delete_buffer()
        assert index.delete_buffer_rows == 0
        merged = scan_all(index, ["a"])
        assert set(merged.column("a").tolist()) == set(range(10, 1000))

    def test_primary_small_delete_more_expensive_than_secondary(self):
        primary = build_csi(n=20000, rowgroup_size=4000, is_primary=True)
        secondary = build_csi(n=20000, rowgroup_size=4000, is_primary=False)
        ctx_p = ExecutionContext()
        primary.delete_many([1, 2, 3], ctx_p)
        ctx_s = ExecutionContext()
        secondary.delete_many([1, 2, 3], ctx_s)
        assert ctx_p.metrics.cpu_ms > ctx_s.metrics.cpu_ms * 3

    def test_delete_from_delta(self):
        index = build_csi(n=1000, rowgroup_size=1000)
        index.insert(5000, (5000, 0))
        index.delete(5000, (5000, 0))
        assert index.delta_rows == 0
        assert index.n_rows == 1000

    def test_double_delete_rejected(self):
        index = build_csi(n=100, rowgroup_size=64, is_primary=True)
        index.delete(1, (1, 1))
        with pytest.raises(StorageError):
            index.delete(1, (1, 1))

    def test_secondary_double_delete_rejected(self):
        # Regression: the buffered delete only reached the bitmap at
        # compaction, so a second delete of the same compressed rid used
        # to slip past the deleted_mask check and silently succeed.
        index = build_csi(n=100, rowgroup_size=64, is_primary=False)
        index.delete(1, (1, 1))
        with pytest.raises(StorageError, match="already deleted"):
            index.delete(1, (1, 1))

    def test_secondary_n_rows_subtracts_buffered_deletes(self):
        # Regression: n_rows ignored the delete buffer until compaction,
        # overcounting live rows on a secondary CSI.
        index = build_csi(n=1000, rowgroup_size=500, is_primary=False)
        index.delete_many(range(10))
        assert index.n_rows == 990
        index.compact_delete_buffer()
        assert index.n_rows == 990

    def test_secondary_n_rows_after_update_of_compressed_rid(self):
        # An updated compressed rid is masked by the delete buffer while
        # its new version lives in the delta store: still one live row.
        index = build_csi(n=1000, rowgroup_size=500, is_primary=False)
        index.update(3, (3, 3), (3, 99))
        assert index.n_rows == 1000

    def test_unknown_rid_rejected(self):
        index = build_csi(n=100, rowgroup_size=64)
        with pytest.raises(StorageError):
            index.delete(99999, (0, 0))

    def test_secondary_scan_pays_anti_semi_join(self):
        index = build_csi(n=20000, rowgroup_size=4000, is_primary=False)
        ctx_clean = ExecutionContext()
        scan_all(index, ["a"], ctx=ctx_clean)
        index.delete_many(range(5))
        ctx_dirty = ExecutionContext()
        scan_all(index, ["a"], ctx=ctx_dirty)
        assert ctx_dirty.metrics.cpu_ms > ctx_clean.metrics.cpu_ms


class TestUpdates:
    def test_update_is_delete_plus_insert(self):
        index = build_csi(n=1000, rowgroup_size=500, is_primary=True)
        index.update(3, (3, 3), (3, 99))
        merged = scan_all(index, ["a", "b"])
        rows = list(zip(merged.column("a").tolist(), merged.column("b").tolist()))
        assert (3, 99) in rows
        assert (3, 3) not in rows
        assert index.n_rows == 1000

    def test_secondary_update_keeps_single_visible_version(self):
        index = build_csi(n=1000, rowgroup_size=500, is_primary=False)
        index.update(3, (3, 3), (3, 99))
        merged = scan_all(index, ["a", "b"])
        rows = list(zip(merged.column("a").tolist(), merged.column("b").tolist()))
        assert rows.count((3, 99)) == 1
        assert (3, 3) not in rows

    def test_update_many_amortises_primary_scans(self):
        rows = list(range(100, 120))
        index_batch = build_csi(n=20000, rowgroup_size=4000, is_primary=True)
        ctx_batch = ExecutionContext()
        index_batch.update_many(
            [(r, (r, r % 10), (r, 777)) for r in rows], ctx_batch)
        index_single = build_csi(n=20000, rowgroup_size=4000, is_primary=True)
        ctx_single = ExecutionContext()
        for r in rows:
            index_single.update(r, (r, r % 10), (r, 777), ctx_single)
        # update_many touches each affected group once; per-row updates
        # re-scan the group for every row.
        assert ctx_batch.metrics.cpu_ms < ctx_single.metrics.cpu_ms / 2


class TestSizing:
    def test_column_sizes_sum_close_to_total(self):
        index = build_csi(n=5000, rowgroup_size=1000)
        sizes = index.column_sizes()
        assert set(sizes) == {"a", "b"}
        assert abs(sum(sizes.values()) - index.size_bytes()) < 1024

    def test_low_cardinality_column_compresses_smaller(self):
        # b = i % 10 (low cardinality) compresses far better than a = i.
        sizes = build_csi(n=20000, rowgroup_size=4000).column_sizes()
        assert sizes["b"] < sizes["a"]

    def test_rid_scan_includes_rid_column(self):
        index = build_csi(n=200, rowgroup_size=64)
        merged = scan_all(index, ["a"], include_rids=True)
        assert RID_COLUMN in merged.columns
        assert sorted(merged.column(RID_COLUMN).tolist()) == list(range(200))


class TestCompactionCharging:
    def test_empty_buffer_compaction_is_free(self):
        index = build_csi(n=1000, rowgroup_size=500, is_primary=False)
        ctx = ExecutionContext()
        index.compact_delete_buffer(ctx)
        assert ctx.metrics.cpu_ms == 0.0

    def test_compaction_charge_proportional_to_folded_rids(self):
        small = build_csi(n=1000, rowgroup_size=500, is_primary=False)
        small.delete_many(range(5))
        ctx_small = ExecutionContext()
        small.compact_delete_buffer(ctx_small)
        big = build_csi(n=1000, rowgroup_size=500, is_primary=False)
        big.delete_many(range(50))
        ctx_big = ExecutionContext()
        big.compact_delete_buffer(ctx_big)
        assert ctx_small.metrics.cpu_ms > 0.0
        assert ctx_big.metrics.cpu_ms > ctx_small.metrics.cpu_ms * 5


class TestShadowTupleMove:
    def test_buffered_shadow_survives_tuple_move(self):
        # Regression: compressing the delta store while a buffered delete
        # still masked the old compressed copy of an updated rid used to
        # lose the new version (the mover dropped delta rids that already
        # had a locator entry).
        index = build_csi(n=100, rowgroup_size=64, is_primary=False)
        index.update(3, (3, 3), (3, 99))
        # Fill the delta store past the rowgroup threshold so insert()
        # triggers the tuple mover with the shadow still pending.
        for i in range(64):
            index.insert(1000 + i, (1000 + i, 0))
        merged = scan_all(index, ["a", "b"])
        rows = list(zip(merged.column("a").tolist(),
                        merged.column("b").tolist()))
        assert rows.count((3, 99)) == 1
        assert (3, 3) not in rows
        assert index.n_rows == 164
        index.compact_delete_buffer()
        merged = scan_all(index, ["a", "b"])
        rows = list(zip(merged.column("a").tolist(),
                        merged.column("b").tolist()))
        assert rows.count((3, 99)) == 1
