"""Fragmentation audit: walk a columnstore through its full DML
lifecycle — inserts landing in the delta store, the tuple mover
compressing them, deletes buffering then folding into delete bitmaps,
and a final rebuild — and at every stage reconcile what
``dm_db_column_store_row_group_physical_stats`` reports against the
index's real state and the CHECKDB-style consistency checker.
"""

from repro.core.schema import Column, TableSchema
from repro.core.types import INT
from repro.engine.dmv import build_view
from repro.engine.executor import Executor
from repro.storage.checker import check_table
from repro.storage.database import Database

ROWGROUP = 512


def build_database(n_rows: int = 2048) -> Database:
    database = Database()
    events = database.create_table(TableSchema("events", [
        Column("e_id", INT, nullable=False),
        Column("e_kind", INT, nullable=False),
        Column("e_val", INT),
    ]))
    events.bulk_load([(i, i % 7, i * 11) for i in range(n_rows)])
    events.set_primary_btree(["e_id"])
    events.create_secondary_columnstore("csi_events",
                                        rowgroup_size=ROWGROUP)
    return database


def view_rows(database, index_name):
    """Rowgroup view rows for one index, via the materializer."""
    table = build_view("dm_db_column_store_row_group_physical_stats",
                       database)
    return [row for _, row in table.iter_rows() if row[1] == index_name]


def audit(database, index_name="csi_events", table_name="events"):
    """Assert the view is a faithful physical audit of the index."""
    table = database.table(table_name)
    csi = table.index_by_name(index_name)
    rows = view_rows(database, index_name)
    compressed = [r for r in rows if r[3] == "COMPRESSED"]
    open_rows = [r for r in rows if r[3] == "OPEN"]

    assert len(compressed) == csi.n_rowgroups
    for ordinal, row in enumerate(compressed):
        state = csi._groups[ordinal]
        assert row[2] == ordinal
        assert row[4] == state.group.n_rows
        assert row[5] == state.n_deleted
        assert row[6] == max(0, ROWGROUP - state.group.n_rows)  # trimmed
        assert row[7] == state.group.size_bytes()
        assert row[8] == csi.delta_rows
        assert row[9] == csi.delete_buffer_rows
        assert float(row[10]) == round(csi.fragmentation, 6)
    # The delta store surfaces as exactly one OPEN rowgroup when non-empty.
    assert len(open_rows) == (1 if csi.delta_rows else 0)
    if open_rows:
        assert open_rows[0][2] == csi.n_rowgroups
        assert open_rows[0][4] == csi.delta_rows

    check = check_table(table)
    assert check.ok, check.summary()
    return csi, compressed


class TestLifecycleAudit:
    def test_full_dml_lifecycle(self):
        database = build_database()
        executor = Executor(database)
        events = database.table("events")
        csi = events.index_by_name("csi_events")
        groups_before = csi.n_rowgroups

        # Stage 1: inserts land in the delta store (OPEN rowgroup).
        executor.execute(
            "INSERT INTO events VALUES (100001, 1, 5), (100002, 2, 6), "
            "(100003, 3, 7)")
        assert csi.delta_rows == 3
        audit(database)

        # Stage 2: the tuple mover compresses the delta store.
        csi.move_tuples()
        assert csi.delta_rows == 0
        assert csi.n_rowgroups == groups_before + 1
        audit(database)

        # Stage 3: deletes buffer on a secondary CSI; fragmentation
        # rises before any bitmap is touched.
        executor.execute("DELETE TOP (60) FROM events WHERE e_kind = 2")
        assert csi.delete_buffer_rows == 60
        frag_buffered = csi.fragmentation
        assert frag_buffered > 0
        audit(database)

        # Stage 4: compaction folds the buffer into delete bitmaps;
        # fragmentation is unchanged (dead is dead, wherever recorded).
        csi.compact_delete_buffer()
        assert csi.delete_buffer_rows == 0
        csi2, compressed = audit(database)
        assert sum(r[5] for r in compressed) == 60
        assert abs(csi.fragmentation - frag_buffered) < 1e-12

        # Stage 5: rebuild drops the dead rows for good.
        usage_before = (csi.usage.user_scans, csi.usage.user_updates)
        csi.rebuild()
        assert csi.fragmentation == 0.0
        _, compressed = audit(database)
        assert sum(r[5] for r in compressed) == 0
        live = sum(r[4] for r in compressed)
        assert live == events.row_count
        # Usage counters survive the rebuild (SQL Server 2016 SP2+).
        assert (csi.usage.user_scans, csi.usage.user_updates) == usage_before

    def test_update_lifecycle_shadows_then_reorganize(self):
        database = build_database()
        executor = Executor(database)
        events = database.table("events")
        csi = events.index_by_name("csi_events")

        # Updates of compressed rows on a secondary CSI buffer a delete
        # of the old copy and insert the new one into the delta store.
        executor.execute("UPDATE TOP (40) events SET e_val += 1 "
                         "WHERE e_kind = 5")
        assert csi.delta_rows == 40
        assert csi.delete_buffer_rows == 40
        audit(database)

        # REORGANIZE = tuple-move + compaction in one maintenance pass.
        csi.reorganize()
        assert csi.delta_rows == 0
        assert csi.delete_buffer_rows == 0
        audit(database)

    def test_primary_columnstore_lifecycle(self):
        database = Database()
        events = database.create_table(TableSchema("events", [
            Column("e_id", INT, nullable=False),
            Column("e_kind", INT, nullable=False),
            Column("e_val", INT),
        ]))
        events.bulk_load([(i, i % 5, i) for i in range(2000)])
        events.set_primary_columnstore(rowgroup_size=ROWGROUP)
        executor = Executor(database)

        executor.execute("DELETE TOP (30) FROM events WHERE e_kind = 1")
        executor.execute(
            "INSERT INTO events VALUES (5001, 1, 9), (5002, 2, 8)")
        csi = events.primary
        # Primary CSI deletes go straight to the bitmaps (no buffer).
        assert csi.delete_buffer_rows == 0
        assert csi.delta_rows == 2
        audit(database, index_name=csi.name)

        csi.rebuild()
        assert csi.fragmentation == 0.0
        audit(database, index_name=csi.name)

    def test_audit_matches_through_repeated_churn(self):
        database = build_database(4096)
        executor = Executor(database)
        events = database.table("events")
        csi = events.index_by_name("csi_events")
        next_id = 200_000
        for round_no in range(4):
            executor.execute(
                f"INSERT INTO events VALUES ({next_id}, 1, 1), "
                f"({next_id + 1}, 2, 2)")
            next_id += 2
            executor.execute(
                f"DELETE TOP (35) FROM events WHERE e_kind = {round_no}")
            executor.execute(
                "UPDATE TOP (25) events SET e_val += 1 "
                f"WHERE e_kind = {round_no + 1}")
            audit(database)
            if round_no == 1:
                csi.move_tuples()
                audit(database)
            if round_no == 2:
                csi.compact_delete_buffer()
                audit(database)
        csi.rebuild()
        audit(database)
