"""Tokenizer for the SQL subset.

Produces a flat token list consumed by the recursive-descent parser.
Supported lexemes: identifiers (optionally ``schema.column`` qualified via
separate DOT tokens), integer/float literals, single-quoted strings with
``''`` escaping, operators, parentheses, commas, and ``?`` parameter
markers. Keywords are case-insensitive; identifiers preserve case but
compare case-sensitively against the catalog (all generated workloads use
lowercase).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.core.errors import SqlError

KEYWORDS = {
    "select", "from", "where", "group", "order", "by", "having",
    "and", "or", "not", "between", "in", "as", "asc", "desc",
    "join", "inner", "on", "top", "limit", "insert", "into", "values",
    "update", "set", "delete", "sum", "count", "avg", "min", "max",
    "date", "dateadd", "day", "null", "distinct",
}

# Token types
IDENT = "IDENT"
KEYWORD = "KEYWORD"
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"
LPAREN = "LPAREN"
RPAREN = "RPAREN"
COMMA = "COMMA"
DOT = "DOT"
STAR = "STAR"
PARAM = "PARAM"
EOF = "EOF"

_OPERATORS = ("<=", ">=", "!=", "<>", "=", "<", ">", "+", "-", "/", "*")


@dataclass(frozen=True)
class Token:
    """One lexed token: type, value, and source position."""
    type: str
    value: object
    position: int

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}@{self.position})"


def tokenize(sql: str) -> List[Token]:
    """Tokenize ``sql``; raises :class:`SqlError` on unknown characters."""
    tokens: List[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if ch == "-" and i + 1 < n and sql[i + 1] == "-":
            # Line comment.
            while i < n and sql[i] != "\n":
                i += 1
            continue
        if ch == "(":
            tokens.append(Token(LPAREN, "(", i))
            i += 1
            continue
        if ch == ")":
            tokens.append(Token(RPAREN, ")", i))
            i += 1
            continue
        if ch == ",":
            tokens.append(Token(COMMA, ",", i))
            i += 1
            continue
        if ch == "?":
            tokens.append(Token(PARAM, "?", i))
            i += 1
            continue
        if ch == "'":
            value, i = _read_string(sql, i)
            tokens.append(Token(STRING, value, i))
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            value, i = _read_number(sql, i)
            tokens.append(Token(NUMBER, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            lowered = word.lower()
            if lowered in KEYWORDS:
                tokens.append(Token(KEYWORD, lowered, start))
            else:
                tokens.append(Token(IDENT, word, start))
            continue
        if ch == ".":
            tokens.append(Token(DOT, ".", i))
            i += 1
            continue
        matched = False
        for op in _OPERATORS:
            if sql.startswith(op, i):
                if op == "*":
                    tokens.append(Token(STAR, "*", i))
                elif op == "<>":
                    tokens.append(Token(OP, "!=", i))
                else:
                    tokens.append(Token(OP, op, i))
                i += len(op)
                matched = True
                break
        if matched:
            continue
        raise SqlError(f"unexpected character {ch!r} at position {i}")
    tokens.append(Token(EOF, None, n))
    return tokens


def _read_string(sql: str, i: int):
    """Read a single-quoted string starting at ``i``; '' escapes a quote."""
    i += 1
    parts: List[str] = []
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch == "'":
            if i + 1 < n and sql[i + 1] == "'":
                parts.append("'")
                i += 2
                continue
            return "".join(parts), i + 1
        parts.append(ch)
        i += 1
    raise SqlError("unterminated string literal")


def _read_number(sql: str, i: int):
    start = i
    n = len(sql)
    seen_dot = False
    while i < n and (sql[i].isdigit() or (sql[i] == "." and not seen_dot)):
        if sql[i] == ".":
            # A trailing dot followed by a non-digit is a qualifier dot.
            if i + 1 >= n or not sql[i + 1].isdigit():
                break
            seen_dot = True
        i += 1
    text = sql[start:i]
    if seen_dot:
        return float(text), i
    return int(text), i
