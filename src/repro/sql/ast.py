"""Abstract syntax tree for the SQL subset.

Statements reference expressions from :mod:`repro.engine.expressions`
directly (the parser builds engine expressions), with two parse-only
additions defined here: :class:`AggregateCall` (aggregate functions are
not scalar expressions) and :class:`Star` (``SELECT *`` / ``COUNT(*)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.engine.expressions import Expr


@dataclass(frozen=True)
class AggregateCall(Expr):
    """An aggregate function application in a select list."""

    func: str  # sum | count | avg | min | max
    argument: Optional[Expr]  # None for COUNT(*)

    def _collect_columns(self, out: List[str]) -> None:
        if self.argument is not None:
            self.argument._collect_columns(out)

    def __str__(self) -> str:
        arg = "*" if self.argument is None else str(self.argument)
        return f"{self.func}({arg})"


@dataclass(frozen=True)
class Star(Expr):
    """``*`` in a select list."""

    def _collect_columns(self, out: List[str]) -> None:
        pass

    def __str__(self) -> str:
        return "*"


@dataclass
class SelectItem:
    """One select-list entry: an expression and optional alias."""

    expr: Expr
    alias: Optional[str] = None

    def output_name(self, default: str) -> str:
        """Display name: the alias if given, else a default."""
        if self.alias:
            return self.alias
        if hasattr(self.expr, "name"):
            return getattr(self.expr, "name")
        return default


@dataclass
class TableRef:
    """A table in the FROM clause with an optional alias."""

    table: str
    alias: Optional[str] = None

    @property
    def name(self) -> str:
        """The effective name (alias if present)."""
        return self.alias or self.table


@dataclass
class JoinClause:
    """INNER JOIN <table> ON <condition>."""

    table: TableRef
    condition: Expr


@dataclass
class OrderItem:
    """One ORDER BY term: expression and direction."""
    expr: Expr
    descending: bool = False


@dataclass
class SelectStmt:
    """Parsed SELECT statement."""
    items: List[SelectItem]
    from_table: TableRef
    joins: List[JoinClause] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: List[Expr] = field(default_factory=list)
    order_by: List[OrderItem] = field(default_factory=list)
    top: Optional[int] = None
    distinct: bool = False

    @property
    def table_refs(self) -> List[TableRef]:
        """All FROM/JOIN table references, in order."""
        return [self.from_table] + [j.table for j in self.joins]


@dataclass
class Assignment:
    """One SET clause: column name and value expression."""
    column: str
    value: Expr


@dataclass
class UpdateStmt:
    """Parsed UPDATE statement."""
    table: TableRef
    assignments: List[Assignment]
    where: Optional[Expr] = None
    top: Optional[int] = None


@dataclass
class DeleteStmt:
    """Parsed DELETE statement."""
    table: TableRef
    where: Optional[Expr] = None
    top: Optional[int] = None


@dataclass
class InsertStmt:
    """Parsed INSERT statement."""
    table: TableRef
    columns: List[str]  # empty means all columns in schema order
    rows: List[List[Expr]] = field(default_factory=list)


Statement = object  # SelectStmt | UpdateStmt | DeleteStmt | InsertStmt
