"""Binder: resolves parsed statements against a database schema.

Produces *bound* statements in which every column reference is qualified
as ``alias.column``, date-string literals are coerced to the engine's
internal day numbers, ``*`` is expanded, and the select list is split into
group-by columns and aggregate specifications — the form the optimizer
consumes.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.errors import SqlError
from repro.core.types import TypeKind, date_to_int
from repro.engine.expressions import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
    Or,
    conjuncts,
    make_and,
)
from repro.engine.operators.aggregates import AggregateSpec
from repro.sql.ast import (
    AggregateCall,
    DeleteStmt,
    InsertStmt,
    SelectStmt,
    Star,
    UpdateStmt,
)
from repro.storage.database import Database
from repro.storage.table import Table


@dataclass
class BoundTable:
    """One FROM-clause table with its (alias-qualified) name."""

    alias: str
    table: Table


@dataclass
class JoinEdge:
    """An equi-join condition ``left_alias.left_col = right_alias.right_col``."""

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str

    @property
    def left_qualified(self) -> str:
        """``left_alias.left_column`` as one string."""
        return f"{self.left_alias}.{self.left_column}"

    @property
    def right_qualified(self) -> str:
        """``right_alias.right_column`` as one string."""
        return f"{self.right_alias}.{self.right_column}"


@dataclass
class OutputColumn:
    """One result column: its display name and its qualified source —
    either a group/scalar column name or an aggregate output slot."""

    name: str
    source: str  # qualified column name or aggregate output name
    is_aggregate: bool = False


@dataclass
class BoundSelect:
    """A fully-bound SELECT: tables, join edges, predicates, grouping, outputs."""
    tables: List[BoundTable]
    join_edges: List[JoinEdge]
    where: Optional[Expr]
    group_by: List[str]  # qualified column names
    aggregates: List[AggregateSpec]
    outputs: List[OutputColumn]
    order_by: List[Tuple[str, bool]]  # (output or qualified name, descending)
    top: Optional[int]
    distinct: bool = False

    @property
    def is_aggregate(self) -> bool:
        """Whether the query groups or aggregates."""
        return bool(self.aggregates) or bool(self.group_by)

    def table_by_alias(self, alias: str) -> BoundTable:
        """Look up a FROM-clause table by its alias."""
        for bound in self.tables:
            if bound.alias == alias:
                return bound
        raise SqlError(f"unknown table alias {alias!r}")

    def referenced_columns(self, alias: str) -> List[str]:
        """Bare column names of ``alias`` referenced anywhere in the query
        (used by the advisor's candidate selection)."""
        prefix = alias + "."
        names = set()
        exprs: List[Expr] = []
        if self.where is not None:
            exprs.append(self.where)
        for spec in self.aggregates:
            if spec.expr is not None:
                exprs.append(spec.expr)
        for expr in exprs:
            for column in expr.columns():
                if column.startswith(prefix):
                    names.add(column[len(prefix):])
        for qualified in self.group_by:
            if qualified.startswith(prefix):
                names.add(qualified[len(prefix):])
        for out in self.outputs:
            if not out.is_aggregate and out.source.startswith(prefix):
                names.add(out.source[len(prefix):])
        for edge in self.join_edges:
            if edge.left_alias == alias:
                names.add(edge.left_column)
            if edge.right_alias == alias:
                names.add(edge.right_column)
        for name, descending in self.order_by:
            del descending
            if name.startswith(prefix):
                names.add(name[len(prefix):])
        return sorted(names)


@dataclass
class BoundUpdate:
    """A bound UPDATE: target table, assignments, predicate, TOP limit."""
    table: Table
    assignments: List[Tuple[str, Expr]]  # bare column name -> expression
    where: Optional[Expr]
    top: Optional[int]


@dataclass
class BoundDelete:
    """A bound DELETE: target table, predicate, TOP limit."""
    table: Table
    where: Optional[Expr]
    top: Optional[int]


@dataclass
class BoundInsert:
    """A bound INSERT: target table and fully-evaluated rows."""
    table: Table
    rows: List[Tuple[object, ...]]  # fully evaluated, schema order


class _Scope:
    """Alias -> table mapping with unique bare-column resolution."""

    def __init__(self, tables: List[BoundTable]):
        self.tables = tables
        self._by_alias: Dict[str, Table] = {}
        for bound in tables:
            if bound.alias in self._by_alias:
                raise SqlError(f"duplicate table alias {bound.alias!r}")
            self._by_alias[bound.alias] = bound.table

    def resolve(self, name: str) -> Tuple[str, str]:
        """Resolve a (possibly qualified) column name to (alias, column)."""
        if "." in name:
            alias, column = name.split(".", 1)
            table = self._by_alias.get(alias)
            if table is None:
                raise SqlError(f"unknown table alias {alias!r}")
            if column not in table.schema:
                raise SqlError(
                    f"table {alias!r} has no column {column!r}")
            return alias, column
        owners = [
            bound.alias for bound in self.tables
            if name in bound.table.schema
        ]
        if not owners:
            raise SqlError(f"unknown column {name!r}")
        if len(owners) > 1:
            raise SqlError(f"ambiguous column {name!r} (in {owners})")
        return owners[0], name

    def column_type(self, alias: str, column: str):
        """Column type of ``alias.column`` in this scope."""
        return self._by_alias[alias].schema.column(column).col_type


def _qualify_expr(expr: Expr, scope: _Scope) -> Expr:
    """Rewrite column refs to qualified names and coerce date literals."""
    if isinstance(expr, ColumnRef):
        alias, column = scope.resolve(expr.name)
        return ColumnRef(f"{alias}.{column}")
    if isinstance(expr, Literal):
        return expr
    if isinstance(expr, Arithmetic):
        return _fold(Arithmetic(expr.op, _qualify_expr(expr.left, scope),
                                _qualify_expr(expr.right, scope)))
    if isinstance(expr, Comparison):
        left = _qualify_expr(expr.left, scope)
        right = _qualify_expr(expr.right, scope)
        left, right = _coerce_date_pair(left, right, scope)
        return Comparison(expr.op, left, right)
    if isinstance(expr, Between):
        subject = _qualify_expr(expr.subject, scope)
        low = _coerce_for(subject, _qualify_expr(expr.low, scope), scope)
        high = _coerce_for(subject, _qualify_expr(expr.high, scope), scope)
        return Between(subject, low, high)
    if isinstance(expr, InList):
        subject = _qualify_expr(expr.subject, scope)
        values = tuple(
            _coerce_value_for(subject, v, scope) for v in expr.values)
        return InList(subject, values)
    if isinstance(expr, And):
        return And(tuple(_qualify_expr(op, scope) for op in expr.operands))
    if isinstance(expr, Or):
        return Or(tuple(_qualify_expr(op, scope) for op in expr.operands))
    if isinstance(expr, Not):
        return Not(_qualify_expr(expr.operand, scope))
    if isinstance(expr, AggregateCall):
        argument = (None if expr.argument is None
                    else _qualify_expr(expr.argument, scope))
        return AggregateCall(expr.func, argument)
    raise SqlError(f"cannot bind expression {type(expr).__name__}")


def _is_date_column(expr: Expr, scope: _Scope) -> bool:
    if not isinstance(expr, ColumnRef) or "." not in expr.name:
        return False
    alias, column = expr.name.split(".", 1)
    return scope.column_type(alias, column).kind is TypeKind.DATE


def _coerce_date_pair(left: Expr, right: Expr, scope: _Scope):
    if _is_date_column(left, scope):
        right = _coerce_for(left, right, scope)
    elif _is_date_column(right, scope):
        left = _coerce_for(right, left, scope)
    return left, right


def _coerce_for(subject: Expr, expr: Expr, scope: _Scope) -> Expr:
    """Coerce literals to the subject column's type (date strings).

    Recurses through arithmetic so ``DATEADD(DAY, 1, '1995-01-01')`` —
    which parses to ``'1995-01-01' + 1`` — gets its string leaf converted
    to a day number before evaluation.
    """
    if isinstance(expr, Literal):
        return Literal(_coerce_value_for(subject, expr.value, scope))
    if isinstance(expr, Arithmetic):
        return _fold(Arithmetic(expr.op,
                                _coerce_for(subject, expr.left, scope),
                                _coerce_for(subject, expr.right, scope)))
    return expr


def _fold(expr: Arithmetic) -> Expr:
    """Constant-fold arithmetic over literals so folded bounds stay
    sargable (e.g. ``'1995-01-01' + 1`` becomes a day-number literal)."""
    if isinstance(expr.left, Literal) and isinstance(expr.right, Literal):
        left, right = expr.left.value, expr.right.value
        if left is None or right is None:
            return Literal(None)
        if isinstance(left, (int, float)) and isinstance(right, (int, float)):
            from repro.engine.expressions import _ARITH_OPS
            return Literal(_ARITH_OPS[expr.op](left, right))
    return expr


def _coerce_value_for(subject: Expr, value: object, scope: _Scope) -> object:
    if not _is_date_column(subject, scope) or not isinstance(value, str):
        return value
    try:
        return date_to_int(_dt.date.fromisoformat(value))
    except ValueError:
        raise SqlError(f"bad date string {value!r}") from None


def _contains_aggregate(expr: Expr) -> bool:
    if isinstance(expr, AggregateCall):
        return True
    for attr in ("left", "right", "subject", "low", "high", "operand",
                 "argument"):
        child = getattr(expr, attr, None)
        if isinstance(child, Expr) and _contains_aggregate(child):
            return True
    operands = getattr(expr, "operands", None)
    if operands:
        return any(_contains_aggregate(op) for op in operands)
    return False


class Binder:
    """Binds statements against one database."""

    def __init__(self, database: Database):
        self.database = database

    # ------------------------------------------------------------- select
    def bind(self, stmt):
        """Dispatch a parsed statement to the matching bind_* method."""
        if isinstance(stmt, SelectStmt):
            return self.bind_select(stmt)
        if isinstance(stmt, UpdateStmt):
            return self.bind_update(stmt)
        if isinstance(stmt, DeleteStmt):
            return self.bind_delete(stmt)
        if isinstance(stmt, InsertStmt):
            return self.bind_insert(stmt)
        raise SqlError(f"cannot bind {type(stmt).__name__}")

    def bind_select(self, stmt: SelectStmt) -> BoundSelect:
        """Bind a SELECT statement into a BoundSelect."""
        tables = []
        for ref in stmt.table_refs:
            table = self.database.table(ref.table)
            tables.append(BoundTable(ref.name, table))
        scope = _Scope(tables)

        join_edges: List[JoinEdge] = []
        residuals: List[Expr] = []
        for join in stmt.joins:
            for conj in conjuncts(_qualify_expr(join.condition, scope)):
                edge = _as_join_edge(conj)
                if edge is not None:
                    join_edges.append(edge)
                else:
                    residuals.append(conj)
        where = None
        if stmt.where is not None:
            qualified_where = _qualify_expr(stmt.where, scope)
            for conj in conjuncts(qualified_where):
                edge = _as_join_edge(conj)
                if edge is not None and len(tables) > 1:
                    join_edges.append(edge)
                else:
                    residuals.append(conj)
        where = make_and(residuals)

        group_by: List[str] = []
        for expr in stmt.group_by:
            bound = _qualify_expr(expr, scope)
            if not isinstance(bound, ColumnRef):
                raise SqlError("GROUP BY supports plain columns only")
            group_by.append(bound.name)

        aggregates: List[AggregateSpec] = []
        outputs: List[OutputColumn] = []
        items = self._expand_stars(stmt, tables)
        has_aggregate = any(
            _contains_aggregate(item.expr) for item in items)
        if has_aggregate or group_by:
            self._bind_aggregate_select(
                items, scope, group_by, aggregates, outputs)
        else:
            for i, item in enumerate(items):
                bound = _qualify_expr(item.expr, scope)
                if isinstance(bound, ColumnRef):
                    name = item.alias or bound.name.split(".", 1)[1]
                    outputs.append(OutputColumn(name, bound.name))
                else:
                    # Computed scalar column: give it a slot name.
                    name = item.output_name(f"expr{i}")
                    outputs.append(OutputColumn(name, f"__expr{i}__"))
                    raise SqlError(
                        "computed select expressions require GROUP BY "
                        "or aggregation in this subset")

        order_by: List[Tuple[str, bool]] = []
        for order in stmt.order_by:
            if isinstance(order.expr, ColumnRef):
                name = order.expr.name
                matched = next(
                    (out for out in outputs
                     if out.name == name or out.source == name), None)
                if matched is not None:
                    order_by.append((matched.source, order.descending))
                    continue
                bound = _qualify_expr(order.expr, scope)
                order_by.append((bound.name, order.descending))
            else:
                raise SqlError("ORDER BY supports plain columns only")

        if stmt.distinct:
            if aggregates:
                raise SqlError(
                    "DISTINCT with aggregate functions is not supported")
            # SELECT DISTINCT a, b  ==  SELECT a, b GROUP BY a, b.
            group_by = [out.source for out in outputs]

        return BoundSelect(
            tables=tables, join_edges=join_edges, where=where,
            group_by=group_by, aggregates=aggregates, outputs=outputs,
            order_by=order_by, top=stmt.top, distinct=stmt.distinct,
        )

    def _expand_stars(self, stmt: SelectStmt, tables: List[BoundTable]):
        from repro.sql.ast import SelectItem
        items = []
        for item in stmt.items:
            if isinstance(item.expr, Star):
                for bound in tables:
                    for column in bound.table.schema.column_names():
                        items.append(SelectItem(
                            ColumnRef(f"{bound.alias}.{column}")))
            else:
                items.append(item)
        if not items:
            raise SqlError("empty select list")
        return items

    def _bind_aggregate_select(self, items, scope, group_by,
                               aggregates, outputs) -> None:
        agg_counter = 0
        for item in items:
            bound = _qualify_expr(item.expr, scope)
            if isinstance(bound, AggregateCall):
                agg_counter += 1
                default = f"{bound.func}_{agg_counter}"
                name = item.alias or default
                slot = f"__agg{agg_counter}__"
                aggregates.append(
                    AggregateSpec(bound.func, bound.argument, slot))
                outputs.append(OutputColumn(name, slot, is_aggregate=True))
            elif isinstance(bound, ColumnRef):
                if bound.name not in group_by:
                    raise SqlError(
                        f"column {bound.name!r} must appear in GROUP BY")
                name = item.alias or bound.name.split(".", 1)[1]
                outputs.append(OutputColumn(name, bound.name))
            else:
                raise SqlError(
                    "select items must be columns or aggregates when "
                    "grouping")

    # -------------------------------------------------------------- DML
    def _single_table_scope(self, table: Table) -> _Scope:
        return _Scope([BoundTable(table.name, table)])

    def _dml_target(self, name: str) -> Table:
        """Resolve a DML target table, rejecting system views (DMVs are
        read-only; a real table of the same name shadows the view)."""
        if not self.database.has_table(name):
            from repro.engine.dmv import SYSTEM_VIEW_NAMES
            if name in SYSTEM_VIEW_NAMES:
                raise SqlError(f"system view {name!r} is read-only")
        return self.database.table(name)

    def bind_update(self, stmt: UpdateStmt) -> BoundUpdate:
        """Bind an UPDATE statement into a BoundUpdate."""
        table = self._dml_target(stmt.table.table)
        scope = self._single_table_scope(table)
        assignments = []
        for assignment in stmt.assignments:
            if assignment.column not in table.schema:
                raise SqlError(
                    f"table {table.name!r} has no column "
                    f"{assignment.column!r}")
            assignments.append(
                (assignment.column, _qualify_expr(assignment.value, scope)))
        where = (None if stmt.where is None
                 else _qualify_expr(stmt.where, scope))
        return BoundUpdate(table, assignments, where, stmt.top)

    def bind_delete(self, stmt: DeleteStmt) -> BoundDelete:
        """Bind a DELETE statement into a BoundDelete."""
        table = self._dml_target(stmt.table.table)
        where = (None if stmt.where is None else
                 _qualify_expr(stmt.where, self._single_table_scope(table)))
        return BoundDelete(table, where, stmt.top)

    def bind_insert(self, stmt: InsertStmt) -> BoundInsert:
        """Bind an INSERT statement into a BoundInsert."""
        table = self._dml_target(stmt.table.table)
        schema = table.schema
        columns = stmt.columns or schema.column_names()
        ordinals = schema.ordinals(columns)
        rows = []
        for row_exprs in stmt.rows:
            if len(row_exprs) != len(columns):
                raise SqlError("INSERT arity mismatch")
            full: List[object] = [None] * len(schema)
            for ordinal, expr in zip(ordinals, row_exprs):
                if not isinstance(expr, Literal):
                    raise SqlError("INSERT supports literal values only")
                value = expr.value
                if schema.columns[ordinal].col_type.kind is TypeKind.DATE \
                        and isinstance(value, str):
                    value = date_to_int(_dt.date.fromisoformat(value))
                full[ordinal] = value
            rows.append(tuple(full))
        return BoundInsert(table, rows)


def _as_join_edge(conj: Expr) -> Optional[JoinEdge]:
    """Recognise ``a.x = b.y`` between different aliases."""
    if not isinstance(conj, Comparison) or conj.op != "=":
        return None
    if not (isinstance(conj.left, ColumnRef)
            and isinstance(conj.right, ColumnRef)):
        return None
    left_alias, left_column = conj.left.name.split(".", 1)
    right_alias, right_column = conj.right.name.split(".", 1)
    if left_alias == right_alias:
        return None
    return JoinEdge(left_alias, left_column, right_alias, right_column)
