"""Recursive-descent parser for the SQL subset.

Grammar (informally)::

    statement   := select | update | delete | insert
    select      := SELECT [DISTINCT] [TOP (n)] items FROM ref join* [WHERE e]
                   [GROUP BY exprs] [ORDER BY order_items] [LIMIT n]
    join        := [INNER] JOIN ref ON e
    update      := UPDATE [TOP (n)] name SET col = e (, col = e)* [WHERE e]
    delete      := DELETE [TOP (n)] FROM name [WHERE e]
    insert      := INSERT INTO name [(cols)] VALUES (e, ...)(, (e, ...))*

    e           := or_e
    or_e        := and_e (OR and_e)*
    and_e       := not_e (AND not_e)*
    not_e       := NOT not_e | predicate
    predicate   := additive [BETWEEN additive AND additive
                            | IN (literal, ...) | cmp additive]
    additive    := multiplicative ((+|-) multiplicative)*
    multiplicative := unary ((*|/) unary)*
    unary       := - unary | primary
    primary     := literal | DATE 'yyyy-mm-dd' | DATEADD(DAY, e, e)
                 | agg ( [*|e] ) | qualified_name | ( e ) | ?

``?`` markers are replaced by positional parameters supplied to
:func:`parse`, so workloads can reuse one statement text with different
constants (the paper's ``{1}`` placeholders).
"""

from __future__ import annotations

import datetime as _dt
from typing import List, Optional, Sequence

from repro.core.errors import SqlError
from repro.core.types import date_to_int
from repro.engine.expressions import (
    And,
    Arithmetic,
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    Not,
    Or,
)
from repro.sql.ast import (
    AggregateCall,
    Assignment,
    DeleteStmt,
    InsertStmt,
    JoinClause,
    OrderItem,
    SelectItem,
    SelectStmt,
    Star,
    TableRef,
    UpdateStmt,
)
from repro.sql.lexer import (
    COMMA,
    DOT,
    EOF,
    IDENT,
    KEYWORD,
    LPAREN,
    NUMBER,
    OP,
    PARAM,
    RPAREN,
    STAR,
    STRING,
    Token,
    tokenize,
)

_AGG_KEYWORDS = ("sum", "count", "avg", "min", "max")


class _Parser:
    def __init__(self, tokens: List[Token], params: Sequence[object]):
        self.tokens = tokens
        self.pos = 0
        self.params = list(params)
        self.param_index = 0

    # ----------------------------------------------------------- plumbing
    def peek(self, offset: int = 0) -> Token:
        """Look at the token ``offset`` positions ahead without consuming."""
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        """Consume and return the current token."""
        token = self.tokens[self.pos]
        if token.type != EOF:
            self.pos += 1
        return token

    def accept_keyword(self, *words: str) -> Optional[str]:
        """Consume the next token if it is one of the given keywords."""
        token = self.peek()
        if token.type == KEYWORD and token.value in words:
            self.advance()
            return token.value
        return None

    def expect_keyword(self, word: str) -> None:
        """Consume the given keyword or raise SqlError."""
        if not self.accept_keyword(word):
            raise SqlError(f"expected {word.upper()}, got {self.peek()!r}")

    def accept(self, token_type: str) -> Optional[Token]:
        """Consume the next token if it has the given type."""
        if self.peek().type == token_type:
            return self.advance()
        return None

    def expect(self, token_type: str) -> Token:
        """Consume a token of the given type or raise SqlError."""
        token = self.accept(token_type)
        if token is None:
            raise SqlError(f"expected {token_type}, got {self.peek()!r}")
        return token

    # --------------------------------------------------------- statements
    def parse_statement(self):
        """Parse one complete statement."""
        if self.accept_keyword("select"):
            stmt = self.parse_select()
        elif self.accept_keyword("update"):
            stmt = self.parse_update()
        elif self.accept_keyword("delete"):
            stmt = self.parse_delete()
        elif self.accept_keyword("insert"):
            stmt = self.parse_insert()
        else:
            raise SqlError(f"expected a statement, got {self.peek()!r}")
        if self.peek().type != EOF:
            raise SqlError(f"trailing tokens after statement: {self.peek()!r}")
        return stmt

    def parse_select(self) -> SelectStmt:
        """Parse a SELECT statement body."""
        distinct = bool(self.accept_keyword("distinct"))
        top = self._parse_top()
        items = self._parse_select_items()
        self.expect_keyword("from")
        from_table = self._parse_table_ref()
        joins: List[JoinClause] = []
        while True:
            if self.accept_keyword("inner"):
                self.expect_keyword("join")
            elif not self.accept_keyword("join"):
                break
            table = self._parse_table_ref()
            self.expect_keyword("on")
            condition = self.parse_expr()
            joins.append(JoinClause(table, condition))
        where = self.parse_expr() if self.accept_keyword("where") else None
        group_by: List[Expr] = []
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by.append(self.parse_expr())
            while self.accept(COMMA):
                group_by.append(self.parse_expr())
        order_by: List[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by.append(self._parse_order_item())
            while self.accept(COMMA):
                order_by.append(self._parse_order_item())
        if self.accept_keyword("limit"):
            limit_token = self.expect(NUMBER)
            limit = int(limit_token.value)
            top = limit if top is None else min(top, limit)
        return SelectStmt(
            items=items, from_table=from_table, joins=joins, where=where,
            group_by=group_by, order_by=order_by, top=top, distinct=distinct,
        )

    def parse_update(self) -> UpdateStmt:
        """Parse an UPDATE statement body."""
        top = self._parse_top()
        table = self._parse_table_ref(allow_alias=False)
        self.expect_keyword("set")
        assignments = [self._parse_assignment()]
        while self.accept(COMMA):
            assignments.append(self._parse_assignment())
        where = self.parse_expr() if self.accept_keyword("where") else None
        return UpdateStmt(table=table, assignments=assignments, where=where,
                          top=top)

    def parse_delete(self) -> DeleteStmt:
        """Parse a DELETE statement body."""
        top = self._parse_top()
        self.expect_keyword("from")
        table = self._parse_table_ref(allow_alias=False)
        where = self.parse_expr() if self.accept_keyword("where") else None
        return DeleteStmt(table=table, where=where, top=top)

    def parse_insert(self) -> InsertStmt:
        """Parse an INSERT statement body."""
        self.expect_keyword("into")
        table = self._parse_table_ref(allow_alias=False)
        columns: List[str] = []
        if self.accept(LPAREN):
            columns.append(self.expect(IDENT).value)
            while self.accept(COMMA):
                columns.append(self.expect(IDENT).value)
            self.expect(RPAREN)
        self.expect_keyword("values")
        rows = [self._parse_value_row()]
        while self.accept(COMMA):
            rows.append(self._parse_value_row())
        return InsertStmt(table=table, columns=columns, rows=rows)

    # ------------------------------------------------------------- pieces
    def _parse_top(self) -> Optional[int]:
        if not self.accept_keyword("top"):
            return None
        parenthesized = self.accept(LPAREN) is not None
        value = self._parse_count_value()
        if parenthesized:
            self.expect(RPAREN)
        return value

    def _parse_count_value(self) -> int:
        if self.peek().type == PARAM:
            self.advance()
            return int(self._next_param())
        return int(self.expect(NUMBER).value)

    def _next_param(self) -> object:
        if self.param_index >= len(self.params):
            raise SqlError("not enough parameters supplied for '?' markers")
        value = self.params[self.param_index]
        self.param_index += 1
        return value

    def _parse_select_items(self) -> List[SelectItem]:
        items = [self._parse_select_item()]
        while self.accept(COMMA):
            items.append(self._parse_select_item())
        return items

    def _parse_select_item(self) -> SelectItem:
        if self.peek().type == STAR:
            self.advance()
            return SelectItem(Star())
        expr = self.parse_expr()
        alias = None
        if self.accept_keyword("as"):
            alias = self.expect(IDENT).value
        elif self.peek().type == IDENT:
            alias = self.advance().value
        return SelectItem(expr, alias)

    def _parse_table_ref(self, allow_alias: bool = True) -> TableRef:
        name = self.expect(IDENT).value
        alias = None
        if allow_alias:
            if self.accept_keyword("as"):
                alias = self.expect(IDENT).value
            elif self.peek().type == IDENT:
                alias = self.advance().value
        return TableRef(name, alias)

    def _parse_order_item(self) -> OrderItem:
        expr = self.parse_expr()
        descending = False
        if self.accept_keyword("desc"):
            descending = True
        else:
            self.accept_keyword("asc")
        return OrderItem(expr, descending)

    def _parse_assignment(self) -> Assignment:
        column = self.expect(IDENT).value
        op_token = self.expect(OP)
        if op_token.value == "=":
            value = self.parse_expr()
        elif op_token.value in ("+", "-") and self.peek().type == OP \
                and self.peek().value == "=":
            # 'col += expr' compound assignment (used by the paper's Q4).
            self.advance()
            rhs = self.parse_expr()
            value = Arithmetic(op_token.value, ColumnRef(column), rhs)
        else:
            raise SqlError(f"bad assignment operator at {op_token!r}")
        return Assignment(column, value)

    def _parse_value_row(self) -> List[Expr]:
        self.expect(LPAREN)
        values = [self.parse_expr()]
        while self.accept(COMMA):
            values.append(self.parse_expr())
        self.expect(RPAREN)
        return values

    # -------------------------------------------------------- expressions
    def parse_expr(self) -> Expr:
        """Parse an expression at the lowest (OR) precedence level."""
        return self._parse_or()

    def _parse_or(self) -> Expr:
        left = self._parse_and()
        operands = [left]
        while self.accept_keyword("or"):
            operands.append(self._parse_and())
        if len(operands) == 1:
            return left
        return Or(tuple(operands))

    def _parse_and(self) -> Expr:
        left = self._parse_not()
        operands = [left]
        while self.accept_keyword("and"):
            operands.append(self._parse_not())
        if len(operands) == 1:
            return left
        return And(tuple(operands))

    def _parse_not(self) -> Expr:
        if self.accept_keyword("not"):
            return Not(self._parse_not())
        return self._parse_predicate()

    def _parse_predicate(self) -> Expr:
        left = self._parse_additive()
        if self.accept_keyword("between"):
            low = self._parse_additive()
            self.expect_keyword("and")
            high = self._parse_additive()
            return Between(left, low, high)
        if self.accept_keyword("in"):
            self.expect(LPAREN)
            values = [self._parse_literal_value()]
            while self.accept(COMMA):
                values.append(self._parse_literal_value())
            self.expect(RPAREN)
            return InList(left, tuple(values))
        token = self.peek()
        if token.type == OP and token.value in ("=", "!=", "<", "<=", ">", ">="):
            self.advance()
            right = self._parse_additive()
            return Comparison(token.value, left, right)
        return left

    def _parse_literal_value(self) -> object:
        token = self.peek()
        if token.type == NUMBER:
            self.advance()
            return token.value
        if token.type == STRING:
            self.advance()
            return token.value
        if token.type == PARAM:
            self.advance()
            return self._next_param()
        if token.type == KEYWORD and token.value == "null":
            self.advance()
            return None
        raise SqlError(f"expected literal in IN list, got {token!r}")

    def _parse_additive(self) -> Expr:
        left = self._parse_multiplicative()
        while True:
            token = self.peek()
            if token.type == OP and token.value in ("+", "-"):
                self.advance()
                right = self._parse_multiplicative()
                left = Arithmetic(token.value, left, right)
            else:
                return left

    def _parse_multiplicative(self) -> Expr:
        left = self._parse_unary()
        while True:
            token = self.peek()
            if (token.type == OP and token.value == "/") or token.type == STAR:
                op = "/" if token.type == OP else "*"
                self.advance()
                right = self._parse_unary()
                left = Arithmetic(op, left, right)
            else:
                return left

    def _parse_unary(self) -> Expr:
        token = self.peek()
        if token.type == OP and token.value == "-":
            self.advance()
            operand = self._parse_unary()
            if isinstance(operand, Literal) and isinstance(
                    operand.value, (int, float)):
                return Literal(-operand.value)
            return Arithmetic("-", Literal(0), operand)
        return self._parse_primary()

    def _parse_primary(self) -> Expr:
        token = self.peek()
        if token.type == NUMBER:
            self.advance()
            return Literal(token.value)
        if token.type == STRING:
            self.advance()
            return Literal(token.value)
        if token.type == PARAM:
            self.advance()
            return Literal(self._next_param())
        if token.type == LPAREN:
            self.advance()
            expr = self.parse_expr()
            self.expect(RPAREN)
            return expr
        if token.type == KEYWORD:
            return self._parse_keyword_primary(token)
        if token.type == IDENT:
            return self._parse_name()
        raise SqlError(f"unexpected token in expression: {token!r}")

    def _parse_keyword_primary(self, token: Token) -> Expr:
        if token.value == "null":
            self.advance()
            return Literal(None)
        if token.value == "date":
            self.advance()
            text = self.expect(STRING).value
            return Literal(_parse_date_literal(text))
        if token.value == "dateadd":
            self.advance()
            self.expect(LPAREN)
            self.expect_keyword("day")
            self.expect(COMMA)
            amount = self.parse_expr()
            self.expect(COMMA)
            base = self.parse_expr()
            self.expect(RPAREN)
            # Dates are day numbers, so DATEADD(DAY, n, d) is d + n.
            return Arithmetic("+", base, amount)
        if token.value in _AGG_KEYWORDS:
            self.advance()
            self.expect(LPAREN)
            if self.peek().type == STAR:
                self.advance()
                argument = None
                if token.value != "count":
                    raise SqlError(f"{token.value}(*) is not valid")
            else:
                argument = self.parse_expr()
            self.expect(RPAREN)
            return AggregateCall(token.value, argument)
        raise SqlError(f"unexpected keyword in expression: {token!r}")

    def _parse_name(self) -> Expr:
        first = self.expect(IDENT).value
        if self.accept(DOT):
            second = self.expect(IDENT).value
            return ColumnRef(f"{first}.{second}")
        return ColumnRef(first)


def _parse_date_literal(text: str) -> int:
    try:
        return date_to_int(_dt.date.fromisoformat(text))
    except ValueError:
        raise SqlError(f"bad DATE literal {text!r}") from None


def parse(sql: str, params: Sequence[object] = ()):
    """Parse one SQL statement, substituting ``?`` markers from ``params``."""
    parser = _Parser(tokenize(sql), params)
    return parser.parse_statement()
