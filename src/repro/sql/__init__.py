"""SQL front end: lexer, parser, AST, binder."""

from repro.sql.parser import parse
from repro.sql.binder import Binder

__all__ = ["parse", "Binder"]
