"""Admission control for the serving layer.

Two primitives sit between a :class:`~repro.server.session.Session` and
the engine:

* :class:`MemoryGrantPool` — a byte-budgeted counting semaphore over the
  engine's existing memory-grant sizing. Every statement asks for its
  grant (the context's ``memory_grant_bytes``, defaulting to the cost
  model's ``default_memory_grant_bytes``) before it runs; when the pool
  is exhausted the statement queues FIFO (oldest waiter first), which is
  exactly how SQL Server's resource semaphore throttles concurrent
  memory-hungry queries.
* :class:`DatabaseLatch` — a reader/writer latch giving SELECTs shared
  access and DML exclusive access. The storage structures are
  thread-safe for concurrent *reads* (the shared-state bugfixes in this
  PR), but a writer mutating a B+ tree or delta store mid-scan is not a
  supported interleaving, so DML drains readers first. The latch is
  re-entrant per owner: a session holding it exclusively (an explicit
  transaction) can keep executing its own statements.

Lock ordering is **latch first, grant second** (see
:meth:`AdmissionController.admit`): a statement never holds pool bytes
while blocked on the latch, so every grant holder is already executing
and must eventually release — the pair cannot form a circular wait.

Waits are measured in real wall milliseconds and recorded on the
*session's* stats — never on :class:`~repro.engine.metrics.QueryMetrics`
— so admission queuing can never perturb the deterministic modeled
metrics the figures and differential tests rely on.

Both primitives feed the engine-wide wait-stats taxonomy
(:mod:`repro.storage.waits`) when a collector is attached: a blocked
shared/exclusive latch acquire records ``LATCH_SH``/``LATCH_EX`` and a
queued grant records ``RESOURCE_SEMAPHORE``. Only *genuine* blocking is
recorded — an uncontended acquire leaves the taxonomy untouched, while
the legacy ``total_wait_ms`` scalars keep their historical
measure-always semantics for backward compatibility. Both primitives
also gained ``reset_stats()`` (symmetric with
``BufferPool.reset_stats()``) so benches can zero counters between
phases.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, Optional

from repro.core.errors import ExecutionError
from repro.storage.waits import (
    WAIT_LATCH_EX,
    WAIT_LATCH_SH,
    WAIT_RESOURCE_SEMAPHORE,
)

#: Default pool capacity, in multiples of one default memory grant:
#: enough for a handful of concurrent analytic statements while still
#: forcing queueing at high session counts.
DEFAULT_GRANT_CAPACITY_MULTIPLE = 8


class MemoryGrantPool:
    """Byte-budgeted admission pool for statement memory grants.

    ``waits``/``events`` are the optional observability sinks: queued
    grants record ``RESOURCE_SEMAPHORE`` waits, and a grant that
    exceeds its timeout emits a ``grant_timeout`` event before raising.
    """

    def __init__(self, capacity_bytes: int, waits=None, events=None):
        if capacity_bytes <= 0:
            raise ExecutionError("grant pool capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._available = capacity_bytes
        self._cond = threading.Condition()
        #: FIFO ticket queue — admission is strictly oldest-first.
        self._waiters: Deque[object] = deque()
        #: Statements admitted / statements that had to queue first.
        self.grants_admitted = 0
        self.grant_waits = 0
        self.total_wait_ms = 0.0
        self.peak_granted_bytes = 0
        self.grant_timeouts = 0
        self.waits = waits
        self.events = events
        #: Seconds a queued grant may wait before failing with an
        #: ExecutionError (SQL Server: ``RESOURCE_SEMAPHORE`` timeout /
        #: error 8645). None means wait forever — the historical
        #: behavior and the default.
        self.default_timeout_s: Optional[float] = None

    @property
    def available_bytes(self) -> int:
        """Bytes currently unreserved."""
        return self._available

    def reset_stats(self) -> None:
        """Zero the admission counters (capacity and current
        reservations are untouched)."""
        with self._cond:
            self.grants_admitted = 0
            self.grant_waits = 0
            self.total_wait_ms = 0.0
            self.grant_timeouts = 0
            self.peak_granted_bytes = self.capacity_bytes - self._available

    @contextmanager
    def grant(self, requested_bytes: int,
              timeout_s: Optional[float] = None) -> Iterator[int]:
        """Reserve a grant, queueing FIFO until the pool can satisfy it.

        Admission is strictly oldest-first (SQL Server's resource
        semaphore is FIFO-ordered): a request queues behind every
        earlier waiter even when enough bytes happen to be free, so a
        large grant can never be starved by a stream of smaller
        requests slicing up freed capacity ahead of it.

        Requests larger than the whole pool are clamped to the pool size
        (they would otherwise deadlock) — mirroring how the engine's
        operators already spill when their grant is undersized.

        ``timeout_s`` (defaulting to :attr:`default_timeout_s`) bounds
        the queue wait: a grant still unsatisfied past the deadline
        emits a ``grant_timeout`` event and raises
        :class:`~repro.core.errors.ExecutionError`, like SQL Server's
        resource-semaphore timeout (error 8645).
        """
        amount = max(1, min(int(requested_bytes), self.capacity_bytes))
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        started = time.perf_counter()
        timed_out = False
        with self._cond:
            if self._waiters or self._available < amount:
                deadline = (started + timeout_s
                            if timeout_s is not None else None)
                ticket = object()
                self._waiters.append(ticket)
                try:
                    while (self._waiters[0] is not ticket
                           or self._available < amount):
                        if deadline is None:
                            self._cond.wait()
                            continue
                        remaining = deadline - time.perf_counter()
                        if remaining <= 0:
                            timed_out = True
                            break
                        self._cond.wait(remaining)
                finally:
                    # Leave the queue on success *and* on interruption,
                    # and wake the next head either way.
                    self._waiters.remove(ticket)
                    self._cond.notify_all()
                waited_ms = (time.perf_counter() - started) * 1000.0
                self.total_wait_ms += waited_ms
                if timed_out:
                    self.grant_timeouts += 1
                else:
                    self.grant_waits += 1
                if self.waits is not None:
                    self.waits.record(WAIT_RESOURCE_SEMAPHORE, waited_ms)
            if not timed_out:
                self._available -= amount
                self.grants_admitted += 1
                granted = self.capacity_bytes - self._available
                if granted > self.peak_granted_bytes:
                    self.peak_granted_bytes = granted
        if timed_out:
            if self.events is not None:
                self.events.emit("grant_timeout", {
                    "requested_bytes": amount,
                    "timeout_s": timeout_s,
                })
            raise ExecutionError(
                f"memory grant of {amount} bytes timed out after "
                f"{timeout_s:.3f}s in the resource semaphore queue")
        try:
            yield amount
        finally:
            with self._cond:
                self._available += amount
                self._cond.notify_all()


class DatabaseLatch:
    """Reader/writer latch over one database, re-entrant per owner.

    ``shared(owner)`` admits any number of concurrent readers;
    ``exclusive(owner)`` drains readers and other writers first.
    Writers take priority: once one is waiting, new readers queue behind
    it so DML cannot starve. An owner already holding the latch
    exclusively re-enters both modes freely (how statements inside an
    explicit transaction run). Upgrading shared -> exclusive is not
    supported and raises instead of deadlocking.
    """

    def __init__(self, waits=None) -> None:
        self._cond = threading.Condition()
        self._writer: Optional[object] = None
        self._writer_depth = 0
        self._readers: Dict[object, int] = {}
        self._waiting_writers = 0
        self.shared_acquires = 0
        self.exclusive_acquires = 0
        self.total_wait_ms = 0.0
        #: Acquires that actually blocked (what LATCH_SH/LATCH_EX count;
        #: ``total_wait_ms`` keeps its legacy measure-always semantics).
        self.shared_waits = 0
        self.exclusive_waits = 0
        self.waits = waits

    def reset_stats(self) -> None:
        """Zero the acquire/wait counters (held state is untouched)."""
        with self._cond:
            self.shared_acquires = 0
            self.exclusive_acquires = 0
            self.total_wait_ms = 0.0
            self.shared_waits = 0
            self.exclusive_waits = 0

    @contextmanager
    def shared(self, owner: object) -> Iterator[None]:
        """Shared (read) access for ``owner``."""
        started = time.perf_counter()
        with self._cond:
            if self._writer == owner:
                # Re-entrant under this owner's exclusive hold.
                self._writer_depth += 1
                reentrant = True
            else:
                reentrant = False
                blocked = False
                while self._writer is not None or (
                        self._waiting_writers and owner not in self._readers):
                    blocked = True
                    self._cond.wait()
                self._readers[owner] = self._readers.get(owner, 0) + 1
                if blocked:
                    self.shared_waits += 1
                    if self.waits is not None:
                        self.waits.record(
                            WAIT_LATCH_SH,
                            (time.perf_counter() - started) * 1000.0)
            self.shared_acquires += 1
            self.total_wait_ms += (time.perf_counter() - started) * 1000.0
        try:
            yield
        finally:
            with self._cond:
                if reentrant:
                    self._writer_depth -= 1
                else:
                    depth = self._readers[owner] - 1
                    if depth:
                        self._readers[owner] = depth
                    else:
                        del self._readers[owner]
                self._cond.notify_all()

    @contextmanager
    def exclusive(self, owner: object) -> Iterator[None]:
        """Exclusive (write) access for ``owner``."""
        started = time.perf_counter()
        with self._cond:
            if self._writer == owner:
                self._writer_depth += 1
            else:
                if owner in self._readers:
                    raise ExecutionError(
                        "cannot upgrade a shared latch to exclusive")
                blocked = False
                self._waiting_writers += 1
                try:
                    while self._writer is not None or self._readers:
                        blocked = True
                        self._cond.wait()
                finally:
                    self._waiting_writers -= 1
                self._writer = owner
                self._writer_depth = 1
                if blocked:
                    self.exclusive_waits += 1
                    if self.waits is not None:
                        self.waits.record(
                            WAIT_LATCH_EX,
                            (time.perf_counter() - started) * 1000.0)
            self.exclusive_acquires += 1
            self.total_wait_ms += (time.perf_counter() - started) * 1000.0
        try:
            yield
        finally:
            with self._cond:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                self._cond.notify_all()


class AdmissionController:
    """Statement admission: a memory grant plus the right latch mode.

    One controller is owned by a
    :class:`~repro.server.session.SessionManager` and shared by its
    sessions; :meth:`admit` wraps every statement execution.
    """

    def __init__(self, default_grant_bytes: int,
                 capacity_bytes: Optional[int] = None,
                 waits=None, events=None):
        if capacity_bytes is None:
            capacity_bytes = (
                default_grant_bytes * DEFAULT_GRANT_CAPACITY_MULTIPLE)
        self.default_grant_bytes = default_grant_bytes
        self.grants = MemoryGrantPool(capacity_bytes, waits=waits,
                                      events=events)
        self.latch = DatabaseLatch(waits=waits)

    def reset_stats(self) -> None:
        """Zero both primitives' counters between bench phases."""
        self.grants.reset_stats()
        self.latch.reset_stats()

    @contextmanager
    def admit(self, owner: object, writes: bool,
              grant_bytes: Optional[int] = None) -> Iterator[None]:
        """Admit one statement for ``owner``: take the latch in the mode
        its statement class needs, then reserve its memory grant.

        The latch-before-grant ordering is load-bearing. A statement
        waiting for pool bytes already holds the latch, and every grant
        holder is past both waits and executing, so grants always drain
        and the two primitives cannot form a circular wait. The reverse
        order deadlocks: :meth:`~repro.server.session.Session.transaction`
        takes the latch
        exclusively with *no* grant, so statements queued on the latch
        behind an open transaction would pin the whole pool while the
        transaction owner's next statement blocked forever on a grant.
        """
        requested = (grant_bytes if grant_bytes is not None
                     else self.default_grant_bytes)
        if writes:
            with self.latch.exclusive(owner):
                with self.grants.grant(requested):
                    yield
        else:
            with self.latch.shared(owner):
                with self.grants.grant(requested):
                    yield
