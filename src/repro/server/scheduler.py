"""Admission control for the serving layer.

Two primitives sit between a :class:`~repro.server.session.Session` and
the engine:

* :class:`MemoryGrantPool` — a byte-budgeted counting semaphore over the
  engine's existing memory-grant sizing. Every statement asks for its
  grant (the context's ``memory_grant_bytes``, defaulting to the cost
  model's ``default_memory_grant_bytes``) before it runs; when the pool
  is exhausted the statement queues FIFO (oldest waiter first), which is
  exactly how SQL Server's resource semaphore throttles concurrent
  memory-hungry queries.
* :class:`DatabaseLatch` — a reader/writer latch giving SELECTs shared
  access and DML exclusive access. The storage structures are
  thread-safe for concurrent *reads* (the shared-state bugfixes in this
  PR), but a writer mutating a B+ tree or delta store mid-scan is not a
  supported interleaving, so DML drains readers first. The latch is
  re-entrant per owner: a session holding it exclusively (an explicit
  transaction) can keep executing its own statements.

Lock ordering is **latch first, grant second** (see
:meth:`AdmissionController.admit`): a statement never holds pool bytes
while blocked on the latch, so every grant holder is already executing
and must eventually release — the pair cannot form a circular wait.

Waits are measured in real wall milliseconds and recorded on the
*session's* stats — never on :class:`~repro.engine.metrics.QueryMetrics`
— so admission queuing can never perturb the deterministic modeled
metrics the figures and differential tests rely on.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from contextlib import contextmanager
from typing import Deque, Dict, Iterator, Optional

from repro.core.errors import ExecutionError

#: Default pool capacity, in multiples of one default memory grant:
#: enough for a handful of concurrent analytic statements while still
#: forcing queueing at high session counts.
DEFAULT_GRANT_CAPACITY_MULTIPLE = 8


class MemoryGrantPool:
    """Byte-budgeted admission pool for statement memory grants."""

    def __init__(self, capacity_bytes: int):
        if capacity_bytes <= 0:
            raise ExecutionError("grant pool capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self._available = capacity_bytes
        self._cond = threading.Condition()
        #: FIFO ticket queue — admission is strictly oldest-first.
        self._waiters: Deque[object] = deque()
        #: Statements admitted / statements that had to queue first.
        self.grants_admitted = 0
        self.grant_waits = 0
        self.total_wait_ms = 0.0
        self.peak_granted_bytes = 0

    @property
    def available_bytes(self) -> int:
        """Bytes currently unreserved."""
        return self._available

    @contextmanager
    def grant(self, requested_bytes: int) -> Iterator[int]:
        """Reserve a grant, queueing FIFO until the pool can satisfy it.

        Admission is strictly oldest-first (SQL Server's resource
        semaphore is FIFO-ordered): a request queues behind every
        earlier waiter even when enough bytes happen to be free, so a
        large grant can never be starved by a stream of smaller
        requests slicing up freed capacity ahead of it.

        Requests larger than the whole pool are clamped to the pool size
        (they would otherwise deadlock) — mirroring how the engine's
        operators already spill when their grant is undersized.
        """
        amount = max(1, min(int(requested_bytes), self.capacity_bytes))
        started = time.perf_counter()
        with self._cond:
            if self._waiters or self._available < amount:
                ticket = object()
                self._waiters.append(ticket)
                try:
                    while (self._waiters[0] is not ticket
                           or self._available < amount):
                        self._cond.wait()
                finally:
                    # Leave the queue on success *and* on interruption,
                    # and wake the next head either way.
                    self._waiters.remove(ticket)
                    self._cond.notify_all()
                self.grant_waits += 1
                self.total_wait_ms += (time.perf_counter() - started) * 1000.0
            self._available -= amount
            self.grants_admitted += 1
            granted = self.capacity_bytes - self._available
            if granted > self.peak_granted_bytes:
                self.peak_granted_bytes = granted
        try:
            yield amount
        finally:
            with self._cond:
                self._available += amount
                self._cond.notify_all()


class DatabaseLatch:
    """Reader/writer latch over one database, re-entrant per owner.

    ``shared(owner)`` admits any number of concurrent readers;
    ``exclusive(owner)`` drains readers and other writers first.
    Writers take priority: once one is waiting, new readers queue behind
    it so DML cannot starve. An owner already holding the latch
    exclusively re-enters both modes freely (how statements inside an
    explicit transaction run). Upgrading shared -> exclusive is not
    supported and raises instead of deadlocking.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._writer: Optional[object] = None
        self._writer_depth = 0
        self._readers: Dict[object, int] = {}
        self._waiting_writers = 0
        self.shared_acquires = 0
        self.exclusive_acquires = 0
        self.total_wait_ms = 0.0

    @contextmanager
    def shared(self, owner: object) -> Iterator[None]:
        """Shared (read) access for ``owner``."""
        started = time.perf_counter()
        with self._cond:
            if self._writer == owner:
                # Re-entrant under this owner's exclusive hold.
                self._writer_depth += 1
                reentrant = True
            else:
                reentrant = False
                while self._writer is not None or (
                        self._waiting_writers and owner not in self._readers):
                    self._cond.wait()
                self._readers[owner] = self._readers.get(owner, 0) + 1
            self.shared_acquires += 1
            self.total_wait_ms += (time.perf_counter() - started) * 1000.0
        try:
            yield
        finally:
            with self._cond:
                if reentrant:
                    self._writer_depth -= 1
                else:
                    depth = self._readers[owner] - 1
                    if depth:
                        self._readers[owner] = depth
                    else:
                        del self._readers[owner]
                self._cond.notify_all()

    @contextmanager
    def exclusive(self, owner: object) -> Iterator[None]:
        """Exclusive (write) access for ``owner``."""
        started = time.perf_counter()
        with self._cond:
            if self._writer == owner:
                self._writer_depth += 1
            else:
                if owner in self._readers:
                    raise ExecutionError(
                        "cannot upgrade a shared latch to exclusive")
                self._waiting_writers += 1
                try:
                    while self._writer is not None or self._readers:
                        self._cond.wait()
                finally:
                    self._waiting_writers -= 1
                self._writer = owner
                self._writer_depth = 1
            self.exclusive_acquires += 1
            self.total_wait_ms += (time.perf_counter() - started) * 1000.0
        try:
            yield
        finally:
            with self._cond:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                self._cond.notify_all()


class AdmissionController:
    """Statement admission: a memory grant plus the right latch mode.

    One controller is owned by a
    :class:`~repro.server.session.SessionManager` and shared by its
    sessions; :meth:`admit` wraps every statement execution.
    """

    def __init__(self, default_grant_bytes: int,
                 capacity_bytes: Optional[int] = None):
        if capacity_bytes is None:
            capacity_bytes = (
                default_grant_bytes * DEFAULT_GRANT_CAPACITY_MULTIPLE)
        self.default_grant_bytes = default_grant_bytes
        self.grants = MemoryGrantPool(capacity_bytes)
        self.latch = DatabaseLatch()

    @contextmanager
    def admit(self, owner: object, writes: bool,
              grant_bytes: Optional[int] = None) -> Iterator[None]:
        """Admit one statement for ``owner``: take the latch in the mode
        its statement class needs, then reserve its memory grant.

        The latch-before-grant ordering is load-bearing. A statement
        waiting for pool bytes already holds the latch, and every grant
        holder is past both waits and executing, so grants always drain
        and the two primitives cannot form a circular wait. The reverse
        order deadlocks: :meth:`~repro.server.session.Session.transaction`
        takes the latch
        exclusively with *no* grant, so statements queued on the latch
        behind an open transaction would pin the whole pool while the
        transaction owner's next statement blocked forever on a grant.
        """
        requested = (grant_bytes if grant_bytes is not None
                     else self.default_grant_bytes)
        if writes:
            with self.latch.exclusive(owner):
                with self.grants.grant(requested):
                    yield
        else:
            with self.latch.shared(owner):
                with self.grants.grant(requested):
                    yield
