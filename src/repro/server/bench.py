"""Sustained-QPS serving benchmark behind ``BENCH_serving.json``.

Two measurements:

* **CH mixed-workload QPS** — N closed-loop sessions (1/2/4/8) each
  replay the CH analytic + point-query mix against a hybrid-design CH
  database, cold, with modeled-I/O replay on (see
  :mod:`repro.server.session`): every statement sleeps its modeled
  ``io_wait_ms`` scaled to real time, releasing the GIL, so sessions
  overlap I/O exactly as concurrent queries overlap reads in a real
  engine. Sustained QPS = statements / wall seconds. Run serial and
  morsel-parallel.
* **Fig1 morsel sweep** — the paper's Q1 selectivity sweep over a
  uniform table at ``scale x 200k`` rows on a primary columnstore,
  wall-clocked serial vs morsel-parallel (the pool's workers replay
  each morsel's I/O concurrently), per selectivity.

Everything modeled (``elapsed_ms`` and friends) is identical across all
of these configurations — the benchmark measures *real* wall time of
the serving layer, never the figures' modeled costs.
"""

from __future__ import annotations

import json
import time
import threading
from typing import Dict, List, Optional, Sequence, Tuple

from repro.storage.database import Database
from repro.server.session import SessionManager

#: Real milliseconds slept per modeled I/O-wait millisecond in the QPS
#: runs. The cost model's I/O constants describe a *native* engine,
#: whose cold analytic statements are I/O-bound; this interpreter burns
#: roughly two orders of magnitude more CPU per row than native code,
#: so replaying modeled I/O 1:1 would leave the workload CPU-bound and
#: measure the GIL instead of the serving layer. Scaling I/O by the
#: same factor Python inflates CPU restores the native I/O:CPU ratio —
#: the regime where admission and overlap actually decide throughput.
DEFAULT_IO_REPLAY_SCALE = 250.0

#: Replay scale for the fig1 sweep: the serial/morsel *ratio* is what
#: the sweep reports and it is scale-invariant, so a small scale keeps
#: per-query wall times (and the whole benchmark) short.
DEFAULT_FIG1_REPLAY_SCALE = 4.0

DEFAULT_SESSION_COUNTS = (1, 2, 4, 8)
DEFAULT_MORSEL_WORKERS = 4
FIG1_BASE_ROWS = 200_000


def _ch_statements() -> List[str]:
    """The CH mix one session replays per round (analytic + point)."""
    from repro.workloads.ch import ch_analytic_queries, ch_point_queries
    statements = [sql for _, sql in ch_analytic_queries()]
    statements += [sql for _, sql in ch_point_queries(n_warehouses=2)]
    return statements


def build_ch_database(n_warehouses: int = 2) -> Database:
    """A CH database under the hybrid physical design."""
    from repro.workloads.ch import apply_ch_hybrid_design, generate_ch
    database = Database("ch-serving")
    generate_ch(database, n_warehouses=n_warehouses)
    apply_ch_hybrid_design(database)
    return database


def _run_closed_loop(manager: SessionManager, n_sessions: int,
                     statements: Sequence[str], rounds: int) -> Dict:
    """N closed-loop session threads; returns QPS + wait telemetry.

    Each grid cell reports its *own* contention: the admission counters
    and the wait-stats ledger are zeroed before the clients start
    (``DBCC SQLPERF(..., CLEAR)`` between phases), so a cell's
    ``wait_stats`` are attributable to its session count and scan mode
    alone."""
    manager.admission.reset_stats()
    manager.database.waits.reset()
    errors: List[str] = []

    def client() -> None:
        with manager.session(cold=True) as session:
            try:
                for _ in range(rounds):
                    for sql in statements:
                        session.execute(sql)
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(f"{type(exc).__name__}: {exc}")

    threads = [threading.Thread(target=client, name=f"bench-session-{i}")
               for i in range(n_sessions)]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall_s = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"serving bench client failed: {errors[0]}")
    total = n_sessions * rounds * len(statements)
    waits = manager.database.waits
    return {
        "sessions": n_sessions,
        "statements": total,
        "wall_s": round(wall_s, 3),
        "qps": round(total / wall_s, 2) if wall_s else 0.0,
        "grant_waits": manager.admission.grants.grant_waits,
        "latch_wait_ms": round(manager.admission.latch.total_wait_ms, 1),
        # The taxonomy view of the same run: nonzero wait types only.
        "wait_stats": {
            wait_type: acc.as_dict()
            for wait_type, acc in waits.server_stats().items()
            if acc.waiting_tasks_count
        },
        "session_wait_stats": {
            session_id: {wait_type: acc.as_dict()
                         for wait_type, acc in buckets.items()}
            for session_id, buckets in waits.session_stats().items()
        },
    }


def run_qps_bench(session_counts: Sequence[int] = DEFAULT_SESSION_COUNTS,
                  rounds: int = 2,
                  morsel_workers: int = DEFAULT_MORSEL_WORKERS,
                  io_replay_scale: float = DEFAULT_IO_REPLAY_SCALE,
                  n_warehouses: int = 2,
                  events_out: Optional[str] = None) -> List[Dict]:
    """The CH QPS grid: every session count, serial and morsel.

    ``events_out`` optionally writes the database's extended-events ring
    (statement lifecycle + any grant timeouts/eviction storms the grid
    provoked) as JSONL once the grid finishes."""
    database = build_ch_database(n_warehouses=n_warehouses)
    statements = _ch_statements()
    results = []
    for mode, workers in (("serial", 0), ("morsel", morsel_workers)):
        for n_sessions in session_counts:
            with SessionManager(database, morsel_workers=workers,
                                io_replay_scale=io_replay_scale) as manager:
                row = _run_closed_loop(manager, n_sessions, statements,
                                       rounds)
            row["scan_mode"] = mode
            results.append(row)
    if events_out:
        database.events.write_jsonl(events_out)
    return results


def run_fig1_morsel_sweep(scale: int = 10,
                          morsel_workers: int = DEFAULT_MORSEL_WORKERS,
                          io_replay_scale: float = DEFAULT_FIG1_REPLAY_SCALE,
                          selectivities: Optional[Sequence[float]] = None
                          ) -> Dict:
    """Wall-clock Q1 selectivity sweep, serial vs morsel-parallel."""
    from repro.workloads.synthetic import (
        PAPER_SELECTIVITIES_PCT,
        make_uniform_table,
        q1_scan,
    )
    if selectivities is None:
        # The interior of the paper grid: the degenerate endpoints add
        # wall-clock noise without adding information about overlap.
        selectivities = [s for s in PAPER_SELECTIVITIES_PCT if 0.01 <= s]
    n_rows = scale * FIG1_BASE_ROWS
    database = Database("fig1-serving")
    make_uniform_table(database, "micro", n_rows, 1, seed=5)
    database.table("micro").set_primary_columnstore()
    sweep: Dict = {
        "rows": n_rows,
        "scale": scale,
        "rowgroups": database.table("micro").primary.n_rowgroups,
        "selectivity_pct": list(selectivities),
        "serial_wall_ms": [],
        "morsel_wall_ms": [],
        "speedup": [],
    }
    for mode, workers in (("serial", 0), ("morsel", morsel_workers)):
        key = f"{mode}_wall_ms"
        with SessionManager(database, morsel_workers=workers,
                            io_replay_scale=io_replay_scale) as manager:
            with manager.session(cold=True) as session:
                for selectivity in selectivities:
                    sql = q1_scan(selectivity)
                    started = time.perf_counter()
                    session.execute(sql)
                    sweep[key].append(
                        round((time.perf_counter() - started) * 1000.0, 1))
    sweep["speedup"] = [
        round(serial / morsel, 2) if morsel else 0.0
        for serial, morsel in zip(sweep["serial_wall_ms"],
                                  sweep["morsel_wall_ms"])
    ]
    return sweep


def run_serving_bench(session_counts: Sequence[int] = DEFAULT_SESSION_COUNTS,
                      rounds: int = 2,
                      morsel_workers: int = DEFAULT_MORSEL_WORKERS,
                      io_replay_scale: float = DEFAULT_IO_REPLAY_SCALE,
                      fig1_scale: int = 10,
                      fig1_replay_scale: float = DEFAULT_FIG1_REPLAY_SCALE,
                      out_path: Optional[str] = "BENCH_serving.json",
                      wait_stats_out: Optional[str] = None,
                      events_out: Optional[str] = None) -> Dict:
    """Run both measurements and (optionally) write the JSON artifact.

    ``wait_stats_out`` additionally writes the per-cell wait-stats
    snapshots (server-wide + per-session) as one JSON file, and
    ``events_out`` the extended-events ring as JSONL — the two CI
    observability artifacts."""
    qps = run_qps_bench(session_counts=session_counts, rounds=rounds,
                        morsel_workers=morsel_workers,
                        io_replay_scale=io_replay_scale,
                        events_out=events_out)
    fig1 = run_fig1_morsel_sweep(scale=fig1_scale,
                                 morsel_workers=morsel_workers,
                                 io_replay_scale=fig1_replay_scale)
    by_mode: Dict[Tuple[str, int], float] = {
        (row["scan_mode"], row["sessions"]): row["qps"] for row in qps
    }
    speedups = fig1["speedup"]
    report = {
        "benchmark": "serving",
        "config": {
            "session_counts": list(session_counts),
            "rounds": rounds,
            "morsel_workers": morsel_workers,
            "io_replay_scale": io_replay_scale,
            "fig1_scale": fig1_scale,
            "fig1_replay_scale": fig1_replay_scale,
        },
        "ch_qps": qps,
        "fig1_morsel": fig1,
        "acceptance": {
            "qps_scaling_4_vs_1_serial": round(
                by_mode.get(("serial", 4), 0.0)
                / max(by_mode.get(("serial", 1), 0.0), 1e-9), 2),
            "qps_scaling_4_vs_1_morsel": round(
                by_mode.get(("morsel", 4), 0.0)
                / max(by_mode.get(("morsel", 1), 0.0), 1e-9), 2),
            "fig1_mean_morsel_speedup": round(
                sum(speedups) / len(speedups), 2) if speedups else 0.0,
            "fig1_morsel_beats_serial": bool(
                speedups and sum(speedups) / len(speedups) > 1.0),
        },
    }
    if wait_stats_out:
        cells = [{
            "sessions": row["sessions"],
            "scan_mode": row["scan_mode"],
            "wait_stats": row["wait_stats"],
            "session_wait_stats": row["session_wait_stats"],
        } for row in qps]
        with open(wait_stats_out, "w", encoding="utf-8") as handle:
            json.dump({"benchmark": "serving-wait-stats", "cells": cells},
                      handle, indent=2, sort_keys=True)
            handle.write("\n")
    if out_path:
        with open(out_path, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    return report
