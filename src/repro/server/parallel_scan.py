"""Morsel-style intra-query parallelism for columnstore scans.

A :class:`MorselPool` owns a ``concurrent.futures`` thread pool; when an
:class:`~repro.engine.metrics.ExecutionContext` carries one,
:class:`~repro.engine.operators.scans.ColumnstoreScan` hands the
rowgroup reads to :func:`morsel_scan` instead of looping serially. Each
morsel is one compressed rowgroup — the natural work unit of a
columnstore (fixed row budget, per-group segment elimination, per-group
decode), exactly the granularity morsel-driven schedulers use.

Invariants, all covered by ``tests/test_serving.py``:

* **Identical modeled costs.** Every per-group charge in
  ``ColumnstoreIndex.scan`` is additive over groups, so the merged
  per-worker :class:`~repro.engine.metrics.QueryMetrics` deltas equal
  the serial scan's totals field for field.
* **Span-sum == statement totals.** Worker deltas are absorbed into the
  coordinator's context *while the scan's operator span is active*, so
  the mark-diff span attribution from the EXPLAIN ANALYZE work credits
  them to the ColumnstoreScan span like any serial charge.
* **Identical rows and order.** Futures are consumed in rowgroup
  submission order and the delta-store batch is read once by the
  coordinator, last — the exact order of the serial scan.
* **Statement-accurate DMV usage.** Workers record no usage; the
  coordinator records one ``user_scans`` bump plus the summed
  per-worker segment counts.

Real wall-clock benefit on one core comes from *I/O overlap*: the
engine's cold I/O is modeled (``QueryMetrics.io_wait_ms``), and a pool
constructed with ``io_replay_scale > 0`` has each worker sleep its own
morsel's modeled wait — concurrent morsels overlap their waits exactly
as a real engine overlaps outstanding reads. The coordinator accounts
the replayed milliseconds in ``ctx.replayed_io_ms`` so the session
layer never sleeps the same wait twice.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.storage.waits import WAIT_CXPACKET

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.batch import Batch
    from repro.engine.metrics import ExecutionContext
    from repro.engine.operators.scans import ColumnstoreScan
    from repro.storage.columnstore import ColumnstoreIndex

#: Default number of morsel workers per pool.
DEFAULT_MORSEL_WORKERS = 4

#: Below this many rowgroups a parallel scan is all coordination and no
#: overlap; such indexes stay on the serial path.
DEFAULT_MIN_ROWGROUPS = 2


class MorselPool:
    """A shared worker pool executing rowgroup-granular scan morsels.

    Parameters
    ----------
    n_workers:
        Thread-pool size. Morsels from every session's statements share
        these workers, so the pool also acts as a cap on scan
        parallelism across the whole server.
    min_rowgroups:
        Smallest index (in rowgroups) worth parallelizing; smaller
        indexes scan serially.
    io_replay_scale:
        When > 0, each worker sleeps ``io_wait_ms * scale`` real
        milliseconds of its morsel's modeled I/O, making overlap
        measurable in wall time. 0 (the default) never sleeps —
        modeled metrics are unaffected either way.
    """

    def __init__(self, n_workers: int = DEFAULT_MORSEL_WORKERS,
                 min_rowgroups: int = DEFAULT_MIN_ROWGROUPS,
                 io_replay_scale: float = 0.0):
        if n_workers < 1:
            raise ValueError("MorselPool needs at least one worker")
        self.n_workers = n_workers
        self.min_rowgroups = min_rowgroups
        self.io_replay_scale = io_replay_scale
        self._executor = ThreadPoolExecutor(
            max_workers=n_workers, thread_name_prefix="morsel")
        self._closed = False
        self._lock = threading.Lock()
        #: Lifetime count of morsels executed (observability only).
        self.morsels_executed = 0

    def eligible(self, index: "ColumnstoreIndex") -> bool:
        """Whether this index's scan should be morsel-parallelized."""
        if self._closed:
            return False
        return getattr(index, "n_rowgroups", 0) >= self.min_rowgroups

    def submit(self, fn, *args) -> Future:
        """Schedule one morsel on the pool."""
        with self._lock:
            self.morsels_executed += 1
        return self._executor.submit(fn, *args)

    def close(self) -> None:
        """Drain and shut the pool down (idempotent)."""
        self._closed = True
        self._executor.shutdown(wait=True)

    def __enter__(self) -> "MorselPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def morsel_scan(scan: "ColumnstoreScan", ctx: "ExecutionContext",
                pool: MorselPool) -> Iterator["Batch"]:
    """Execute a columnstore scan's rowgroup reads on ``pool``.

    Yields the same raw batches, in the same order, with the same merged
    metrics as ``index.scan(...)`` run serially on ``ctx`` — see the
    module docstring for the invariants.
    """
    index = scan.index
    columns = scan._read_columns
    ranges = scan.pushdown_ranges or None
    include_rids = scan.include_rids
    index.usage.record_scan()

    def run_morsel(group_index: int):
        worker_ctx = ctx.spawn_worker()
        batches = list(index.scan(
            columns, worker_ctx,
            elimination_ranges=ranges,
            include_rids=include_rids,
            groups=[group_index],
            include_delta=False,
            record_usage=False,
        ))
        metrics = worker_ctx.metrics
        if pool.io_replay_scale > 0 and metrics.io_wait_ms > 0:
            time.sleep(metrics.io_wait_ms * pool.io_replay_scale / 1000.0)
        return batches, metrics

    futures: List[Future] = [
        pool.submit(run_morsel, group_index)
        for group_index in range(index.n_rowgroups)
    ]
    segments_scanned = 0
    segments_skipped = 0
    waits = getattr(ctx, "waits", None)
    for future in futures:
        if waits is not None and not future.done():
            # CXPACKET: the coordinator is stalled on an exchange —
            # this morsel's worker has not produced its batches yet.
            blocked_started = time.perf_counter()
            batches, worker_metrics = future.result()
            waits.record(
                WAIT_CXPACKET,
                (time.perf_counter() - blocked_started) * 1000.0)
        else:
            batches, worker_metrics = future.result()
        segments_scanned += worker_metrics.segments_read
        segments_skipped += worker_metrics.segments_skipped
        if pool.io_replay_scale > 0:
            ctx.replayed_io_ms += worker_metrics.io_wait_ms
        ctx.absorb_worker_metrics(worker_metrics)
        for batch in batches:
            yield batch
    index.usage.add_segment_counts(segments_scanned, segments_skipped)
    # The delta store is read exactly once, by the coordinator, last —
    # mirroring the serial scan's yield order.
    yield from index.scan(
        columns, ctx,
        elimination_ranges=ranges,
        include_rids=include_rids,
        groups=[],
        include_delta=True,
        record_usage=False,
    )
