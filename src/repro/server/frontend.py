"""Line-protocol TCP frontend over the session manager.

``python -m repro serve`` binds a ``ThreadingTCPServer``; every client
connection gets its own thread and its own
:class:`~repro.server.session.Session`, so the socket layer is nothing
but transport — all concurrency semantics live in the session and
scheduler modules.

Protocol (deliberately trivial, one line each way):

* client sends one SQL statement per line (UTF-8, newline-terminated);
* server replies with one JSON object per line:
  ``{"ok": true, "columns": [...], "rows": [...], "rows_affected": n,
  "elapsed_ms": modeled, "session": id}`` or
  ``{"ok": false, "error": "..."}``;
* an empty line (or EOF) closes the session.

Try it with ``nc localhost 5433``.
"""

from __future__ import annotations

import json
import socketserver
import threading
from typing import Optional

from repro.server.session import SessionManager

DEFAULT_PORT = 5433


class _SessionHandler(socketserver.StreamRequestHandler):
    """One thread per connection; one session per connection."""

    def handle(self) -> None:
        manager: SessionManager = self.server.manager  # type: ignore[attr-defined]
        with manager.session(cold=self.server.cold) as session:  # type: ignore[attr-defined]
            self._reply({"ok": True, "session": session.session_id,
                         "server": manager.database.name})
            for raw in self.rfile:
                sql = raw.decode("utf-8", errors="replace").strip()
                if not sql:
                    break
                try:
                    result = session.execute(sql)
                    self._reply({
                        "ok": True,
                        "session": session.session_id,
                        "columns": result.columns,
                        "rows": [list(row) for row in result.rows],
                        "rows_affected": result.rows_affected,
                        "elapsed_ms": round(result.metrics.elapsed_ms, 4),
                    })
                except Exception as exc:  # noqa: BLE001 - report to client
                    session.stats.errors += 1
                    self._reply({"ok": False, "error": str(exc),
                                 "session": session.session_id})

    def _reply(self, payload: dict) -> None:
        self.wfile.write(
            (json.dumps(payload, default=str) + "\n").encode("utf-8"))
        self.wfile.flush()


class ReproServer(socketserver.ThreadingTCPServer):
    """Threaded TCP server bound to one :class:`SessionManager`."""

    allow_reuse_address = True
    daemon_threads = True

    def __init__(self, manager: SessionManager, host: str = "127.0.0.1",
                 port: int = DEFAULT_PORT, cold: bool = False):
        super().__init__((host, port), _SessionHandler)
        self.manager = manager
        self.cold = cold

    def serve_background(self) -> threading.Thread:
        """Start serving on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever,
                                  name="repro-serve", daemon=True)
        thread.start()
        return thread


def serve(manager: SessionManager, host: str = "127.0.0.1",
          port: int = DEFAULT_PORT, cold: bool = False,
          forever: bool = True) -> Optional[ReproServer]:
    """Bind and serve; with ``forever=False`` returns the running server
    (serving on a background thread) instead of blocking."""
    server = ReproServer(manager, host=host, port=port, cold=cold)
    if forever:
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
        return None
    server.serve_background()
    return server
