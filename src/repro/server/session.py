"""Sessions and the in-process session manager.

A :class:`SessionManager` wraps one
:class:`~repro.storage.database.Database` and hands out
:class:`Session` objects — one per client. Each session owns its own
:class:`~repro.engine.executor.Executor` (its own binder and statement
pipeline, so per-statement state never crosses sessions) while sharing
the manager's :class:`~repro.optimizer.catalog.Catalog` (statistics are
a property of the data, not the client), admission controller, and
optional morsel pool.

What is per-session vs shared (the ownership rules DESIGN.md spells
out):

* **Per session:** encoded-execution override, run temperature
  (hot/cold), the statement clock stamp (thread-local on the shared
  :class:`~repro.storage.telemetry.LogicalClock`), transaction scope,
  and all :class:`SessionStats`.
* **Per database (shared, lock-protected):** segment cache, fault
  injector, telemetry/usage counters, the tables themselves.
* **Process-global (default only):** the encoded-execution default in
  :mod:`repro.engine.encoded`.

Modeled I/O replay: the engine's cold I/O is *simulated* — statements
return instantly no matter how much I/O the cost model charged. With
``io_replay_scale > 0`` a session sleeps its statement's modeled
``io_wait_ms`` (scaled) for real, releasing the GIL, which is what lets
N sessions genuinely overlap their I/O waits and the serving benchmark
measure honest concurrency scaling. Morsel workers may have replayed
part of that wait already (``QueryResult.replayed_io_ms``); the session
sleeps only the remainder.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.errors import ExecutionError, SqlError
from repro.engine.executor import Executor, QueryResult
from repro.optimizer.catalog import Catalog
from repro.server.parallel_scan import MorselPool
from repro.server.scheduler import AdmissionController
from repro.sql.ast import SelectStmt
from repro.sql.lexer import KEYWORD, LPAREN, tokenize
from repro.sql.parser import parse
from repro.storage.database import Database


def statement_writes(sql: str, params: Sequence[object] = ()) -> bool:
    """Whether ``sql`` needs exclusive (write) access.

    Classification comes from the *parsed* statement type — only a
    :class:`~repro.sql.ast.SelectStmt` is read-only — so leading
    comments, whitespace, or future read-only syntax can never be
    lexically misclassified as DML. If the statement does not parse,
    fall back to the first meaningful token (comments are stripped by
    the lexer, leading parentheses skipped); anything that is not
    ``SELECT`` gets the exclusive latch, the safe default for unknown
    syntax — the executor will surface the real error either way.
    """
    try:
        return not isinstance(parse(sql, params), SelectStmt)
    except SqlError:
        pass
    try:
        tokens = tokenize(sql)
    except SqlError:
        return True
    for token in tokens:
        if token.type == LPAREN:
            continue
        return not (token.type == KEYWORD and token.value == "select")
    return True


class SessionStats:
    """Per-session counters.

    All counts are real observed quantities except the two ``*_ms``
    fields, which aggregate the engine's *modeled* milliseconds (see
    each field's note) — neither is a wall-clock measurement.
    """

    __slots__ = ("statements", "reads", "writes", "rows_returned",
                 "rows_affected", "errors", "io_replayed_ms",
                 "modeled_elapsed_ms")

    def __init__(self) -> None:
        self.statements = 0
        self.reads = 0
        self.writes = 0
        self.rows_returned = 0
        self.rows_affected = 0
        self.errors = 0
        #: Scaled modeled I/O-wait milliseconds replayed for this
        #: session's statements: the session's own remainder sleep plus
        #: the sum of every morsel worker's replayed wait. Workers
        #: sleep their shares *concurrently*, so for morsel-parallel
        #: statements this is modeled work replayed, not wall time
        #: slept — it can exceed the real elapsed time.
        self.io_replayed_ms = 0.0
        #: Sum of the statements' modeled elapsed_ms (what the figures
        #: would report for the same statements).
        self.modeled_elapsed_ms = 0.0

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict snapshot (frontend/bench reporting)."""
        return {name: getattr(self, name) for name in self.__slots__}


class Session:
    """One client's connection to the database.

    Created via :meth:`SessionManager.session`; safe to use from exactly
    one thread at a time (the normal one-thread-per-client shape).
    """

    def __init__(self, manager: "SessionManager", session_id: int,
                 encoded_execution: Optional[bool] = None,
                 cold: bool = False):
        self.manager = manager
        self.session_id = session_id
        #: Per-session dictionary-coded execution override (None defers
        #: to the process default) — the fix for the process-global
        #: ``set_encoded_execution`` leak.
        self.encoded_execution = encoded_execution
        #: Per-session run temperature: cold statements charge modeled
        #: I/O (and can replay it, see the module docstring).
        self.cold = cold
        self.stats = SessionStats()
        self._txn_depth = 0
        self._txn_exit = None
        self._executor = Executor(
            manager.database,
            catalog=manager.catalog,
            query_store=manager.query_store,
        )
        self._executor.morsel_pool = manager.morsel_pool
        self.closed = False

    # ---------------------------------------------------------- execution
    def execute(self, sql: str, params: Sequence[object] = (),
                cold: Optional[bool] = None,
                memory_grant_bytes: Optional[int] = None) -> QueryResult:
        """Run one statement under admission control.

        The statement queues for its memory grant, takes the database
        latch in the mode its class needs (SELECT shared, DML
        exclusive), executes, then replays any un-replayed modeled I/O
        wait as real sleep when the manager has a replay scale.
        """
        if self.closed:
            raise ExecutionError(f"session {self.session_id} is closed")
        run_cold = self.cold if cold is None else cold
        writes = statement_writes(sql, params)
        self._executor.encoded_execution = self.encoded_execution
        # The wait-stats session scope covers admission *and* execution,
        # so latch/grant queueing and every in-engine wait this thread
        # hits are attributed to this session in
        # dm_exec_session_wait_stats. The statement scope opens out here
        # too (the executor's own scope joins it), so admission waits
        # appear in the statement's wait profile exactly as SQL Server
        # charges RESOURCE_SEMAPHORE time to the waiting statement.
        waits = self.manager.database.waits
        with waits.session_scope(self.session_id):
            with waits.statement():
                with self.manager.admission.admit(
                        self.session_id, writes, memory_grant_bytes):
                    result = self._executor.execute(
                        sql, params=params, cold=run_cold,
                        memory_grant_bytes=memory_grant_bytes)
        self._replay_io(result)
        self.stats.statements += 1
        if writes:
            self.stats.writes += 1
        else:
            self.stats.reads += 1
        self.stats.rows_returned += len(result.rows)
        self.stats.rows_affected += result.rows_affected
        self.stats.modeled_elapsed_ms += result.metrics.elapsed_ms
        return result

    def _replay_io(self, result: QueryResult) -> None:
        scale = self.manager.io_replay_scale
        if scale <= 0:
            return
        remaining = max(
            0.0, result.metrics.io_wait_ms - result.replayed_io_ms)
        if remaining > 0:
            time.sleep(remaining * scale / 1000.0)
        self.stats.io_replayed_ms += (
            (remaining + result.replayed_io_ms) * scale)

    # --------------------------------------------------------- transactions
    @contextmanager
    def transaction(self) -> Iterator["Session"]:
        """Hold the database latch exclusively across several statements.

        This is an *isolation* scope, not a durability one: statements
        inside see no interleaving from other sessions (their shared or
        exclusive acquires re-enter under this session's hold), but
        there is no rollback on exit — the engine's statement-level
        atomicity (PR 2's compensation machinery) is the undo unit.
        """
        with self.manager.database.waits.session_scope(self.session_id):
            with self.manager.admission.latch.exclusive(self.session_id):
                self._txn_depth += 1
                try:
                    yield self
                finally:
                    self._txn_depth -= 1

    @property
    def in_transaction(self) -> bool:
        """Whether a :meth:`transaction` scope is currently open."""
        return self._txn_depth > 0

    # -------------------------------------------------------------- misc
    def explain(self, sql: str, params: Sequence[object] = ()) -> str:
        """EXPLAIN without executing (no admission needed: plan-only)."""
        return self._executor.explain(sql, params)

    def close(self) -> None:
        """Mark the session closed and unregister it from the manager."""
        if not self.closed:
            self.closed = True
            self.manager._unregister(self)

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (f"Session(id={self.session_id}, "
                f"statements={self.stats.statements})")


class SessionManager:
    """Owns the shared halves of the serving layer.

    Parameters
    ----------
    database:
        The database every session executes against.
    morsel_workers:
        Size of the shared morsel pool; 0 disables intra-query
        parallelism entirely (every scan serial — the byte-identical
        configuration).
    io_replay_scale:
        Real milliseconds slept per modeled I/O-wait millisecond
        (sessions *and* morsel workers); 0 disables replay.
    grant_capacity_bytes:
        Memory-grant pool capacity; defaults to 8 default grants.
    """

    def __init__(self, database: Database,
                 morsel_workers: int = 0,
                 io_replay_scale: float = 0.0,
                 grant_capacity_bytes: Optional[int] = None,
                 query_store: Optional[object] = None):
        self.database = database
        self.catalog = Catalog(database)
        self.query_store = query_store
        self.io_replay_scale = io_replay_scale
        self.admission = AdmissionController(
            default_grant_bytes=database.cost_model.default_memory_grant_bytes,
            capacity_bytes=grant_capacity_bytes,
            waits=database.waits,
            events=database.events,
        )
        self.morsel_pool: Optional[MorselPool] = None
        if morsel_workers > 0:
            self.morsel_pool = MorselPool(
                n_workers=morsel_workers,
                io_replay_scale=io_replay_scale,
            )
        self._sessions: Dict[int, Session] = {}
        self._next_session_id = 1
        self._lock = threading.Lock()

    @property
    def buffer_pool(self):
        """The database's demand-paging buffer pool (None unless it was
        opened with ``paging=True``). One pool serves every session and
        every morsel worker — the pool's internal lock is what makes the
        shared read path safe, mirroring the decoded segment cache."""
        return getattr(self.database, "buffer_pool", None)

    # ----------------------------------------------------------- sessions
    def session(self, encoded_execution: Optional[bool] = None,
                cold: bool = False) -> Session:
        """Open a new session."""
        with self._lock:
            session_id = self._next_session_id
            self._next_session_id += 1
            session = Session(self, session_id,
                              encoded_execution=encoded_execution,
                              cold=cold)
            self._sessions[session_id] = session
            return session

    def _unregister(self, session: Session) -> None:
        with self._lock:
            self._sessions.pop(session.session_id, None)

    def active_sessions(self) -> List[Session]:
        """Currently open sessions."""
        with self._lock:
            return list(self._sessions.values())

    def refresh(self) -> None:
        """Invalidate shared catalog caches (after design changes/DML)."""
        self.catalog.invalidate()

    def checkpoint(self) -> Optional[str]:
        """Checkpoint a durable database under the exclusive latch.

        Quiesces every session (snapshotting is not safe against
        concurrent DML), writes the snapshot, and truncates the WAL.
        Returns the snapshot path, or None when the database has no
        durability backend attached."""
        if not self.database.durable:
            return None
        with self.admission.latch.exclusive(owner=0):
            return self.database.checkpoint()

    def close(self) -> None:
        """Close every session and drain the morsel pool."""
        for session in self.active_sessions():
            session.close()
        if self.morsel_pool is not None:
            self.morsel_pool.close()

    def __enter__(self) -> "SessionManager":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
