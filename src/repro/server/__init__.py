"""Multi-session serving layer.

This package turns the single-statement engine into something that can
serve many concurrent clients:

* :mod:`repro.server.session` — :class:`SessionManager` /
  :class:`Session`: one session per client, each with its own
  :class:`~repro.engine.executor.Executor`, statement clock stamps, and
  per-session settings (encoded execution, run temperature).
* :mod:`repro.server.scheduler` — admission control: a byte-budgeted
  :class:`MemoryGrantPool` reusing the engine's memory-grant sizing, and
  a reader/writer :class:`DatabaseLatch` serializing DML against reads.
* :mod:`repro.server.parallel_scan` — morsel-style intra-query
  parallelism: :class:`MorselPool` partitions columnstore rowgroups
  across a thread pool; merged worker metrics are byte-identical to the
  serial scan's.
* :mod:`repro.server.frontend` — a line-protocol TCP frontend
  (``python -m repro serve``).
* :mod:`repro.server.bench` — the sustained-QPS serving benchmark
  (``python -m repro bench-serving``) behind ``BENCH_serving.json``.

Shared-state ownership rules (enforced by the bugfixes that shipped with
this package) are documented in DESIGN.md's "Serving layer" section.
"""

from repro.server.parallel_scan import MorselPool
from repro.server.scheduler import AdmissionController, MemoryGrantPool
from repro.server.session import Session, SessionManager

__all__ = [
    "AdmissionController",
    "MemoryGrantPool",
    "MorselPool",
    "Session",
    "SessionManager",
]
