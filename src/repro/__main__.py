"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    The quickstart walkthrough (B+ tree vs columnstore, advisor loop).
``micro --experiment {selectivity,updates,groupby,scancache,encoded-numeric}``
    Run one micro-benchmark sweep and print the paper-style table
    (``scancache`` times repeated scans against the decoded-segment
    cache; tune it with ``--cache-mb`` / ``--no-cache``;
    ``encoded-numeric`` times numeric queries with code-space execution
    on vs off and checks modeled costs stayed identical).
``tune --workload {tpcds,cust1..cust5} [--mode hybrid|btree_only|csi_only]``
    Tune a workload and print the recommendation.
``inventory``
    Build the TPC-H database and print its physical design inventory.
``check [--faults]``
    Build a small hybrid-design workload, run DML through it, and run
    the CHECKDB-style consistency checker over every index; with
    ``--faults`` every statement also survives an injected storage
    fault first (exit code 1 on any inconsistency).
``analyze "<sql>" [--workload tpch|tpcds] [--design btree|csi] [--cold]``
    EXPLAIN ANALYZE: run one statement against a generated workload
    database and print the plan tree annotated with estimated vs actual
    rows and per-operator elapsed/CPU/I-O/memory; ``--trace FILE``
    additionally writes a Chrome trace-event JSON of the plan timeline.
``monitor [--snapshot|--prometheus] [--watch N] [--events-jsonl FILE]``
    Run a TPC-DS mini-workload (queries + DML) against a hybrid design
    and report the DMV telemetry it accumulates: index usage, rowgroup
    physical stats, missing-index observations, cache counters, wait
    statistics, the extended-events ring, the per-interval telemetry
    history, and the query store. Default output is a human-readable
    report assembled by SELECTing from the ``dm_*`` system views
    through the SQL engine; ``--snapshot`` prints the raw JSON
    snapshot, ``--prometheus`` the Prometheus text exposition,
    ``--watch N`` repeats the workload for N rounds printing the report
    after each, and ``--events-jsonl FILE`` exports the event ring as
    JSON Lines.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(_args) -> int:
    import random

    from repro import (Column, Database, Executor, INT, TableSchema,
                       TuningAdvisor, Workload, varchar)

    def build() -> Database:
        """Construct and populate the demo database."""
        database = Database("demo")
        orders = database.create_table(TableSchema("orders", [
            Column("o_id", INT, nullable=False),
            Column("o_customer", INT, nullable=False),
            Column("o_status", varchar(1)),
            Column("o_amount", INT),
            Column("o_region", INT),
        ]))
        rng = random.Random(7)
        orders.bulk_load([
            (i, rng.randrange(5_000), rng.choice("NPS"),
             rng.randrange(10_000), rng.randrange(8))
            for i in range(100_000)
        ])
        return database

    selective = ("SELECT sum(o_amount) FROM orders "
                 "WHERE o_id BETWEEN 500 AND 520")
    analytic = ("SELECT o_region, sum(o_amount) t FROM orders "
                "GROUP BY o_region")
    print("=== the trade-off (Figure 1 in miniature) ===")
    for design in ("B+ tree", "columnstore"):
        database = build()
        if design == "B+ tree":
            database.table("orders").set_primary_btree(["o_id"])
        else:
            database.table("orders").set_primary_columnstore()
        executor = Executor(database)
        sel = executor.execute(selective).metrics.cpu_ms
        scan = executor.execute(analytic).metrics.cpu_ms
        print(f"  {design:12s}: selective {sel:8.3f} ms CPU, "
              f"analytic {scan:8.3f} ms CPU")

    print("\n=== the advisor picks a hybrid design ===")
    database = build()
    database.table("orders").set_primary_btree(["o_id"])
    workload = Workload.from_sql([
        "SELECT sum(o_amount) FROM orders WHERE o_customer = 42",
        analytic,
    ], database)
    advisor = TuningAdvisor(database)
    recommendation = advisor.tune(workload)
    print(recommendation.summary())

    if getattr(_args, "data_dir", None):
        from repro.storage.recovery import recover, state_digest

        print("\n=== durable storage round trip ===")
        database.save(_args.data_dir)
        reopened, report = recover(_args.data_dir)
        same = state_digest(database) == state_digest(reopened)
        print(f"saved to {_args.data_dir}, reopened "
              f"{report.snapshot_pages} pages, consistency check "
              f"{'clean' if report.check_ok else 'FAILED'}, "
              f"state {'identical' if same else 'DIVERGED'}")
        if not (report.check_ok and same):
            return 1
    return 0


def _cmd_micro(args) -> int:
    from repro.bench.reporting import format_table
    from repro.engine.executor import Executor
    from repro.storage.database import Database
    from repro.workloads.synthetic import (
        PAPER_SELECTIVITIES_PCT,
        make_group_table,
        make_uniform_table,
        q1_scan,
        q3_group_by,
    )

    if args.experiment == "selectivity":
        rows = []
        db_b = Database()
        make_uniform_table(db_b, "micro", args.rows, 1, seed=5)
        db_b.table("micro").set_primary_btree(["col1"])
        db_c = Database()
        make_uniform_table(db_c, "micro", args.rows, 1, seed=5)
        db_c.table("micro").set_primary_columnstore()
        ex_b, ex_c = Executor(db_b), Executor(db_c)
        for selectivity in PAPER_SELECTIVITIES_PCT:
            sql = q1_scan(selectivity)
            bt = ex_b.execute(sql)
            csi = ex_c.execute(sql)
            rows.append((selectivity, bt.metrics.elapsed_ms,
                         csi.metrics.elapsed_ms, bt.metrics.cpu_ms,
                         csi.metrics.cpu_ms))
        print(format_table(
            ["sel%", "btree ms", "CSI ms", "btree CPU", "CSI CPU"], rows,
            title=f"Q1 selectivity sweep, {args.rows} rows (Figure 1)"))
        return 0

    if args.experiment == "groupby":
        rows = []
        for n_groups in (100, 1_000, 10_000, 50_000):
            db_b = Database()
            make_group_table(db_b, "micro3", args.rows, n_groups)
            db_b.table("micro3").set_primary_btree(["col1"])
            db_c = Database()
            make_group_table(db_c, "micro3", args.rows, n_groups)
            db_c.table("micro3").set_primary_columnstore()
            grant = 1 << 20
            bt = Executor(db_b).execute(q3_group_by(),
                                        memory_grant_bytes=grant)
            csi = Executor(db_c).execute(q3_group_by(),
                                         memory_grant_bytes=grant)
            rows.append((n_groups, bt.metrics.elapsed_ms,
                         csi.metrics.elapsed_ms,
                         csi.metrics.spilled_bytes // 1024))
        print(format_table(
            ["#groups", "btree ms", "CSI ms", "CSI spill KB"], rows,
            title=f"GROUP BY sweep, {args.rows} rows (Figure 4)"))
        return 0

    if args.experiment == "scancache":
        import time

        from repro.bench.reporting import format_segment_cache
        from repro.workloads.synthetic import make_group_table

        database = Database(
            segment_cache_enabled=not args.no_cache,
            segment_cache_budget_bytes=args.cache_mb << 20,
        )
        make_group_table(database, "micro3", args.rows, 1_000)
        database.table("micro3").set_primary_columnstore(rowgroup_size=8192)
        executor = Executor(database)
        rows = []
        for run in ("cold", "warm", "warm"):
            start = time.perf_counter()
            result = executor.execute(q3_group_by())
            wall_ms = (time.perf_counter() - start) * 1000
            rows.append((run, f"{wall_ms:.1f}", result.metrics.elapsed_ms,
                         result.metrics.segment_cache_hits,
                         result.metrics.segment_cache_misses))
        print(format_table(
            ["run", "wall ms", "model ms", "cache hits", "cache misses"],
            rows,
            title=f"Repeated columnstore scan, {args.rows} rows "
                  f"(decoded-segment cache "
                  f"{'off' if args.no_cache else 'on'})"))
        print()
        print(format_segment_cache(database.segment_cache,
                                   title="segment cache totals"))
        return 0

    if args.experiment == "encoded-numeric":
        import time

        from repro.engine.encoded import set_encoded_execution
        from repro.workloads.synthetic import make_group_table

        queries = [
            ("filter", "SELECT count(*) FROM micro3 WHERE col2 = 5"),
            ("range", "SELECT count(*) FROM micro3 "
                      "WHERE col2 >= 10 AND col2 < 200"),
            ("group-by", q3_group_by()),
            ("top-n", "SELECT TOP 10 col2 FROM micro3 ORDER BY col2"),
        ]
        database = Database()
        make_group_table(database, "micro3", args.rows, 1_000)
        database.table("micro3").set_primary_columnstore(rowgroup_size=8192)
        executor = Executor(database)
        rows = []
        for label, sql in queries:
            executor.execute(sql)  # warm-up, untimed
            walls = {}
            modeled = {}
            for enabled in (False, True):
                prev = set_encoded_execution(enabled)
                try:
                    start = time.perf_counter()
                    result = executor.execute(sql)
                    walls[enabled] = (time.perf_counter() - start) * 1000
                    modeled[enabled] = result.metrics.elapsed_ms
                finally:
                    set_encoded_execution(prev)
            rows.append((
                label, f"{walls[False]:.2f}", f"{walls[True]:.2f}",
                f"{walls[False] / max(walls[True], 1e-9):.1f}x",
                "yes" if modeled[True] == modeled[False] else "NO"))
        print(format_table(
            ["query", "decoded ms", "encoded ms", "speedup",
             "modeled identical"], rows,
            title=f"Numeric code-space execution, {args.rows} rows "
                  "(wall clock; modeled costs must not move)"))
        return 0

    if args.experiment == "updates":
        from repro.workloads.tpch import generate_tpch
        rows = []
        for design in ("btree", "btree+csi", "pri_csi"):
            db = Database()
            generate_tpch(db, scale=0.3)
            lineitem = db.table("lineitem")
            if design in ("btree", "btree+csi"):
                lineitem.set_primary_btree(["l_shipdate"])
            if design == "btree+csi":
                lineitem.create_secondary_columnstore(
                    "csi", rowgroup_size=4096)
            if design == "pri_csi":
                lineitem.set_primary_columnstore(rowgroup_size=4096)
            executor = Executor(db)
            result = executor.execute(
                "UPDATE TOP (1000) lineitem SET l_quantity += 1 "
                "WHERE l_shipdate >= '1992-01-01'")
            rows.append((design, result.metrics.elapsed_ms))
        print(format_table(["design", "1000-row update ms"], rows,
                           title="Update cost by design (Figure 5)"))
        return 0

    print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
    return 2


def _cmd_tune(args) -> int:
    from repro.advisor.advisor import TuningAdvisor
    from repro.advisor.workload import Workload
    from repro.bench.workload_setups import customer_factory, tpcds_factory

    if args.workload == "tpcds":
        database, queries = tpcds_factory()
    else:
        database, queries = customer_factory(args.workload)
    workload = Workload.from_sql(queries, database)
    advisor = TuningAdvisor(database)
    recommendation = advisor.tune(workload, mode=args.mode)
    print(recommendation.summary())
    if args.apply:
        created = advisor.apply(recommendation)
        print(f"\napplied: built {len(created)} indexes")
    return 0


def _cmd_inventory(_args) -> int:
    from repro.storage.database import Database
    from repro.workloads.tpch import generate_tpch

    database = Database("tpch")
    generate_tpch(database, scale=0.5)
    database.table("lineitem").set_primary_btree(
        ["l_orderkey", "l_linenumber"])
    database.table("lineitem").create_secondary_columnstore("csi_lineitem")
    for line in database.index_inventory():
        print(line)
    print(f"\ntotal: {database.total_size_bytes() / (1 << 20):.1f} MB")
    return 0


def _cmd_check(args) -> int:
    import random

    from repro.core.errors import StorageError
    from repro.engine.executor import Executor
    from repro.storage.checker import check_database
    from repro.storage.database import Database
    from repro.storage.faults import INJECTION_POINTS, InjectedFault
    from repro.workloads.tpch import generate_tpch

    database = Database("checkdb")
    generate_tpch(database, scale=args.scale)
    lineitem = database.table("lineitem")
    lineitem.set_primary_columnstore(rowgroup_size=4096)
    lineitem.create_secondary_btree("ix_ship", ["l_shipdate"])
    orders = database.table("orders")
    orders.set_primary_btree(["o_orderkey"])
    orders.create_secondary_columnstore("csi_orders", rowgroup_size=4096)

    executor = Executor(database)
    statements = [
        "UPDATE TOP (500) lineitem SET l_quantity += 1 "
        "WHERE l_shipdate >= '1992-01-01'",
        "DELETE TOP (200) FROM lineitem WHERE l_quantity > 40",
        "UPDATE TOP (300) orders SET o_totalprice += 10 "
        "WHERE o_orderkey >= 1",
    ]
    injector = database.fault_injector
    rng = random.Random(11)
    faults_survived = 0
    for sql in statements:
        if args.faults:
            # Arm a random point before each statement; a fault must
            # roll the statement back, after which it reruns clean.
            injector.arm(rng.choice(INJECTION_POINTS), on_hit=1)
            try:
                executor.execute(sql)
            except (InjectedFault, StorageError):
                faults_survived += 1
            injector.disarm()
        executor.execute(sql)
    lineitem.primary.reorganize()
    orders.secondary_indexes["csi_orders"].rebuild()

    result = check_database(database)
    if args.faults:
        print(f"injected faults survived: {faults_survived}")
    print(result.summary())
    return 0 if result.ok else 1


def _cmd_analyze(args) -> int:
    import json

    from repro.bench.figure9 import give_all_tables_primary_btrees
    from repro.engine.executor import Executor
    from repro.storage.database import Database

    database = Database(args.workload)
    if args.workload == "tpch":
        from repro.workloads.tpch import generate_tpch
        generate_tpch(database, scale=args.scale)
    else:
        from repro.workloads.tpcds import generate_tpcds
        generate_tpcds(database, scale=args.scale)
    if args.design == "csi":
        for table in database.tables():
            table.set_primary_columnstore()
    else:
        give_all_tables_primary_btrees(database)

    executor = Executor(database)
    grant = args.grant_kb << 10 if args.grant_kb is not None else None
    analyzed = executor.explain_analyze(args.sql, cold=args.cold,
                                        memory_grant_bytes=grant)
    print(analyzed.format())
    if args.trace:
        with open(args.trace, "w") as handle:
            json.dump(analyzed.to_chrome_trace(), handle, indent=1)
        print(f"\nchrome trace written to {args.trace} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def _cmd_monitor(args) -> int:
    import json

    from repro.bench.figure9 import give_all_tables_primary_btrees
    from repro.bench.reporting import format_table
    from repro.engine.dmv import snapshot, to_prometheus, unused_index_report
    from repro.engine.executor import Executor
    from repro.engine.query_store import QueryStore
    from repro.storage.database import Database
    from repro.workloads.tpcds import generate_queries, generate_tpcds

    database = Database("monitor")
    generate_tpcds(database, scale=args.scale)
    give_all_tables_primary_btrees(database)
    # A hybrid design so every DMV has something to report: a secondary
    # columnstore on the fact table (rowgroup/segment telemetry) and a
    # deliberately never-read B+ tree (the unused-index report's bait).
    database.table("store_sales").create_secondary_columnstore(
        "csi_store_sales", rowgroup_size=4096)
    database.table("web_sales").create_secondary_btree(
        "ix_ws_item_unused", ["ws_item_sk"])
    query_store = QueryStore()
    executor = Executor(database, query_store=query_store)

    queries = generate_queries(args.queries)
    dml = [
        "UPDATE TOP (300) store_sales SET ss_quantity += 1 "
        "WHERE ss_sold_date_sk BETWEEN 100 AND 160",
        "DELETE TOP (150) FROM store_sales WHERE ss_quantity > 95",
        "UPDATE TOP (200) store_sales SET ss_net_profit += 1 "
        "WHERE ss_store_sk = 3",
    ]

    def run_round() -> None:
        """One monitoring interval's worth of user work."""
        for sql in queries:
            executor.execute(sql)
        for sql in dml:
            executor.execute(sql)

    def print_report() -> None:
        """Human report, assembled by querying the DMVs through SQL."""
        usage = executor.execute(
            "SELECT table_name, index_name, index_kind, user_seeks, "
            "user_scans, user_lookups, user_updates, segments_scanned, "
            "segments_skipped FROM dm_db_index_usage_stats "
            "ORDER BY table_name")
        print(format_table(
            ["table", "index", "kind", "seeks", "scans", "lookups",
             "updates", "seg scan", "seg skip"],
            usage.rows, title="dm_db_index_usage_stats"))
        groups = executor.execute(
            "SELECT index_name, row_group_id, state, total_rows, "
            "deleted_rows, size_in_bytes, delta_store_rows, "
            "delete_buffer_rows "
            "FROM dm_db_column_store_row_group_physical_stats "
            "ORDER BY index_name")
        print()
        print(format_table(
            ["index", "rg", "state", "rows", "deleted", "bytes",
             "delta", "del buf"],
            groups.rows,
            title="dm_db_column_store_row_group_physical_stats"))
        missing = executor.execute(
            "SELECT table_name, equality_columns, inequality_columns, "
            "statement_count, avg_selectivity "
            "FROM dm_db_missing_index_details ORDER BY table_name")
        print()
        print(format_table(
            ["table", "equality", "inequality", "stmts", "avg sel"],
            missing.rows, title="dm_db_missing_index_details"))
        caches = executor.execute(
            "SELECT cache_name, entries, hits, misses, hit_ratio "
            "FROM dm_os_memory_cache_counters ORDER BY cache_name")
        print()
        print(format_table(
            ["cache", "entries", "hits", "misses", "hit ratio"],
            caches.rows, title="dm_os_memory_cache_counters"))
        waits = executor.execute(
            "SELECT wait_type, waiting_tasks_count, wait_time_ms, "
            "max_wait_time_ms FROM dm_os_wait_stats "
            "ORDER BY wait_time_ms DESC")
        print()
        print(format_table(
            ["wait type", "waits", "total ms", "max ms"],
            waits.rows, title="dm_os_wait_stats (top waits)"))
        recent = executor.execute(
            "SELECT event_id, timestamp, event_name, session_id "
            "FROM dm_xe_ring_buffer ORDER BY event_id DESC")
        print()
        print(format_table(
            ["event", "clock", "name", "session"],
            recent.rows[:8],
            title="dm_xe_ring_buffer (most recent events)"))
        unused = unused_index_report(database)
        print()
        if unused:
            print(format_table(
                ["table", "index", "kind", "updates", "bytes"],
                [(u["table_name"], u["index_name"], u["index_kind"],
                  u["user_updates"], u["size_bytes"]) for u in unused],
                title="unused indexes (reads=0)"))
        else:
            print("unused indexes (reads=0): none")
        print(f"\nlogical clock: {database.telemetry.clock.now} statements")

    def print_history() -> None:
        """Per-interval telemetry: the drift-detector's time series."""
        samples = database.history.samples()
        if not samples:
            return
        rows = []
        for sample in samples[-8:]:
            top = max(sample["waits"].items(),
                      key=lambda kv: (kv[1]["wait_ms"], kv[1]["count"]))
            top_text = (f"{top[0]} {top[1]['count']}x" if top[1]["count"]
                        else "-")
            rows.append((
                sample["clock"], sample["statements"], sample["events"],
                sample["cache_hits"], sample["cache_misses"], top_text,
            ))
        print()
        print(format_table(
            ["clock", "stmts", "events", "cache hit", "cache miss",
             "top wait"],
            rows, title=f"telemetry history (interval="
                        f"{database.history.interval} statements)"))

    rounds = max(1, args.watch)
    for round_no in range(rounds):
        run_round()
        # Each watch round closes one telemetry interval, so the history
        # panel always shows the round that just ran.
        database.history.sample_now(database)
        if args.snapshot or args.prometheus:
            continue
        if rounds > 1:
            print(f"=== round {round_no + 1}/{rounds} ===")
        print_report()
        print_history()
        if round_no + 1 < rounds:
            print()
    if args.snapshot:
        print(json.dumps(snapshot(database, query_store=query_store),
                         indent=1, default=str))
    if args.prometheus:
        print(to_prometheus(database, query_store=query_store), end="")
    if args.events_jsonl:
        written = database.events.write_jsonl(args.events_jsonl)
        print(f"{written} events written to {args.events_jsonl}")
    return 0


def _cmd_serve(args) -> int:
    import os

    from repro.server.frontend import serve
    from repro.server.session import SessionManager
    from repro.server.bench import build_ch_database
    from repro.storage.database import Database
    from repro.storage.wal import SNAPSHOT_FILENAME

    if args.data_dir and os.path.exists(
            os.path.join(args.data_dir, SNAPSHOT_FILENAME)):
        # Existing durable directory: crash-recover it and serve that.
        # With --pool-mb the snapshot opens lazily behind a demand-paging
        # buffer pool, so the served tables may exceed memory.
        if args.pool_mb is not None:
            database = Database.open(
                args.data_dir, paging=True,
                pool_bytes=args.pool_mb * 1024 * 1024)
            print(f"demand paging: {args.pool_mb} MiB buffer pool over "
                  f"{os.path.join(args.data_dir, SNAPSHOT_FILENAME)}")
        else:
            database = Database.open(args.data_dir)
        print(database.last_recovery.summary())
    else:
        if args.pool_mb is not None:
            raise SystemExit(
                "--pool-mb needs an existing durable --data-dir (build "
                "one first: serve with --data-dir, then restart)")
        database = build_ch_database(n_warehouses=args.warehouses)
        if args.data_dir:
            # Build in memory (fast, unlogged), then snapshot + attach
            # the WAL: every statement served from here on is durable.
            database.enable_durability(args.data_dir)
            print(f"durable: snapshot + WAL in {args.data_dir}")
    manager = SessionManager(
        database,
        morsel_workers=args.morsel_workers,
        io_replay_scale=args.io_replay_scale,
    )
    mode = ("morsel-parallel" if args.morsel_workers
            else "serial") + (" cold" if args.cold else " hot")
    print(f"serving CH database ({args.warehouses} warehouses, {mode} "
          f"scans) on {args.host}:{args.port}")
    print("protocol: one SQL statement per line in, one JSON object per "
          "line out; empty line closes the session")
    try:
        serve(manager, host=args.host, port=args.port, cold=args.cold)
    finally:
        if database.durable:
            manager.checkpoint()
        manager.close()
        if database.wal is not None:
            database.wal.close()
    return 0


def _cmd_recover(args) -> int:
    import json

    from repro.core.errors import RecoveryError
    from repro.storage.recovery import recover

    try:
        _, report = recover(args.data_dir)
    except RecoveryError as exc:
        print(f"unrecoverable: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=1))
    else:
        print(report.summary())
    return 0 if report.check_ok else 1


def _cmd_crashtest(args) -> int:
    from repro.storage.crashtest import run_chaos

    report = run_chaos(
        n_random=args.n, seed=args.seed,
        n_sessions=args.sessions, n_statements=args.statements,
        out_path=args.out or None, keep_failures=args.keep_failures,
    )
    for entry in report["iterations"]:
        label = entry["crash_point"] or entry["mode"]
        status = "ok" if entry["ok"] else "FAIL"
        print(f"  [{entry['iteration']:3d}] {label:16s} "
              f"exit={entry['child_exit']} {status}")
        for problem in entry["problems"]:
            print(f"        - {problem}")
    print(f"{report['total'] - report['failures']}/{report['total']} "
          f"iterations recovered to exactly the committed prefix")
    if args.out:
        print(f"report written to {args.out}")
    return 0 if report["ok"] else 1


def _cmd_crash_child(args) -> int:
    from repro.storage.crashtest import run_child

    return run_child(
        args.data_dir, args.oracle, args.seed, args.sessions,
        args.statements, crash_point=args.crash_point,
        crash_hit=args.crash_hit, checkpoint_every=args.checkpoint_every,
    )


def _cmd_bench_serving(args) -> int:
    import json

    from repro.bench.reporting import format_table
    from repro.server.bench import run_serving_bench

    report = run_serving_bench(
        session_counts=tuple(args.sessions),
        rounds=args.rounds,
        morsel_workers=args.morsel_workers,
        io_replay_scale=args.io_replay_scale,
        fig1_scale=args.fig1_scale,
        fig1_replay_scale=args.fig1_replay_scale,
        out_path=args.out,
        wait_stats_out=args.wait_stats_out,
        events_out=args.events_out,
    )
    print(format_table(
        ["sessions", "scan mode", "statements", "wall s", "QPS"],
        [(row["sessions"], row["scan_mode"], row["statements"],
          row["wall_s"], row["qps"]) for row in report["ch_qps"]],
        title="CH mixed workload, sustained QPS"))
    fig1 = report["fig1_morsel"]
    print()
    print(format_table(
        ["sel%", "serial ms", "morsel ms", "speedup"],
        list(zip(fig1["selectivity_pct"], fig1["serial_wall_ms"],
                 fig1["morsel_wall_ms"], fig1["speedup"])),
        title=f"Q1 sweep wall clock, {fig1['rows']} rows "
              f"({fig1['rowgroups']} rowgroups)"))
    print()
    print("acceptance: " + json.dumps(report["acceptance"]))
    if args.out:
        print(f"report written to {args.out}")
    if args.wait_stats_out:
        print(f"wait-stats snapshot written to {args.wait_stats_out}")
    if args.events_out:
        print(f"extended events written to {args.events_out}")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Columnstore and B+ tree - Are "
                    "Hybrid Physical Designs Important?' (SIGMOD 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="quickstart walkthrough")
    demo.add_argument("--data-dir", default=None,
                      help="also save the final database here, reopen "
                           "it, and verify the round trip")

    micro = sub.add_parser("micro", help="run a micro-benchmark sweep")
    micro.add_argument("--experiment", default="selectivity",
                       choices=("selectivity", "groupby", "updates",
                                "scancache", "encoded-numeric"))
    micro.add_argument("--rows", type=int, default=200_000)
    micro.add_argument("--cache-mb", type=int, default=64,
                       help="decoded-segment cache budget (scancache)")
    micro.add_argument("--no-cache", action="store_true",
                       help="disable the decoded-segment cache (scancache)")

    tune = sub.add_parser("tune", help="tune a workload with the advisor")
    tune.add_argument("--workload", default="tpcds",
                      choices=("tpcds", "cust1", "cust2", "cust3",
                               "cust4", "cust5"))
    tune.add_argument("--mode", default="hybrid",
                      choices=("hybrid", "btree_only", "csi_only"))
    tune.add_argument("--apply", action="store_true",
                      help="build the recommended indexes")

    sub.add_parser("inventory", help="print a sample physical design")

    check = sub.add_parser(
        "check", help="run the consistency checker over a workload build")
    check.add_argument("--scale", type=float, default=0.1,
                       help="TPC-H scale factor for the workload build")
    check.add_argument("--faults", action="store_true",
                       help="inject a storage fault before each statement")

    analyze = sub.add_parser(
        "analyze",
        help="EXPLAIN ANALYZE one statement against a generated workload")
    analyze.add_argument("sql", help="the statement to run and analyze")
    analyze.add_argument("--workload", default="tpch",
                         choices=("tpch", "tpcds"),
                         help="which generated database to run against")
    analyze.add_argument("--scale", type=float, default=0.1,
                         help="workload scale factor")
    analyze.add_argument("--design", default="btree",
                         choices=("btree", "csi"),
                         help="primary index design for every table")
    analyze.add_argument("--cold", action="store_true",
                         help="charge storage I/O (cold run)")
    analyze.add_argument("--grant-kb", type=int, default=None,
                         help="memory grant in KB (default: cost-model)")
    analyze.add_argument("--trace", metavar="FILE", default=None,
                         help="also write a Chrome trace-event JSON here")

    monitor = sub.add_parser(
        "monitor",
        help="run a mini-workload and report its DMV telemetry")
    monitor.add_argument("--scale", type=float, default=0.2,
                         help="TPC-DS scale factor for the workload build")
    monitor.add_argument("--queries", type=int, default=24,
                         help="number of workload queries per round")
    monitor.add_argument("--watch", type=int, default=1, metavar="N",
                         help="repeat the workload N rounds, reporting "
                              "after each")
    monitor.add_argument("--snapshot", action="store_true",
                         help="print the JSON telemetry snapshot instead "
                              "of the report")
    monitor.add_argument("--prometheus", action="store_true",
                         help="print the Prometheus text exposition "
                              "instead of the report")
    monitor.add_argument("--events-jsonl", metavar="FILE", default=None,
                         help="also export the extended-events ring "
                              "buffer as JSON Lines to FILE")

    serve = sub.add_parser(
        "serve",
        help="serve a CH database over a line-protocol TCP socket")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=5433)
    serve.add_argument("--warehouses", type=int, default=2,
                       help="CH scale (TPC-C warehouses)")
    serve.add_argument("--morsel-workers", type=int, default=4,
                       help="morsel-scan worker threads (0 = serial scans)")
    serve.add_argument("--io-replay-scale", type=float, default=0.0,
                       help="real ms slept per modeled I/O-wait ms "
                            "(0 = never sleep)")
    serve.add_argument("--cold", action="store_true",
                       help="run client statements cold (charge modeled "
                            "I/O)")
    serve.add_argument("--data-dir", default=None,
                       help="durable storage directory: recover and "
                            "serve it if it holds a snapshot, else "
                            "build the CH database and make it durable "
                            "there (WAL + checkpoint on shutdown)")
    serve.add_argument("--pool-mb", type=int, default=None,
                       help="demand-page the snapshot through a buffer "
                            "pool of this many MiB instead of loading "
                            "it fully into memory (requires an existing "
                            "--data-dir snapshot; enables serving "
                            "tables larger than memory)")

    recover = sub.add_parser(
        "recover",
        help="crash-recover a durable data directory and report "
             "(exit 0 clean, 1 checker findings, 2 unrecoverable)")
    recover.add_argument("data_dir", help="directory with snapshot + WAL")
    recover.add_argument("--json", action="store_true",
                         help="print the report as JSON")

    crashtest = sub.add_parser(
        "crashtest",
        help="chaos suite: kill a live serving workload mid-statement "
             "(crash points, SIGKILL, WAL truncation) and verify every "
             "recovery lands on exactly the committed prefix")
    crashtest.add_argument("--n", type=int, default=25,
                           help="randomized iterations after the "
                                "one-per-crash-point sweep")
    crashtest.add_argument("--seed", type=int, default=0)
    crashtest.add_argument("--sessions", type=int, default=3)
    crashtest.add_argument("--statements", type=int, default=30,
                           help="statements per session")
    crashtest.add_argument("--out", default="",
                           help="write the JSON report here")
    crashtest.add_argument("--keep-failures", action="store_true",
                           help="keep the work dirs of failed iterations")

    crash_child = sub.add_parser("crash-child")  # internal: harness child
    crash_child.add_argument("data_dir")
    crash_child.add_argument("oracle")
    crash_child.add_argument("--seed", type=int, default=0)
    crash_child.add_argument("--sessions", type=int, default=3)
    crash_child.add_argument("--statements", type=int, default=30)
    crash_child.add_argument("--crash-point", default=None)
    crash_child.add_argument("--crash-hit", type=int, default=1)
    crash_child.add_argument("--checkpoint-every", type=int, default=7)

    bench_serving = sub.add_parser(
        "bench-serving",
        help="measure sustained QPS vs session count and morsel-scan "
             "speedup; write BENCH_serving.json")
    bench_serving.add_argument("--sessions", type=int, nargs="+",
                               default=[1, 2, 4, 8],
                               help="session counts to sweep")
    bench_serving.add_argument("--rounds", type=int, default=2,
                               help="CH mix replays per session")
    bench_serving.add_argument("--morsel-workers", type=int, default=4)
    bench_serving.add_argument("--io-replay-scale", type=float,
                               default=250.0,
                               help="real ms slept per modeled I/O-wait "
                                    "ms in the QPS runs (restores the "
                                    "native-engine I/O:CPU ratio)")
    bench_serving.add_argument("--fig1-scale", type=int, default=10,
                               help="Q1 sweep rows = scale x 200k")
    bench_serving.add_argument("--fig1-replay-scale", type=float,
                               default=4.0,
                               help="I/O replay scale for the Q1 sweep")
    bench_serving.add_argument("--out", default="BENCH_serving.json",
                               help="output JSON path ('' to skip)")
    bench_serving.add_argument("--wait-stats-out", default=None,
                               metavar="FILE",
                               help="also write per-cell wait-stats "
                                    "snapshots (server + per-session) "
                                    "as JSON to FILE")
    bench_serving.add_argument("--events-out", default=None, metavar="FILE",
                               help="also write the extended-events ring "
                                    "buffer as JSON Lines to FILE")

    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "micro": _cmd_micro,
        "tune": _cmd_tune,
        "inventory": _cmd_inventory,
        "check": _cmd_check,
        "analyze": _cmd_analyze,
        "monitor": _cmd_monitor,
        "serve": _cmd_serve,
        "bench-serving": _cmd_bench_serving,
        "recover": _cmd_recover,
        "crashtest": _cmd_crashtest,
        "crash-child": _cmd_crash_child,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
