"""Command-line interface: ``python -m repro <command>``.

Commands
--------

``demo``
    The quickstart walkthrough (B+ tree vs columnstore, advisor loop).
``micro --experiment {selectivity,updates,groupby,scancache}``
    Run one micro-benchmark sweep and print the paper-style table
    (``scancache`` times repeated scans against the decoded-segment
    cache; tune it with ``--cache-mb`` / ``--no-cache``).
``tune --workload {tpcds,cust1..cust5} [--mode hybrid|btree_only|csi_only]``
    Tune a workload and print the recommendation.
``inventory``
    Build the TPC-H database and print its physical design inventory.
``check [--faults]``
    Build a small hybrid-design workload, run DML through it, and run
    the CHECKDB-style consistency checker over every index; with
    ``--faults`` every statement also survives an injected storage
    fault first (exit code 1 on any inconsistency).
``analyze "<sql>" [--workload tpch|tpcds] [--design btree|csi] [--cold]``
    EXPLAIN ANALYZE: run one statement against a generated workload
    database and print the plan tree annotated with estimated vs actual
    rows and per-operator elapsed/CPU/I-O/memory; ``--trace FILE``
    additionally writes a Chrome trace-event JSON of the plan timeline.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(_args) -> int:
    import random

    from repro import (Column, Database, Executor, INT, TableSchema,
                       TuningAdvisor, Workload, varchar)

    def build() -> Database:
        """Construct and populate the demo database."""
        database = Database("demo")
        orders = database.create_table(TableSchema("orders", [
            Column("o_id", INT, nullable=False),
            Column("o_customer", INT, nullable=False),
            Column("o_status", varchar(1)),
            Column("o_amount", INT),
            Column("o_region", INT),
        ]))
        rng = random.Random(7)
        orders.bulk_load([
            (i, rng.randrange(5_000), rng.choice("NPS"),
             rng.randrange(10_000), rng.randrange(8))
            for i in range(100_000)
        ])
        return database

    selective = ("SELECT sum(o_amount) FROM orders "
                 "WHERE o_id BETWEEN 500 AND 520")
    analytic = ("SELECT o_region, sum(o_amount) t FROM orders "
                "GROUP BY o_region")
    print("=== the trade-off (Figure 1 in miniature) ===")
    for design in ("B+ tree", "columnstore"):
        database = build()
        if design == "B+ tree":
            database.table("orders").set_primary_btree(["o_id"])
        else:
            database.table("orders").set_primary_columnstore()
        executor = Executor(database)
        sel = executor.execute(selective).metrics.cpu_ms
        scan = executor.execute(analytic).metrics.cpu_ms
        print(f"  {design:12s}: selective {sel:8.3f} ms CPU, "
              f"analytic {scan:8.3f} ms CPU")

    print("\n=== the advisor picks a hybrid design ===")
    database = build()
    database.table("orders").set_primary_btree(["o_id"])
    workload = Workload.from_sql([
        "SELECT sum(o_amount) FROM orders WHERE o_customer = 42",
        analytic,
    ], database)
    advisor = TuningAdvisor(database)
    recommendation = advisor.tune(workload)
    print(recommendation.summary())
    return 0


def _cmd_micro(args) -> int:
    from repro.bench.reporting import format_table
    from repro.engine.executor import Executor
    from repro.storage.database import Database
    from repro.workloads.synthetic import (
        PAPER_SELECTIVITIES_PCT,
        make_group_table,
        make_uniform_table,
        q1_scan,
        q3_group_by,
    )

    if args.experiment == "selectivity":
        rows = []
        db_b = Database()
        make_uniform_table(db_b, "micro", args.rows, 1, seed=5)
        db_b.table("micro").set_primary_btree(["col1"])
        db_c = Database()
        make_uniform_table(db_c, "micro", args.rows, 1, seed=5)
        db_c.table("micro").set_primary_columnstore()
        ex_b, ex_c = Executor(db_b), Executor(db_c)
        for selectivity in PAPER_SELECTIVITIES_PCT:
            sql = q1_scan(selectivity)
            bt = ex_b.execute(sql)
            csi = ex_c.execute(sql)
            rows.append((selectivity, bt.metrics.elapsed_ms,
                         csi.metrics.elapsed_ms, bt.metrics.cpu_ms,
                         csi.metrics.cpu_ms))
        print(format_table(
            ["sel%", "btree ms", "CSI ms", "btree CPU", "CSI CPU"], rows,
            title=f"Q1 selectivity sweep, {args.rows} rows (Figure 1)"))
        return 0

    if args.experiment == "groupby":
        rows = []
        for n_groups in (100, 1_000, 10_000, 50_000):
            db_b = Database()
            make_group_table(db_b, "micro3", args.rows, n_groups)
            db_b.table("micro3").set_primary_btree(["col1"])
            db_c = Database()
            make_group_table(db_c, "micro3", args.rows, n_groups)
            db_c.table("micro3").set_primary_columnstore()
            grant = 1 << 20
            bt = Executor(db_b).execute(q3_group_by(),
                                        memory_grant_bytes=grant)
            csi = Executor(db_c).execute(q3_group_by(),
                                         memory_grant_bytes=grant)
            rows.append((n_groups, bt.metrics.elapsed_ms,
                         csi.metrics.elapsed_ms,
                         csi.metrics.spilled_bytes // 1024))
        print(format_table(
            ["#groups", "btree ms", "CSI ms", "CSI spill KB"], rows,
            title=f"GROUP BY sweep, {args.rows} rows (Figure 4)"))
        return 0

    if args.experiment == "scancache":
        import time

        from repro.bench.reporting import format_segment_cache
        from repro.workloads.synthetic import make_group_table

        database = Database(
            segment_cache_enabled=not args.no_cache,
            segment_cache_budget_bytes=args.cache_mb << 20,
        )
        make_group_table(database, "micro3", args.rows, 1_000)
        database.table("micro3").set_primary_columnstore(rowgroup_size=8192)
        executor = Executor(database)
        rows = []
        for run in ("cold", "warm", "warm"):
            start = time.perf_counter()
            result = executor.execute(q3_group_by())
            wall_ms = (time.perf_counter() - start) * 1000
            rows.append((run, f"{wall_ms:.1f}", result.metrics.elapsed_ms,
                         result.metrics.segment_cache_hits,
                         result.metrics.segment_cache_misses))
        print(format_table(
            ["run", "wall ms", "model ms", "cache hits", "cache misses"],
            rows,
            title=f"Repeated columnstore scan, {args.rows} rows "
                  f"(decoded-segment cache "
                  f"{'off' if args.no_cache else 'on'})"))
        print()
        print(format_segment_cache(database.segment_cache,
                                   title="segment cache totals"))
        return 0

    if args.experiment == "updates":
        from repro.workloads.tpch import generate_tpch
        rows = []
        for design in ("btree", "btree+csi", "pri_csi"):
            db = Database()
            generate_tpch(db, scale=0.3)
            lineitem = db.table("lineitem")
            if design in ("btree", "btree+csi"):
                lineitem.set_primary_btree(["l_shipdate"])
            if design == "btree+csi":
                lineitem.create_secondary_columnstore(
                    "csi", rowgroup_size=4096)
            if design == "pri_csi":
                lineitem.set_primary_columnstore(rowgroup_size=4096)
            executor = Executor(db)
            result = executor.execute(
                "UPDATE TOP (1000) lineitem SET l_quantity += 1 "
                "WHERE l_shipdate >= '1992-01-01'")
            rows.append((design, result.metrics.elapsed_ms))
        print(format_table(["design", "1000-row update ms"], rows,
                           title="Update cost by design (Figure 5)"))
        return 0

    print(f"unknown experiment {args.experiment!r}", file=sys.stderr)
    return 2


def _cmd_tune(args) -> int:
    from repro.advisor.advisor import TuningAdvisor
    from repro.advisor.workload import Workload
    from repro.bench.workload_setups import customer_factory, tpcds_factory

    if args.workload == "tpcds":
        database, queries = tpcds_factory()
    else:
        database, queries = customer_factory(args.workload)
    workload = Workload.from_sql(queries, database)
    advisor = TuningAdvisor(database)
    recommendation = advisor.tune(workload, mode=args.mode)
    print(recommendation.summary())
    if args.apply:
        created = advisor.apply(recommendation)
        print(f"\napplied: built {len(created)} indexes")
    return 0


def _cmd_inventory(_args) -> int:
    from repro.storage.database import Database
    from repro.workloads.tpch import generate_tpch

    database = Database("tpch")
    generate_tpch(database, scale=0.5)
    database.table("lineitem").set_primary_btree(
        ["l_orderkey", "l_linenumber"])
    database.table("lineitem").create_secondary_columnstore("csi_lineitem")
    for line in database.index_inventory():
        print(line)
    print(f"\ntotal: {database.total_size_bytes() / (1 << 20):.1f} MB")
    return 0


def _cmd_check(args) -> int:
    import random

    from repro.core.errors import StorageError
    from repro.engine.executor import Executor
    from repro.storage.checker import check_database
    from repro.storage.database import Database
    from repro.storage.faults import INJECTION_POINTS, InjectedFault
    from repro.workloads.tpch import generate_tpch

    database = Database("checkdb")
    generate_tpch(database, scale=args.scale)
    lineitem = database.table("lineitem")
    lineitem.set_primary_columnstore(rowgroup_size=4096)
    lineitem.create_secondary_btree("ix_ship", ["l_shipdate"])
    orders = database.table("orders")
    orders.set_primary_btree(["o_orderkey"])
    orders.create_secondary_columnstore("csi_orders", rowgroup_size=4096)

    executor = Executor(database)
    statements = [
        "UPDATE TOP (500) lineitem SET l_quantity += 1 "
        "WHERE l_shipdate >= '1992-01-01'",
        "DELETE TOP (200) FROM lineitem WHERE l_quantity > 40",
        "UPDATE TOP (300) orders SET o_totalprice += 10 "
        "WHERE o_orderkey >= 1",
    ]
    injector = database.fault_injector
    rng = random.Random(11)
    faults_survived = 0
    for sql in statements:
        if args.faults:
            # Arm a random point before each statement; a fault must
            # roll the statement back, after which it reruns clean.
            injector.arm(rng.choice(INJECTION_POINTS), on_hit=1)
            try:
                executor.execute(sql)
            except (InjectedFault, StorageError):
                faults_survived += 1
            injector.disarm()
        executor.execute(sql)
    lineitem.primary.reorganize()
    orders.secondary_indexes["csi_orders"].rebuild()

    result = check_database(database)
    if args.faults:
        print(f"injected faults survived: {faults_survived}")
    print(result.summary())
    return 0 if result.ok else 1


def _cmd_analyze(args) -> int:
    import json

    from repro.bench.figure9 import give_all_tables_primary_btrees
    from repro.engine.executor import Executor
    from repro.storage.database import Database

    database = Database(args.workload)
    if args.workload == "tpch":
        from repro.workloads.tpch import generate_tpch
        generate_tpch(database, scale=args.scale)
    else:
        from repro.workloads.tpcds import generate_tpcds
        generate_tpcds(database, scale=args.scale)
    if args.design == "csi":
        for table in database.tables():
            table.set_primary_columnstore()
    else:
        give_all_tables_primary_btrees(database)

    executor = Executor(database)
    grant = args.grant_kb << 10 if args.grant_kb is not None else None
    analyzed = executor.explain_analyze(args.sql, cold=args.cold,
                                        memory_grant_bytes=grant)
    print(analyzed.format())
    if args.trace:
        with open(args.trace, "w") as handle:
            json.dump(analyzed.to_chrome_trace(), handle, indent=1)
        print(f"\nchrome trace written to {args.trace} "
              f"(open in chrome://tracing or ui.perfetto.dev)")
    return 0


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Columnstore and B+ tree - Are "
                    "Hybrid Physical Designs Important?' (SIGMOD 2018)")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="quickstart walkthrough")

    micro = sub.add_parser("micro", help="run a micro-benchmark sweep")
    micro.add_argument("--experiment", default="selectivity",
                       choices=("selectivity", "groupby", "updates",
                                "scancache"))
    micro.add_argument("--rows", type=int, default=200_000)
    micro.add_argument("--cache-mb", type=int, default=64,
                       help="decoded-segment cache budget (scancache)")
    micro.add_argument("--no-cache", action="store_true",
                       help="disable the decoded-segment cache (scancache)")

    tune = sub.add_parser("tune", help="tune a workload with the advisor")
    tune.add_argument("--workload", default="tpcds",
                      choices=("tpcds", "cust1", "cust2", "cust3",
                               "cust4", "cust5"))
    tune.add_argument("--mode", default="hybrid",
                      choices=("hybrid", "btree_only", "csi_only"))
    tune.add_argument("--apply", action="store_true",
                      help="build the recommended indexes")

    sub.add_parser("inventory", help="print a sample physical design")

    check = sub.add_parser(
        "check", help="run the consistency checker over a workload build")
    check.add_argument("--scale", type=float, default=0.1,
                       help="TPC-H scale factor for the workload build")
    check.add_argument("--faults", action="store_true",
                       help="inject a storage fault before each statement")

    analyze = sub.add_parser(
        "analyze",
        help="EXPLAIN ANALYZE one statement against a generated workload")
    analyze.add_argument("sql", help="the statement to run and analyze")
    analyze.add_argument("--workload", default="tpch",
                         choices=("tpch", "tpcds"),
                         help="which generated database to run against")
    analyze.add_argument("--scale", type=float, default=0.1,
                         help="workload scale factor")
    analyze.add_argument("--design", default="btree",
                         choices=("btree", "csi"),
                         help="primary index design for every table")
    analyze.add_argument("--cold", action="store_true",
                         help="charge storage I/O (cold run)")
    analyze.add_argument("--grant-kb", type=int, default=None,
                         help="memory grant in KB (default: cost-model)")
    analyze.add_argument("--trace", metavar="FILE", default=None,
                         help="also write a Chrome trace-event JSON here")

    args = parser.parse_args(argv)
    handlers = {
        "demo": _cmd_demo,
        "micro": _cmd_micro,
        "tune": _cmd_tune,
        "inventory": _cmd_inventory,
        "check": _cmd_check,
        "analyze": _cmd_analyze,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
