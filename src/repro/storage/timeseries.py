"""Deterministic time-series telemetry history keyed to the LogicalClock.

The DMVs expose *point-in-time* snapshots; the ROADMAP's closed-loop
online tuner (per *Predictive Indexing*, PAPERS.md) needs a *history* —
"waits per interval", "statements per interval", "cache hit rate over
time" — to detect workload drift. SQL Server ships this as the Query
Store's fixed-duration runtime intervals and as management-pack
telemetry collection; this module is the repro analog.

:class:`TelemetryHistory` retains up to ``retention`` interval samples,
one per ``interval`` *logical-clock ticks* — i.e. per executed
statements, never per wall second. The executor calls
:meth:`maybe_sample` after each statement; when the clock has crossed
an interval boundary one sample is taken. Because sampling is keyed to
the deterministic statement sequence, two identical runs produce the
same number of samples at the same clock stamps with the same counter
values — :meth:`digest` proves it.

Determinism split, same contract as the rest of the observability
stack:

* The **deterministic core** of each sample — clock stamp, statements
  per interval, wait *counts* per type, event counts, cache and
  buffer-pool hit/miss counts — enters :meth:`digest`.
* The **wall-clock overlay** — per-type wait milliseconds and the
  sample's ``wall_time_s`` — rides along for operators (the
  ``repro monitor`` top-waits panel and Prometheus histograms read it)
  but is excluded from the digest, so determinism tests hold on real,
  jittery hardware.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import deque
from typing import Dict, List, Optional

#: Sample every this-many statements by default. Small enough that the
#: short serving benches produce several samples, large enough that
#: per-statement overhead stays negligible.
DEFAULT_SAMPLE_INTERVAL = 16

#: Retain this many interval samples by default (older samples fall off
#: the front) — mirrors the Query Store's bounded runtime-interval
#: retention.
DEFAULT_RETENTION = 256


class TelemetryHistory:
    """Bounded history of interval telemetry samples.

    One instance is owned per :class:`~repro.storage.database.Database`
    (``database.history``). Samples are dicts (JSON-friendly, stable key
    order irrelevant — the digest sorts) with cumulative-counter
    *deltas* over the interval, which is what a drift detector consumes.
    """

    def __init__(self, interval: int = DEFAULT_SAMPLE_INTERVAL,
                 retention: int = DEFAULT_RETENTION):
        if interval <= 0:
            raise ValueError("sample interval must be positive")
        if retention <= 0:
            raise ValueError("retention must be positive")
        self.interval = int(interval)
        self.retention = int(retention)
        self._samples: "deque[Dict[str, object]]" = deque(maxlen=self.retention)
        self._lock = threading.Lock()
        self._next_due = self.interval
        self._prev: Optional[Dict[str, object]] = None
        self.samples_taken = 0

    # ----------------------------------------------------------- sampling
    def _cumulative(self, database) -> Dict[str, object]:
        """Read the engine's cumulative observability counters once."""
        cum: Dict[str, object] = {
            "statements": database.telemetry.clock.now,
        }
        waits = getattr(database, "waits", None)
        if waits is not None:
            cum["waits"] = {
                t: (acc.waiting_tasks_count, acc.wait_time_ms)
                for t, acc in waits.server_stats().items()}
        else:
            cum["waits"] = {}
        events = getattr(database, "events", None)
        cum["events"] = events.emitted if events is not None else 0
        cache = database.segment_cache
        cum["cache_hits"] = cache.stats.hits
        cum["cache_misses"] = cache.stats.misses
        pool = database.buffer_pool
        if pool is not None:
            cum["pool_hits"] = pool.hits
            cum["pool_misses"] = pool.misses
            cum["pool_evictions"] = pool.evictions
        return cum

    def _build_sample(self, clock_now: int,
                      cum: Dict[str, object]) -> Dict[str, object]:
        prev = self._prev or {}
        prev_waits = prev.get("waits", {})
        wait_rows: Dict[str, Dict[str, object]] = {}
        for wait_type, (count, ms) in cum["waits"].items():
            prev_count, prev_ms = prev_waits.get(wait_type, (0, 0.0))
            wait_rows[wait_type] = {
                "count": count - prev_count,
                "wait_ms": round(max(0.0, ms - prev_ms), 4),
            }
        sample: Dict[str, object] = {
            "clock": clock_now,
            "statements": cum["statements"] - prev.get("statements", 0),
            "waits": wait_rows,
            "events": cum["events"] - prev.get("events", 0),
            "cache_hits": cum["cache_hits"] - prev.get("cache_hits", 0),
            "cache_misses": cum["cache_misses"] - prev.get("cache_misses", 0),
            # Wall-clock overlay: operator-facing, excluded from digest().
            "wall_time_s": round(time.time(), 3),
        }
        if "pool_hits" in cum:
            sample["pool_hits"] = cum["pool_hits"] - prev.get("pool_hits", 0)
            sample["pool_misses"] = (
                cum["pool_misses"] - prev.get("pool_misses", 0))
            sample["pool_evictions"] = (
                cum["pool_evictions"] - prev.get("pool_evictions", 0))
        return sample

    def maybe_sample(self, database) -> Optional[Dict[str, object]]:
        """Take one sample if the logical clock has crossed the next
        interval boundary; returns the sample or None.

        Called by the executor after every statement; under concurrent
        sessions the lock ensures exactly one session samples per
        boundary crossing.
        """
        clock_now = database.telemetry.clock.now
        with self._lock:
            if clock_now < self._next_due:
                return None
            # Align the next boundary past the current clock so a burst
            # that crossed several intervals yields one (wider) sample.
            self._next_due = clock_now - (clock_now % self.interval) \
                + self.interval
            return self._sample_locked(database, clock_now)

    def sample_now(self, database) -> Dict[str, object]:
        """Force an immediate sample regardless of the interval (used by
        ``repro monitor`` so each watch round closes an interval)."""
        with self._lock:
            return self._sample_locked(
                database, database.telemetry.clock.now)

    def _sample_locked(self, database, clock_now: int) -> Dict[str, object]:
        cum = self._cumulative(database)
        sample = self._build_sample(clock_now, cum)
        self._prev = cum
        self._samples.append(sample)
        self.samples_taken += 1
        return sample

    # ----------------------------------------------------------- readouts
    def __len__(self) -> int:
        with self._lock:
            return len(self._samples)

    def samples(self) -> List[Dict[str, object]]:
        """Retained samples, oldest first."""
        with self._lock:
            return [dict(s) for s in self._samples]

    def last(self) -> Optional[Dict[str, object]]:
        """The most recent sample, or None before the first boundary."""
        with self._lock:
            return dict(self._samples[-1]) if self._samples else None

    @staticmethod
    def _deterministic_projection(sample: Dict[str, object]) -> Dict[str, object]:
        """The digest-eligible core of one sample: counts only, no wall
        time, no wait milliseconds."""
        out: Dict[str, object] = {
            "clock": sample["clock"],
            "statements": sample["statements"],
            "events": sample["events"],
            "cache_hits": sample["cache_hits"],
            "cache_misses": sample["cache_misses"],
            "waits": {t: row["count"]
                      for t, row in sample.get("waits", {}).items()},
        }
        for key in ("pool_hits", "pool_misses", "pool_evictions"):
            if key in sample:
                out[key] = sample[key]
        return out

    def digest(self) -> str:
        """SHA-256 over the deterministic projection of every retained
        sample — identical across identical runs, wall-clock excluded."""
        projected = [self._deterministic_projection(s)
                     for s in self.samples()]
        blob = json.dumps(projected, sort_keys=True).encode("utf-8")
        return hashlib.sha256(blob).hexdigest()

    def reset(self) -> None:
        """Drop the history and restart interval tracking from the
        current position (the clock itself is untouched)."""
        with self._lock:
            self._samples.clear()
            self._prev = None
            self._next_due = self.interval
            self.samples_taken = 0

    def __repr__(self) -> str:
        with self._lock:
            return (f"TelemetryHistory(samples={len(self._samples)}, "
                    f"interval={self.interval})")
