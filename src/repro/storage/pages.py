"""Struct-packed on-disk page format and database snapshots.

This is the durable half of the storage engine: every in-memory
structure — heap rows, B+ tree leaf entries, compressed columnstore
segments and dictionaries — serializes into fixed-header *pages*, and a
full database snapshot is just a stream of pages written atomically
(temp file + fsync + rename). The page shape follows the classic
slotted-page layout the paper's engine assumes (see *Indexes in
Microsoft SQL Server* in PAPERS.md): a fixed binary header carrying
page id, page type, LSN, and a CRC32 checksum, followed by a
self-describing binary payload.

Page header (32 bytes, little-endian)::

    magic      4s   b"RPPG"
    version    B    format version (currently 1)
    page_type  B    PT_* constant
    reserved   H    zero
    page_id    Q    sequential within the snapshot stream
    lsn        Q    checkpoint LSN the snapshot captures
    payload_len I   bytes of payload following the header
    crc32      I    CRC over (version..payload_len) + payload

The payload is encoded with a small tagged value codec
(:func:`pack_value` / :func:`unpack_value`) covering exactly the value
universe the engine stores after validation — ``None``/bool/int/float/
str/bytes, containers, and 1-D numpy arrays (object arrays element-wise)
— so numpy segment payloads round-trip bit-exactly.

Snapshot layout: one :data:`PT_CATALOG` page, then per table a
:data:`PT_TABLE` page, :data:`PT_ROWS` pages chunking the canonical row
store, and per index a :data:`PT_INDEX` descriptor followed by its data
pages — :data:`PT_BTREE_LEAF` pages of (key, value) leaf entries for B+
trees (restored via ``BPlusTree.bulk_load``), and per row group a
:data:`PT_CSI_GROUP` page (rids, delete bitmap, sort order) plus one
:data:`PT_CSI_SEGMENT` page per column segment, closed by a
:data:`PT_CSI_SIDE` page (delta store + delete buffer) for
columnstores. Heap files carry no data pages: they are rebuilt from the
row store, which is their definition.

Serialization is deterministic (dicts and sets are emitted in sorted
order), which is what lets recovery prove idempotence by comparing
snapshot digests.
"""

from __future__ import annotations

import io
import os
import struct
import threading
import zlib
from typing import BinaryIO, Dict, List, Optional, Tuple

import numpy as np

from repro.core.errors import ProcessAbort, StorageError
from repro.core.schema import Column, TableSchema
from repro.core.types import ColumnType, TypeKind
from repro.storage.btree import (
    BPlusTree,
    PagedLeafSource,
    PagedPrimaryBTreeIndex,
    PagedSecondaryBTreeIndex,
    PrimaryBTreeIndex,
    SecondaryBTreeIndex,
)
from repro.storage.bufferpool import PAGE_BYTES, BufferPool
from repro.storage.columnstore import (
    ColumnstoreIndex,
    ensure_object_ids_above,
)
from repro.storage.compression import (
    ColumnSegment,
    CompressedRowGroup,
    Dictionary,
    SegmentMeta,
)
from repro.storage.faults import FaultInjector, trip
from repro.storage.heap import HeapFile

__all__ = [
    "PAGE_BYTES",
    "load_snapshot",
    "load_snapshot_paged",
    "snapshot_bytes",
    "write_snapshot",
    "SnapshotReader",
]

# ------------------------------------------------------------ page codec

PAGE_MAGIC = b"RPPG"
PAGE_VERSION = 1
PAGE_HEADER = struct.Struct("<4sBBHQQII")

PT_CATALOG = 1
PT_TABLE = 2
PT_ROWS = 3
PT_INDEX = 4
PT_BTREE_LEAF = 5
PT_CSI_GROUP = 6
PT_CSI_SEGMENT = 7
PT_CSI_SIDE = 8

PAGE_TYPE_NAMES = {
    PT_CATALOG: "catalog",
    PT_TABLE: "table",
    PT_ROWS: "rows",
    PT_INDEX: "index",
    PT_BTREE_LEAF: "btree_leaf",
    PT_CSI_GROUP: "csi_group",
    PT_CSI_SEGMENT: "csi_segment",
    PT_CSI_SIDE: "csi_side",
}

#: Rows per PT_ROWS page and leaf entries per PT_BTREE_LEAF page.
ROWS_PER_PAGE = 2048
BTREE_ITEMS_PER_PAGE = 1024

# ----------------------------------------------------------- value codec

_T_NONE = 0
_T_FALSE = 1
_T_TRUE = 2
_T_INT = 3
_T_BIGINT = 4
_T_FLOAT = 5
_T_STR = 6
_T_BYTES = 7
_T_LIST = 8
_T_TUPLE = 9
_T_DICT = 10
_T_NDARRAY = 11
_T_OBJARRAY = 12

_I64 = struct.Struct("<q")
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_INT64_MIN = -(2 ** 63)
_INT64_MAX = 2 ** 63 - 1


def pack_value(value: object, out: bytearray) -> None:
    """Append the tagged binary encoding of ``value`` to ``out``."""
    if value is None:
        out.append(_T_NONE)
    elif isinstance(value, (bool, np.bool_)):
        out.append(_T_TRUE if value else _T_FALSE)
    elif isinstance(value, (int, np.integer)):
        v = int(value)
        if _INT64_MIN <= v <= _INT64_MAX:
            out.append(_T_INT)
            out += _I64.pack(v)
        else:
            raw = str(v).encode("ascii")
            out.append(_T_BIGINT)
            out += _U32.pack(len(raw))
            out += raw
    elif isinstance(value, (float, np.floating)):
        out.append(_T_FLOAT)
        out += _F64.pack(float(value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(_T_STR)
        out += _U32.pack(len(raw))
        out += raw
    elif isinstance(value, (bytes, bytearray)):
        out.append(_T_BYTES)
        out += _U32.pack(len(value))
        out += bytes(value)
    elif isinstance(value, np.ndarray):
        if value.ndim != 1:
            raise StorageError(
                f"only 1-D arrays serialize; got shape {value.shape}")
        if value.dtype == object:
            out.append(_T_OBJARRAY)
            out += _U32.pack(len(value))
            for item in value.tolist():
                pack_value(item, out)
        else:
            dtype = value.dtype.str.encode("ascii")
            raw = np.ascontiguousarray(value).tobytes()
            out.append(_T_NDARRAY)
            out.append(len(dtype))
            out += dtype
            out += _U32.pack(len(value))
            out += raw
    elif isinstance(value, (list, tuple)):
        out.append(_T_LIST if isinstance(value, list) else _T_TUPLE)
        out += _U32.pack(len(value))
        for item in value:
            pack_value(item, out)
    elif isinstance(value, dict):
        # Sorted by key so serialization is order-independent (the
        # digest-based idempotence checks depend on this).
        out.append(_T_DICT)
        out += _U32.pack(len(value))
        for key in sorted(value):
            pack_value(key, out)
            pack_value(value[key], out)
    else:
        raise StorageError(
            f"value of type {type(value).__name__} cannot be serialized")


def unpack_value(buf: bytes, offset: int = 0) -> Tuple[object, int]:
    """Decode one value at ``offset``; returns (value, next offset)."""
    try:
        tag = buf[offset]
    except IndexError:
        raise StorageError("truncated value payload") from None
    offset += 1
    if tag == _T_NONE:
        return None, offset
    if tag == _T_FALSE:
        return False, offset
    if tag == _T_TRUE:
        return True, offset
    try:
        if tag == _T_INT:
            return _I64.unpack_from(buf, offset)[0], offset + 8
        if tag == _T_FLOAT:
            return _F64.unpack_from(buf, offset)[0], offset + 8
        if tag in (_T_BIGINT, _T_STR, _T_BYTES):
            (length,) = _U32.unpack_from(buf, offset)
            offset += 4
            raw = bytes(buf[offset:offset + length])
            if len(raw) != length:
                raise StorageError("truncated value payload")
            offset += length
            if tag == _T_BIGINT:
                return int(raw.decode("ascii")), offset
            if tag == _T_STR:
                return raw.decode("utf-8"), offset
            return raw, offset
        if tag in (_T_LIST, _T_TUPLE):
            (count,) = _U32.unpack_from(buf, offset)
            offset += 4
            items = []
            for _ in range(count):
                item, offset = unpack_value(buf, offset)
                items.append(item)
            return (items if tag == _T_LIST else tuple(items)), offset
        if tag == _T_DICT:
            (count,) = _U32.unpack_from(buf, offset)
            offset += 4
            result = {}
            for _ in range(count):
                key, offset = unpack_value(buf, offset)
                val, offset = unpack_value(buf, offset)
                result[key] = val
            return result, offset
        if tag == _T_NDARRAY:
            dtype_len = buf[offset]
            offset += 1
            dtype = np.dtype(buf[offset:offset + dtype_len].decode("ascii"))
            offset += dtype_len
            (count,) = _U32.unpack_from(buf, offset)
            offset += 4
            nbytes = count * dtype.itemsize
            raw = bytes(buf[offset:offset + nbytes])
            if len(raw) != nbytes:
                raise StorageError("truncated value payload")
            offset += nbytes
            return np.frombuffer(raw, dtype=dtype).copy(), offset
        if tag == _T_OBJARRAY:
            (count,) = _U32.unpack_from(buf, offset)
            offset += 4
            items = []
            for _ in range(count):
                item, offset = unpack_value(buf, offset)
                items.append(item)
            arr = np.empty(count, dtype=object)
            arr[:] = items
            return arr, offset
    except struct.error:
        raise StorageError("truncated value payload") from None
    raise StorageError(f"unknown value tag {tag}")


# ----------------------------------------------------------- page framing

class Page:
    """One decoded page: header fields plus its payload value."""

    __slots__ = ("page_id", "page_type", "lsn", "payload")

    def __init__(self, page_id: int, page_type: int, lsn: int,
                 payload: object):
        self.page_id = page_id
        self.page_type = page_type
        self.lsn = lsn
        self.payload = payload

    def __repr__(self) -> str:
        name = PAGE_TYPE_NAMES.get(self.page_type, str(self.page_type))
        return f"Page(id={self.page_id}, type={name}, lsn={self.lsn})"


def build_page(page_id: int, page_type: int, lsn: int,
               payload: object) -> bytes:
    """Serialize one page (header + payload) to bytes."""
    body = bytearray()
    pack_value(payload, body)
    body = bytes(body)
    meta = struct.pack("<BBQQI", PAGE_VERSION, page_type, page_id, lsn,
                       len(body))
    crc = zlib.crc32(meta + body) & 0xFFFFFFFF
    header = PAGE_HEADER.pack(PAGE_MAGIC, PAGE_VERSION, page_type, 0,
                              page_id, lsn, len(body), crc)
    return header + body


def parse_page(buf: bytes, offset: int = 0) -> Tuple[Page, int]:
    """Decode one page at ``offset``, validating magic and checksum."""
    if offset + PAGE_HEADER.size > len(buf):
        raise StorageError(
            f"truncated page header at byte {offset} "
            f"({len(buf) - offset} of {PAGE_HEADER.size} bytes)")
    (magic, version, page_type, _reserved, page_id, lsn, payload_len,
     crc) = PAGE_HEADER.unpack_from(buf, offset)
    if magic != PAGE_MAGIC:
        raise StorageError(f"bad page magic at byte {offset}: {magic!r}")
    if version != PAGE_VERSION:
        raise StorageError(f"unsupported page version {version}")
    if _reserved != 0:
        # Not covered by the CRC, so corruption here must be caught by
        # its only legal value.
        raise StorageError(
            f"page {page_id} reserved header bytes are nonzero")
    body_start = offset + PAGE_HEADER.size
    body_end = body_start + payload_len
    if body_end > len(buf):
        raise StorageError(
            f"truncated page {page_id}: payload needs {payload_len} bytes, "
            f"{len(buf) - body_start} available")
    body = bytes(buf[body_start:body_end])
    meta = struct.pack("<BBQQI", version, page_type, page_id, lsn,
                       payload_len)
    if zlib.crc32(meta + body) & 0xFFFFFFFF != crc:
        raise StorageError(f"page {page_id} checksum mismatch")
    payload, consumed = unpack_value(body, 0)
    if consumed != len(body):
        raise StorageError(
            f"page {page_id} payload has {len(body) - consumed} "
            "trailing bytes")
    return Page(page_id, page_type, lsn, payload), body_end


# ------------------------------------------------------- snapshot writer

def _schema_payload(schema: TableSchema) -> List[Tuple]:
    return [
        (col.name, col.col_type.kind.value, col.col_type.length,
         col.col_type.scale, col.nullable)
        for col in schema.columns
    ]


def _schema_from_payload(name: str, columns: List[Tuple]) -> TableSchema:
    return TableSchema(name, [
        Column(col_name, ColumnType(TypeKind(kind), length, scale), nullable)
        for col_name, kind, length, scale, nullable in columns
    ])


def _leaf_fences(items: List[Tuple]) -> List[Tuple]:
    """First key of each PT_BTREE_LEAF page — the resident separator
    array that lets a paged B+ index route a seek to the right leaf page
    without materializing internal nodes."""
    return [items[start][0]
            for start in range(0, len(items), BTREE_ITEMS_PER_PAGE)]


def _index_descriptor(table, index,
                      btree_items: Optional[List[Tuple]] = None
                      ) -> Dict[str, object]:
    desc: Dict[str, object] = {
        "table": table.name,
        "name": index.name,
        "role": "primary" if index is table.primary else "secondary",
        "object_id": getattr(index, "object_id", 0),
    }
    if isinstance(index, HeapFile):
        desc.update({"kind": "heap", "n_pages": 0})
    elif isinstance(index, (PrimaryBTreeIndex, SecondaryBTreeIndex)):
        items = (list(index.tree.items())
                 if btree_items is None else btree_items)
        n_items = len(items)
        desc.update({
            "kind": "btree",
            "key_columns": list(index.key_columns),
            "included_columns": (
                None if isinstance(index, PrimaryBTreeIndex)
                else list(index.included_columns)),
            "n_items": n_items,
            "n_pages": -(-n_items // BTREE_ITEMS_PER_PAGE) if n_items else 0,
            "leaf_fences": _leaf_fences(items),
        })
    elif isinstance(index, ColumnstoreIndex):
        n_groups = len(index._groups)
        n_pages = sum(1 + len(state.group.column_names())
                      for state in index._groups) + 1
        desc.update({
            "kind": "csi",
            "is_primary": index.is_primary,
            "columns": list(index.columns),
            "rowgroup_size": index.rowgroup_size,
            "n_groups": n_groups,
            "n_pages": n_pages,
        })
    else:
        raise StorageError(
            f"index {index.name!r} of type {type(index).__name__} "
            "cannot be serialized")
    return desc


def _segment_payload(table_name: str, index_name: str, group_index: int,
                     column: str, segment: ColumnSegment) -> Dict[str, object]:
    dictionary = segment.dictionary
    return {
        "table": table_name,
        "index": index_name,
        "group_index": group_index,
        "column": column,
        "n_rows": segment.n_rows,
        "encoding": segment.encoding,
        "size_bytes": segment.size_bytes,
        "min_value": segment.min_value,
        "max_value": segment.max_value,
        "run_values": segment.run_values,
        "run_lengths": segment.run_lengths,
        "values": segment.values,
        "dictionary": None if dictionary is None else dictionary.values,
    }


def _segment_from_payload(payload: Dict[str, object]) -> ColumnSegment:
    dict_values = payload["dictionary"]
    dictionary = None if dict_values is None else Dictionary(dict_values)
    return ColumnSegment(
        column=payload["column"],
        n_rows=payload["n_rows"],
        encoding=payload["encoding"],
        size_bytes=payload["size_bytes"],
        min_value=payload["min_value"],
        max_value=payload["max_value"],
        run_values=payload["run_values"],
        run_lengths=payload["run_lengths"],
        values=payload["values"],
        dictionary=dictionary,
    )


class _PageWriter:
    """Sequential page-id allocation plus torn-flush fault simulation."""

    def __init__(self, out: BinaryIO, lsn: int,
                 faults: Optional[FaultInjector]):
        self.out = out
        self.lsn = lsn
        self.faults = faults
        self.next_page_id = 0

    def write(self, page_type: int, payload: object) -> None:
        data = build_page(self.next_page_id, page_type, self.lsn, payload)
        self.next_page_id += 1
        try:
            trip(self.faults, "page_flush_torn")
        except ProcessAbort:
            # Leave a torn page behind, exactly like a power cut during
            # the flush: recovery must reject the partial file.
            self.out.write(data[:max(1, len(data) // 2)])
            self.out.flush()
            raise
        self.out.write(data)


def write_snapshot(database, out: BinaryIO, checkpoint_lsn: int = 0,
                   faults: Optional[FaultInjector] = None) -> int:
    """Write a full snapshot of ``database`` as a page stream to ``out``.

    Returns the number of pages written. Deterministic for a given
    database state (see the module docstring), so two saves of identical
    states are byte-identical.
    """
    writer = _PageWriter(out, checkpoint_lsn, faults)
    tables = database.tables()
    writer.write(PT_CATALOG, {
        "name": database.name,
        "checkpoint_lsn": checkpoint_lsn,
        "tables": [t.name for t in tables],
    })
    for table in tables:
        trip(faults, "checkpoint_mid")
        rows = table.rows_with_rids()
        n_row_pages = -(-len(rows) // ROWS_PER_PAGE) if rows else 0
        writer.write(PT_TABLE, {
            "table": table.name,
            "schema": _schema_payload(table.schema),
            "next_rid": table._next_rid,
            "modification_counter": table.modification_counter,
            "n_row_pages": n_row_pages,
            "n_indexes": 1 + len(table.secondary_indexes),
        })
        for start in range(0, len(rows), ROWS_PER_PAGE):
            chunk = rows[start:start + ROWS_PER_PAGE]
            writer.write(PT_ROWS, {
                "table": table.name,
                "rids": [rid for rid, _ in chunk],
                "rows": [row for _, row in chunk],
            })
        for index in [table.primary] + list(table.secondary_indexes.values()):
            if isinstance(index, (PrimaryBTreeIndex, SecondaryBTreeIndex)):
                # Materializes a paged index: a checkpoint needs every
                # leaf entry anyway, and quiesced checkpoints are the
                # only writers of snapshots.
                items = list(index.tree.items())
                writer.write(PT_INDEX,
                             _index_descriptor(table, index,
                                               btree_items=items))
                for start in range(0, len(items), BTREE_ITEMS_PER_PAGE):
                    chunk = items[start:start + BTREE_ITEMS_PER_PAGE]
                    writer.write(PT_BTREE_LEAF, {
                        "table": table.name,
                        "index": index.name,
                        "items": chunk,
                    })
                continue
            writer.write(PT_INDEX, _index_descriptor(table, index))
            if isinstance(index, ColumnstoreIndex):
                for gi, state in enumerate(index._groups):
                    group = state.group
                    columns = group.column_names()
                    segment_meta = {}
                    for column in columns:
                        m = group.column_meta(column)
                        segment_meta[column] = {
                            "n_rows": m.n_rows,
                            "encoding": m.encoding,
                            "size_bytes": m.size_bytes,
                            "min": m.min_value,
                            "max": m.max_value,
                        }
                    writer.write(PT_CSI_GROUP, {
                        "table": table.name,
                        "index": index.name,
                        "group_index": gi,
                        "rids": group.rids,
                        "n_rows": group.n_rows,
                        "sort_order": list(group.sort_order),
                        "deleted_mask": state.deleted_mask,
                        "n_deleted": state.n_deleted,
                        "columns": columns,
                        "segment_meta": segment_meta,
                    })
                    for column in columns:
                        # group.column() faults paged segments in
                        # through the pool, so checkpointing a paged
                        # database stays within the pool budget.
                        writer.write(PT_CSI_SEGMENT, _segment_payload(
                            table.name, index.name, gi, column,
                            group.column(column)))
                writer.write(PT_CSI_SIDE, {
                    "table": table.name,
                    "index": index.name,
                    "delta": sorted(index._delta.items()),
                    "delete_buffer": sorted(index._delete_buffer),
                })
    return writer.next_page_id


# ------------------------------------------------------- snapshot loader

class _PageStream:
    """Sequential reader over a parsed snapshot byte buffer."""

    def __init__(self, buf: bytes):
        self.buf = buf
        self.offset = 0
        self.pages_read = 0

    @property
    def exhausted(self) -> bool:
        return self.offset >= len(self.buf)

    def next(self, expected_type: int) -> Page:
        if self.exhausted:
            raise StorageError(
                f"snapshot ended early: expected a "
                f"{PAGE_TYPE_NAMES[expected_type]} page")
        page, self.offset = parse_page(self.buf, self.offset)
        self.pages_read += 1
        if page.page_type != expected_type:
            raise StorageError(
                f"snapshot page {page.page_id}: expected "
                f"{PAGE_TYPE_NAMES[expected_type]}, got "
                f"{PAGE_TYPE_NAMES.get(page.page_type, page.page_type)}")
        return page


def _restore_btree(table, desc: Dict[str, object], stream: _PageStream):
    items: List[Tuple] = []
    for _ in range(desc["n_pages"]):
        page = stream.next(PT_BTREE_LEAF)
        items.extend(page.payload["items"])
    if len(items) != desc["n_items"]:
        raise StorageError(
            f"index {desc['name']!r}: snapshot has {len(items)} leaf "
            f"entries, descriptor says {desc['n_items']}")
    if desc["included_columns"] is None:
        index = PrimaryBTreeIndex(desc["name"], table.schema,
                                  desc["key_columns"],
                                  object_id=desc["object_id"])
    else:
        index = SecondaryBTreeIndex(desc["name"], table.schema,
                                    desc["key_columns"],
                                    desc["included_columns"],
                                    object_id=desc["object_id"])
    if items:
        index.tree = BPlusTree.bulk_load(
            items, leaf_capacity=index.tree.leaf_capacity)
    return index


def _restore_columnstore(table, desc: Dict[str, object],
                         stream: _PageStream) -> ColumnstoreIndex:
    index = ColumnstoreIndex(
        desc["name"], table.schema, columns=desc["columns"],
        is_primary=desc["is_primary"], rowgroup_size=desc["rowgroup_size"],
        object_id=desc["object_id"],
    )
    for gi in range(desc["n_groups"]):
        group_page = stream.next(PT_CSI_GROUP).payload
        if group_page["group_index"] != gi:
            raise StorageError(
                f"index {desc['name']!r}: row group pages out of order")
        segments: Dict[str, ColumnSegment] = {}
        for column in group_page["columns"]:
            seg_page = stream.next(PT_CSI_SEGMENT).payload
            if seg_page["column"] != column or seg_page["group_index"] != gi:
                raise StorageError(
                    f"index {desc['name']!r}: segment pages out of order")
            segments[column] = _segment_from_payload(seg_page)
        group = CompressedRowGroup(
            segments=segments,
            rids=group_page["rids"],
            n_rows=group_page["n_rows"],
            sort_order=group_page["sort_order"],
        )
        index._append_group(group)
        state = index._groups[-1]
        state.deleted_mask = group_page["deleted_mask"]
        state.n_deleted = group_page["n_deleted"]
        # _append_group registered every rid; masked (bitmap-deleted)
        # slots must not keep locators — that is the checker invariant.
        for pos in np.flatnonzero(state.deleted_mask).tolist():
            index._rid_location.pop(int(group.rids[pos]), None)
    side = stream.next(PT_CSI_SIDE).payload
    index._delta = {rid: tuple(values) for rid, values in side["delta"]}
    index._delete_buffer = set(side["delete_buffer"])
    return index


def load_snapshot(source, cost_model=None):
    """Load a snapshot written by :func:`write_snapshot`.

    ``source`` is a path or bytes. Returns ``(database, meta)`` where
    ``meta`` carries the catalog header (notably ``checkpoint_lsn`` and
    ``pages_read``). Raises :class:`StorageError` on any torn page,
    checksum mismatch, or structural inconsistency.
    """
    from repro.engine.costs import DEFAULT_COST_MODEL
    from repro.storage.database import Database

    if isinstance(source, (bytes, bytearray)):
        buf = bytes(source)
    else:
        with open(source, "rb") as f:
            buf = f.read()
    stream = _PageStream(buf)
    catalog = stream.next(PT_CATALOG).payload
    database = Database(catalog["name"],
                        cost_model=cost_model or DEFAULT_COST_MODEL)
    max_object_id = 0
    for table_name in catalog["tables"]:
        table_page = stream.next(PT_TABLE).payload
        if table_page["table"] != table_name:
            raise StorageError(
                f"snapshot table pages out of order: expected "
                f"{table_name!r}, got {table_page['table']!r}")
        schema = _schema_from_payload(table_name, table_page["schema"])
        table = database.create_table(schema)
        for _ in range(table_page["n_row_pages"]):
            rows_page = stream.next(PT_ROWS).payload
            for rid, row in zip(rows_page["rids"], rows_page["rows"]):
                table._rows[rid] = tuple(row)
        table._next_rid = table_page["next_rid"]
        table.modification_counter = table_page["modification_counter"]
        for position in range(table_page["n_indexes"]):
            desc = stream.next(PT_INDEX).payload
            max_object_id = max(max_object_id, desc["object_id"])
            if desc["kind"] == "heap":
                index = HeapFile(desc["name"], schema,
                                 object_id=desc["object_id"])
                for rid, row in table.iter_rows():
                    index._rows[rid] = row
            elif desc["kind"] == "btree":
                index = _restore_btree(table, desc, stream)
            elif desc["kind"] == "csi":
                index = _restore_columnstore(table, desc, stream)
                index.segment_cache = table.segment_cache
            else:
                raise StorageError(
                    f"unknown index kind {desc['kind']!r} in snapshot")
            index.faults = database.fault_injector
            index.usage.clock = database.telemetry.clock
            if position == 0:
                if desc["role"] != "primary":
                    raise StorageError(
                        f"table {table_name!r}: first index in snapshot "
                        "is not the primary structure")
                table.primary = index
            else:
                table.secondary_indexes[desc["name"]] = index
    if not stream.exhausted:
        raise StorageError(
            f"snapshot has {len(buf) - stream.offset} trailing bytes "
            f"after page {stream.pages_read - 1}")
    ensure_object_ids_above(max_object_id)
    meta = {
        "name": catalog["name"],
        "checkpoint_lsn": catalog["checkpoint_lsn"],
        "pages_read": stream.pages_read,
    }
    return database, meta


# ------------------------------------------------- lazy (paged) loader

class SnapshotReader:
    """Random-access page reads from a published snapshot file.

    One reader is shared by every paged structure of a database (and
    therefore every serving session), so reads are serialized by a
    per-reader lock. Each read re-validates the page's magic and CRC —
    deferred pages skip validation at open time, so the first fault is
    where corruption surfaces.

    The file handle is held open for the database's lifetime. A later
    checkpoint replaces ``snapshot.db`` via ``os.replace``, but on POSIX
    the open handle keeps reading the original inode — and a quiesced
    checkpoint rewrites unchanged pages byte-identically, so in-flight
    paged structures stay consistent either way.
    """

    def __init__(self, path):
        self.path = str(path)
        self._f = open(self.path, "rb")
        self._lock = threading.Lock()
        self._closed = False

    def read_page(self, offset: int, length: int,
                  expected_type: int) -> Page:
        """Read, checksum, and decode one page at a known location."""
        with self._lock:
            if self._closed:
                raise StorageError(
                    f"snapshot reader for {self.path} is closed")
            self._f.seek(offset)
            buf = self._f.read(length)
        if len(buf) != length:
            raise StorageError(
                f"snapshot {self.path}: short read at offset {offset} "
                f"({len(buf)} of {length} bytes)")
        page, _ = parse_page(buf, 0)
        if page.page_type != expected_type:
            raise StorageError(
                f"snapshot page {page.page_id}: expected "
                f"{PAGE_TYPE_NAMES[expected_type]}, got "
                f"{PAGE_TYPE_NAMES.get(page.page_type, page.page_type)}")
        return page

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._closed = True
                self._f.close()


class _LazyPageStream:
    """Sequential pass over a snapshot *file* that parses structural
    pages but only records the location of deferred data pages
    (PT_BTREE_LEAF, PT_CSI_SEGMENT), leaving their payloads on disk."""

    def __init__(self, f: BinaryIO, size: int):
        self.f = f
        self.size = size
        self.offset = 0
        self.pages_read = 0

    @property
    def exhausted(self) -> bool:
        return self.offset >= self.size

    def _header(self, expected_type: int) -> Tuple[int, int, int]:
        """Validate the header at the current offset; returns
        (page_id, payload_len, total_len) without reading the payload."""
        if self.exhausted:
            raise StorageError(
                f"snapshot ended early: expected a "
                f"{PAGE_TYPE_NAMES[expected_type]} page")
        self.f.seek(self.offset)
        header = self.f.read(PAGE_HEADER.size)
        if len(header) != PAGE_HEADER.size:
            raise StorageError(
                f"truncated page header at byte {self.offset} "
                f"({len(header)} of {PAGE_HEADER.size} bytes)")
        (magic, version, page_type, reserved, page_id, _lsn, payload_len,
         _crc) = PAGE_HEADER.unpack(header)
        if magic != PAGE_MAGIC:
            raise StorageError(
                f"bad page magic at byte {self.offset}: {magic!r}")
        if version != PAGE_VERSION:
            raise StorageError(f"unsupported page version {version}")
        if reserved != 0:
            raise StorageError(
                f"page {page_id} reserved header bytes are nonzero")
        if page_type != expected_type:
            raise StorageError(
                f"snapshot page {page_id}: expected "
                f"{PAGE_TYPE_NAMES[expected_type]}, got "
                f"{PAGE_TYPE_NAMES.get(page_type, page_type)}")
        total = PAGE_HEADER.size + payload_len
        if self.offset + total > self.size:
            raise StorageError(
                f"truncated page {page_id}: payload needs {payload_len} "
                f"bytes, {self.size - self.offset - PAGE_HEADER.size} "
                "available")
        return page_id, payload_len, total

    def next(self, expected_type: int) -> Page:
        """Fully parse (and CRC-check) the next page."""
        _page_id, _payload_len, total = self._header(expected_type)
        self.f.seek(self.offset)
        buf = self.f.read(total)
        page, _ = parse_page(buf, 0)
        self.offset += total
        self.pages_read += 1
        return page

    def defer(self, expected_type: int) -> Tuple[int, int, int]:
        """Skip the next page's payload; returns (page_id, offset,
        length) for a later :meth:`SnapshotReader.read_page`."""
        page_id, _payload_len, total = self._header(expected_type)
        location = (page_id, self.offset, total)
        self.offset += total
        self.pages_read += 1
        return location


class _CsiPager:
    """Faults one columnstore's segment pages through the buffer pool.

    Keyed by (row-group index, column); the pool key is the segment
    page's snapshot page id under the index's object id, so
    ``evict_object`` on rebuild/drop invalidates exactly these frames.
    """

    def __init__(self, reader: SnapshotReader, pool: BufferPool,
                 object_id: int):
        self.reader = reader
        self.pool = pool
        self.object_id = object_id
        self._locations: Dict[Tuple[int, str], Tuple[int, int, int]] = {}

    def register(self, group_index: int, column: str, page_id: int,
                 offset: int, length: int) -> None:
        self._locations[(group_index, column)] = (page_id, offset, length)

    def load(self, group_index: int, column: str,
             pin: bool = False) -> Tuple[ColumnSegment, Tuple[int, int]]:
        """Returns (segment, pool page key); the key is pinned when
        ``pin`` and must be unpinned by the caller."""
        page_id, offset, length = self._locations[(group_index, column)]
        key = (self.object_id, page_id)

        def fault() -> Tuple[ColumnSegment, int]:
            page = self.reader.read_page(offset, length, PT_CSI_SEGMENT)
            payload = page.payload
            if (payload["column"] != column
                    or payload["group_index"] != group_index):
                raise StorageError(
                    f"segment page {page_id} holds "
                    f"{payload['column']!r}/{payload['group_index']}, "
                    f"expected {column!r}/{group_index}")
            return _segment_from_payload(payload), length

        return self.pool.get_or_load(key, fault, pin=pin), key

    def group_loader(self, group_index: int):
        """The ``CompressedRowGroup.loader`` callable for one group."""
        def load(column: str) -> ColumnSegment:
            segment, _key = self.load(group_index, column)
            return segment
        return load

    def unpin(self, key: Tuple[int, int]) -> None:
        self.pool.unpin(key)


def _restore_btree_paged(table, desc: Dict[str, object],
                         stream: _LazyPageStream, reader: SnapshotReader,
                         pool: BufferPool):
    """Lazy counterpart of :func:`_restore_btree`: defer every leaf
    page, keeping only the descriptor's fence keys resident."""
    if desc["included_columns"] is None:
        index = PagedPrimaryBTreeIndex(desc["name"], table.schema,
                                       desc["key_columns"],
                                       object_id=desc["object_id"])
    else:
        index = PagedSecondaryBTreeIndex(desc["name"], table.schema,
                                         desc["key_columns"],
                                         desc["included_columns"],
                                         object_id=desc["object_id"])
    if not desc["n_pages"]:
        return index  # empty index: nothing to page
    fences = desc.get("leaf_fences")
    if fences is None or len(fences) != desc["n_pages"]:
        raise StorageError(
            f"index {desc['name']!r}: snapshot predates the paged "
            "format (no leaf fences) — rewrite it with save() before "
            "opening with paging=True")
    page_locs = [stream.defer(PT_BTREE_LEAF)
                 for _ in range(desc["n_pages"])]

    def read_leaf(offset: int, length: int):
        return reader.read_page(offset, length, PT_BTREE_LEAF) \
            .payload["items"]

    index.attach_paged(PagedLeafSource(
        pool, desc["object_id"], desc["n_items"], fences, page_locs,
        read_leaf))
    return index


def _restore_columnstore_paged(table, desc: Dict[str, object],
                               stream: _LazyPageStream,
                               reader: SnapshotReader,
                               pool: BufferPool) -> ColumnstoreIndex:
    """Lazy counterpart of :func:`_restore_columnstore`: group pages
    (rids, delete bitmaps, sort order, per-column metadata) load
    eagerly; segment pages defer behind the pool."""
    index = ColumnstoreIndex(
        desc["name"], table.schema, columns=desc["columns"],
        is_primary=desc["is_primary"], rowgroup_size=desc["rowgroup_size"],
        object_id=desc["object_id"],
    )
    pager = _CsiPager(reader, pool, desc["object_id"])
    for gi in range(desc["n_groups"]):
        group_page = stream.next(PT_CSI_GROUP).payload
        if group_page["group_index"] != gi:
            raise StorageError(
                f"index {desc['name']!r}: row group pages out of order")
        meta_payload = group_page.get("segment_meta")
        if meta_payload is None:
            raise StorageError(
                f"index {desc['name']!r}: snapshot predates the paged "
                "format (no segment metadata) — rewrite it with save() "
                "before opening with paging=True")
        for column in group_page["columns"]:
            page_id, offset, length = stream.defer(PT_CSI_SEGMENT)
            pager.register(gi, column, page_id, offset, length)
        meta = {
            column: SegmentMeta(
                column=column, n_rows=m["n_rows"], encoding=m["encoding"],
                size_bytes=m["size_bytes"], min_value=m["min"],
                max_value=m["max"])
            for column, m in meta_payload.items()
        }
        group = CompressedRowGroup(
            segments={},
            rids=group_page["rids"],
            n_rows=group_page["n_rows"],
            sort_order=group_page["sort_order"],
            meta=meta,
            loader=pager.group_loader(gi),
        )
        index._append_group(group)
        state = index._groups[-1]
        state.deleted_mask = group_page["deleted_mask"]
        state.n_deleted = group_page["n_deleted"]
        for pos in np.flatnonzero(state.deleted_mask).tolist():
            index._rid_location.pop(int(group.rids[pos]), None)
    side = stream.next(PT_CSI_SIDE).payload
    index._delta = {rid: tuple(values) for rid, values in side["delta"]}
    index._delete_buffer = set(side["delete_buffer"])
    index._pager = pager
    index.buffer_pool = pool
    return index


def load_snapshot_paged(path, pool: BufferPool, cost_model=None):
    """Load a snapshot lazily: catalog, row store, B+ fences, and
    columnstore group metadata come into memory; B+ leaf pages and
    column segment pages stay on disk and are demand-loaded through
    ``pool`` on first touch.

    Returns ``(database, meta, reader)``. The caller owns the reader's
    lifetime (``Database.open(..., paging=True)`` parks it on the
    database). Deferred pages are CRC-validated at fault time, not at
    open time.
    """
    from repro.engine.costs import DEFAULT_COST_MODEL
    from repro.storage.database import Database

    reader = SnapshotReader(path)
    f = open(path, "rb")
    try:
        size = os.fstat(f.fileno()).st_size
        stream = _LazyPageStream(f, size)
        catalog = stream.next(PT_CATALOG).payload
        database = Database(catalog["name"],
                            cost_model=cost_model or DEFAULT_COST_MODEL)
        max_object_id = 0
        for table_name in catalog["tables"]:
            table_page = stream.next(PT_TABLE).payload
            if table_page["table"] != table_name:
                raise StorageError(
                    f"snapshot table pages out of order: expected "
                    f"{table_name!r}, got {table_page['table']!r}")
            schema = _schema_from_payload(table_name, table_page["schema"])
            table = database.create_table(schema)
            for _ in range(table_page["n_row_pages"]):
                rows_page = stream.next(PT_ROWS).payload
                for rid, row in zip(rows_page["rids"], rows_page["rows"]):
                    table._rows[rid] = tuple(row)
            table._next_rid = table_page["next_rid"]
            table.modification_counter = table_page["modification_counter"]
            for position in range(table_page["n_indexes"]):
                desc = stream.next(PT_INDEX).payload
                max_object_id = max(max_object_id, desc["object_id"])
                if desc["kind"] == "heap":
                    index = HeapFile(desc["name"], schema,
                                     object_id=desc["object_id"])
                    for rid, row in table.iter_rows():
                        index._rows[rid] = row
                elif desc["kind"] == "btree":
                    index = _restore_btree_paged(table, desc, stream,
                                                 reader, pool)
                elif desc["kind"] == "csi":
                    index = _restore_columnstore_paged(table, desc, stream,
                                                       reader, pool)
                    index.segment_cache = table.segment_cache
                else:
                    raise StorageError(
                        f"unknown index kind {desc['kind']!r} in snapshot")
                index.faults = database.fault_injector
                index.usage.clock = database.telemetry.clock
                if position == 0:
                    if desc["role"] != "primary":
                        raise StorageError(
                            f"table {table_name!r}: first index in "
                            "snapshot is not the primary structure")
                    table.primary = index
                else:
                    table.secondary_indexes[desc["name"]] = index
        if not stream.exhausted:
            raise StorageError(
                f"snapshot has {size - stream.offset} trailing bytes "
                f"after page {stream.pages_read - 1}")
        ensure_object_ids_above(max_object_id)
        meta = {
            "name": catalog["name"],
            "checkpoint_lsn": catalog["checkpoint_lsn"],
            "pages_read": stream.pages_read,
        }
        return database, meta, reader
    except BaseException:
        reader.close()
        raise
    finally:
        f.close()


def snapshot_bytes(database, checkpoint_lsn: int = 0) -> bytes:
    """Serialize ``database`` to an in-memory snapshot (no faults, no
    files) — the building block for recovery's state digests."""
    out = io.BytesIO()
    write_snapshot(database, out, checkpoint_lsn=checkpoint_lsn, faults=None)
    return out.getvalue()
