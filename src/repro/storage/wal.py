"""ARIES-lite write-ahead log.

Every committed statement against a durable
:class:`~repro.storage.database.Database` appends one *transaction* to
the log — a BEGIN record, one OP record per logical redo operation, and
a COMMIT record — and the COMMIT is flushed (optionally fsynced) before
the statement returns. Recovery (:mod:`repro.storage.recovery`) replays
only the ops of committed transactions, in log order, skipping anything
at or below the snapshot's checkpoint LSN; there is no undo pass because
uncommitted work never reaches a snapshot — redo-only, which is what
makes replay idempotent.

Record framing (25-byte header, little-endian)::

    payload_len  I    bytes of payload following the header
    crc32        I    CRC over pack("<QQB", lsn, txn, type) + payload
    lsn          Q    log sequence number (monotonic per log)
    txn          Q    transaction (statement) id; 0 for CHECKPOINT
    type         B    BEGIN / OP / COMMIT / ABORT / CHECKPOINT

Payloads use the page codec's tagged value encoding
(:func:`repro.storage.pages.pack_value`). A reader stops at the first
frame that is truncated or fails its CRC — the *torn tail* a crash
mid-append leaves behind; everything before it is trusted, everything
after discarded, exactly ARIES' convention.

Statement scoping: ops raised by one SQL statement must be atomic in
the log even when the executor applies them through several ``Table``
calls (a multi-row INSERT loops ``insert_row``). The executor wraps DML
in :meth:`WriteAheadLog.statement`; ops buffer in memory and are written
together with the COMMIT at scope exit. A crash mid-statement therefore
leaves at most a dangling BEGIN — never a partial op set — and an
organic statement failure writes an ABORT and discards the buffer.

Crash-style fault points (``wal_append``, ``wal_fsync`` — see
:data:`repro.storage.faults.CRASH_POINTS`) fire inside the append and
commit paths: ``wal_append`` leaves a genuinely torn half-frame behind
before the :class:`~repro.core.errors.ProcessAbort` sentinel unwinds,
``wal_fsync`` dies after the frames are written but before the fsync
barrier. A log that has "crashed" goes dead: every later write is a
no-op so unwinding code cannot resurrect it.
"""

from __future__ import annotations

import os
import struct
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.errors import ProcessAbort, StorageError
from repro.storage.faults import FaultInjector, trip
from repro.storage.pages import pack_value, unpack_value
from repro.storage.waits import WAIT_WRITELOG

RECORD_HEADER = struct.Struct("<IIQQB")
_CRC_META = struct.Struct("<QQB")

REC_BEGIN = 1
REC_OP = 2
REC_COMMIT = 3
REC_ABORT = 4
REC_CHECKPOINT = 5

REC_NAMES = {
    REC_BEGIN: "BEGIN",
    REC_OP: "OP",
    REC_COMMIT: "COMMIT",
    REC_ABORT: "ABORT",
    REC_CHECKPOINT: "CHECKPOINT",
}

#: Sanity bound while scanning: no single record payload is ever this
#: large, so a corrupt length field cannot make the reader allocate
#: gigabytes before the CRC check rejects the frame.
_MAX_PAYLOAD = 1 << 28

WAL_FILENAME = "wal.log"
SNAPSHOT_FILENAME = "snapshot.db"
SNAPSHOT_TMP_FILENAME = "snapshot.tmp"


@dataclass
class WalRecord:
    """One decoded log record."""

    lsn: int
    txn: int
    rec_type: int
    payload: object

    def __repr__(self) -> str:
        return (f"WalRecord(lsn={self.lsn}, txn={self.txn}, "
                f"type={REC_NAMES.get(self.rec_type, self.rec_type)})")


@dataclass
class WalScan:
    """Result of reading a log file up to its first invalid frame."""

    records: List[WalRecord] = field(default_factory=list)
    #: Bytes of the file covered by valid frames; anything beyond is the
    #: torn tail.
    valid_bytes: int = 0
    total_bytes: int = 0
    torn: bool = False
    torn_reason: str = ""

    @property
    def last_lsn(self) -> int:
        return self.records[-1].lsn if self.records else 0

    @property
    def last_txn(self) -> int:
        return max((r.txn for r in self.records), default=0)

    def committed_txns(self) -> frozenset:
        return frozenset(
            r.txn for r in self.records if r.rec_type == REC_COMMIT)

    def aborted_txns(self) -> frozenset:
        return frozenset(
            r.txn for r in self.records if r.rec_type == REC_ABORT)

    def checkpoint_lsn(self) -> int:
        lsn = 0
        for record in self.records:
            if record.rec_type == REC_CHECKPOINT:
                lsn = max(lsn, record.payload.get("checkpoint_lsn", 0))
        return lsn


def read_wal(path) -> WalScan:
    """Scan a log file, stopping at the first torn or corrupt frame."""
    try:
        with open(path, "rb") as f:
            buf = f.read()
    except FileNotFoundError:
        return WalScan()
    scan = WalScan(total_bytes=len(buf))
    offset = 0
    while offset < len(buf):
        if offset + RECORD_HEADER.size > len(buf):
            scan.torn = True
            scan.torn_reason = (
                f"truncated record header at byte {offset}")
            break
        payload_len, crc, lsn, txn, rec_type = RECORD_HEADER.unpack_from(
            buf, offset)
        body_start = offset + RECORD_HEADER.size
        if payload_len > _MAX_PAYLOAD:
            scan.torn = True
            scan.torn_reason = (
                f"implausible payload length {payload_len} at byte {offset}")
            break
        if body_start + payload_len > len(buf):
            scan.torn = True
            scan.torn_reason = (
                f"truncated record payload at byte {offset} "
                f"(lsn {lsn})")
            break
        body = buf[body_start:body_start + payload_len]
        expect = zlib.crc32(
            _CRC_META.pack(lsn, txn, rec_type) + body) & 0xFFFFFFFF
        if expect != crc:
            scan.torn = True
            scan.torn_reason = f"CRC mismatch at byte {offset} (lsn {lsn})"
            break
        try:
            payload, consumed = unpack_value(body, 0)
            if consumed != payload_len:
                raise StorageError("trailing payload bytes")
        except StorageError as exc:
            scan.torn = True
            scan.torn_reason = (
                f"undecodable payload at byte {offset} (lsn {lsn}): {exc}")
            break
        scan.records.append(WalRecord(lsn, txn, rec_type, payload))
        offset = body_start + payload_len
        scan.valid_bytes = offset
    else:
        scan.valid_bytes = offset
    return scan


class WriteAheadLog:
    """Append-only log with statement-scoped transactions.

    Parameters
    ----------
    path:
        Log file; created if absent, appended to otherwise (callers are
        responsible for truncating a torn tail first — recovery does).
    fsync:
        Whether COMMIT forces an ``os.fsync``. Off by default: a flushed
        write survives process death (the crash model the harness
        tests); fsync additionally survives OS/power loss.
    faults:
        Fault injector whose crash-style points fire in the append and
        commit paths.
    start_lsn / start_txn:
        Continuation points when appending to an existing log.
    waits:
        Optional :class:`~repro.storage.waits.WaitStatsCollector`; every
        log flush records its wall time as a ``WRITELOG`` wait — the
        latency a committing statement spends making itself durable.
    """

    def __init__(self, path, fsync: bool = False,
                 faults: Optional[FaultInjector] = None,
                 start_lsn: int = 0, start_txn: int = 0, waits=None):
        self.path = str(path)
        self.fsync_enabled = fsync
        self.faults = faults
        self.waits = waits
        self._file = open(self.path, "ab")
        self._lock = threading.RLock()
        self._next_lsn = start_lsn + 1
        self._next_txn = start_txn + 1
        self._buffers: Dict[int, List[dict]] = {}
        self._local = threading.local()
        self._dead = False
        #: Lifetime flush/fsync counts, surfaced as informational rows
        #: of ``dm_os_wait_stats`` (``WAL_FLUSH``/``WAL_FSYNC``).
        self.flushes = 0
        self.fsyncs = 0

    # ------------------------------------------------------------- state
    @property
    def last_lsn(self) -> int:
        """LSN of the most recently appended record."""
        return self._next_lsn - 1

    @property
    def dead(self) -> bool:
        """Whether a simulated crash has killed this log."""
        return self._dead

    def close(self) -> None:
        with self._lock:
            if not self._file.closed:
                self._file.close()

    # ----------------------------------------------------------- appends
    def _append(self, rec_type: int, txn: int, payload: dict) -> int:
        """Write one frame (caller holds the lock). Returns its LSN."""
        if self._dead:
            return -1
        body = bytearray()
        pack_value(payload, body)
        body = bytes(body)
        lsn = self._next_lsn
        self._next_lsn += 1
        crc = zlib.crc32(
            _CRC_META.pack(lsn, txn, rec_type) + body) & 0xFFFFFFFF
        frame = RECORD_HEADER.pack(len(body), crc, lsn, txn, rec_type) + body
        try:
            trip(self.faults, "wal_append")
        except ProcessAbort:
            # Die mid-write: leave a torn half-frame, like a power cut.
            self._dead = True
            self._file.write(frame[:max(1, len(frame) // 2)])
            self._file.flush()
            raise
        self._file.write(frame)
        return lsn

    def _flush(self) -> None:
        started = time.perf_counter()
        self._file.flush()
        try:
            trip(self.faults, "wal_fsync")
        except ProcessAbort:
            self._dead = True
            raise
        if self.fsync_enabled:
            os.fsync(self._file.fileno())
            self.fsyncs += 1
        self.flushes += 1
        if self.waits is not None:
            self.waits.record(WAIT_WRITELOG,
                              (time.perf_counter() - started) * 1000.0)

    # ------------------------------------------------------ transactions
    def begin(self) -> int:
        """Open a transaction: write its BEGIN, allocate its op buffer."""
        with self._lock:
            txn = self._next_txn
            self._next_txn += 1
            self._buffers[txn] = []
            self._append(REC_BEGIN, txn, {})
            return txn

    def log_op(self, txn: int, op: dict) -> None:
        """Buffer one redo op for ``txn`` (written at commit)."""
        with self._lock:
            self._buffers[txn].append(op)

    def commit(self, txn: int) -> None:
        """Write the buffered ops + COMMIT, then flush/fsync.

        The statement is durable when this returns. On a dead (crashed)
        log this raises :class:`~repro.core.errors.ProcessAbort` instead
        of returning: a commit that cannot reach the log must never
        report success, or a concurrent session would acknowledge a
        statement that recovery cannot replay."""
        with self._lock:
            ops = self._buffers.pop(txn, [])
            if self._dead:
                raise ProcessAbort("wal_dead", 0)
            for op in ops:
                self._append(REC_OP, txn, op)
            self._append(REC_COMMIT, txn, {})
            self._flush()

    def abort(self, txn: int) -> None:
        """Discard the buffered ops and write an ABORT marker."""
        with self._lock:
            self._buffers.pop(txn, None)
            if self._dead:
                return
            self._append(REC_ABORT, txn, {})
            self._file.flush()

    # ------------------------------------------------- statement scoping
    @property
    def in_statement(self) -> bool:
        """Whether this thread currently has an open statement scope."""
        return getattr(self._local, "txn", None) is not None

    @contextmanager
    def statement(self):
        """Scope every op logged by this thread into one transaction.

        Nested scopes join the outer transaction (the outermost commit
        wins), so a compound executor path stays one atomic unit."""
        if self.in_statement:
            yield
            return
        txn = self.begin()
        self._local.txn = txn
        try:
            yield
        except BaseException:
            self._local.txn = None
            self.abort(txn)
            raise
        else:
            self._local.txn = None
            self.commit(txn)

    def log_ops(self, ops: Sequence[dict]) -> None:
        """Log redo ops for the current statement.

        Inside a :meth:`statement` scope they buffer into its
        transaction; outside one they become their own immediately
        committed transaction (direct ``Table`` API calls)."""
        if not ops:
            return
        txn = getattr(self._local, "txn", None)
        if txn is not None:
            with self._lock:
                self._buffers[txn].extend(ops)
            return
        txn = self.begin()
        for op in ops:
            self.log_op(txn, op)
        self.commit(txn)

    # -------------------------------------------------------- checkpoint
    def checkpoint(self, checkpoint_lsn: int) -> None:
        """Reset the log after a published snapshot.

        The snapshot already covers every record, so the file is
        truncated and re-seeded with a CHECKPOINT record naming the
        snapshot's LSN. A crash between the snapshot rename and this
        truncation is safe: stale records all have
        ``lsn <= checkpoint_lsn`` and redo skips them."""
        with self._lock:
            if self._dead:
                return
            self._file.flush()
            self._file.truncate(0)
            self._append(REC_CHECKPOINT, 0,
                         {"checkpoint_lsn": checkpoint_lsn})
            self._flush()
