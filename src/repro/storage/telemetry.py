"""Always-on, observation-only index telemetry primitives.

This module holds the storage-layer half of the DMV subsystem (the
engine-facing system views live in :mod:`repro.engine.dmv`): a
deterministic logical clock, per-index cumulative usage counters, and
the database-wide :class:`Telemetry` aggregate that also collects
missing-index observations from the optimizer.

Design rules, enforced throughout:

* **Zero modeled cost.** Recording never touches
  :class:`~repro.engine.metrics.QueryMetrics` or charges CPU/IO, so
  every figure and benchmark output stays byte-identical.
* **Deterministic stamps.** ``last_user_*`` columns are *logical* clock
  values — a monotonic statement sequence number advanced once per
  executed statement — never wall time, so DMV snapshots are
  reproducible and diff-stable in tests.
* **User accesses only.** Storage methods record usage only when called
  with an :class:`~repro.engine.metrics.ExecutionContext`; internal
  reads (consistency checker, statistics builds, index builds) pass no
  context and therefore leave the counters untouched — mirroring how
  ``sys.dm_db_index_usage_stats`` counts *user* operations separately
  from system ones.

This module lives under :mod:`repro.storage` (not the engine) so the
index structures can import it without creating a storage → engine
cycle.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Set, Tuple

#: How many distinct recent statement stamps each index remembers for
#: update dedup. Bounds memory; far larger than any realistic number of
#: statements concurrently maintaining one index.
_UPDATE_DEDUP_WINDOW = 256


class LogicalClock:
    """A monotonic statement sequence counter, safe under concurrent
    sessions.

    The executor calls :meth:`advance` once at the start of every
    statement; the increment is lock-protected, so two sessions can
    never claim the same sequence number (the race that made
    ``user_updates`` double-count). :meth:`advance` also remembers the
    claimed number in thread-local storage: :attr:`stamp` returns *this
    thread's* current statement stamp, while :attr:`now` stays the
    global high-water mark (what DMV snapshots report). Stamp ``0``
    means "before any statement" — usage stamps of 0 read as *never
    used*.
    """

    __slots__ = ("_now", "_lock", "_local")

    def __init__(self) -> None:
        self._now = 0
        self._lock = threading.Lock()
        self._local = threading.local()

    @property
    def now(self) -> int:
        """The latest statement sequence number issued (global)."""
        return self._now

    @property
    def stamp(self) -> int:
        """The stamp of the statement *this thread* is executing.

        Falls back to :attr:`now` for threads that never advanced the
        clock (internal/system reads), preserving single-session
        behavior exactly."""
        return getattr(self._local, "stamp", self._now)

    def advance(self) -> int:
        """Start the next statement; returns its sequence number."""
        with self._lock:
            self._now += 1
            stamp = self._now
        self._local.stamp = stamp
        return stamp

    def __repr__(self) -> str:
        return f"LogicalClock(now={self._now})"


class IndexUsageStats:
    """Cumulative per-index usage counters (``dm_db_index_usage_stats``).

    Seeks, scans, lookups, and updates follow SQL Server's semantics:

    * a *seek* is a range/point access through the index's order;
    * a *scan* is a full traversal (open bounds on both ends);
    * a *lookup* is a bookmark/RID lookup into the table's **primary**
      structure on behalf of a non-covering secondary index — lookups are
      counted against the primary, as in SQL Server;
    * an *update* counts **statements** that maintained the index, not
      rows (one multi-row UPDATE increments ``user_updates`` once).

    ``segments_scanned``/``segments_skipped`` attribute columnstore
    segment elimination per index, so the per-index sums reconcile with
    the statement-level :class:`~repro.engine.metrics.QueryMetrics`
    totals.

    The owning :class:`~repro.storage.table.Table` attaches the shared
    :class:`LogicalClock` (``clock``); without one, stamps stay 0.

    Thread safety: every recording takes a per-instance lock, and
    update dedup keys on the *recording session's* statement stamp
    (``clock.stamp``, thread-local) against a bounded set of recently
    seen stamps — not a single ``last_user_update`` scalar, which two
    interleaving sessions would ping-pong into double counting.
    """

    __slots__ = (
        "clock", "_lock",
        "user_seeks", "user_scans", "user_lookups", "user_updates",
        "last_user_seek", "last_user_scan", "last_user_lookup",
        "last_user_update",
        "segments_scanned", "segments_skipped",
        "_update_stamps", "_update_stamp_order",
    )

    def __init__(self, clock: Optional[LogicalClock] = None) -> None:
        self.clock = clock
        self._lock = threading.Lock()
        self.user_seeks = 0
        self.user_scans = 0
        self.user_lookups = 0
        self.user_updates = 0
        self.last_user_seek = 0
        self.last_user_scan = 0
        self.last_user_lookup = 0
        self.last_user_update = 0
        self.segments_scanned = 0
        self.segments_skipped = 0
        self._update_stamps: Set[int] = set()
        self._update_stamp_order: Deque[int] = deque()

    def _stamp(self) -> int:
        return self.clock.stamp if self.clock is not None else 0

    def record_seek(self) -> None:
        """One seek (bounded range access) through the index."""
        stamp = self._stamp()
        with self._lock:
            self.user_seeks += 1
            if stamp > self.last_user_seek:
                self.last_user_seek = stamp

    def record_scan(self) -> None:
        """One full scan of the index."""
        stamp = self._stamp()
        with self._lock:
            self.user_scans += 1
            if stamp > self.last_user_scan:
                self.last_user_scan = stamp

    def record_lookup(self) -> None:
        """One bookmark/RID lookup into this (primary) structure."""
        stamp = self._stamp()
        with self._lock:
            self.user_lookups += 1
            if stamp > self.last_user_lookup:
                self.last_user_lookup = stamp

    def record_lookups(self, n: int) -> None:
        """A batch of ``n`` bookmark lookups (one stamp for the batch)."""
        if n <= 0:
            return
        stamp = self._stamp()
        with self._lock:
            self.user_lookups += n
            if stamp > self.last_user_lookup:
                self.last_user_lookup = stamp

    def record_update(self) -> None:
        """One DML statement that maintained this index.

        Statement-granular: a statement that maintains the index through
        several internal operations (a multi-row INSERT inserting row by
        row, an UPDATE implemented as delete+insert) still counts once,
        because every recording inside one statement carries the same
        clock stamp. Dedup is against a bounded window of recently seen
        stamps so that two sessions' statements interleaving on the same
        index each count exactly once. Without a clock (stamp 0) each
        call counts."""
        stamp = self._stamp()
        with self._lock:
            if stamp:
                if stamp in self._update_stamps:
                    return
                self._update_stamps.add(stamp)
                self._update_stamp_order.append(stamp)
                if len(self._update_stamp_order) > _UPDATE_DEDUP_WINDOW:
                    self._update_stamps.discard(
                        self._update_stamp_order.popleft())
            self.user_updates += 1
            if stamp > self.last_user_update:
                self.last_user_update = stamp

    def add_segment_counts(self, scanned: int, skipped: int) -> None:
        """Fold a morsel-parallel scan's summed per-worker segment
        counts into the per-index attribution (workers record nothing
        themselves; the coordinator calls this once per statement)."""
        if scanned == 0 and skipped == 0:
            return
        with self._lock:
            self.segments_scanned += scanned
            self.segments_skipped += skipped

    @property
    def total_reads(self) -> int:
        """Seeks + scans + lookups — the read side of the usage ledger."""
        return self.user_seeks + self.user_scans + self.user_lookups

    def reset(self) -> None:
        """Zero every counter and stamp (the clock itself is untouched)."""
        with self._lock:
            self.user_seeks = self.user_scans = 0
            self.user_lookups = self.user_updates = 0
            self.last_user_seek = self.last_user_scan = 0
            self.last_user_lookup = self.last_user_update = 0
            self.segments_scanned = self.segments_skipped = 0
            self._update_stamps.clear()
            self._update_stamp_order.clear()

    def __repr__(self) -> str:
        return (
            f"IndexUsageStats(seeks={self.user_seeks}, "
            f"scans={self.user_scans}, lookups={self.user_lookups}, "
            f"updates={self.user_updates})"
        )


@dataclass
class MissingIndexDetails:
    """One missing-index observation group (``dm_db_missing_index_details``).

    Grouped by (table, equality columns, inequality columns) exactly like
    SQL Server's missing-index DMVs; ``statement_count`` counts how many
    plans would have benefited and ``avg_selectivity`` tracks how
    selective the unserved predicate was on average (lower is a stronger
    signal).
    """

    table_name: str
    equality_columns: Tuple[str, ...]
    inequality_columns: Tuple[str, ...]
    included_columns: Tuple[str, ...] = ()
    statement_count: int = 0
    total_selectivity: float = 0.0
    last_seen: int = 0

    @property
    def avg_selectivity(self) -> float:
        """Mean estimated selectivity of the unserved predicate."""
        if not self.statement_count:
            return 0.0
        return self.total_selectivity / self.statement_count

    @property
    def key_columns(self) -> Tuple[str, ...]:
        """Suggested key: equality columns first, then inequality."""
        return self.equality_columns + self.inequality_columns


class Telemetry:
    """Database-wide telemetry aggregate: the logical clock plus the
    missing-index observations the optimizer reports.

    Per-index usage lives on the index structures themselves (each has a
    ``usage`` :class:`IndexUsageStats`); this object carries only state
    that is not anchored to one physical index.
    """

    def __init__(self) -> None:
        self.clock = LogicalClock()
        self._lock = threading.Lock()
        self._missing: Dict[Tuple[str, Tuple[str, ...], Tuple[str, ...]],
                            MissingIndexDetails] = {}

    def record_missing_index(
        self,
        table_name: str,
        equality_columns: Tuple[str, ...],
        inequality_columns: Tuple[str, ...],
        included_columns: Tuple[str, ...] = (),
        selectivity: float = 0.0,
    ) -> MissingIndexDetails:
        """Fold one optimizer observation into the grouped details."""
        key = (table_name, tuple(equality_columns),
               tuple(inequality_columns))
        with self._lock:
            details = self._missing.get(key)
            if details is None:
                details = MissingIndexDetails(
                    table_name=table_name,
                    equality_columns=tuple(equality_columns),
                    inequality_columns=tuple(inequality_columns),
                    included_columns=tuple(included_columns),
                )
                self._missing[key] = details
            else:
                # Widen the included set so the suggestion stays covering.
                merged = list(details.included_columns)
                for column in included_columns:
                    if column not in merged:
                        merged.append(column)
                details.included_columns = tuple(merged)
            details.statement_count += 1
            details.total_selectivity += selectivity
            details.last_seen = self.clock.stamp
            return details

    def missing_indexes(self) -> List[MissingIndexDetails]:
        """All observation groups, most-requested first (ties broken by
        table and key for deterministic output)."""
        return sorted(
            self._missing.values(),
            key=lambda d: (-d.statement_count, d.table_name,
                           d.equality_columns, d.inequality_columns),
        )

    def clear_missing_indexes(self) -> None:
        """Forget all missing-index observations."""
        self._missing.clear()
