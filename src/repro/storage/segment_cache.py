"""Decoded-segment cache: a byte-budgeted LRU over decoded column segments.

Every columnstore scan materializes each compressed column segment with
:meth:`~repro.storage.compression.ColumnSegment.decode` — RLE expansion
via ``np.repeat`` plus an optional dictionary gather. That work is pure
CPU and identical across repeated scans of the same row group, so the
engine keeps the decoded arrays in a shared, memory-budgeted LRU keyed by
``(object_id, group_index, column)``. A hit returns the previously
decoded array and skips both the decode CPU charge and the segment read;
a miss decodes, charges the cost model as before, and populates the
cache.

The cache is deliberately *decoupled from visibility*: it stores the raw
decoded segment in stored order, before delete bitmaps, delete-buffer
anti-joins, or predicates are applied, so delete activity never requires
invalidation by itself. Structural changes do: ``rebuild`` replaces every
row group, and the tuple mover / delete-buffer compaction are invalidated
conservatively (see :meth:`ColumnstoreIndex.move_tuples`).

Cached arrays are shared between the cache and every consumer; batch-mode
operators treat batch columns as immutable (filters and projections copy),
which is what makes the sharing safe.

When the database is demand-paged (``Database.open(..., paging=True)``),
this cache layers *above* the buffer pool: a decoded hit returns before
the pool is consulted, so it saves the page fault as well as the decode.
A miss faults the compressed segment page in through
:class:`~repro.storage.bufferpool.BufferPool` and decodes from there.
Invalidation is kept consistent across both layers —
``ColumnstoreIndex.invalidate_cached_segments`` drops the decoded
entries here *and* the compressed frames from the pool in one call.

With encoded execution on (the default,
:mod:`repro.engine.encoded`), code-space-capable segments — dictionary
string segments and numeric RLE / bit-packed segments — are cached as
:class:`~repro.engine.encoded.EncodedColumn` objects: int32 codes plus
the shared per-segment dictionary. Such entries are charged at their
*stored* size (``EncodedColumn.stored_bytes``, the int32 code array;
the dictionary belongs to the segment, which outlives the cache entry)
rather than the decoded width — codes are what actually occupies cache
memory, and charging decoded width would leave most of the budget
unusable. The resulting hit/miss counters are still identical across
modes on a fixed access sequence as long as the budget holds both
representations; the byte totals legitimately differ and are asserted
against what is actually resident by the differential accounting test.
If encoded execution is toggled off after codes were cached, the scan
materializes the cached entry on the way out (see
``ColumnstoreIndex.scan``).

One cache is owned per :class:`~repro.storage.database.Database` and is
**disabled by default** so that cold-run experiments and the paper's
figure benchmarks are unaffected unless a caller opts in
(``Database(segment_cache_enabled=True)`` or ``cache.enabled = True``).
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.core.errors import StorageError

#: Cache key: (index object id, row-group index, column name).
SegmentKey = Tuple[int, int, str]

#: Default cache budget. Sized so a scaled TPC-H hot set fits while
#: still exercising eviction in the larger benchmark sweeps.
DEFAULT_SEGMENT_CACHE_BUDGET = 64 * 1024 * 1024

#: Estimated per-element bytes for object-dtype (string) arrays, matching
#: the heuristic in :meth:`repro.engine.batch.Batch.payload_bytes`.
_OBJECT_ELEMENT_BYTES = 24


def _array_bytes(array) -> int:
    """Budget-accounting size of one cached array.

    Encoded entries charge their stored code bytes (the int32 array that
    is actually resident), decoded object arrays the per-element string
    heuristic, numeric arrays their true ``nbytes``.
    """
    stored = getattr(array, "stored_bytes", None)
    if stored is not None:  # EncodedColumn
        return int(stored)
    if array.dtype == object:
        return len(array) * _OBJECT_ELEMENT_BYTES
    return int(array.nbytes)


@dataclass
class SegmentCacheStats:
    """Lifetime counters of one :class:`DecodedSegmentCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def hit_ratio(self) -> float:
        """Cache hits / total lookups (0.0 when never used)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset(self) -> None:
        """Zero every counter."""
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0


class DecodedSegmentCache:
    """Byte-budgeted LRU of decoded column-segment arrays.

    Parameters
    ----------
    budget_bytes:
        Maximum combined size of cached arrays. Inserting past the budget
        evicts least-recently-used entries; an array bigger than the
        whole budget is simply not cached.
    enabled:
        When False, :meth:`get` always misses without recording stats and
        :meth:`put` is a no-op, so a disabled cache leaves every charge
        and metric exactly as the uncached engine produced them.

    Thread safety: one cache is shared by every session and every morsel
    worker, so lookup + LRU reordering, insertion + eviction, and the
    ``hits``/``misses``/``evictions`` counters all run under a single
    per-cache lock — an unlocked ``move_to_end`` racing a ``popitem``
    corrupts the ``OrderedDict``, and unlocked ``+=`` undercounts.
    """

    def __init__(self, budget_bytes: int = DEFAULT_SEGMENT_CACHE_BUDGET,
                 enabled: bool = True):
        if budget_bytes <= 0:
            raise StorageError("segment cache budget must be positive")
        self.budget_bytes = budget_bytes
        self.enabled = enabled
        self._entries: "OrderedDict[SegmentKey, np.ndarray]" = OrderedDict()
        self._bytes = 0
        self._lock = threading.RLock()
        self.stats = SegmentCacheStats()
        #: Optional :class:`~repro.storage.waits.WaitStatsCollector`
        #: (attached by the owning Database). The cache itself never
        #: blocks; scans consult this to record decode time on a miss as
        #: a ``SEGCACHE_MISS`` wait (see ``ColumnstoreIndex.scan``).
        self.waits = None

    # ----------------------------------------------------------- lookups
    def __len__(self) -> int:
        return len(self._entries)

    @property
    def bytes_cached(self) -> int:
        """Combined size of currently cached arrays."""
        return self._bytes

    def __contains__(self, key: SegmentKey) -> bool:
        return key in self._entries

    def get(self, key: SegmentKey):
        """The cached decoded array for ``key``, or None on a miss.

        A hit refreshes the entry's LRU position. Disabled caches always
        return None and record nothing.
        """
        if not self.enabled:
            return None
        with self._lock:
            array = self._entries.get(key)
            if array is None:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return array

    def put(self, key: SegmentKey, array: np.ndarray) -> int:
        """Cache a decoded array; returns how many entries were evicted.

        Re-inserting an existing key replaces the entry. Arrays larger
        than the entire budget are not cached (they would evict the whole
        working set for a single segment).
        """
        if not self.enabled:
            return 0
        nbytes = _array_bytes(array)
        if nbytes > self.budget_bytes:
            return 0
        with self._lock:
            if key in self._entries:
                self._bytes -= _array_bytes(self._entries.pop(key))
            self._entries[key] = array
            self._bytes += nbytes
            evicted = 0
            while self._bytes > self.budget_bytes:
                _, stale = self._entries.popitem(last=False)
                self._bytes -= _array_bytes(stale)
                self.stats.evictions += 1
                evicted += 1
            return evicted

    # ------------------------------------------------------ invalidation
    def invalidate_object(self, object_id: int) -> int:
        """Drop every cached segment of one index (rebuild/drop); returns
        the number of entries removed. Mirrors
        :meth:`repro.storage.bufferpool.BufferPool.evict_object`."""
        with self._lock:
            stale = [key for key in self._entries if key[0] == object_id]
            for key in stale:
                self._bytes -= _array_bytes(self._entries.pop(key))
            self.stats.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Drop every entry and reset all counters."""
        with self._lock:
            self._entries.clear()
            self._bytes = 0
            self.stats.reset()

    def reset_stats(self) -> None:
        """Zero the counters while keeping cached entries resident —
        for back-to-back experiments that want a warm cache but fresh
        hit/miss accounting."""
        with self._lock:
            self.stats.reset()
