"""CHECKDB-style consistency checker.

DBCC CHECKDB is SQL Server's answer to "did that crash corrupt
anything?"; this module is the repro engine's equivalent. A table's
logical row store (``Table._rows``) is the declared source of truth, so
:func:`check_table` cross-verifies every physical structure against it:

* every index holds exactly the table's rid set with the right values
  (no lost rows, no orphans, no stale versions),
* B+ trees satisfy their internal ordering/chain invariants,
* columnstores are structurally sound — rid locators match stored
  positions, delete bitmaps agree with their counters, delete buffers
  only mask compressed copies, delta-store shadows are properly paired
  with buffered deletes, and segment min/max metadata matches the
  decoded values (a wrong min/max would silently *eliminate* live data).

The fault-injection tests (``tests/test_faults.py``) lean on this: after
every injected failure the database must either contain the fully
applied statement or none of it, and ``check_database`` must come back
clean.

Run it from the command line with ``python -m repro check``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.errors import StorageError
from repro.storage.btree import PrimaryBTreeIndex, SecondaryBTreeIndex
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.compression import _segment_min_max
from repro.storage.database import Database
from repro.storage.heap import HeapFile
from repro.storage.table import Table

Row = Tuple[object, ...]


@dataclass
class CheckResult:
    """Outcome of a consistency check: a flat list of findings."""

    errors: List[str] = field(default_factory=list)
    checked_tables: int = 0
    checked_indexes: int = 0

    @property
    def ok(self) -> bool:
        """True when no inconsistency was found."""
        return not self.errors

    def add(self, message: str) -> None:
        """Record one finding."""
        self.errors.append(message)

    def merge(self, other: "CheckResult") -> None:
        """Fold another result into this one."""
        self.errors.extend(other.errors)
        self.checked_tables += other.checked_tables
        self.checked_indexes += other.checked_indexes

    def raise_if_failed(self) -> None:
        """Raise :class:`StorageError` summarising every finding."""
        if self.errors:
            raise StorageError(
                f"consistency check failed with {len(self.errors)} "
                "error(s):\n  " + "\n  ".join(self.errors))

    def summary(self) -> str:
        """One-paragraph human-readable outcome."""
        status = "OK" if self.ok else f"{len(self.errors)} error(s)"
        lines = [
            f"checked {self.checked_tables} table(s), "
            f"{self.checked_indexes} index(es): {status}"
        ]
        lines.extend(f"  {err}" for err in self.errors)
        return "\n".join(lines)


def _values_equal(a: object, b: object) -> bool:
    """Equality that treats NaN == NaN (NULLs in numeric columns are
    stored as NaN by the batch layer)."""
    if a == b:
        return True
    try:
        return a != a and b != b  # both NaN
    except Exception:
        return False


def _rows_equal(a: Row, b: Row) -> bool:
    return len(a) == len(b) and all(
        _values_equal(x, y) for x, y in zip(a, b))


def check_table(table: Table) -> CheckResult:
    """Cross-verify every index of ``table`` against its row store."""
    result = CheckResult(checked_tables=1)
    rows = dict(table._rows)
    for rid in rows:
        if rid >= table._next_rid:
            result.add(
                f"{table.name}: rid {rid} >= next_rid {table._next_rid}")
    for structure in table.all_indexes:
        result.checked_indexes += 1
        label = f"{table.name}.{structure.name}"
        if isinstance(structure, HeapFile):
            _check_heap(structure, rows, label, result)
        elif isinstance(structure, PrimaryBTreeIndex):
            _check_primary_btree(structure, rows, label, result)
        elif isinstance(structure, SecondaryBTreeIndex):
            _check_secondary_btree(structure, rows, label, result)
        elif isinstance(structure, ColumnstoreIndex):
            _check_columnstore(structure, rows, label, result)
        else:  # pragma: no cover - future structure kinds
            result.add(f"{label}: unknown structure kind {structure!r}")
    return result


def check_database(db: Database) -> CheckResult:
    """Run :func:`check_table` over every table in the database."""
    result = CheckResult()
    for table in db:
        result.merge(check_table(table))
    return result


# --------------------------------------------------------------- heaps
def _check_heap(heap: HeapFile, rows: Dict[int, Row], label: str,
                result: CheckResult) -> None:
    stored = heap._rows
    for rid in stored.keys() - rows.keys():
        result.add(f"{label}: orphan rid {rid} not in table rows")
    for rid in rows.keys() - stored.keys():
        result.add(f"{label}: rid {rid} missing from heap")
    for rid in stored.keys() & rows.keys():
        if not _rows_equal(stored[rid], rows[rid]):
            result.add(f"{label}: rid {rid} row mismatch")


# ------------------------------------------------------------- B+ trees
def _check_primary_btree(index: PrimaryBTreeIndex, rows: Dict[int, Row],
                         label: str, result: CheckResult) -> None:
    try:
        index.tree.check_invariants()
    except StorageError as exc:
        result.add(f"{label}: tree invariant violated: {exc}")
        return
    seen = set()
    for key, row in index.tree.items():
        rid = key[-1]
        if rid in seen:
            result.add(f"{label}: rid {rid} appears twice")
            continue
        seen.add(rid)
        expected = rows.get(rid)
        if expected is None:
            result.add(f"{label}: orphan rid {rid} not in table rows")
            continue
        if not _rows_equal(row, expected):
            result.add(f"{label}: rid {rid} row mismatch")
        expected_key = tuple(expected[i] for i in index.key_ordinals)
        if not _rows_equal(key[:-1], expected_key):
            result.add(f"{label}: rid {rid} stored under stale key {key[:-1]!r}")
    for rid in rows.keys() - seen:
        result.add(f"{label}: rid {rid} missing from index")


def _check_secondary_btree(index: SecondaryBTreeIndex, rows: Dict[int, Row],
                           label: str, result: CheckResult) -> None:
    try:
        index.tree.check_invariants()
    except StorageError as exc:
        result.add(f"{label}: tree invariant violated: {exc}")
        return
    seen = set()
    for key, payload in index.tree.items():
        rid = key[-1]
        if rid in seen:
            result.add(f"{label}: rid {rid} appears twice")
            continue
        seen.add(rid)
        expected = rows.get(rid)
        if expected is None:
            result.add(f"{label}: orphan rid {rid} not in table rows")
            continue
        expected_key = tuple(expected[i] for i in index.key_ordinals)
        if not _rows_equal(key[:-1], expected_key):
            result.add(f"{label}: rid {rid} stored under stale key {key[:-1]!r}")
        expected_payload = tuple(expected[i] for i in index.included_ordinals)
        if not _rows_equal(payload, expected_payload):
            result.add(f"{label}: rid {rid} included-column mismatch")
    for rid in rows.keys() - seen:
        result.add(f"{label}: rid {rid} missing from index")


# ---------------------------------------------------------- columnstores
def _check_columnstore(index: ColumnstoreIndex, rows: Dict[int, Row],
                       label: str, result: CheckResult) -> None:
    # --- structural: rid locators point exactly at their stored slots.
    for rid, (gi, pos) in index._rid_location.items():
        if gi >= len(index._groups):
            result.add(f"{label}: rid {rid} locator group {gi} out of range")
            continue
        group = index._groups[gi].group
        if pos >= group.n_rows or group.rids[pos] != rid:
            result.add(f"{label}: rid {rid} locator ({gi},{pos}) does not "
                       "match stored rid")

    # --- per-group: bitmap counters and segment metadata.
    for gi, state in enumerate(index._groups):
        group = state.group
        if state.n_deleted != int(state.deleted_mask.sum()):
            result.add(f"{label}: group {gi} n_deleted {state.n_deleted} != "
                       f"bitmap popcount {int(state.deleted_mask.sum())}")
        for name in index.columns:
            segment = group.column(name)
            decoded = segment.decode()
            if len(decoded) != group.n_rows:
                result.add(f"{label}: group {gi} segment {name!r} decodes to "
                           f"{len(decoded)} rows, expected {group.n_rows}")
                continue
            if group.n_rows:
                lo, hi = _segment_min_max(decoded)
                if not (_values_equal(segment.min_value, lo)
                        and _values_equal(segment.max_value, hi)):
                    result.add(
                        f"{label}: group {gi} segment {name!r} min/max "
                        f"metadata ({segment.min_value!r}, "
                        f"{segment.max_value!r}) != decoded ({lo!r}, {hi!r})")
        for pos, rid in enumerate(group.rids.tolist()):
            located = index._rid_location.get(rid)
            if state.deleted_mask[pos]:
                if located == (gi, pos):
                    result.add(f"{label}: rid {rid} locator points at "
                               f"bitmap-deleted slot ({gi},{pos})")
            elif located != (gi, pos):
                result.add(f"{label}: live slot ({gi},{pos}) rid {rid} "
                           f"has locator {located!r}")

    # --- delete buffer / delta-store shadow pairing.
    if index.is_primary and index._delete_buffer:
        result.add(f"{label}: primary columnstore has a nonempty "
                   "delete buffer")
    for rid in index._delete_buffer:
        if rid not in index._rid_location:
            result.add(f"{label}: buffered delete for rid {rid} masks no "
                       "compressed copy")
    for rid in index._delta.keys() & index._rid_location.keys():
        if index.is_primary or rid not in index._delete_buffer:
            result.add(f"{label}: rid {rid} live in both delta store and "
                       "a compressed group")

    # --- the live view must equal the table's rows exactly.
    live: Dict[int, Row] = {}
    for gi, state in enumerate(index._groups):
        group = state.group
        decoded = {name: group.column(name).decode().tolist()
                   for name in index.columns}
        for pos, rid in enumerate(group.rids.tolist()):
            if state.deleted_mask[pos]:
                continue
            if not index.is_primary and rid in index._delete_buffer:
                continue
            if rid in live:
                result.add(f"{label}: rid {rid} live in two row groups")
                continue
            live[rid] = tuple(decoded[name][pos] for name in index.columns)
    for rid, values in index._delta.items():
        if rid in live:
            result.add(f"{label}: rid {rid} live in both delta store and "
                       "a compressed group")
            continue
        live[rid] = tuple(values)

    for rid in live.keys() - rows.keys():
        result.add(f"{label}: orphan rid {rid} not in table rows")
    for rid in rows.keys() - live.keys():
        result.add(f"{label}: rid {rid} missing from columnstore")
    for rid in live.keys() & rows.keys():
        expected = tuple(rows[rid][i] for i in index._column_ordinals)
        if not _rows_equal(live[rid], expected):
            result.add(f"{label}: rid {rid} value mismatch "
                       f"({live[rid]!r} != {expected!r})")
    if index.n_rows != len(rows):
        result.add(f"{label}: n_rows {index.n_rows} != table row count "
                   f"{len(rows)}")
