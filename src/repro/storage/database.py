"""Database container: a namespace of tables plus shared services.

The :class:`Database` is the top-level handle the public API exposes:
workload generators populate it, the SQL front end binds statements
against it, the optimizer reads its statistics, and the advisor changes
its physical design.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional

from repro.core.errors import CatalogError
from repro.core.schema import TableSchema
from repro.engine.costs import DEFAULT_COST_MODEL, CostModel
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.faults import FaultInjector
from repro.storage.segment_cache import (
    DEFAULT_SEGMENT_CACHE_BUDGET,
    DecodedSegmentCache,
)
from repro.storage.table import Table
from repro.storage.telemetry import Telemetry


class Database:
    """A named collection of tables sharing one cost model.

    Parameters
    ----------
    segment_cache_budget_bytes:
        Memory budget of the shared decoded-segment cache.
    segment_cache_enabled:
        Opt-in switch for the cache. Off by default so cold-run
        experiments and the paper's figures are byte-for-byte unchanged;
        enable it (here or via ``db.segment_cache.enabled = True``) to
        make repeated columnstore scans skip re-decoding segments.
    """

    def __init__(self, name: str = "db",
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 segment_cache_budget_bytes: int = DEFAULT_SEGMENT_CACHE_BUDGET,
                 segment_cache_enabled: bool = False):
        self.name = name
        self.cost_model = cost_model
        self.segment_cache = DecodedSegmentCache(
            budget_bytes=segment_cache_budget_bytes,
            enabled=segment_cache_enabled,
        )
        #: Shared fault injector, attached to every index structure of
        #: every table. Disarmed by default — arming points (see
        #: :mod:`repro.storage.faults`) is how robustness tests simulate
        #: storage failures mid-statement.
        self.fault_injector = FaultInjector()
        #: Always-on observation-only telemetry: the logical statement
        #: clock plus missing-index observations. Per-index usage
        #: counters live on the index structures themselves.
        self.telemetry = Telemetry()
        self._tables: Dict[str, Table] = {}
        #: Materialized system-view snapshots (dm_* tables) registered by
        #: :mod:`repro.engine.dmv`. Resolved by :meth:`table` as a
        #: fallback so DMVs bind/plan/execute like ordinary tables, but
        #: excluded from :meth:`tables`/:meth:`table_names`/sizing so no
        #: workload, advisor, or figure path ever sees them.
        self._system_views: Dict[str, Table] = {}

    # ------------------------------------------------------------ tables
    def create_table(self, schema: TableSchema) -> Table:
        """Create and register a new empty table."""
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema, segment_cache=self.segment_cache,
                      fault_injector=self.fault_injector,
                      usage_clock=self.telemetry.clock)
        self._tables[schema.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table (CatalogError when absent)."""
        if name not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        for index in self._tables[name].all_indexes:
            if isinstance(index, ColumnstoreIndex):
                index.invalidate_cached_segments()
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name (CatalogError when absent).

        System-view snapshots (``dm_*``) resolve as a fallback, so a real
        table always shadows a DMV of the same name."""
        try:
            return self._tables[name]
        except KeyError:
            pass
        try:
            return self._system_views[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    # ------------------------------------------------------- system views
    def register_system_view(self, table: Table) -> None:
        """Install (or replace) one materialized system-view snapshot.

        Called by :mod:`repro.engine.dmv` on each rematerialization; the
        snapshot participates in name resolution only, never in
        :meth:`tables`, sizing, or workload enumeration."""
        self._system_views[table.name] = table

    def is_system_view(self, name: str) -> bool:
        """Whether ``name`` resolves to a registered system view (and is
        not shadowed by a real table)."""
        return name in self._system_views and name not in self._tables

    def system_view_names(self) -> List[str]:
        """Names of the registered system views, in registration order."""
        return list(self._system_views)

    def tables(self) -> List[Table]:
        """All tables, in creation order."""
        return list(self._tables.values())

    def table_names(self) -> List[str]:
        """Names of all tables, in creation order."""
        return list(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------ sizing
    def total_size_bytes(self) -> int:
        """Combined size of every index in the database."""
        return sum(t.total_index_bytes() for t in self._tables.values())

    def index_inventory(self) -> List[str]:
        """Human-readable list of every index, for examples and reports."""
        lines = []
        for table in self._tables.values():
            for index in table.all_indexes:
                role = "primary" if index.is_primary else "secondary"
                lines.append(
                    f"{table.name}.{index.name} [{index.kind}, {role}, "
                    f"{index.size_bytes() / (1024 * 1024):.2f} MB]"
                )
        return lines
