"""Database container: a namespace of tables plus shared services.

The :class:`Database` is the top-level handle the public API exposes:
workload generators populate it, the SQL front end binds statements
against it, the optimizer reads its statistics, and the advisor changes
its physical design.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional

from repro.core.errors import CatalogError, StorageError
from repro.core.schema import TableSchema
from repro.engine.costs import DEFAULT_COST_MODEL, CostModel
from repro.storage.columnstore import ColumnstoreIndex
from repro.storage.events import EventStream
from repro.storage.faults import FaultInjector
from repro.storage.segment_cache import (
    DEFAULT_SEGMENT_CACHE_BUDGET,
    DecodedSegmentCache,
)
from repro.storage.table import Table
from repro.storage.telemetry import Telemetry
from repro.storage.timeseries import TelemetryHistory
from repro.storage.waits import WaitStatsCollector


class Database:
    """A named collection of tables sharing one cost model.

    Parameters
    ----------
    segment_cache_budget_bytes:
        Memory budget of the shared decoded-segment cache.
    segment_cache_enabled:
        Opt-in switch for the cache. Off by default so cold-run
        experiments and the paper's figures are byte-for-byte unchanged;
        enable it (here or via ``db.segment_cache.enabled = True``) to
        make repeated columnstore scans skip re-decoding segments.
    """

    def __init__(self, name: str = "db",
                 cost_model: CostModel = DEFAULT_COST_MODEL,
                 segment_cache_budget_bytes: int = DEFAULT_SEGMENT_CACHE_BUDGET,
                 segment_cache_enabled: bool = False):
        self.name = name
        self.cost_model = cost_model
        self.segment_cache = DecodedSegmentCache(
            budget_bytes=segment_cache_budget_bytes,
            enabled=segment_cache_enabled,
        )
        #: Shared fault injector, attached to every index structure of
        #: every table. Disarmed by default — arming points (see
        #: :mod:`repro.storage.faults`) is how robustness tests simulate
        #: storage failures mid-statement.
        self.fault_injector = FaultInjector()
        #: Always-on observation-only telemetry: the logical statement
        #: clock plus missing-index observations. Per-index usage
        #: counters live on the index structures themselves.
        self.telemetry = Telemetry()
        #: Engine-wide wait statistics (``dm_os_wait_stats`` /
        #: ``dm_exec_session_wait_stats``): every blocking primitive of
        #: this database — latch, memory grants, buffer-pool faults, WAL
        #: flush, morsel exchange, segment-cache decode — records into
        #: this one collector.
        self.waits = WaitStatsCollector()
        #: XEvents-style ring buffer of typed engine events
        #: (``dm_xe_ring_buffer``); timestamps come from the logical
        #: clock and session attribution follows the wait collector's.
        self.events = EventStream(
            clock=self.telemetry.clock,
            session_resolver=lambda: self.waits.current_session_id)
        #: Deterministic interval telemetry history, sampled by the
        #: executor on logical-clock boundaries (the drift substrate for
        #: the future online tuner).
        self.history = TelemetryHistory()
        self.segment_cache.waits = self.waits
        self.fault_injector.events = self.events
        self._tables: Dict[str, Table] = {}
        #: Durability backend, both None by default (pure simulator — the
        #: byte-identical configuration): a directory holding the page
        #: snapshot + WAL, and the attached
        #: :class:`~repro.storage.wal.WriteAheadLog`. Set by
        #: :meth:`enable_durability` / :meth:`open`.
        self.data_dir: Optional[str] = None
        self.wal = None
        #: :class:`~repro.storage.recovery.RecoveryReport` of the
        #: recovery that produced this database, when it came from
        #: :meth:`open`.
        self.last_recovery = None
        #: Demand-paging state, set by ``open(..., paging=True)``: the
        #: shared :class:`~repro.storage.bufferpool.BufferPool` all paged
        #: structures fault through, and the open snapshot reader whose
        #: lifetime this database owns. Both None on the default
        #: in-memory path.
        self.buffer_pool = None
        self._snapshot_reader = None
        #: Materialized system-view snapshots (dm_* tables) registered by
        #: :mod:`repro.engine.dmv`. Resolved by :meth:`table` as a
        #: fallback so DMVs bind/plan/execute like ordinary tables, but
        #: excluded from :meth:`tables`/:meth:`table_names`/sizing so no
        #: workload, advisor, or figure path ever sees them.
        self._system_views: Dict[str, Table] = {}

    # ------------------------------------------------------------ tables
    def create_table(self, schema: TableSchema) -> Table:
        """Create and register a new empty table."""
        if schema.name in self._tables:
            raise CatalogError(f"table {schema.name!r} already exists")
        table = Table(schema, segment_cache=self.segment_cache,
                      fault_injector=self.fault_injector,
                      usage_clock=self.telemetry.clock)
        self._tables[schema.name] = table
        if self.wal is not None:
            table.attach_wal(self.wal)
            from repro.storage.pages import _schema_payload
            self.wal.log_ops([{
                "op": "create_table",
                "name": schema.name,
                "schema": _schema_payload(schema),
            }])
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table (CatalogError when absent)."""
        if name not in self._tables:
            raise CatalogError(f"no table named {name!r}")
        for index in self._tables[name].all_indexes:
            if isinstance(index, ColumnstoreIndex):
                index.invalidate_cached_segments()
        del self._tables[name]
        if self.wal is not None:
            self.wal.log_ops([{"op": "drop_table", "name": name}])

    def table(self, name: str) -> Table:
        """Look up a table by name (CatalogError when absent).

        System-view snapshots (``dm_*``) resolve as a fallback, so a real
        table always shadows a DMV of the same name."""
        try:
            return self._tables[name]
        except KeyError:
            pass
        try:
            return self._system_views[name]
        except KeyError:
            raise CatalogError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        """Whether a table with this name exists."""
        return name in self._tables

    # ------------------------------------------------------- system views
    def register_system_view(self, table: Table) -> None:
        """Install (or replace) one materialized system-view snapshot.

        Called by :mod:`repro.engine.dmv` on each rematerialization; the
        snapshot participates in name resolution only, never in
        :meth:`tables`, sizing, or workload enumeration."""
        self._system_views[table.name] = table

    def is_system_view(self, name: str) -> bool:
        """Whether ``name`` resolves to a registered system view (and is
        not shadowed by a real table)."""
        return name in self._system_views and name not in self._tables

    def system_view_names(self) -> List[str]:
        """Names of the registered system views, in registration order."""
        return list(self._system_views)

    def tables(self) -> List[Table]:
        """All tables, in creation order."""
        return list(self._tables.values())

    def table_names(self) -> List[str]:
        """Names of all tables, in creation order."""
        return list(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    # ------------------------------------------------------------ sizing
    def total_size_bytes(self) -> int:
        """Combined size of every index in the database."""
        return sum(t.total_index_bytes() for t in self._tables.values())

    def index_inventory(self) -> List[str]:
        """Human-readable list of every index, for examples and reports."""
        lines = []
        for table in self._tables.values():
            for index in table.all_indexes:
                role = "primary" if index.is_primary else "secondary"
                lines.append(
                    f"{table.name}.{index.name} [{index.kind}, {role}, "
                    f"{index.size_bytes() / (1024 * 1024):.2f} MB]"
                )
        return lines

    # -------------------------------------------------------- durability
    @property
    def durable(self) -> bool:
        """Whether a durability backend (data dir + WAL) is attached."""
        return self.wal is not None

    def _attach_storage(self, data_dir: str, wal) -> None:
        """Attach a WAL: every table starts logging its DML/DDL."""
        self.data_dir = str(data_dir)
        self.wal = wal
        for table in self._tables.values():
            table.attach_wal(wal)

    def save(self, path: Optional[str] = None) -> str:
        """Write an atomic page snapshot of the current state.

        The snapshot goes to ``<path>/snapshot.db`` via a temp file +
        fsync + rename, so a crash mid-write can never clobber the
        previously published snapshot. When a WAL is attached this is a
        *checkpoint*: the snapshot captures the log's last LSN and the
        log is truncated afterwards.

        Not safe against concurrent DML — callers must quiesce first
        (the serving layer checkpoints under the exclusive latch).
        """
        from repro.storage.pages import write_snapshot
        from repro.storage.wal import SNAPSHOT_FILENAME, SNAPSHOT_TMP_FILENAME

        target = path or self.data_dir
        if target is None:
            raise StorageError(
                "Database.save needs a path (no data_dir attached)")
        os.makedirs(target, exist_ok=True)
        checkpoint_lsn = self.wal.last_lsn if self.wal is not None else 0
        tmp = os.path.join(target, SNAPSHOT_TMP_FILENAME)
        final = os.path.join(target, SNAPSHOT_FILENAME)
        with open(tmp, "wb") as out:
            write_snapshot(self, out, checkpoint_lsn=checkpoint_lsn,
                           faults=self.fault_injector)
            out.flush()
            os.fsync(out.fileno())
        os.replace(tmp, final)
        if self.wal is not None:
            self.wal.checkpoint(checkpoint_lsn)
        self.events.emit("checkpoint", {
            "checkpoint_lsn": checkpoint_lsn,
            "tables": len(self._tables),
            "durable": self.wal is not None,
        })
        return final

    def checkpoint(self) -> str:
        """Snapshot + WAL reset into the attached data directory."""
        if self.data_dir is None:
            raise StorageError("checkpoint needs an attached data_dir")
        return self.save(self.data_dir)

    def enable_durability(self, data_dir: str, fsync: bool = False) -> None:
        """Turn this in-memory database durable.

        Writes an initial snapshot of the current state to ``data_dir``
        and attaches a WAL; every committed statement from here on is
        durable before it returns. Typical flow: build the workload
        in memory (fast, unlogged), then enable durability, then serve.
        """
        from repro.storage.wal import WAL_FILENAME, WriteAheadLog

        if self.wal is not None:
            raise StorageError(
                f"database {self.name!r} is already durable "
                f"(data_dir={self.data_dir!r})")
        os.makedirs(data_dir, exist_ok=True)
        wal_path = os.path.join(data_dir, WAL_FILENAME)
        if os.path.exists(wal_path):
            os.remove(wal_path)
        self.save(data_dir)
        wal = WriteAheadLog(wal_path, fsync=fsync,
                            faults=self.fault_injector, waits=self.waits)
        wal.checkpoint(0)
        self._attach_storage(data_dir, wal)

    @classmethod
    def open(cls, data_dir: str, cost_model: CostModel = DEFAULT_COST_MODEL,
             fsync: bool = False, paging: bool = False,
             pool_bytes: Optional[int] = None) -> "Database":
        """Recover a durable database directory and reattach its WAL.

        Runs full crash recovery (snapshot load + committed-WAL redo +
        consistency check — see :mod:`repro.storage.recovery`), truncates
        any torn WAL tail, and returns a database ready to serve and log
        further statements. The recovery report is available as
        ``db.last_recovery``.

        With ``paging=True`` the snapshot is opened lazily through a
        :class:`~repro.storage.bufferpool.BufferPool` of ``pool_bytes``
        (default :data:`~repro.storage.bufferpool.DEFAULT_POOL_BYTES`):
        B+ leaf pages and columnstore segment pages are demand-loaded
        from ``snapshot.db`` on first touch and LRU-evicted under the
        byte budget, so tables larger than memory can be served. The
        default (``paging=False``) is the fully-loaded path and stays
        byte-identical to prior releases.
        """
        from repro.storage.bufferpool import DEFAULT_POOL_BYTES, BufferPool
        from repro.storage.recovery import recover
        from repro.storage.wal import WAL_FILENAME, WriteAheadLog

        pool = None
        if paging:
            pool = BufferPool(
                budget_bytes=pool_bytes or DEFAULT_POOL_BYTES)
        elif pool_bytes is not None:
            raise StorageError("pool_bytes requires paging=True")
        database, report = recover(data_dir, cost_model=cost_model,
                                   buffer_pool=pool)
        wal_path = os.path.join(data_dir, WAL_FILENAME)
        if report.torn_tail and os.path.exists(wal_path):
            with open(wal_path, "r+b") as f:
                f.truncate(report.wal_valid_bytes)
        wal = WriteAheadLog(
            wal_path, fsync=fsync, faults=database.fault_injector,
            start_lsn=max(report.last_lsn, report.checkpoint_lsn),
            start_txn=report.last_txn, waits=database.waits,
        )
        database._attach_storage(data_dir, wal)
        database.last_recovery = report
        if pool is not None:
            # The pool was built before the database existed; attach the
            # observability sinks now so faults record PAGEIOLATCH and
            # eviction storms reach the event ring.
            pool.waits = database.waits
            pool.events = database.events
        database.events.emit("recovery", {
            "snapshot_pages": report.snapshot_pages,
            "wal_records": report.wal_records,
            "txns_committed": report.txns_committed,
            "ops_replayed": report.ops_replayed,
            "torn_tail": report.torn_tail,
            "check_ok": report.check_ok,
        })
        return database
