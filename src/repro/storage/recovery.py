"""Crash recovery: analysis + redo replay from the last checkpoint.

Recovery restores a durable database directory to exactly the committed
prefix of its history:

1. **Load** the last published snapshot (``snapshot.db``), validating
   every page checksum. A missing snapshot means recovery starts from an
   empty database (the WAL then carries the DDL too). A *corrupt*
   snapshot is unrecoverable — the atomic temp-file + rename publish
   protocol guarantees the published file is never torn, so corruption
   here means real damage, not a crash artifact.
2. **Analyze** the WAL (``wal.log``): scan to the first torn/corrupt
   frame (everything after is the discarded tail a crash left), and
   collect the set of transactions with a COMMIT record.
3. **Redo** the ops of committed transactions in log order, skipping
   records at or below the snapshot's checkpoint LSN. Redo is *logical*
   per index kind — inserts force their logged rid, deletes/updates ride
   the normal ``Table`` paths, DDL and explicit maintenance re-run the
   original operation — and **idempotent**: recovering the same
   directory twice yields byte-identical states (compare
   :func:`state_digest`), because replay is a pure function of
   (snapshot, committed WAL prefix).
4. **Verify**: run :func:`~repro.storage.checker.check_database` and
   fold the result into the :class:`RecoveryReport`.

There is no undo pass: uncommitted statements buffer their ops in
memory (see :mod:`repro.storage.wal`) and never reach the log, and
snapshots are only taken at quiesced checkpoints, so nothing
uncommitted can be durable.
"""

from __future__ import annotations

import hashlib
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.errors import RecoveryError, ReproError
from repro.storage.checker import check_database
from repro.storage.pages import (
    load_snapshot,
    load_snapshot_paged,
    snapshot_bytes,
    _schema_from_payload,
)
from repro.storage.wal import (
    REC_OP,
    SNAPSHOT_FILENAME,
    WAL_FILENAME,
    WalScan,
    read_wal,
)


@dataclass
class RecoveryReport:
    """Everything recovery learned, for the CLI and the crash harness."""

    data_dir: str
    snapshot_found: bool = False
    snapshot_pages: int = 0
    checkpoint_lsn: int = 0
    wal_found: bool = False
    wal_records: int = 0
    wal_valid_bytes: int = 0
    wal_total_bytes: int = 0
    torn_tail: bool = False
    torn_reason: str = ""
    txns_committed: int = 0
    txns_aborted: int = 0
    txns_open: int = 0
    ops_replayed: int = 0
    ops_skipped: int = 0
    last_lsn: int = 0
    last_txn: int = 0
    check_ok: bool = False
    check_findings: List[str] = field(default_factory=list)
    #: "full" when check_database ran during recovery; "deferred" when a
    #: paged open with nothing to redo skipped it so the lazy open stays
    #: lazy (the checker would fault every deferred page in).
    check_mode: str = "full"

    def as_dict(self) -> Dict[str, object]:
        return {
            "data_dir": self.data_dir,
            "snapshot_found": self.snapshot_found,
            "snapshot_pages": self.snapshot_pages,
            "checkpoint_lsn": self.checkpoint_lsn,
            "wal_found": self.wal_found,
            "wal_records": self.wal_records,
            "wal_valid_bytes": self.wal_valid_bytes,
            "wal_total_bytes": self.wal_total_bytes,
            "torn_tail": self.torn_tail,
            "torn_reason": self.torn_reason,
            "txns_committed": self.txns_committed,
            "txns_aborted": self.txns_aborted,
            "txns_open": self.txns_open,
            "ops_replayed": self.ops_replayed,
            "ops_skipped": self.ops_skipped,
            "last_lsn": self.last_lsn,
            "last_txn": self.last_txn,
            "check_ok": self.check_ok,
            "check_findings": list(self.check_findings),
            "check_mode": self.check_mode,
        }

    def summary(self) -> str:
        lines = [
            f"recovery of {self.data_dir}",
            (f"  snapshot: "
             + (f"{self.snapshot_pages} pages, checkpoint LSN "
                f"{self.checkpoint_lsn}" if self.snapshot_found
                else "none (starting empty)")),
            (f"  wal: "
             + (f"{self.wal_records} records in {self.wal_valid_bytes}/"
                f"{self.wal_total_bytes} valid bytes" if self.wal_found
                else "none")),
        ]
        if self.torn_tail:
            lines.append(f"  torn tail discarded: {self.torn_reason}")
        lines.append(
            f"  transactions: {self.txns_committed} committed, "
            f"{self.txns_aborted} aborted, {self.txns_open} open "
            "(discarded)")
        lines.append(
            f"  redo: {self.ops_replayed} ops replayed, "
            f"{self.ops_skipped} skipped (<= checkpoint LSN)")
        lines.append(
            "  consistency check: "
            + ("clean" if self.check_ok
               else f"{len(self.check_findings)} finding(s)"))
        for finding in self.check_findings[:10]:
            lines.append(f"    - {finding}")
        return "\n".join(lines)


# --------------------------------------------------------------- redo ops

def _redo_insert(table, rid: int, row: Tuple) -> None:
    """Apply one logged insert, forcing its original rid.

    ``Table.insert_row`` cannot be reused: rid allocation must match the
    log exactly even when aborted statements burned rids in the original
    process (their rids are absent from the log and must stay absent)."""
    if rid in table._rows:
        raise RecoveryError(
            f"redo insert: rid {rid} already live in table {table.name!r}")
    row = tuple(row)
    table._rows[rid] = row
    table._next_rid = max(table._next_rid, rid + 1)
    table.primary.insert(rid, row)
    for index in table.secondary_indexes.values():
        index.insert(rid, row)
    table.modification_counter += 1


_MAINTENANCE_KINDS = ("tuple_move", "rebuild", "reorganize", "compact")


def _apply_op(database, op: Dict[str, object]) -> None:
    """Replay one logical redo op against the recovering database."""
    kind = op.get("op")
    if kind == "create_table":
        database.create_table(
            _schema_from_payload(op["name"], op["schema"]))
        return
    if kind == "drop_table":
        database.drop_table(op["name"])
        return
    table = database.table(op["table"])
    if kind == "insert":
        _redo_insert(table, op["rid"], op["row"])
    elif kind == "bulk_insert":
        for rid, row in zip(op["rids"], op["rows"]):
            table._rows[rid] = tuple(row)
            table.primary.insert(rid, tuple(row))
            table._next_rid = max(table._next_rid, rid + 1)
        table.modification_counter += len(op["rids"])
    elif kind == "delete":
        table.delete_rids(op["rids"])
    elif kind == "update":
        table.update_rids([(rid, tuple(row)) for rid, row in op["updates"]])
    elif kind == "set_primary_btree":
        table.set_primary_btree(op["key_columns"], name=op["name"])
    elif kind == "set_primary_columnstore":
        index = table.set_primary_columnstore(
            name=op["name"], rowgroup_size=op["rowgroup_size"],
            presorted=op["presorted"])
        # Replay must reproduce the original object id (it keys the
        # segment cache and is part of the snapshot digest); forcing it
        # right after the build is safe — nothing is cached yet.
        index.object_id = op.get("object_id", index.object_id)
    elif kind == "set_primary_heap":
        table.set_primary_heap()
    elif kind == "create_secondary_btree":
        table.create_secondary_btree(
            op["name"], op["key_columns"],
            included_columns=op["included_columns"])
    elif kind == "create_secondary_columnstore":
        index = table.create_secondary_columnstore(
            op["name"], columns=op["columns"],
            rowgroup_size=op["rowgroup_size"], sorted_on=op["sorted_on"],
            allow_multiple=op["allow_multiple"])
        index.object_id = op.get("object_id", index.object_id)
    elif kind == "drop_index":
        table.drop_index(op["name"])
    elif kind == "drop_all_secondary_indexes":
        table.drop_all_secondary_indexes()
    elif kind == "maintenance":
        if op["kind"] not in _MAINTENANCE_KINDS:
            raise RecoveryError(
                f"unknown maintenance op {op['kind']!r} in WAL")
        index = table.index_by_name(op["index"])
        if op["kind"] == "tuple_move":
            index.move_tuples()
        elif op["kind"] == "rebuild":
            index.rebuild()
        elif op["kind"] == "reorganize":
            index.reorganize()
        else:
            index.compact_delete_buffer()
    else:
        raise RecoveryError(f"unknown redo op {kind!r} in WAL")


# ---------------------------------------------------------------- recover

def recover(data_dir, cost_model=None, buffer_pool=None):
    """Recover a durable database directory.

    Returns ``(database, report)``. The returned database has no WAL
    attached (pure in-memory result) — :meth:`Database.open` is the
    entry point that also reattaches the log for continued service.

    With ``buffer_pool`` set the snapshot is opened lazily
    (:func:`load_snapshot_paged`): B+ leaf pages and columnstore segment
    pages stay on disk and fault in through the pool on first touch.
    Redo forces residency naturally — every replayed op runs through the
    normal mutation paths, which materialize the structures they touch —
    and when there was nothing to redo the full consistency check is
    deferred (``report.check_mode == "deferred"``) so a lazy open does
    not fault every page in; callers can still run
    :func:`~repro.storage.checker.check_database` explicitly.

    Raises :class:`~repro.core.errors.RecoveryError` when the directory
    cannot be restored at all (corrupt snapshot, redo against a missing
    object, undecodable op). Checker findings do *not* raise: they are
    reported via ``report.check_ok`` / ``report.check_findings`` so
    callers can gate on them (the CLI exits 1).
    """
    from repro.engine.costs import DEFAULT_COST_MODEL
    from repro.storage.database import Database

    data_dir = str(data_dir)
    report = RecoveryReport(data_dir=data_dir)
    snapshot_path = os.path.join(data_dir, SNAPSHOT_FILENAME)
    paged = False
    if os.path.exists(snapshot_path):
        try:
            if buffer_pool is not None:
                database, meta, reader = load_snapshot_paged(
                    snapshot_path, buffer_pool, cost_model=cost_model)
                database.buffer_pool = buffer_pool
                database._snapshot_reader = reader
                paged = True
            else:
                database, meta = load_snapshot(
                    snapshot_path, cost_model=cost_model)
        except ReproError as exc:
            raise RecoveryError(
                f"snapshot {snapshot_path} is unrecoverable: {exc}"
            ) from exc
        report.snapshot_found = True
        report.snapshot_pages = meta["pages_read"]
        report.checkpoint_lsn = meta["checkpoint_lsn"]
    else:
        database = Database(
            cost_model=cost_model or DEFAULT_COST_MODEL)
        if buffer_pool is not None:
            database.buffer_pool = buffer_pool

    wal_path = os.path.join(data_dir, WAL_FILENAME)
    scan: WalScan = read_wal(wal_path)
    report.wal_found = os.path.exists(wal_path)
    report.wal_records = len(scan.records)
    report.wal_valid_bytes = scan.valid_bytes
    report.wal_total_bytes = scan.total_bytes
    report.torn_tail = scan.torn
    report.torn_reason = scan.torn_reason
    report.checkpoint_lsn = max(report.checkpoint_lsn,
                                scan.checkpoint_lsn())
    report.last_lsn = max(scan.last_lsn, report.checkpoint_lsn)
    report.last_txn = scan.last_txn

    committed = scan.committed_txns()
    aborted = scan.aborted_txns()
    seen = {r.txn for r in scan.records if r.txn != 0}
    report.txns_committed = len(committed)
    report.txns_aborted = len(aborted)
    report.txns_open = len(seen - committed - aborted)

    for record in scan.records:
        if record.rec_type != REC_OP or record.txn not in committed:
            continue
        if record.lsn <= report.checkpoint_lsn:
            report.ops_skipped += 1
            continue
        try:
            _apply_op(database, record.payload)
        except RecoveryError:
            raise
        except ReproError as exc:
            raise RecoveryError(
                f"redo failed at lsn {record.lsn} "
                f"({record.payload.get('op')!r}): {exc}") from exc
        report.ops_replayed += 1

    # Ids forced by replayed DDL may exceed what the snapshot loader
    # reserved; indexes built *after* recovery must not collide.
    from repro.storage.columnstore import ensure_object_ids_above
    ensure_object_ids_above(max(
        (index.object_id for table in database.tables()
         for index in table.all_indexes), default=0))

    if paged and report.ops_replayed == 0:
        # A clean paged open has nothing to verify beyond what the page
        # checksums already guarantee at fault time; running the full
        # checker here would materialize every deferred page and defeat
        # the lazy open. The differential suite exercises the explicit
        # check_database path on paged databases.
        report.check_ok = True
        report.check_mode = "deferred"
    else:
        result = check_database(database)
        report.check_ok = result.ok
        report.check_findings = list(result.errors)
    return database, report


def state_digest(database) -> str:
    """SHA-256 of the database's deterministic snapshot serialization.

    Two databases with identical logical + physical state produce equal
    digests — the yardstick for recovery idempotence ("replaying twice
    yields identical state")."""
    return hashlib.sha256(snapshot_bytes(database)).hexdigest()
