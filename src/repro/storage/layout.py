"""Adaptive per-column layout selection (ByteStore-style).

*ByteStore: Hybrid Layouts for Main-Memory Column Stores* shows that the
best physical layout for a column is a function of how the column is
*accessed*, not just of its value distribution: scan-heavy columns want
maximally compressed, sequential-friendly encodings (RLE over sorted
runs), while point-access-heavy columns want positional encodings where
"value at row i" is O(1) array indexing (bit-packed or raw codes — an
RLE segment needs a run prefix-sum / binary search per probe).

This engine already observes the access mix: the always-on DMV usage
stats (:class:`~repro.storage.telemetry.IndexUsageStats`) count seeks,
scans, and lookups per index. :class:`AdaptiveLayoutPolicy` consumes
those counters at REBUILD time and hands
:meth:`ColumnstoreIndex.rebuild` per-column encoding overrides for
``compress_rowgroup`` — the layout literally adapts to the workload the
DMVs measured, and switches back when the mix shifts again.

The policy is deliberately conservative and fully explainable: every
decision carries the observed ratio that produced it. With no policy
attached (the default everywhere), rebuilds keep the smallest-size
encoding choice and all figure outputs are byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.storage.compression import ENCODING_BITPACK
from repro.storage.telemetry import IndexUsageStats

#: Layout names surfaced in decisions / DMV-style introspection.
LAYOUT_SCAN_OPTIMIZED = "scan_optimized"
LAYOUT_POINT_OPTIMIZED = "point_optimized"


@dataclass(frozen=True)
class LayoutDecision:
    """One column's layout choice plus the evidence for it."""

    column: str
    layout: str
    #: Encoding forced at ``encode_segment`` time; None keeps the
    #: smallest-size choice (the engine default).
    forced_encoding: Optional[str]
    reason: str


class AdaptiveLayoutPolicy:
    """Choose per-column encodings from the DMV-observed access mix.

    ``point_ratio_threshold`` is how many point accesses (seeks +
    lookups) must be observed *per scan* before a column flips to the
    point-optimized positional layout; symmetric logic flips it back
    when scans dominate. ``min_observations`` guards against deciding
    from noise right after stats reset.
    """

    def __init__(self, point_ratio_threshold: float = 4.0,
                 min_observations: int = 16):
        if point_ratio_threshold <= 0:
            raise ValueError("point_ratio_threshold must be positive")
        self.point_ratio_threshold = point_ratio_threshold
        self.min_observations = min_observations

    def choose(self, usage: IndexUsageStats,
               columns: Sequence[str]) -> Dict[str, LayoutDecision]:
        """Layout decision per column for one index rebuild.

        The usage stats are per *index*, so every column of the index
        sees the same access mix; the decision is still emitted per
        column because that is the granularity ``compress_rowgroup``
        applies overrides at (and finer-grained per-column counters can
        slot in here without changing any caller).
        """
        point_ops = usage.user_seeks + usage.user_lookups
        scan_ops = usage.user_scans
        total = point_ops + scan_ops
        if total < self.min_observations:
            return {
                column: LayoutDecision(
                    column=column, layout=LAYOUT_SCAN_OPTIMIZED,
                    forced_encoding=None,
                    reason=(f"only {total} observed accesses "
                            f"(< {self.min_observations}): keeping "
                            "smallest-size layout"))
                for column in columns
            }
        ratio = point_ops / max(scan_ops, 1)
        if ratio >= self.point_ratio_threshold:
            return {
                column: LayoutDecision(
                    column=column, layout=LAYOUT_POINT_OPTIMIZED,
                    forced_encoding=ENCODING_BITPACK,
                    reason=(f"{point_ops} point accesses vs {scan_ops} "
                            f"scans (ratio {ratio:.1f} >= "
                            f"{self.point_ratio_threshold}): positional "
                            "bit-packed codes for O(1) row access"))
                for column in columns
            }
        # Scan-heavy: the smallest-size choice (RLE/dict wherever runs or
        # a dictionary pay off) *is* the scan-optimized layout — forcing
        # RLE on a high-cardinality column would bloat it into one run
        # per row, so scan-optimized means "no override".
        return {
            column: LayoutDecision(
                column=column, layout=LAYOUT_SCAN_OPTIMIZED,
                forced_encoding=None,
                reason=(f"{scan_ops} scans vs {point_ops} point accesses "
                        f"(ratio {ratio:.1f} < "
                        f"{self.point_ratio_threshold}): smallest-size "
                        "compressed layout for scan throughput"))
            for column in columns
        }
