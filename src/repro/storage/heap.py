"""Heap file: the unordered row store used when a table has no clustered
index. Also serves as the RID-addressable backing store for secondary
index lookups.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from repro.core.errors import StorageError
from repro.core.schema import TableSchema
from repro.engine.metrics import ExecutionContext
from repro.storage.faults import FaultInjector, trip
from repro.storage.telemetry import IndexUsageStats

Row = Tuple[object, ...]


class HeapFile:
    """An append-mostly unordered collection of rows keyed by RID."""

    kind = "heap"
    is_primary = True

    def __init__(self, name: str, schema: TableSchema, object_id: int = 0):
        self.name = name
        self.schema = schema
        self.object_id = object_id
        self._rows: Dict[int, Row] = {}
        #: Fault injector attached by the owning Table (None standalone).
        self.faults: Optional[FaultInjector] = None
        #: Cumulative usage counters (dm_db_index_usage_stats); recorded
        #: only for context-carrying (user) accesses, never charged.
        self.usage = IndexUsageStats()

    def __len__(self) -> int:
        return len(self._rows)

    def size_bytes(self) -> int:
        # Heap pages hold rows with ~4% free-space/fragmentation overhead.
        """Approximate on-disk size in bytes."""
        return int(len(self._rows) * self.schema.row_byte_width * 1.04) + 8192

    def insert(self, rid: int, row: Row, ctx: Optional[ExecutionContext] = None) -> None:
        """Insert one row, charging maintenance costs to ``ctx``."""
        if rid in self._rows:
            raise StorageError(f"duplicate rid {rid} in heap {self.name!r}")
        trip(self.faults, "heap.insert")
        self._rows[rid] = row
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.log_write_ms_per_row)

    def delete(self, rid: int, row: Row, ctx: Optional[ExecutionContext] = None) -> None:
        """Delete one row, charging maintenance costs to ``ctx``."""
        if rid not in self._rows:
            raise StorageError(f"rid {rid} not in heap {self.name!r}")
        trip(self.faults, "heap.delete")
        del self._rows[rid]
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.log_write_ms_per_row)

    def update(
        self,
        rid: int,
        old_row: Row,
        new_row: Row,
        ctx: Optional[ExecutionContext] = None,
    ) -> None:
        """Update one row in place (delete+insert when keys change)."""
        if rid not in self._rows:
            raise StorageError(f"rid {rid} not in heap {self.name!r}")
        trip(self.faults, "heap.update")
        self._rows[rid] = new_row
        if ctx is not None:
            ctx.charge_serial_cpu(ctx.cost_model.log_write_ms_per_row)

    def fetch(self, rid: int, ctx: Optional[ExecutionContext] = None) -> Row:
        """RID lookup: one random page access on cold runs."""
        try:
            row = self._rows[rid]
        except KeyError:
            raise StorageError(f"rid {rid} not in heap {self.name!r}") from None
        if ctx is not None:
            ctx.charge_random_read(1)
            self.usage.record_lookup()
        return row

    def scan(self, ctx: Optional[ExecutionContext] = None) -> Iterator[Tuple[int, Row]]:
        """Full scan in RID order; charges sequential-ish heap I/O."""
        if ctx is not None:
            nbytes = len(self._rows) * self.schema.row_byte_width
            ctx.charge_btree_scan_read(nbytes)
            ctx.record_data_read(nbytes)
            self.usage.record_scan()
        for rid in sorted(self._rows):
            yield rid, self._rows[rid]
