"""Columnstore index (CSI): compressed row groups, delta store, delete
buffer / delete bitmap, segment elimination, and the tuple mover.

Follows the SQL Server design described in Section 2 of the paper:

* Data is split into **row groups** (a scaled-down 4K–64K rows here vs SQL
  Server's 100K–1M); each column within a group forms a compressed
  **column segment** with min/max metadata used for **segment
  elimination**.
* **Inserts** land in a B+ tree **delta store**; once the delta store
  reaches the row-group size, the **tuple mover** compresses it into a new
  row group (bulk loads go straight to compressed groups via ``build``).
* **Deletes** differ between the two flavours:

  - a **secondary** CSI has a *delete buffer* (a B+ tree of deleted row
    locators): deleting is a cheap B+ tree insert, but every scan pays an
    anti-semi join between the compressed groups and the buffer;
  - a **primary** CSI has only the *delete bitmap*: deleting must first
    locate the row's physical position, which requires scanning the
    compressed row group — making small deletes expensive (Figure 5) —
    but scans stay fast because positions are masked directly.

* **Updates** are a delete followed by an insert into the delta store.

Scans yield :class:`~repro.engine.batch.Batch` objects (batch mode).
"""

from __future__ import annotations

import itertools
import time
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.errors import StorageError
from repro.core.schema import TableSchema
from repro.engine.batch import Batch, _column_array
from repro.engine.encoded import EncodedColumn, encoded_execution_enabled
from repro.engine.metrics import ExecutionContext
from repro.storage.compression import CompressedRowGroup, compress_rowgroup
from repro.storage.faults import FaultInjector, trip
from repro.storage.segment_cache import DecodedSegmentCache
from repro.storage.telemetry import IndexUsageStats
from repro.storage.waits import WAIT_SEGCACHE_MISS

Row = Tuple[object, ...]

#: Default number of rows per compressed row group (scaled down from SQL
#: Server's 100K-1M so scaled tables still get many groups).
DEFAULT_ROWGROUP_SIZE = 32768

RID_COLUMN = "__rid__"

#: Fallback object-id allocator so every index gets a distinct decoded-
#: segment cache key space even when the caller passes no explicit id.
_AUTO_OBJECT_IDS = itertools.count(1)


def ensure_object_ids_above(minimum: int) -> None:
    """Advance the auto object-id counter past ``minimum``.

    Snapshot restore re-creates indexes with their persisted object ids;
    without this, a later auto-assigned id could collide with a restored
    one and cross-contaminate the shared segment cache."""
    global _AUTO_OBJECT_IDS
    current = next(_AUTO_OBJECT_IDS)
    _AUTO_OBJECT_IDS = itertools.count(max(current, minimum + 1))


class _RowGroupState:
    """A compressed row group plus its delete mask."""

    __slots__ = ("group", "deleted_mask", "n_deleted")

    def __init__(self, group: CompressedRowGroup):
        self.group = group
        self.deleted_mask = np.zeros(group.n_rows, dtype=bool)
        self.n_deleted = 0

    @property
    def live_rows(self) -> int:
        """Rows in the group not masked by the delete bitmap."""
        return self.group.n_rows - self.n_deleted


class ColumnstoreIndex:
    """A primary or secondary columnstore index.

    Parameters
    ----------
    name:
        Index name (catalog-unique).
    schema:
        The owning table's schema.
    columns:
        Columns stored in the index. A primary CSI must store every table
        column; a secondary CSI stores any subset of
        columnstore-supported columns.
    is_primary:
        Selects the delete mechanism (bitmap-only vs delete buffer) and
        whether the index is the table's main storage.
    rowgroup_size:
        Rows per compressed row group; also the delta-store compression
        threshold for the tuple mover.
    """

    kind = "csi"

    def __init__(
        self,
        name: str,
        schema: TableSchema,
        columns: Optional[Sequence[str]] = None,
        is_primary: bool = False,
        rowgroup_size: int = DEFAULT_ROWGROUP_SIZE,
        object_id: int = 0,
    ):
        if rowgroup_size < 64:
            raise StorageError("rowgroup_size must be at least 64")
        self.name = name
        self.schema = schema
        self.is_primary = is_primary
        self.rowgroup_size = rowgroup_size
        self.object_id = object_id if object_id else next(_AUTO_OBJECT_IDS)
        #: Shared decoded-segment cache, attached by the owning
        #: :class:`~repro.storage.table.Table` when the table belongs to a
        #: :class:`~repro.storage.database.Database`; None means uncached.
        self.segment_cache: Optional[DecodedSegmentCache] = None
        #: Fault injector attached by the owning Table (None standalone).
        self.faults: Optional[FaultInjector] = None
        #: WAL maintenance hook attached by the owning Table when the
        #: database is durable: called with the op kind ("tuple_move",
        #: "rebuild", "reorganize", "compact") at each *explicit*
        #: maintenance commit point. Auto-triggered tuple moves (delta
        #: reaching the rowgroup threshold mid-DML) are deliberately not
        #: logged: they are a deterministic consequence of the logged DML
        #: and replay identically during redo.
        self.wal_notify = None
        #: Cumulative usage counters (dm_db_index_usage_stats), including
        #: the per-index segments_scanned/segments_skipped attribution;
        #: recorded only for context-carrying (user) accesses, never
        #: charged. Survives rebuild/reorganize: those swap the index's
        #: internals, not the index object.
        self.usage = IndexUsageStats()
        #: Optional adaptive layout policy (ByteStore-style). When set,
        #: REBUILD consults it with this index's DMV usage stats and may
        #: force per-column encodings via ``compress_rowgroup``'s
        #: ``encoding_overrides``; None keeps the smallest-size layout.
        self.layout_policy = None
        #: Demand-paging hooks, set by ``load_snapshot_paged`` when the
        #: database opened with ``paging=True``: the shared
        #: :class:`~repro.storage.bufferpool.BufferPool` and the pager
        #: that faults this index's segment pages through it. Both stay
        #: None on the default in-memory path and after REBUILD (rebuilt
        #: groups are in-memory, so there is nothing left to page).
        self.buffer_pool = None
        self._pager = None
        if columns is None:
            columns = schema.columnstore_columns()
        self.columns = list(columns)
        unsupported = [
            c for c in self.columns
            if not schema.column(c).col_type.columnstore_supported
        ]
        if unsupported:
            raise StorageError(
                f"columns {unsupported} have types unsupported by columnstore"
            )
        if is_primary and set(self.columns) != set(schema.column_names()):
            raise StorageError(
                "a primary columnstore must contain all table columns"
            )
        self._column_ordinals = schema.ordinals(self.columns)
        self._groups: List[_RowGroupState] = []
        #: rid -> (group index, position) for compressed rows.
        self._rid_location: Dict[int, Tuple[int, int]] = {}
        #: Delta store: rid -> row values (in self.columns order). Modelled
        #: as a dict; B+ tree maintenance CPU is charged via the cost model.
        self._delta: Dict[int, Row] = {}
        #: Secondary CSI only: rids awaiting background compaction into the
        #: delete bitmaps (the "delete buffer" B+ tree).
        self._delete_buffer: Set[int] = set()

    # ------------------------------------------------------------- build
    @classmethod
    def build(
        cls,
        name: str,
        schema: TableSchema,
        rows_with_rids: Sequence[Tuple[int, Row]],
        columns: Optional[Sequence[str]] = None,
        is_primary: bool = False,
        rowgroup_size: int = DEFAULT_ROWGROUP_SIZE,
        presorted: bool = False,
        object_id: int = 0,
    ) -> "ColumnstoreIndex":
        """Bulk load: compress ``rows_with_rids`` directly into row groups
        (bulk loaded data bypasses the delta store, Section 2).

        ``presorted`` preserves the incoming row order inside each row
        group instead of applying the greedy compression sort — used to
        build the "CSI sorted" variant of Figure 2, where data pre-sorted
        on a predicate column yields disjoint per-segment min/max ranges.
        """
        index = cls(
            name, schema, columns=columns, is_primary=is_primary,
            rowgroup_size=rowgroup_size, object_id=object_id,
        )
        ordinals = index._column_ordinals
        for start in range(0, len(rows_with_rids), rowgroup_size):
            chunk = rows_with_rids[start:start + rowgroup_size]
            rids = np.fromiter((rid for rid, _ in chunk), dtype=np.int64,
                               count=len(chunk))
            column_data = {
                col: _column_array([row[ordinal] for _, row in chunk])
                for col, ordinal in zip(index.columns, ordinals)
            }
            group = compress_rowgroup(schema, column_data, rids,
                                      presorted=presorted)
            index._append_group(group)
        return index

    @staticmethod
    def _register_group(
        groups: List["_RowGroupState"],
        locations: Dict[int, Tuple[int, int]],
        group: CompressedRowGroup,
    ) -> None:
        """Append ``group`` to ``groups`` and record its rid locators in
        ``locations`` (which may be staging state built off to the side)."""
        group_index = len(groups)
        groups.append(_RowGroupState(group))
        for pos, rid in enumerate(group.rids.tolist()):
            locations[rid] = (group_index, pos)

    def _append_group(self, group: CompressedRowGroup) -> None:
        self._register_group(self._groups, self._rid_location, group)

    # ------------------------------------------------------------- sizing
    def size_bytes(self) -> int:
        """Approximate on-disk size in bytes."""
        compressed = sum(s.group.size_bytes() for s in self._groups)
        delta = len(self._delta) * self._delta_row_bytes()
        buffer = len(self._delete_buffer) * 16
        return compressed + delta + buffer

    def column_sizes(self) -> Dict[str, int]:
        """Per-column compressed sizes — the quantity DTA's what-if API
        needs for hypothetical CSIs (Section 4.2)."""
        sizes = {col: 0 for col in self.columns}
        for state in self._groups:
            for col in state.group.column_names():
                sizes[col] += state.group.column_meta(col).size_bytes
        delta_per_row = self._delta_row_bytes()
        for col in self.columns:
            share = self.schema.column(col).col_type.byte_width
            total_width = max(1, sum(
                self.schema.column(c).col_type.byte_width for c in self.columns
            ))
            sizes[col] += int(len(self._delta) * delta_per_row * share / total_width)
        return sizes

    def column_encodings(self) -> Dict[str, str]:
        """Dominant physical encoding per column (by bytes stored) — the
        layout the adaptive policy chose, surfaced for DMVs, tests, and
        the compression-aware cost model (Kimura)."""
        by_column: Dict[str, Dict[str, int]] = {
            col: {} for col in self.columns}
        for state in self._groups:
            for col in state.group.column_names():
                meta = state.group.column_meta(col)
                tally = by_column[col]
                tally[meta.encoding] = (
                    tally.get(meta.encoding, 0) + meta.size_bytes)
        return {
            col: (max(tally, key=tally.get) if tally else "raw")
            for col, tally in by_column.items()
        }

    def _delta_row_bytes(self) -> int:
        return sum(
            self.schema.column(c).col_type.byte_width for c in self.columns
        ) + 12

    @property
    def n_rows(self) -> int:
        """Live row count (compressed minus deleted, plus delta).

        Buffered deletes on a secondary CSI mask compressed rows just as
        the delete bitmap does, so they are subtracted as long as the rid
        still points into a compressed group (compaction later moves them
        into the bitmap, which ``live_rows`` already accounts for).
        """
        compressed = sum(s.live_rows for s in self._groups)
        buffered = sum(
            1 for rid in self._delete_buffer if rid in self._rid_location
        )
        return compressed - buffered + len(self._delta)

    @property
    def n_rowgroups(self) -> int:
        """Number of compressed row groups."""
        return len(self._groups)

    @property
    def delta_rows(self) -> int:
        """Rows currently in the delta store."""
        return len(self._delta)

    @property
    def delete_buffer_rows(self) -> int:
        """Rows currently in the delete buffer."""
        return len(self._delete_buffer)

    # ------------------------------------------------------------ mutation
    def _project(self, row: Row) -> Row:
        return tuple(row[i] for i in self._column_ordinals)

    def insert(self, rid: int, row: Row, ctx: Optional[ExecutionContext] = None) -> None:
        """Insert into the delta store (a B+ tree in SQL Server)."""
        if rid in self._delta or rid in self._rid_location:
            raise StorageError(f"duplicate rid {rid} in columnstore {self.name!r}")
        trip(self.faults, "csi.delta_insert")
        self._delta[rid] = self._project(row)
        if ctx is not None:
            cm = ctx.cost_model
            ctx.charge_serial_cpu(cm.btree_update_cpu_ms_per_row + cm.seek_cpu_ms)
            ctx.charge_serial_cpu(cm.log_write_ms_per_row)
        if len(self._delta) >= self.rowgroup_size:
            try:
                self.move_tuples(ctx, _auto=True)
            except BaseException:
                # The tuple mover mutates nothing until it commits, so
                # the new row is still in the delta store; removing it
                # keeps this insert all-or-nothing.
                self._delta.pop(rid, None)
                raise

    def delete(self, rid: int, row: Row, ctx: Optional[ExecutionContext] = None) -> None:
        """Delete one row. See :meth:`delete_many` for the batch path that
        models per-statement row-group scans of primary CSIs."""
        self.delete_many([rid], ctx)

    def delete_many(
        self, rids: Iterable[int], ctx: Optional[ExecutionContext] = None
    ) -> None:
        """Delete a set of rows in one statement.

        Primary CSI: every *affected* row group must be scanned once to
        find physical locators for the delete bitmap (the expensive path
        of Figure 5). Secondary CSI: each rid is a cheap B+ tree insert
        into the delete buffer.

        All-or-nothing: a failure (invalid rid, injected fault) midway
        undoes the deletes already applied before re-raising.
        """
        self._delete_batch(list(rids), ctx)

    def _delete_batch(
        self, rid_list: List[int], ctx: Optional[ExecutionContext]
    ) -> List[Tuple]:
        """Apply one batch of deletes, returning physical undo tokens.

        On failure the already-applied deletes are rolled back via their
        tokens before the exception propagates.
        """
        cm = ctx.cost_model if ctx is not None else None
        affected_groups: Set[int] = set()
        applied: List[Tuple] = []
        try:
            for rid in rid_list:
                trip(self.faults, "csi.delete")
                token = self._apply_delete(rid)
                applied.append(token)
                if token[0] == "bitmap":
                    affected_groups.add(token[2])
                if cm is not None:
                    ctx.charge_serial_cpu(
                        cm.btree_update_cpu_ms_per_row + cm.log_write_ms_per_row
                    )
        except BaseException:
            self._undo_deletes(applied)
            raise
        if self.is_primary and cm is not None:
            # One locator scan per affected row group per statement.
            for group_index in affected_groups:
                group_rows = self._groups[group_index].group.n_rows
                ctx.charge_serial_cpu(group_rows * cm.csi_locate_cpu_ms_per_row)
        return applied

    def _apply_delete(self, rid: int) -> Tuple:
        """Delete one rid, returning a physical undo token:
        ``("delta", rid, values)``, ``("bitmap", rid, group, pos)``, or
        ``("buffer", rid)``."""
        if rid in self._delta:
            return ("delta", rid, self._delta.pop(rid))
        location = self._rid_location.get(rid)
        if location is None:
            raise StorageError(f"rid {rid} not in columnstore {self.name!r}")
        group_index, pos = location
        state = self._groups[group_index]
        if state.deleted_mask[pos]:
            raise StorageError(f"rid {rid} already deleted")
        if self.is_primary:
            state.deleted_mask[pos] = True
            state.n_deleted += 1
            del self._rid_location[rid]
            return ("bitmap", rid, group_index, pos)
        if rid in self._delete_buffer:
            raise StorageError(f"rid {rid} already deleted")
        self._delete_buffer.add(rid)
        return ("buffer", rid)

    def _undo_deletes(self, tokens: List[Tuple]) -> None:
        """Physically invert delete tokens (valid while no tuple move has
        intervened, which holds inside a single delete batch)."""
        for token in reversed(tokens):
            kind = token[0]
            if kind == "delta":
                self._delta[token[1]] = token[2]
            elif kind == "bitmap":
                _, rid, group_index, pos = token
                state = self._groups[group_index]
                state.deleted_mask[pos] = False
                state.n_deleted -= 1
                self._rid_location[rid] = (group_index, pos)
            else:
                self._delete_buffer.discard(token[1])

    def _remove_live_version(self, rid: int) -> None:
        """Undo helper: logically delete ``rid``'s current live version,
        wherever an intervening tuple move may have put it."""
        if rid in self._delta:
            del self._delta[rid]
            return
        location = self._rid_location.get(rid)
        if location is None:
            return  # nothing live to remove
        if self.is_primary:
            group_index, pos = location
            state = self._groups[group_index]
            if not state.deleted_mask[pos]:
                state.deleted_mask[pos] = True
                state.n_deleted += 1
            del self._rid_location[rid]
        else:
            self._delete_buffer.add(rid)

    def _restore_row(self, rid: int, values: Row) -> None:
        """Undo helper: make ``rid`` live again holding the projected
        ``values``. When a (stale) compressed copy survives, it stays
        masked and the restored version becomes a delta-store shadow."""
        if not self.is_primary and rid in self._rid_location:
            self._delete_buffer.add(rid)
        self._delta[rid] = values

    def restore_row(self, rid: int, row: Row) -> None:
        """Compensating operation for a delete of ``rid``: bring the row
        back without violating the duplicate-rid check (the compressed
        copy, if one survives, stays masked while the restored version
        lives in the delta store). Used by the table-level rollback of a
        partially-applied multi-index DML statement."""
        self._restore_row(rid, self._project(row))

    def update(
        self,
        rid: int,
        old_row: Row,
        new_row: Row,
        ctx: Optional[ExecutionContext] = None,
    ) -> None:
        """Point update = delete + insert (Section 2)."""
        self.update_many([(rid, old_row, new_row)], ctx)

    def update_many(
        self,
        updates: Sequence[Tuple[int, Row, Row]],
        ctx: Optional[ExecutionContext] = None,
    ) -> None:
        """Batch update: one delete batch + the inserts, so primary CSIs
        pay the locator scan once per affected group per statement.

        A deleted compressed rid on a secondary CSI is re-inserted as a
        delta-store *shadow* slot: the buffered delete keeps masking the
        compressed copy while the delta store carries the new version.

        All-or-nothing: a failure mid-batch rolls back the already
        re-inserted rows and restores the deleted ones (as delta rows when
        a tuple move has already compressed intermediate state) before
        re-raising.
        """
        old_values = {rid: self._project(old) for rid, old, _ in updates}
        self._delete_batch([rid for rid, _, _ in updates], ctx)
        reinserted: List[int] = []
        try:
            for rid, _, new_row in updates:
                if not self.is_primary and rid in self._delete_buffer:
                    trip(self.faults, "csi.delta_insert")
                    self._delta[rid] = self._project(new_row)
                    if ctx is not None:
                        cm = ctx.cost_model
                        ctx.charge_serial_cpu(
                            cm.btree_update_cpu_ms_per_row + cm.seek_cpu_ms
                            + cm.log_write_ms_per_row
                        )
                else:
                    self.insert(rid, new_row, ctx)
                reinserted.append(rid)
            if len(self._delta) >= self.rowgroup_size:
                self.move_tuples(ctx, _auto=True)
        except BaseException:
            for rid in reversed(reinserted):
                self._remove_live_version(rid)
            for rid, values in old_values.items():
                self._restore_row(rid, values)
            raise

    # ----------------------------------------------------- background ops
    def invalidate_cached_segments(self) -> None:
        """Drop this index's entries from the shared decoded-segment
        cache. Called by every structural change (rebuild, tuple move,
        delete-buffer compaction) and by the drop hooks in
        :class:`~repro.storage.table.Table`. Tuple moves and compaction
        are invalidated conservatively: existing group indices stay
        stable today, but the cache must not depend on that. When the
        index is demand-paged, the buffer pool's frames for this object
        are dropped too — rebuilt groups live in memory, so any page
        faulted from the pre-rebuild snapshot is stale."""
        if self.segment_cache is not None:
            self.segment_cache.invalidate_object(self.object_id)
        if self.buffer_pool is not None:
            self.buffer_pool.evict_object(self.object_id)

    def _fold_buffered_delete(self, rid: int) -> None:
        """Move one buffered delete into the delete bitmap of the
        compressed copy it masks, freeing the rid's locator slot."""
        location = self._rid_location.get(rid)
        if location is not None:
            group_index, pos = location
            state = self._groups[group_index]
            if not state.deleted_mask[pos]:
                state.deleted_mask[pos] = True
                state.n_deleted += 1
            del self._rid_location[rid]
        self._delete_buffer.discard(rid)

    def move_tuples(self, ctx: Optional[ExecutionContext] = None,
                    _auto: bool = False) -> None:
        """Tuple mover: compress the delta store into a new row group.

        Crash-safe: the new row group is built off to the side and only
        then swapped in — a failure during compression leaves the delta
        store (and the segment cache) untouched.

        Shadow slots — delta rows whose rid also has a buffered-deleted
        compressed copy (a secondary-CSI update of a compressed row) —
        are resolved first by folding the buffered delete into the old
        copy's delete bitmap. Otherwise compressing the shadow would
        leave one rid in two row groups with a single delete-buffer entry
        masking *both*, silently losing the row from scans.
        """
        if not self._delta:
            return
        if not self.is_primary and self._delete_buffer:
            for rid in [r for r in self._delta if r in self._delete_buffer]:
                self._fold_buffered_delete(rid)
        trip(self.faults, "csi.move_tuples.compress")
        items = sorted(self._delta.items())
        rids = np.fromiter((rid for rid, _ in items), dtype=np.int64,
                           count=len(items))
        column_data = {
            col: _column_array([values[i] for _, values in items])
            for i, col in enumerate(self.columns)
        }
        try:
            group = compress_rowgroup(self.schema, column_data, rids)
        except BaseException:
            self.invalidate_cached_segments()  # conservative on abort
            raise
        # Commit point: publish the new group and drain the delta store.
        self._append_group(group)
        self._delta.clear()
        self.invalidate_cached_segments()
        if not _auto and self.wal_notify is not None:
            self.wal_notify("tuple_move")
        if ctx is not None:
            cm = ctx.cost_model
            ctx.charge_serial_cpu(len(items) * cm.csi_compress_cpu_ms_per_row)
            ctx.charge_write(group.size_bytes())

    def rebuild(self, ctx: Optional[ExecutionContext] = None) -> None:
        """ALTER INDEX ... REBUILD: re-compress everything.

        Drains the delta store, drops deleted rows for good, folds the
        delete buffer away, and re-partitions the surviving rows into
        fresh full row groups. After heavy update activity this restores
        scan performance: no delete-bitmap masking, no anti-semi join,
        and full-size row groups with tight min/max metadata.
        """
        trip(self.faults, "csi.rebuild.compress")
        encoding_overrides = None
        if self.layout_policy is not None:
            decisions = self.layout_policy.choose(self.usage, self.columns)
            encoding_overrides = {
                column: decision.forced_encoding
                for column, decision in decisions.items()
                if decision.forced_encoding is not None
            } or None
        try:
            live: List[Tuple[int, Row]] = []
            for state in self._groups:
                group = state.group
                decoded = {name: group.column(name).decode()
                           for name in self.columns}
                for pos, rid in enumerate(group.rids.tolist()):
                    if state.deleted_mask[pos]:
                        continue
                    if not self.is_primary and rid in self._delete_buffer:
                        continue
                    if rid in self._delta:
                        continue  # delta shadow supersedes the old copy
                    live.append((rid, tuple(decoded[name][pos]
                                            for name in self.columns)))
            live.extend(sorted(self._delta.items()))
            live.sort()
            # Build the replacement state entirely off to the side; the
            # old groups stay valid until the swap below.
            new_groups: List[_RowGroupState] = []
            new_locations: Dict[int, Tuple[int, int]] = {}
            for start in range(0, len(live), self.rowgroup_size):
                chunk = live[start:start + self.rowgroup_size]
                rids = np.fromiter((rid for rid, _ in chunk), dtype=np.int64,
                                   count=len(chunk))
                column_data = {
                    name: _column_array([values[i] for _, values in chunk])
                    for i, name in enumerate(self.columns)
                }
                group = compress_rowgroup(
                    self.schema, column_data, rids,
                    encoding_overrides=encoding_overrides)
                self._register_group(new_groups, new_locations, group)
        except BaseException:
            self.invalidate_cached_segments()  # conservative on abort
            raise
        # Commit point: atomically swap in the rebuilt state.
        self._groups = new_groups
        self._rid_location = new_locations
        self._delta = {}
        self._delete_buffer = set()
        self.invalidate_cached_segments()
        if self.wal_notify is not None:
            self.wal_notify("rebuild")
        if ctx is not None:
            cm = ctx.cost_model
            ctx.charge_serial_cpu(
                len(live) * cm.csi_compress_cpu_ms_per_row)
            ctx.charge_write(sum(s.group.size_bytes()
                                 for s in self._groups))

    def reorganize(self, ctx: Optional[ExecutionContext] = None) -> None:
        """ALTER INDEX ... REORGANIZE: the lightweight maintenance pass —
        run the tuple mover and compact the delete buffer, without
        rewriting compressed row groups."""
        self.move_tuples(ctx, _auto=True)
        self.compact_delete_buffer(ctx, _auto=True)
        if self.wal_notify is not None:
            self.wal_notify("reorganize")

    @property
    def fragmentation(self) -> float:
        """Fraction of compressed slots wasted on deleted/buffered rows —
        the signal that a REBUILD is due."""
        total = sum(s.group.n_rows for s in self._groups)
        if total == 0:
            return 0.0
        dead = sum(s.n_deleted for s in self._groups)
        dead += len(self._delete_buffer)
        return dead / total

    def compact_delete_buffer(self, ctx: Optional[ExecutionContext] = None,
                              _auto: bool = False) -> None:
        """Background compaction: fold the delete buffer into the delete
        bitmaps so scans no longer pay the anti-semi join (Section 2).

        A no-op on an empty buffer costs nothing; otherwise the CPU
        charge is proportional to the number of rids folded. Crash-safe:
        the fold plan is computed first and applied in one step, so a
        failure before the commit point changes nothing.
        """
        if not self._delete_buffer:
            return
        trip(self.faults, "csi.compact_delete_buffer")
        folded = list(self._delete_buffer)
        # Commit point: apply every fold in one uninterruptible pass.
        for rid in folded:
            self._fold_buffered_delete(rid)
        self.invalidate_cached_segments()
        if not _auto and self.wal_notify is not None:
            self.wal_notify("compact")
        if ctx is not None:
            ctx.charge_serial_cpu(
                len(folded) * ctx.cost_model.btree_update_cpu_ms_per_row)

    # ------------------------------------------------------------- scans
    def scan(
        self,
        columns: Sequence[str],
        ctx: Optional[ExecutionContext] = None,
        elimination_ranges: Optional[Dict[str, Tuple[object, object]]] = None,
        include_rids: bool = False,
        groups: Optional[Sequence[int]] = None,
        include_delta: bool = True,
        record_usage: bool = True,
    ) -> Iterator[Batch]:
        """Scan the index in batch mode.

        Parameters
        ----------
        columns:
            Columns to materialize (only their segments are read — the
            reason per-column sizes matter for costing, Section 4.2).
        elimination_ranges:
            Optional map column -> (low, high) used for segment
            elimination via min/max metadata; ``None`` bounds are open.
            Elimination is a *may-contain* filter: callers still apply
            exact predicates to the returned batches.
        include_rids:
            Adds the ``__rid__`` column to each batch.
        groups:
            Row-group indexes to scan; ``None`` means all. Morsel-parallel
            scans hand each worker a subset (an empty list is a valid
            subset: delta-only). Every per-group charge is additive, so a
            partitioned scan's merged metrics equal the serial scan's.
        include_delta:
            Whether to yield the delta-store batch at the end. Morsel
            workers pass ``False`` — the coordinator reads the delta
            exactly once.
        record_usage:
            Whether to bump the index's DMV usage counters
            (``user_scans``/``segments_*``). Morsel workers pass
            ``False``; the coordinator records one scan plus the summed
            per-worker segment counts so DMV telemetry stays
            statement-accurate under parallelism.
        """
        for name in columns:
            if name not in self.columns:
                raise StorageError(
                    f"columnstore {self.name!r} does not contain {name!r}"
                )
        needed = list(columns)
        cache = self.segment_cache
        if cache is not None and not cache.enabled:
            cache = None
        if ctx is not None and record_usage:
            self.usage.record_scan()
        if ctx is not None:
            use_encoded = ctx.encoded_enabled()
        else:
            use_encoded = encoded_execution_enabled()
        if groups is None:
            selected = enumerate(self._groups)
        else:
            selected = ((i, self._groups[i]) for i in groups)
        for group_index, state in selected:
            group = state.group
            if elimination_ranges and self._eliminated(group, elimination_ranges):
                if ctx is not None:
                    ctx.metrics.segments_skipped += 1
                    if record_usage:
                        self.usage.add_segment_counts(0, 1)
                continue
            if ctx is not None:
                ctx.metrics.segments_read += 1
                if record_usage:
                    self.usage.add_segment_counts(1, 0)
            data = {}
            miss_bytes = 0
            misses = 0
            hits = 0
            #: Pool frames pinned for this group's batch; released after
            #: the batch is yielded (or the generator is closed), so LRU
            #: eviction cannot drop a segment page mid-read.
            pinned_keys = []
            for name in needed:
                decoded = None
                if cache is not None:
                    decoded = cache.get((self.object_id, group_index, name))
                if decoded is None:
                    # SEGCACHE_MISS wait: real wall time spent loading
                    # and decoding because the decoded cache missed.
                    # Timed only when a cache is enabled, wired to a
                    # collector, *and* the scan is session-attributed —
                    # embedded runs (figures, determinism harnesses)
                    # carry no session and must keep their DMV
                    # snapshots free of wall-clock values.
                    miss_started = (
                        time.perf_counter()
                        if (cache is not None and cache.waits is not None
                            and cache.waits.current_session_id != 0)
                        else None)
                    if self._pager is not None and group.loader is not None:
                        segment, key = self._pager.load(
                            group_index, name, pin=True)
                        pinned_keys.append(key)
                    else:
                        segment = group.column(name)
                    code_space = segment.code_space() if use_encoded else None
                    if code_space is not None:
                        # Late materialization: hand the consumer the
                        # int32 codes plus the shared dictionary instead
                        # of decoding now. Dictionary segments serve
                        # their stored codes; numeric RLE / bit-packed
                        # segments serve the code space derived from
                        # their compressed representation (run values,
                        # frame-of-reference offsets). Modeled costs
                        # (segment read + decode CPU below) are charged
                        # exactly as for the decoded path — only real
                        # wall-clock changes.
                        decoded = EncodedColumn(*code_space)
                    else:
                        decoded = segment.decode()
                    miss_bytes += segment.size_bytes
                    misses += 1
                    if cache is not None:
                        evicted = cache.put(
                            (self.object_id, group_index, name), decoded)
                        if ctx is not None:
                            ctx.metrics.segment_cache_misses += 1
                            ctx.metrics.segment_cache_evictions += evicted
                    if miss_started is not None:
                        cache.waits.record(
                            WAIT_SEGCACHE_MISS,
                            (time.perf_counter() - miss_started) * 1000.0)
                else:
                    hits += 1
                    if isinstance(decoded, EncodedColumn) and not use_encoded:
                        # Cached as codes while encoded execution is now
                        # off: serve the decoded twin.
                        decoded = decoded.materialize()
                if isinstance(decoded, EncodedColumn) and ctx is not None:
                    ctx.metrics.columns_late_materialized += 1
                data[name] = decoded
            if ctx is not None:
                if misses:
                    ctx.charge_seq_read(miss_bytes)
                    ctx.record_data_read(miss_bytes)
                    ctx.charge_serial_cpu(
                        misses * ctx.cost_model.segment_decode_cpu_ms)
                if hits:
                    # Hits are memory resident — no segment read, no
                    # decode; only a cheap lookup per segment.
                    ctx.metrics.segment_cache_hits += hits
                    ctx.charge_serial_cpu(
                        hits * ctx.cost_model.segment_cache_lookup_cpu_ms)
            if include_rids:
                data[RID_COLUMN] = group.rids
            batch = Batch(data)
            if ctx is not None and not self.is_primary and self._delete_buffer:
                # Anti-semi join between the row group and the delete
                # buffer (Section 2's scan overhead of secondary CSIs).
                ctx.charge_serial_cpu(
                    group.n_rows * ctx.cost_model.batch_cpu_ms_per_row
                )
            mask = self._live_mask(state)
            if mask is not None:
                batch = batch.filter(mask)
            try:
                if len(batch) > 0:
                    yield batch
            finally:
                # Runs on normal advance and on generator close/abandon
                # (LIMIT-style early exit), so pins never outlive the
                # consumer's hold on this group's batch.
                for key in pinned_keys:
                    self._pager.unpin(key)
        if not include_delta:
            return
        delta_batch = self._delta_batch(needed, include_rids)
        if delta_batch is not None:
            if ctx is not None:
                # Delta rows are read through the B+ tree delta store.
                ctx.charge_serial_cpu(
                    len(delta_batch) * ctx.cost_model.row_cpu_ms_per_row
                )
                delta_bytes = len(delta_batch) * self._delta_row_bytes()
                ctx.charge_btree_scan_read(delta_bytes)
                ctx.record_data_read(delta_bytes)
            yield delta_batch

    def _eliminated(
        self,
        group: CompressedRowGroup,
        ranges: Dict[str, Tuple[object, object]],
    ) -> bool:
        for column, (low, high) in ranges.items():
            # column_meta serves min/max from the resident segment or,
            # for demand-paged groups, from the eagerly loaded
            # SegmentMeta — elimination never faults a segment page in.
            meta = group.column_meta(column)
            if meta is not None and not meta.overlaps(low, high):
                return True
        return False

    def _live_mask(self, state: _RowGroupState) -> Optional[np.ndarray]:
        """Combined delete bitmap + delete buffer mask; None if all live."""
        mask = None
        if state.n_deleted:
            mask = ~state.deleted_mask
        if not self.is_primary and self._delete_buffer:
            buffered = np.fromiter(
                (rid in self._delete_buffer for rid in state.group.rids.tolist()),
                dtype=bool, count=state.group.n_rows,
            )
            if buffered.any():
                mask = ~buffered if mask is None else (mask & ~buffered)
        return mask

    def _delta_batch(
        self, columns: Sequence[str], include_rids: bool
    ) -> Optional[Batch]:
        if not self._delta:
            return None
        items = sorted(self._delta.items())
        positions = [self.columns.index(c) for c in columns]
        data = {
            col: _column_array([values[pos] for _, values in items])
            for col, pos in zip(columns, positions)
        }
        if include_rids:
            data[RID_COLUMN] = np.fromiter(
                (rid for rid, _ in items), dtype=np.int64, count=len(items)
            )
        return Batch(data)

    # ------------------------------------------------------------ helpers
    def segment_ranges(self, column: str) -> List[Tuple[object, object]]:
        """(min, max) per row group for ``column`` — used in tests and by
        the sorted-CSI experiments to verify disjointness."""
        return [
            (s.group.column(column).min_value, s.group.column(column).max_value)
            for s in self._groups
        ]
