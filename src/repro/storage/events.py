"""XEvents-style structured event stream over a bounded ring buffer.

SQL Server's Extended Events framework lets an administrator attach a
lightweight session that captures typed events — statement completions,
checkpoints, plan regressions — into an in-memory *ring buffer target*
(``sys.dm_xe_session_targets``) without perturbing the engine. This
module is that facility for the repro engine: one
:class:`EventStream` per :class:`~repro.storage.database.Database`
(``database.events``) receives typed events from the executor, the WAL,
the buffer pool, the admission controller, and the fault injector, and
retains the most recent ``capacity`` of them.

Event taxonomy (emitters in parentheses):

* ``statement_begin`` / ``statement_end`` — every executed statement;
  ``statement_end`` carries the statement's modeled totals and, when it
  blocked, its wait profile (:class:`~repro.storage.waits`).
* ``checkpoint`` — durable snapshot + WAL truncation
  (:meth:`Database.save`).
* ``recovery`` — crash recovery replay summary (:meth:`Database.open`).
* ``plan_change`` — the Query Store observed a new plan fingerprint for
  a previously seen statement (the plan-regression trigger).
* ``grant_timeout`` — a memory grant waited past its timeout
  (:class:`~repro.server.scheduler.MemoryGrantPool`).
* ``eviction_storm`` — one buffer-pool insertion evicted an unusually
  large batch of frames (working set far above budget).
* ``fault_injection`` — a :class:`~repro.storage.faults.FaultInjector`
  point fired.

Contract, same as :mod:`repro.storage.waits`:

* **Observation-only.** Emitting never charges modeled cost; subscriber
  exceptions are swallowed (and counted) so a misbehaving observer can
  never break execution.
* **Deterministic payloads.** ``timestamp`` is the
  :class:`~repro.storage.telemetry.LogicalClock` stamp, never wall
  time, and payloads carry only deterministic engine state (modeled
  costs, counts, fingerprints) — so the DMV snapshot/Prometheus
  determinism tests hold across identical runs. Real wall-clock wait
  milliseconds appear in payloads only when a wait actually occurred,
  which the single-threaded determinism harnesses never trigger.

The ring is bounded (``deque(maxlen=capacity)``): old events fall off
the front and are counted in ``dropped``. ``subscribe`` registers a
callback invoked synchronously on every emit (outside the ring lock) —
the hook the future online tuner will use to react to plan changes and
eviction storms without polling.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

#: Default ring capacity, matching the spirit of the 4 MB default ring
#: buffer target of an XEvents session.
DEFAULT_RING_CAPACITY = 1024

#: Canonical event names (emitters may only use these — typos become
#: loud instead of silently unqueryable).
EVENT_NAMES = (
    "statement_begin",
    "statement_end",
    "checkpoint",
    "recovery",
    "plan_change",
    "grant_timeout",
    "eviction_storm",
    "fault_injection",
)

_EVENT_NAME_SET = frozenset(EVENT_NAMES)


@dataclass
class Event:
    """One captured event: a monotonically increasing id, the logical
    clock stamp at emission, the emitting session, and a JSON-friendly
    payload."""

    event_id: int
    timestamp: int
    name: str
    session_id: int
    payload: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "event_id": self.event_id,
            "timestamp": self.timestamp,
            "name": self.name,
            "session_id": self.session_id,
            "payload": self.payload,
        }

    def to_json(self) -> str:
        """One deterministic JSON line (sorted keys) for JSONL export."""
        return json.dumps(self.as_dict(), sort_keys=True, default=str)


class EventStream:
    """Bounded ring buffer of typed events with subscriber hooks.

    Parameters
    ----------
    capacity:
        Ring size; the oldest events are dropped (and counted) once the
        ring is full.
    clock:
        A :class:`~repro.storage.telemetry.LogicalClock`; event
        timestamps are its thread-local statement stamp, keeping the
        stream deterministic. Without a clock, timestamps are 0.
    session_resolver:
        Zero-argument callable returning the session id to attribute an
        emit to when the emitter does not pass one — wired to
        ``WaitStatsCollector.current_session_id`` so events and waits
        agree on attribution.
    """

    def __init__(self, capacity: int = DEFAULT_RING_CAPACITY,
                 clock=None,
                 session_resolver: Optional[Callable[[], int]] = None):
        if capacity <= 0:
            raise ValueError("event ring capacity must be positive")
        self.capacity = int(capacity)
        self._ring: "deque[Event]" = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._clock = clock
        self._session_resolver = session_resolver
        self._subscribers: List[Callable[[Event], None]] = []
        self._next_id = 1
        self.emitted = 0
        self.dropped = 0
        self.subscriber_errors = 0

    # ------------------------------------------------------------ emitting
    def emit(self, name: str, payload: Optional[Dict[str, object]] = None,
             session_id: Optional[int] = None) -> Event:
        """Append one event to the ring and notify subscribers.

        Subscribers run synchronously *outside* the ring lock; their
        exceptions are swallowed and counted in ``subscriber_errors``.
        """
        if name not in _EVENT_NAME_SET:
            raise ValueError(f"unknown event name {name!r}")
        if session_id is None:
            resolver = self._session_resolver
            session_id = resolver() if resolver is not None else 0
        timestamp = self._clock.stamp if self._clock is not None else 0
        with self._lock:
            event = Event(event_id=self._next_id, timestamp=int(timestamp),
                          name=name, session_id=int(session_id),
                          payload=dict(payload or {}))
            self._next_id += 1
            self.emitted += 1
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            subscribers = list(self._subscribers)
        for fn in subscribers:
            try:
                fn(event)
            except Exception:
                # Observation must never break execution: a subscriber
                # that throws loses its notification, nothing else.
                self.subscriber_errors += 1
        return event

    # --------------------------------------------------------- subscribers
    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[], None]:
        """Register a per-event callback; returns an unsubscribe
        function."""
        with self._lock:
            self._subscribers.append(fn)

        def unsubscribe() -> None:
            with self._lock:
                try:
                    self._subscribers.remove(fn)
                except ValueError:
                    pass

        return unsubscribe

    # ------------------------------------------------------------ readouts
    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def events(self, name: Optional[str] = None) -> List[Event]:
        """The retained events oldest-first, optionally filtered by
        name."""
        with self._lock:
            out = list(self._ring)
        if name is not None:
            out = [e for e in out if e.name == name]
        return out

    def to_jsonl(self) -> str:
        """The retained events as JSON Lines (one sorted-keys object per
        line, oldest first)."""
        return "\n".join(e.to_json() for e in self.events())

    def write_jsonl(self, path: str) -> int:
        """Write the retained events to ``path`` as JSONL; returns the
        number of events written."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as fh:
            for event in events:
                fh.write(event.to_json())
                fh.write("\n")
        return len(events)

    def clear(self) -> None:
        """Drop retained events and zero the counters (ids keep
        increasing so event_id stays unique over the stream's life)."""
        with self._lock:
            self._ring.clear()
            self.emitted = 0
            self.dropped = 0
            self.subscriber_errors = 0

    def __repr__(self) -> str:
        with self._lock:
            return (f"EventStream(retained={len(self._ring)}, "
                    f"emitted={self.emitted}, dropped={self.dropped})")
