"""Crash-recovery chaos harness.

The harness proves the durability contract end to end: a live
multi-session serving workload is killed mid-statement — by armed
crash-style fault points (:data:`repro.storage.faults.CRASH_POINTS`),
by a parent-sent SIGKILL at a random moment, or by truncating the WAL
tail after death — and the directory it leaves behind must recover to
*exactly the committed prefix* of the workload, checker-clean, with
recovery idempotent (replaying twice yields byte-identical states).

The oracle protocol
-------------------

Each child session runs a deterministic statement sequence (a pure
function of ``(seed, session_id)``) against its own key range of one
shared table, and appends one fsynced line to an *oracle file* after
each statement returns — i.e. after its WAL COMMIT is durable. A crash
can land between the commit and the oracle append, so per session the
recovered statement count ``L`` must satisfy ``L in {oracle_L,
oracle_L + 1}`` — never less (a durably committed statement can never
be lost) and never more (an uncommitted statement can never survive).
The parent replays the same deterministic sequence through an
in-memory model and compares the recovered rows against the model
state after exactly ``L`` statements, so *content*, not just counts,
must match the committed prefix.

WAL-truncation mode chops the tail of the log after the child dies,
deliberately destroying committed suffixes: there the lower bound is
waived (``allow_lost``) but the recovered state must still equal the
model after *some* prefix — a torn log may lose recent statements but
can never produce a state no prefix of the history explains.
"""

from __future__ import annotations

import json
import os
import random
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from typing import Dict, List, Optional, Tuple

from repro.storage.faults import CRASH_POINTS

ORACLE_FILENAME = "oracle.txt"
#: Exit code the child uses for an intentional simulated crash.
CRASH_EXIT_CODE = 137
#: Exit code for an *unexpected* child error (test bug, engine bug).
ERROR_EXIT_CODE = 140

#: Session 9999 is reserved for the parent's post-recovery write probe.
PROBE_SESSION = 9999


# ------------------------------------------------- deterministic workload

def session_statements(seed: int, session_id: int,
                       n_statements: int) -> Tuple[List[str], List[Dict]]:
    """The deterministic statement sequence for one session.

    Returns ``(statements, states)`` where ``states[i]`` is the model
    key->value dict for this session's range after the first ``i``
    statements — ``len(states) == n_statements + 1``. Both child (to
    execute) and parent (to verify) call this with the same arguments.
    """
    rng = random.Random((seed << 8) ^ session_id)
    state: Dict[int, int] = {}
    next_k = 0
    statements: List[str] = []
    states: List[Dict[int, int]] = [dict(state)]
    for _ in range(n_statements):
        roll = rng.random()
        if not state or roll < 0.55:
            k, next_k = next_k, next_k + 1
            v = rng.randrange(1_000_000)
            statements.append(
                f"INSERT INTO kv (session_id, k, v) "
                f"VALUES ({session_id}, {k}, {v})")
            state[k] = v
        elif roll < 0.85:
            k = rng.choice(sorted(state))
            v = rng.randrange(1_000_000)
            statements.append(
                f"UPDATE kv SET v = {v} "
                f"WHERE session_id = {session_id} AND k = {k}")
            state[k] = v
        else:
            k = rng.choice(sorted(state))
            statements.append(
                f"DELETE FROM kv WHERE session_id = {session_id} "
                f"AND k = {k}")
            del state[k]
        states.append(dict(state))
    return statements, states


# ------------------------------------------------------------- the child

def run_child(data_dir: str, oracle_path: str, seed: int,
              n_sessions: int, n_statements: int,
              crash_point: Optional[str] = None, crash_hit: int = 1,
              checkpoint_every: int = 7) -> int:
    """Run the killable serving workload (executed in a subprocess).

    Builds a durable database with a hybrid design (clustered B+ tree
    plus a secondary columnstore, so redo exercises delta stores and
    delete buffers), then runs ``n_sessions`` concurrent sessions of
    the deterministic workload through a
    :class:`~repro.server.session.SessionManager`, with session 0
    checkpointing every ``checkpoint_every`` statements. A
    :class:`~repro.core.errors.ProcessAbort` raised by an armed crash
    point terminates the process with :data:`CRASH_EXIT_CODE`
    immediately — no cleanup, like a real crash.
    """
    from repro import INT, Column, Database, TableSchema
    from repro.core.errors import ProcessAbort
    from repro.server.session import SessionManager

    def _die(exc: BaseException) -> None:
        if isinstance(exc, ProcessAbort):
            os._exit(CRASH_EXIT_CODE)
        import traceback
        traceback.print_exc()
        os._exit(ERROR_EXIT_CODE)

    threading.excepthook = lambda hook_args: _die(hook_args.exc_value)

    database = Database("crash")
    table = database.create_table(TableSchema("kv", [
        Column("session_id", INT, nullable=False),
        Column("k", INT, nullable=False),
        Column("v", INT),
    ]))
    table.set_primary_btree(["session_id", "k"])
    table.create_secondary_columnstore("kv_csi", rowgroup_size=64)
    database.enable_durability(data_dir)
    if crash_point:
        database.fault_injector.arm(crash_point, on_hit=crash_hit)

    oracle_lock = threading.Lock()
    oracle_file = open(oracle_path, "ab", buffering=0)

    def committed(session_id: int, index: int) -> None:
        # After the statement returned: its COMMIT is already durable,
        # so the oracle count is a lower bound on the recovered count.
        with oracle_lock:
            oracle_file.write(f"{session_id} {index}\n".encode("ascii"))
            os.fsync(oracle_file.fileno())

    manager = SessionManager(database)

    def run_session(session_id: int) -> None:
        statements, _ = session_statements(seed, session_id, n_statements)
        session = manager.session()
        for index, sql in enumerate(statements):
            session.execute(sql)
            committed(session_id, index)
            if (session_id == 0 and checkpoint_every
                    and (index + 1) % checkpoint_every == 0):
                manager.checkpoint()

    threads = [threading.Thread(target=run_session, args=(s,), daemon=True)
               for s in range(n_sessions)]
    for thread in threads:
        thread.start()
    try:
        for thread in threads:
            thread.join()
    except BaseException as exc:  # pragma: no cover - defensive
        _die(exc)
    manager.close()
    database.wal.close()
    return 0


def _read_oracle(oracle_path: str) -> Dict[int, int]:
    """Per-session committed statement counts, validating contiguity."""
    counts: Dict[int, int] = {}
    try:
        with open(oracle_path, "rb") as handle:
            data = handle.read()
    except FileNotFoundError:
        return counts
    for line in data.decode("ascii", errors="replace").splitlines():
        parts = line.split()
        if len(parts) != 2:
            continue  # a torn final oracle line: the statement still
            # counts as unacknowledged, which the +1 tolerance covers
        session_id, index = int(parts[0]), int(parts[1])
        expected = counts.get(session_id, 0)
        if index != expected:
            raise AssertionError(
                f"oracle out of order: session {session_id} logged "
                f"statement {index}, expected {expected}")
        counts[session_id] = expected + 1
    return counts


# ---------------------------------------------------------- verification

def verify_recovered(database, oracle_counts: Dict[int, int], seed: int,
                     n_sessions: int, n_statements: int,
                     allow_lost: bool = False) -> List[str]:
    """Check a recovered database against the oracle + model.

    Returns a list of problems (empty means the state is exactly a
    committed prefix). ``allow_lost`` waives the oracle lower bound
    (WAL-truncation mode destroys committed suffixes on purpose)."""
    problems: List[str] = []
    recovered: Dict[int, Dict[int, int]] = {s: {} for s in range(n_sessions)}
    if not database.has_table("kv"):
        # Killed before durability was even enabled: legitimate only if
        # nothing was ever acknowledged.
        if any(oracle_counts.values()):
            problems.append(
                "oracle has committed statements but the recovered "
                "database has no kv table")
        return problems
    for _, row in database.table("kv").iter_rows():
        session_id, k, v = row
        if session_id == PROBE_SESSION:
            continue
        if session_id not in recovered:
            problems.append(f"row for unknown session {session_id}")
            continue
        recovered[session_id][k] = v
    for session_id in range(n_sessions):
        _, states = session_statements(seed, session_id, n_statements)
        oracle_count = oracle_counts.get(session_id, 0)
        if allow_lost:
            candidates = range(len(states))
        else:
            candidates = [oracle_count, oracle_count + 1]
        matched = None
        for count in candidates:
            if count < len(states) and recovered[session_id] == states[count]:
                matched = count
                break
        if matched is None:
            problems.append(
                f"session {session_id}: recovered state matches no "
                f"allowed prefix (oracle={oracle_count}, "
                f"{len(recovered[session_id])} live keys)")
    return problems


# ------------------------------------------------------- the chaos loop

def _child_command(data_dir: str, oracle_path: str, seed: int,
                   n_sessions: int, n_statements: int,
                   crash_point: Optional[str],
                   crash_hit: int) -> List[str]:
    command = [
        sys.executable, "-m", "repro", "crash-child", data_dir, oracle_path,
        "--seed", str(seed), "--sessions", str(n_sessions),
        "--statements", str(n_statements), "--crash-hit", str(crash_hit),
    ]
    if crash_point:
        command += ["--crash-point", crash_point]
    return command


#: Plausible on-hit ranges per crash point, tuned to the workload size
#: (wal_append fires several times per statement, checkpoint_mid once
#: per table per checkpoint).
_HIT_RANGES = {
    "wal_append": (1, 80),
    "wal_fsync": (1, 40),
    "checkpoint_mid": (1, 4),
    "page_flush_torn": (1, 12),
}


def run_chaos(n_random: int = 25, seed: int = 0,
              n_sessions: int = 3, n_statements: int = 30,
              out_path: Optional[str] = None,
              keep_failures: bool = False) -> Dict[str, object]:
    """Run the full chaos schedule and return the report dict.

    The schedule is one deterministic iteration per crash point (every
    point provably fires and recovers) followed by ``n_random``
    randomized iterations mixing armed crash points, parent SIGKILLs at
    random moments, and post-mortem WAL truncation. Every iteration
    asserts: recovery succeeds, the checker is clean, the state is
    exactly a committed prefix (oracle + model), recovery is idempotent
    (two replays, equal digests), and the recovered directory accepts
    and persists new writes.
    """
    from repro.engine.executor import Executor
    from repro.storage.database import Database
    from repro.storage.recovery import recover, state_digest

    rng = random.Random(seed)
    schedule: List[Tuple[str, Optional[str]]] = [
        ("point", point) for point in CRASH_POINTS]
    for _ in range(n_random):
        mode = rng.choice(("point", "kill", "truncate"))
        schedule.append(
            (mode, rng.choice(CRASH_POINTS) if mode == "point" else None))

    iterations: List[Dict[str, object]] = []
    failures = 0
    for iteration, (mode, crash_point) in enumerate(schedule):
        workdir = tempfile.mkdtemp(prefix=f"repro_crash_{iteration}_")
        data_dir = os.path.join(workdir, "data")
        oracle_path = os.path.join(workdir, ORACLE_FILENAME)
        child_seed = seed * 1000 + iteration
        crash_hit = (rng.randint(*_HIT_RANGES[crash_point])
                     if crash_point else 1)
        entry: Dict[str, object] = {
            "iteration": iteration, "mode": mode,
            "crash_point": crash_point, "crash_hit": crash_hit,
            "problems": [],
        }
        problems: List[str] = entry["problems"]

        process = subprocess.Popen(
            _child_command(data_dir, oracle_path, child_seed,
                           n_sessions, n_statements, crash_point,
                           crash_hit),
            stdout=subprocess.DEVNULL, stderr=subprocess.PIPE)
        if mode in ("kill", "truncate"):
            # Aim the kill at the live workload, not at interpreter
            # start-up: wait until a random number of statements have
            # been acknowledged (or the child exits on its own), then
            # kill immediately — the SIGKILL lands mid-workload,
            # somewhere past the target commit.
            target = rng.randint(1, n_sessions * n_statements)
            entry["kill_after_statements"] = target
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline and process.poll() is None:
                try:
                    with open(oracle_path, "rb") as handle:
                        if handle.read().count(b"\n") >= target:
                            break
                except FileNotFoundError:
                    pass
                time.sleep(0.002)
            process.kill()
        try:
            _, stderr = process.communicate(timeout=180)
        except subprocess.TimeoutExpired:
            process.kill()
            _, stderr = process.communicate()
            problems.append("child timed out")
        entry["child_exit"] = process.returncode
        if process.returncode == ERROR_EXIT_CODE:
            problems.append(
                "child hit an unexpected error: "
                + stderr.decode("utf-8", errors="replace")[-2000:])

        allow_lost = False
        if mode == "truncate":
            wal_path = os.path.join(data_dir, "wal.log")
            if os.path.exists(wal_path):
                size = os.path.getsize(wal_path)
                if size > 1:
                    cut = rng.randint(1, min(size, 300))
                    with open(wal_path, "r+b") as handle:
                        handle.truncate(size - cut)
                    entry["wal_bytes_cut"] = cut
                    allow_lost = True

        if not problems:
            try:
                oracle_counts = _read_oracle(oracle_path)
                entry["oracle_statements"] = sum(oracle_counts.values())
                first, report = recover(data_dir)
                entry["recovery"] = report.as_dict()
                if not report.check_ok:
                    problems.append(
                        f"checker findings: {report.check_findings[:5]}")
                second, _ = recover(data_dir)
                if state_digest(first) != state_digest(second):
                    problems.append("recovery is not idempotent: "
                                    "digests differ between two replays")
                problems.extend(verify_recovered(
                    first, oracle_counts, child_seed, n_sessions,
                    n_statements, allow_lost=allow_lost))

                # The recovered directory must keep working: reopen it
                # live, write, and find the write after another reopen.
                # (Skipped when the child died before creating the
                # table — there is nothing durable to write into.)
                if first.has_table("kv"):
                    reopened = Database.open(data_dir)
                    Executor(reopened).execute(
                        f"INSERT INTO kv (session_id, k, v) "
                        f"VALUES ({PROBE_SESSION}, 0, {iteration})")
                    reopened.wal.close()
                    final = Database.open(data_dir)
                    probe = [row for _, row
                             in final.table("kv").iter_rows()
                             if row[0] == PROBE_SESSION]
                    if probe != [(PROBE_SESSION, 0, iteration)]:
                        problems.append(
                            f"post-recovery write not durable: {probe!r}")
                    final.wal.close()
            except Exception as exc:  # noqa: BLE001 - report, don't die
                problems.append(f"{type(exc).__name__}: {exc}")

        entry["ok"] = not problems
        if problems:
            failures += 1
            if keep_failures:
                entry["workdir"] = workdir
            else:
                shutil.rmtree(workdir, ignore_errors=True)
        else:
            shutil.rmtree(workdir, ignore_errors=True)
        iterations.append(entry)

    report = {
        "seed": seed,
        "n_sessions": n_sessions,
        "n_statements": n_statements,
        "iterations": iterations,
        "total": len(iterations),
        "failures": failures,
        "ok": failures == 0,
    }
    if out_path:
        with open(out_path, "w") as handle:
            json.dump(report, handle, indent=1)
    return report
