"""A byte-budgeted LRU buffer pool with pin counts and demand loading.

Two usage regimes share one class:

* **Modeled residency** (the original role): a context holding a
  :class:`BufferPool` charges I/O only for pages that miss, and repeated
  runs warm the cache, so a "cold then hot" sequence can be produced by
  executing the same query twice against one pool. :meth:`touch` /
  :meth:`touch_range` access pages without contents; each modeled page
  is accounted at :data:`PAGE_BYTES`.

* **Real demand paging** (``Database.open(..., paging=True)``): the pool
  is the buffer manager over the durable snapshot. :meth:`get_or_load`
  faults B+ leaf pages and columnstore segment pages in from the
  snapshot file on first touch, keeps them under the byte budget with
  LRU eviction, and honors **pin counts** so a page cannot be evicted
  while a scan or seek is reading it (eviction skips pinned frames; if
  everything is pinned the pool temporarily overcommits rather than
  corrupting a reader).

Pages are identified by ``(object_id, page_no)`` where ``object_id`` is
an index- or heap-unique integer handed out by :class:`PageAllocator`
(or, for durable databases, recorded in the snapshot catalog) and
``page_no`` is the page's id within the snapshot stream.

The pool is shared by every serving session and every morsel worker, so
all map mutations, LRU reordering, pin counts, and counters run under a
single per-pool lock — the same discipline as
:class:`~repro.storage.segment_cache.DecodedSegmentCache` (an unlocked
``move_to_end`` racing a ``popitem`` corrupts the ``OrderedDict``).

Invalidation (:meth:`evict_object`, called on index rebuild/drop) is
O(pages of that object) via a per-object page index, not a scan of
every resident frame.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from typing import Callable, Dict, Iterable, Optional, Set, Tuple

from repro.core.errors import StorageError
from repro.storage.waits import WAIT_PAGEIOLATCH

PageId = Tuple[int, int]

#: One :meth:`BufferPool._insert` evicting at least this many frames is
#: reported as an ``eviction_storm`` event — the working set is far
#: enough above budget that the pool is thrashing.
EVICTION_STORM_THRESHOLD = 32

#: The modeled page size, shared with :mod:`repro.storage.pages` and the
#: DMV byte math in :mod:`repro.engine.dmv`. Real snapshot pages are
#: variable-length (header + tagged payload); this constant prices
#: *modeled* page accesses and converts the legacy ``capacity_pages``
#: construction into a byte budget.
PAGE_BYTES = 8192

#: Default demand-paging budget for ``Database.open(..., paging=True)``
#: when the caller gives no explicit ``pool_bytes``.
DEFAULT_POOL_BYTES = 64 * 1024 * 1024


class PageAllocator:
    """Hands out unique object ids to storage structures.

    Each heap, B+ tree, or columnstore obtains one object id; its pages
    are then ``(object_id, 0..n)``.
    """

    def __init__(self) -> None:
        self._next_object_id = 1

    def allocate_object(self) -> int:
        """Hand out the next unique object id."""
        oid = self._next_object_id
        self._next_object_id += 1
        return oid


class _Frame:
    """One resident page: its payload (None for modeled pages), its
    budget charge, and how many readers currently pin it."""

    __slots__ = ("value", "nbytes", "pins")

    def __init__(self, value: object, nbytes: int):
        self.value = value
        self.nbytes = nbytes
        self.pins = 0


class BufferPool:
    """Byte-budgeted LRU cache of pages with pin counts.

    Parameters
    ----------
    capacity_pages:
        Legacy sizing: the budget becomes ``capacity_pages * PAGE_BYTES``
        so modeled :meth:`touch` accesses (charged at one
        :data:`PAGE_BYTES` each) keep exactly the old fixed-capacity LRU
        behavior.
    budget_bytes:
        Direct byte budget for demand paging. Exactly one of the two
        must be given.
    """

    def __init__(self, capacity_pages: Optional[int] = None,
                 budget_bytes: Optional[int] = None):
        if (capacity_pages is None) == (budget_bytes is None):
            raise StorageError(
                "BufferPool needs exactly one of capacity_pages / "
                "budget_bytes")
        if capacity_pages is not None:
            if capacity_pages <= 0:
                raise StorageError("buffer pool capacity must be positive")
            budget_bytes = capacity_pages * PAGE_BYTES
        if budget_bytes <= 0:
            raise StorageError("buffer pool budget must be positive")
        self.budget_bytes = int(budget_bytes)
        #: Budget expressed in modeled pages (DMV compatibility).
        self.capacity_pages = max(1, self.budget_bytes // PAGE_BYTES)
        self._resident: "OrderedDict[PageId, _Frame]" = OrderedDict()
        #: object_id -> resident page keys of that object, so
        #: :meth:`evict_object` is O(pages of the object).
        self._by_object: Dict[object, Set[PageId]] = {}
        self._bytes = 0
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: High-water mark of resident bytes — what the eviction tests
        #: and the paging benchmark assert stays bounded by the budget.
        self.peak_bytes = 0
        #: Optional observability sinks, attached by ``Database.open``:
        #: fault latency records ``PAGEIOLATCH`` waits, and an insert
        #: that evicts ≥ :data:`EVICTION_STORM_THRESHOLD` frames emits
        #: an ``eviction_storm`` event. Subscribers of that event run
        #: under the pool lock and must not re-enter the pool.
        self.waits = None
        self.events = None

    # ---------------------------------------------------------- accessors
    def __len__(self) -> int:
        return len(self._resident)

    @property
    def bytes_resident(self) -> int:
        """Combined budget charge of currently resident pages."""
        return self._bytes

    def is_resident(self, page: PageId) -> bool:
        """Whether the page is currently cached."""
        with self._lock:
            return page in self._resident

    @property
    def hit_ratio(self) -> float:
        """Buffer-pool hits / total accesses."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    # ---------------------------------------------------------- internals
    def _object_of(self, page: PageId) -> object:
        return page[0] if isinstance(page, tuple) and len(page) == 2 else None

    def _index_page(self, page: PageId) -> None:
        oid = self._object_of(page)
        if oid is not None:
            self._by_object.setdefault(oid, set()).add(page)

    def _drop(self, page: PageId, frame: _Frame) -> None:
        del self._resident[page]
        self._bytes -= frame.nbytes
        oid = self._object_of(page)
        if oid is not None:
            pages = self._by_object.get(oid)
            if pages is not None:
                pages.discard(page)
                if not pages:
                    del self._by_object[oid]

    def _evict_to(self, target_bytes: int) -> None:
        """LRU-evict unpinned frames until ``_bytes <= target_bytes``.
        Pinned frames are skipped; if every frame is pinned the pool
        overcommits temporarily rather than invalidating an in-flight
        reader."""
        if self._bytes <= target_bytes:
            return
        evicted = 0
        for page in list(self._resident):
            if self._bytes <= target_bytes:
                break
            frame = self._resident[page]
            if frame.pins:
                continue
            self._drop(page, frame)
            self.evictions += 1
            evicted += 1
        if evicted >= EVICTION_STORM_THRESHOLD and self.events is not None:
            self.events.emit("eviction_storm", {
                "evicted": evicted,
                "budget_bytes": self.budget_bytes,
                "bytes_resident": self._bytes,
            })

    def _evict_to_budget(self) -> None:
        self._evict_to(self.budget_bytes)

    def _insert(self, page: PageId, frame: _Frame) -> None:
        # Make room *before* the frame becomes resident so peak_bytes
        # never transiently overshoots the budget (a frame larger than
        # the whole budget still overcommits, as do all-pinned pools).
        self._evict_to(self.budget_bytes - frame.nbytes)
        self._resident[page] = frame
        self._bytes += frame.nbytes
        self._index_page(page)
        self.peak_bytes = max(self.peak_bytes, self._bytes)

    # ----------------------------------------------------- modeled access
    def touch(self, pages: Iterable[PageId]) -> int:
        """Access ``pages`` in order; return how many were misses.

        Modeled access: missing pages become resident with no payload,
        charged at one :data:`PAGE_BYTES` each.
        """
        missed = 0
        with self._lock:
            for page in pages:
                frame = self._resident.get(page)
                if frame is not None:
                    self._resident.move_to_end(page)
                    self.hits += 1
                else:
                    missed += 1
                    self.misses += 1
                    self._insert(page, _Frame(None, PAGE_BYTES))
        return missed

    def touch_range(self, object_id: int, start: int, count: int) -> int:
        """Access a contiguous page range of one object; returns misses."""
        return self.touch((object_id, p) for p in range(start, start + count))

    # ------------------------------------------------------ demand paging
    def get_or_load(self, page: PageId,
                    loader: Callable[[], Tuple[object, int]],
                    pin: bool = False) -> object:
        """Return the payload of ``page``, faulting it in on a miss.

        ``loader`` runs only on a miss and returns ``(value, nbytes)``
        where ``nbytes`` is the frame's budget charge (the on-disk page
        length). With ``pin=True`` the frame's pin count is incremented
        before returning — the caller must :meth:`unpin` when done.
        """
        with self._lock:
            frame = self._resident.get(page)
            if frame is not None and frame.value is None:
                # Modeled residency only (:meth:`touch`): the payload was
                # never loaded, so a content request is still a fault.
                self._drop(page, frame)
                frame = None
            if frame is not None:
                self._resident.move_to_end(page)
                self.hits += 1
            else:
                self.misses += 1
                started = time.perf_counter()
                value, nbytes = loader()
                if self.waits is not None:
                    # The fault latency: time a reader was stalled on
                    # the snapshot read + decode for this page.
                    self.waits.record(
                        WAIT_PAGEIOLATCH,
                        (time.perf_counter() - started) * 1000.0)
                frame = _Frame(value, nbytes)
                if pin:
                    frame.pins += 1
                self._insert(page, frame)
                return frame.value
            if pin:
                frame.pins += 1
            return frame.value

    def pin(self, page: PageId) -> None:
        """Increment the pin count of a resident page."""
        with self._lock:
            frame = self._resident.get(page)
            if frame is None:
                raise StorageError(f"cannot pin non-resident page {page!r}")
            frame.pins += 1

    def unpin(self, page: PageId) -> None:
        """Decrement a page's pin count (no-op if the page was force-
        evicted by :meth:`evict_object`/:meth:`clear` meanwhile)."""
        with self._lock:
            frame = self._resident.get(page)
            if frame is not None and frame.pins > 0:
                frame.pins -= 1
                self._evict_to_budget()

    def pinned_pages(self) -> int:
        """Number of currently pinned frames (diagnostics/tests)."""
        with self._lock:
            return sum(1 for f in self._resident.values() if f.pins)

    # ------------------------------------------------------- invalidation
    def evict_object(self, object_id: int) -> int:
        """Drop all pages of one object (index rebuild/drop); returns
        how many were dropped. O(pages of that object) via the
        per-object index. Pinned frames are dropped too: invalidation
        means the content is stale, staleness beats residency."""
        with self._lock:
            pages = self._by_object.get(object_id)
            if not pages:
                return 0
            stale = list(pages)
            for page in stale:
                self._drop(page, self._resident[page])
            self.invalidations += len(stale)
            return len(stale)

    def clear(self) -> None:
        """Forget all recorded history: residency *and* the counters, so
        ``hit_ratio`` starts fresh for the next experiment. Use
        :meth:`evict_all` to drop residency while keeping stats, or
        :meth:`reset_stats` for the reverse."""
        with self._lock:
            self._resident.clear()
            self._by_object.clear()
            self._bytes = 0
            self.reset_stats()

    def evict_all(self) -> None:
        """Drop every resident page but keep the hit/miss counters."""
        with self._lock:
            self._resident.clear()
            self._by_object.clear()
            self._bytes = 0

    def reset_stats(self) -> None:
        """Zero the counters while keeping pages resident."""
        with self._lock:
            self.hits = 0
            self.misses = 0
            self.evictions = 0
            self.invalidations = 0
            self.peak_bytes = self._bytes

    def check_consistency(self) -> None:
        """Verify internal invariants (used by the hammer tests):
        byte accounting matches resident frames and the per-object index
        exactly mirrors residency."""
        with self._lock:
            total = sum(f.nbytes for f in self._resident.values())
            if total != self._bytes:
                raise StorageError(
                    f"byte accounting drifted: {self._bytes} != {total}")
            indexed = set()
            for oid, pages in self._by_object.items():
                if not pages:
                    raise StorageError(f"empty index bucket for {oid!r}")
                indexed |= pages
            tracked = {p for p in self._resident
                       if self._object_of(p) is not None}
            if indexed != tracked:
                raise StorageError("per-object page index out of sync")
