"""A simple LRU buffer pool for partial-residency experiments.

The paper's micro-benchmarks mostly use two extremes — fully cold (data on
HDD) and fully hot (data memory resident) — which the executor models with
the ``cold`` flag on :class:`repro.engine.metrics.ExecutionContext`. The
buffer pool supports the in-between regime: a context holding a
:class:`BufferPool` charges I/O only for pages that miss, and repeated runs
warm the cache, so a "cold then hot" sequence can be produced by executing
the same query twice against one pool.

Pages are identified by ``(object_id, page_no)`` where ``object_id`` is an
index- or heap-unique integer handed out by :class:`PageAllocator`.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Tuple

from repro.core.errors import StorageError

PageId = Tuple[int, int]


class PageAllocator:
    """Hands out unique object ids to storage structures.

    Each heap, B+ tree, or columnstore obtains one object id; its pages are
    then ``(object_id, 0..n)``.
    """

    def __init__(self) -> None:
        self._next_object_id = 1

    def allocate_object(self) -> int:
        """Hand out the next unique object id."""
        oid = self._next_object_id
        self._next_object_id += 1
        return oid


class BufferPool:
    """Fixed-capacity LRU cache of pages.

    ``capacity_pages`` bounds the number of resident pages. :meth:`touch`
    returns the number of *missing* pages, which the caller converts to an
    I/O charge; pages become resident afterwards.
    """

    def __init__(self, capacity_pages: int):
        if capacity_pages <= 0:
            raise StorageError("buffer pool capacity must be positive")
        self.capacity_pages = capacity_pages
        self._resident: "OrderedDict[PageId, None]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._resident)

    def is_resident(self, page: PageId) -> bool:
        """Whether the page is currently cached."""
        return page in self._resident

    def touch(self, pages: Iterable[PageId]) -> int:
        """Access ``pages`` in order; return how many were misses."""
        missed = 0
        for page in pages:
            if page in self._resident:
                self._resident.move_to_end(page)
                self.hits += 1
            else:
                missed += 1
                self.misses += 1
                self._resident[page] = None
                if len(self._resident) > self.capacity_pages:
                    self._resident.popitem(last=False)
        return missed

    def touch_range(self, object_id: int, start: int, count: int) -> int:
        """Access a contiguous page range of one object; returns misses."""
        return self.touch((object_id, p) for p in range(start, start + count))

    def evict_object(self, object_id: int) -> None:
        """Drop all pages of one object (index rebuild/drop)."""
        stale = [p for p in self._resident if p[0] == object_id]
        for page in stale:
            del self._resident[page]

    def clear(self) -> None:
        """Forget all recorded history: residency *and* the hit/miss
        counters, so ``hit_ratio`` starts fresh for the next experiment.
        Use :meth:`evict_all` to drop residency while keeping stats, or
        :meth:`reset_stats` for the reverse."""
        self._resident.clear()
        self.reset_stats()

    def evict_all(self) -> None:
        """Drop every resident page but keep the hit/miss counters."""
        self._resident.clear()

    def reset_stats(self) -> None:
        """Zero the hit/miss counters while keeping pages resident."""
        self.hits = 0
        self.misses = 0

    @property
    def hit_ratio(self) -> float:
        """Buffer-pool hits / total accesses."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
