"""Columnstore compression: dictionary encoding, run-length encoding,
bit-packing, and greedy sort-column selection.

Mirrors the SQL Server scheme the paper describes (Section 2 and
Figure 8):

* Non-numeric domains are *dictionary encoded* into integer codes.
* Within each row group the rows are sorted to create long runs; the sort
  order is chosen greedily, "picking the next column to sort by based on
  the column with the fewest runs".
* Each column segment is then stored with whichever encoding is smallest:
  run-length encoding (RLE) of the sorted values, bit-packed codes, or raw
  values.
* Every segment records ``min``/``max`` of its values — the small
  materialized aggregates that enable segment elimination (data skipping).

The compressed representation is real: RLE segments store run values and
lengths and are materialized with ``np.repeat`` at scan time; dictionary
segments store codes plus the dictionary. Size accounting
(``size_bytes``) is derived from the representation actually chosen, which
is what the advisor's size estimators are validated against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.errors import StorageError
from repro.core.schema import TableSchema
from repro.core.types import TypeKind

#: Encodings a segment may use, in the order they are considered.
ENCODING_RLE = "rle"
ENCODING_DICT = "dict"
ENCODING_BITPACK = "bitpack"
ENCODING_RAW = "raw"

_RUN_HEADER_BYTES = 4  # run length counter per run

#: Ceiling on the size of a *derived* numeric dictionary (see
#: :meth:`ColumnSegment.code_space`): a numeric segment whose distinct
#: run values / value span exceed this executes decoded — a wider code
#: space would cost more to build than vectorized int64 execution saves.
_DERIVED_DICT_MAX = 1 << 16

_UNSET = object()


def _bits_for(n_distinct: int) -> int:
    """Bits needed to store a code for one of ``n_distinct`` values."""
    if n_distinct <= 1:
        return 1
    return max(1, math.ceil(math.log2(n_distinct)))


def rle_runs(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """Split ``values`` into maximal runs; returns (run_values, run_lengths)."""
    n = len(values)
    if n == 0:
        return values[:0], np.zeros(0, dtype=np.int64)
    if values.dtype == object:
        change = np.ones(n, dtype=bool)
        change[1:] = values[1:] != values[:-1]
    else:
        change = np.empty(n, dtype=bool)
        change[0] = True
        np.not_equal(values[1:], values[:-1], out=change[1:])
    starts = np.flatnonzero(change)
    lengths = np.diff(np.append(starts, n))
    return values[starts], lengths


def count_runs(values: np.ndarray) -> int:
    """Number of maximal runs in ``values`` (1 for constant columns)."""
    if len(values) == 0:
        return 0
    if values.dtype == object:
        return int(1 + np.count_nonzero(values[1:] != values[:-1]))
    return int(1 + np.count_nonzero(np.not_equal(values[1:], values[:-1])))


@dataclass
class Dictionary:
    """Value dictionary for a string (or other non-numeric) column.

    ``values`` is sorted ascending with NULL (``None``) first when the
    column contains one, so dictionary *code order equals value order* —
    the invariant the encoded execution path relies on to translate
    range predicates into code-range tests.
    """

    values: np.ndarray  # sorted unique values (NULL first when present)

    def __post_init__(self):
        self._code_map = None  # value -> code, built lazily

    def __len__(self) -> int:
        return len(self.values)

    @property
    def null_offset(self) -> int:
        """Number of leading NULL slots (0 or 1): non-null values occupy
        the contiguous, value-ordered code range ``[null_offset, len)``."""
        return 1 if len(self.values) and self.values[0] is None else 0

    def _lookup(self) -> Dict[object, int]:
        if self._code_map is None:
            self._code_map = {
                value: code for code, value in enumerate(self.values.tolist())
            }
        return self._code_map

    def code_of(self, value: object) -> Optional[int]:
        """Exact-match code for ``value``; None when absent."""
        return self._lookup().get(value)

    def integer_domain(self):
        """The non-null dictionary values when they are all integers —
        an int64 ndarray for numeric dictionaries, a Python list for
        object dictionaries — or None when the domain is not purely
        integral (floats must aggregate on materialized values: their
        summation order affects rounding). Cached on the instance."""
        cached = getattr(self, "_integer_domain", _UNSET)
        if cached is not _UNSET:
            return cached
        non_null = self.values[self.null_offset:]
        if self.values.dtype != object:
            result = (non_null.astype(np.int64)
                      if self.values.dtype.kind in "iu" else None)
        else:
            listed = non_null.tolist()
            if all(isinstance(v, int) and not isinstance(v, bool)
                   for v in listed):
                result = listed
            else:
                result = None
        self._integer_domain = result
        return result

    def size_bytes(self) -> int:
        """Approximate on-disk size in bytes."""
        if len(self.values) == 0:
            return 0
        if self.values.dtype == object:
            return int(sum(len(str(v)) + 4 for v in self.values))
        return int(len(self.values) * self.values.dtype.itemsize)

    def encode(self, raw: np.ndarray) -> np.ndarray:
        """Map raw values to dictionary codes (exact lookup, NULL-safe)."""
        lookup = self._lookup()
        return np.fromiter((lookup[v] for v in raw.tolist()),
                           dtype=np.int64, count=len(raw))

    def decode(self, codes: np.ndarray) -> np.ndarray:
        """Materialize the segment as a flat value array."""
        return self.values[codes]

    @classmethod
    def build(cls, raw: np.ndarray) -> "Dictionary":
        """Build the sorted dictionary for ``raw``, NULLs first."""
        if raw.dtype == object:
            uniques = set(raw.tolist())
            has_null = None in uniques
            ordered: List[object] = sorted(
                v for v in uniques if v is not None)
            if has_null:
                ordered = [None] + ordered
            values = np.empty(len(ordered), dtype=object)
            values[:] = ordered
            return cls(values=values)
        return cls(values=np.unique(raw))


@dataclass
class ColumnSegment:
    """One column's data within one compressed row group."""

    column: str
    n_rows: int
    encoding: str
    size_bytes: int
    min_value: object
    max_value: object
    #: RLE payload (present when encoding == ENCODING_RLE)
    run_values: Optional[np.ndarray] = None
    run_lengths: Optional[np.ndarray] = None
    #: Raw / bit-packed payload (codes when a dictionary is attached)
    values: Optional[np.ndarray] = None
    dictionary: Optional[Dictionary] = None

    def decode(self) -> np.ndarray:
        """Materialize the segment as a flat value array (stored order)."""
        if self.encoding == ENCODING_RLE:
            assert self.run_values is not None and self.run_lengths is not None
            decoded = np.repeat(self.run_values, self.run_lengths)
        else:
            assert self.values is not None
            decoded = self.values
        if self.dictionary is not None:
            return self.dictionary.decode(decoded)
        return decoded

    def codes_array(self) -> np.ndarray:
        """The segment's dictionary codes in stored order, *without*
        materializing values — the input to encoded execution. Only
        valid for segments that carry a dictionary."""
        assert self.dictionary is not None
        if self.encoding == ENCODING_RLE:
            assert self.run_values is not None and self.run_lengths is not None
            return np.repeat(self.run_values, self.run_lengths)
        assert self.values is not None
        return self.values

    def code_space(self) -> Optional[Tuple[np.ndarray, Dictionary]]:
        """The segment's (codes, dictionary) pair for encoded execution,
        or None when this segment has no usable code space.

        Dictionary segments return their stored codes directly. Numeric
        segments *derive* a code space from the compressed
        representation — without touching the stored payload or
        ``size_bytes``, so modeled costs and the on-disk format are
        unchanged:

        * RLE segments build a dictionary of their distinct run values
          (``np.unique`` over runs, not rows) and emit per-run codes
          repeated by run length — execution on (run-value, run-length)
          pairs.
        * Bit-packed / raw integer segments use frame-of-reference: the
          dictionary is ``arange(min, max + 1)`` and the codes are
          ``value - min`` — exactly the packed FOR codes the stored
          representation implies.

        The derived dictionary is sorted ascending with no NULL slot
        (numeric arrays cannot hold None), so code order equals value
        order and every code-space predicate/sort rule applies
        unchanged. The result is cached on the segment instance: one
        derivation per segment per lifetime, never per statement.
        """
        if self.dictionary is not None:
            return self.codes_array(), self.dictionary
        cached = getattr(self, "_code_space_cache", _UNSET)
        if cached is not _UNSET:
            return cached
        derived = self._derive_code_space()
        self._code_space_cache = derived
        return derived

    def _derive_code_space(self) -> Optional[Tuple[np.ndarray, Dictionary]]:
        if self.encoding == ENCODING_RLE:
            run_values = self.run_values
            if run_values is None or run_values.dtype == object:
                return None
            distinct = np.unique(run_values)
            if len(distinct) > _DERIVED_DICT_MAX:
                return None
            run_codes = np.searchsorted(distinct, run_values).astype(np.int32)
            codes = np.repeat(run_codes, self.run_lengths)
            return codes, Dictionary(values=distinct)
        values = self.values
        if values is None or values.dtype == object:
            return None
        if values.dtype.kind not in "iu":
            return None  # fractional values cannot be FOR-coded
        if self.min_value is None or self.max_value is None:
            return None
        lo = int(self.min_value)
        span = int(self.max_value) - lo
        if span + 1 > _DERIVED_DICT_MAX:
            return None
        dict_values = np.arange(lo, lo + span + 1, dtype=values.dtype)
        codes = (values - lo).astype(np.int32)
        return codes, Dictionary(values=dict_values)

    def overlaps(self, low: object, high: object) -> bool:
        """Min/max check used for segment elimination: can any value in
        [low, high] exist in this segment? ``None`` bounds are open."""
        if self.min_value is None or self.max_value is None:
            return True  # no metadata: cannot skip
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value > high:
            return False
        return True


def _segment_min_max(values: np.ndarray) -> Tuple[object, object]:
    if len(values) == 0:
        return None, None
    if values.dtype == object:
        non_null = [v for v in values if v is not None]
        if not non_null:
            return None, None  # all-NULL segment: no skipping metadata
        return min(non_null), max(non_null)
    return values.min().item(), values.max().item()


def encode_segment(column: str, values: np.ndarray, value_bytes: int,
                   dictionary: Optional[Dictionary] = None,
                   forced_encoding: Optional[str] = None) -> ColumnSegment:
    """Choose the smallest encoding for ``values`` and build the segment.

    ``values`` must already be in the row group's final (sorted) order.
    ``value_bytes`` is the uncompressed per-value width; with a dictionary,
    the encoded width is the code width.

    ``forced_encoding`` overrides the smallest-size choice — the hook the
    adaptive layout policy uses to trade size for access pattern (e.g.
    positional bit-packed codes for point-lookup-heavy columns instead
    of RLE, which needs a run prefix-sum to answer "value at position
    i"). The segment's ``size_bytes`` is always the size of the
    representation actually built, so forcing a layout is honestly
    reflected in storage accounting.
    """
    n = len(values)
    if n == 0:
        raise StorageError(f"segment for {column!r} is empty")
    if dictionary is not None:
        stored = dictionary.encode(values)
        dict_overhead = dictionary.size_bytes()
        distinct = len(dictionary)
        code_bytes = _bits_for(distinct) / 8.0
    else:
        stored = values
        dict_overhead = 0
        if values.dtype == object:
            raise StorageError(f"column {column!r} needs a dictionary")
        distinct = 0  # computed lazily below only if needed
        code_bytes = float(value_bytes)

    run_values, run_lengths = rle_runs(stored)
    n_runs = len(run_values)
    rle_size = int(n_runs * (code_bytes + _RUN_HEADER_BYTES)) + dict_overhead

    if dictionary is None:
        # Frame-of-reference bit packing: without a dictionary, packed
        # width is set by the *value range*, not the distinct count.
        lo = stored.min()
        hi = stored.max()
        span = float(hi) - float(lo)
        if span == int(span):
            pack_bits = _bits_for(int(span) + 1)
        else:
            pack_bits = 64  # fractional values cannot be FOR-packed
        distinct = len(np.unique(stored))
    else:
        pack_bits = _bits_for(max(distinct, 2))
    pack_size = int(n * pack_bits / 8) + dict_overhead
    raw_size = int(n * code_bytes) + dict_overhead

    min_value, max_value = _segment_min_max(values)
    if forced_encoding is not None:
        if forced_encoding == ENCODING_RLE:
            return ColumnSegment(
                column=column, n_rows=n, encoding=ENCODING_RLE,
                size_bytes=rle_size, min_value=min_value, max_value=max_value,
                run_values=run_values, run_lengths=run_lengths,
                dictionary=dictionary,
            )
        if dictionary is not None:
            # Positional layout for a dictionary column: bit-packed codes.
            return ColumnSegment(
                column=column, n_rows=n, encoding=ENCODING_DICT,
                size_bytes=pack_size, min_value=min_value,
                max_value=max_value, values=stored, dictionary=dictionary,
            )
        size = raw_size if forced_encoding == ENCODING_RAW else pack_size
        encoding = (ENCODING_RAW if forced_encoding == ENCODING_RAW
                    else ENCODING_BITPACK)
        return ColumnSegment(
            column=column, n_rows=n, encoding=encoding, size_bytes=size,
            min_value=min_value, max_value=max_value,
            values=stored, dictionary=dictionary,
        )
    best = min(rle_size, pack_size, raw_size)
    if best == rle_size:
        return ColumnSegment(
            column=column, n_rows=n, encoding=ENCODING_RLE, size_bytes=rle_size,
            min_value=min_value, max_value=max_value,
            run_values=run_values, run_lengths=run_lengths, dictionary=dictionary,
        )
    encoding = ENCODING_DICT if dictionary is not None else ENCODING_BITPACK
    if best == raw_size and dictionary is None:
        encoding = ENCODING_RAW
    return ColumnSegment(
        column=column, n_rows=n, encoding=encoding, size_bytes=best,
        min_value=min_value, max_value=max_value,
        values=stored, dictionary=dictionary,
    )


def choose_sort_order(columns: Dict[str, np.ndarray]) -> List[str]:
    """Greedy sort-column selection.

    SQL Server "picks the next column to sort by based on the column with
    the fewest runs" (Section 4.4); like the paper's estimator we use the
    number of distinct values — the run count the column would have once
    sorted — as the greedy criterion, smallest first.
    """
    distinct_counts = {
        name: (len(set(values.tolist())) if values.dtype == object
               else len(np.unique(values)))
        for name, values in columns.items()
    }
    return sorted(distinct_counts, key=lambda name: (distinct_counts[name], name))


@dataclass
class SegmentMeta:
    """Per-column segment metadata a row group keeps resident even when
    the segment's data pages are not.

    This is the small materialized-aggregate record the snapshot stores
    in the PT_CSI_GROUP page: enough for segment elimination
    (:meth:`overlaps` mirrors :meth:`ColumnSegment.overlaps`), sizing,
    and encoding stats — without faulting the segment page in.
    """

    column: str
    n_rows: int
    encoding: str
    size_bytes: int
    min_value: object
    max_value: object

    def overlaps(self, low: object, high: object) -> bool:
        """Min/max check used for segment elimination: can any value in
        [low, high] exist in this segment? ``None`` bounds are open."""
        if self.min_value is None or self.max_value is None:
            return True  # no metadata: cannot skip
        if low is not None and self.max_value < low:
            return False
        if high is not None and self.min_value > high:
            return False
        return True

    @classmethod
    def of(cls, segment: ColumnSegment) -> "SegmentMeta":
        return cls(
            column=segment.column, n_rows=segment.n_rows,
            encoding=segment.encoding, size_bytes=segment.size_bytes,
            min_value=segment.min_value, max_value=segment.max_value,
        )


@dataclass
class CompressedRowGroup:
    """A compressed row group: aligned column segments plus row ids.

    ``rids[i]`` is the table row id of stored position ``i``; the delete
    bitmap of primary columnstores marks positions within this array.

    Two residency modes share this class. In-memory groups hold every
    segment in ``segments``. *Paged* groups (built by the lazy snapshot
    loader) keep ``segments`` empty and instead carry per-column
    :class:`SegmentMeta` plus a ``loader`` that faults a segment's page
    in through the buffer pool on first touch; loaded segments are owned
    by the pool's LRU, never stored back here, so a paged group's
    residency stays bounded by the pool budget.
    """

    segments: Dict[str, ColumnSegment]
    rids: np.ndarray
    n_rows: int
    sort_order: List[str] = field(default_factory=list)
    #: Paged groups only: column -> SegmentMeta (resident metadata).
    meta: Optional[Dict[str, SegmentMeta]] = None
    #: Paged groups only: callable(column) -> ColumnSegment via the pool.
    loader: Optional[object] = None

    @property
    def is_paged(self) -> bool:
        """Whether segment data lives behind the buffer pool."""
        return self.loader is not None

    def column_names(self) -> List[str]:
        """Sorted names of the group's columns, resident or not."""
        if self.segments:
            return sorted(self.segments)
        if self.meta is not None:
            return sorted(self.meta)
        return []

    def column_meta(self, name: str) -> Optional[SegmentMeta]:
        """Resident metadata for one column (for elimination/sizing);
        derived from the segment itself when it is in memory."""
        segment = self.segments.get(name)
        if segment is not None:
            return SegmentMeta.of(segment)
        if self.meta is not None:
            return self.meta.get(name)
        return None

    def size_bytes(self) -> int:
        """Approximate on-disk size in bytes."""
        if self.segments:
            return sum(seg.size_bytes for seg in self.segments.values())
        if self.meta is not None:
            return sum(m.size_bytes for m in self.meta.values())
        return 0

    def column(self, name: str) -> ColumnSegment:
        """Values of one result/batch/stats column by name. For paged
        groups this faults the segment's page through the buffer pool."""
        try:
            return self.segments[name]
        except KeyError:
            pass
        if self.loader is not None and (self.meta is None
                                        or name in self.meta):
            return self.loader(name)
        raise StorageError(f"row group has no segment for {name!r}")


def compress_rowgroup(
    schema: TableSchema,
    columns: Dict[str, np.ndarray],
    rids: np.ndarray,
    presorted: bool = False,
    encoding_overrides: Optional[Dict[str, str]] = None,
) -> CompressedRowGroup:
    """Compress one row group.

    ``columns`` maps column name to a value array (all the same length).
    Unless ``presorted``, rows are reordered by the greedy sort order to
    maximise run lengths, and ``rids`` is permuted alongside, so stored
    position is decoupled from arrival order — exactly why primary
    columnstores need a scan to locate a row (Section 2).

    ``encoding_overrides`` maps column name to a forced encoding (see
    :func:`encode_segment`) — the adaptive layout policy's entry point
    at rebuild time; absent columns keep the smallest-size choice.
    """
    names = list(columns)
    if not names:
        raise StorageError("row group must have at least one column")
    n = len(rids)
    for name in names:
        if len(columns[name]) != n:
            raise StorageError(f"column {name!r} length mismatch")

    sort_order: List[str] = []
    if not presorted and n > 1:
        sort_order = choose_sort_order(columns)
        # np.lexsort sorts by the *last* key first: reverse so the first
        # chosen column is the major sort column.
        sort_keys = [_sortable(columns[name]) for name in reversed(sort_order)]
        order = np.lexsort(sort_keys)
        columns = {name: values[order] for name, values in columns.items()}
        rids = rids[order]

    segments: Dict[str, ColumnSegment] = {}
    for name in names:
        values = columns[name]
        col_type = schema.column(name).col_type
        dictionary = None
        if values.dtype == object or col_type.kind is TypeKind.VARCHAR:
            dictionary = Dictionary.build(values)
        forced = encoding_overrides.get(name) if encoding_overrides else None
        segments[name] = encode_segment(
            name, values, col_type.byte_width, dictionary,
            forced_encoding=forced,
        )
    return CompressedRowGroup(
        segments=segments, rids=np.asarray(rids), n_rows=n, sort_order=sort_order
    )


def _sortable(values: np.ndarray) -> np.ndarray:
    """np.lexsort cannot sort object arrays of strings directly on some
    dtypes; map them through their sorted-unique codes (NULLs first, the
    same order :meth:`Dictionary.build` assigns)."""
    if values.dtype != object:
        return values
    return Dictionary.build(values).encode(values)
