"""Deterministic fault injection for the storage engine.

Real engines prove their DML atomicity guarantees by injecting failures
mid-operation (SQL Server's fault-injection test harness behind DBCC
CHECKDB is the model here). This module provides the same capability for
the repro engine: a :class:`FaultInjector` is registered on a
:class:`~repro.storage.database.Database` and threaded through every
storage structure; named *injection points* sprinkled through
``heap.py``, ``btree.py``, ``columnstore.py`` and ``table.py`` call
:meth:`FaultInjector.hit` just before the mutation they guard, and an
armed injector raises :class:`InjectedFault` there.

Three schedules are supported:

* **Nth hit** (:meth:`FaultInjector.arm`): fire once on the Nth time the
  point is reached after arming — the workhorse of the exhaustive fault
  sweep in ``tests/test_faults.py``.
* **Probabilistic** (:meth:`FaultInjector.arm_probabilistic`): fire each
  hit with probability ``p`` from a seeded RNG (chaos testing with a
  reproducible seed).
* **Scripted** (:meth:`FaultInjector.arm_script`): a boolean sequence
  consumed one entry per hit (precise multi-fault choreography).

The injector is inert unless a point is armed: ``hit`` then only counts,
so production paths and every figure/experiment output are unchanged.
During rollback the engine wraps compensating work in
:meth:`FaultInjector.suspended` so an undo path can never itself fault.
"""

from __future__ import annotations

import os
import random
import threading
from contextlib import contextmanager
from typing import Dict, Iterator, Optional, Sequence

from repro.core.errors import ProcessAbort, StorageError

#: Catalog of every injection point threaded through the storage layer.
#: Tests iterate this tuple to prove exhaustive coverage; ``arm``/``hit``
#: reject names outside it so points cannot silently rot.
INJECTION_POINTS = (
    # Heap file mutations.
    "heap.insert",
    "heap.delete",
    "heap.update",
    # B+ tree index mutations (primary and secondary flavours share the
    # points: what matters is which physical step is about to run).
    "btree.insert",
    "btree.delete",
    "btree.update",
    # Columnstore DML: delta-store insert, per-rid delete (delta removal,
    # delete-bitmap mark, or delete-buffer insert).
    "csi.delta_insert",
    "csi.delete",
    # Columnstore maintenance: tuple-mover compression, full rebuild,
    # delete-buffer compaction.
    "csi.move_tuples.compress",
    "csi.rebuild.compress",
    "csi.compact_delete_buffer",
    # Table-level: fires before each secondary index receives its share
    # of a DML statement (the classic half-updated-table scenario).
    "table.secondary_apply",
)

#: Crash-style points threaded through the durability layer
#: (``wal.py`` / ``pages.py``). Unlike the logical points above, firing
#: one raises :class:`~repro.core.errors.ProcessAbort` — a
#: ``BaseException`` modelling a hard ``kill -9`` — instead of
#: :class:`InjectedFault`, so no rollback path can catch it. Kept out of
#: ``INJECTION_POINTS`` because the exhaustive logical fault sweep
#: proves all-or-nothing *in-memory* semantics, which a simulated
#: process death is definitionally outside of.
CRASH_POINTS = (
    # Before a WAL record frame is written (a torn half-frame is left
    # behind, like a power cut mid-append).
    "wal_append",
    # After WAL frames are written but before the fsync barrier.
    "wal_fsync",
    # Mid-checkpoint, after some snapshot pages are written to the
    # temp file (the atomic-rename publish never happens).
    "checkpoint_mid",
    # While flushing one snapshot page: a torn (truncated) page is left
    # in the temp file.
    "page_flush_torn",
)

ALL_POINTS = INJECTION_POINTS + CRASH_POINTS

_POINT_SET = frozenset(INJECTION_POINTS)
_ALL_SET = frozenset(ALL_POINTS)
_CRASH_SET = frozenset(CRASH_POINTS)


class InjectedFault(StorageError):
    """Raised by an armed :class:`FaultInjector` at an injection point.

    Subclasses :class:`~repro.core.errors.StorageError` so injected
    faults travel the same recovery paths as organic storage failures.
    """

    def __init__(self, point: str, hit_number: int):
        super().__init__(
            f"injected fault at {point!r} (hit {hit_number})")
        self.point = point
        self.hit_number = hit_number


class FaultInjector:
    """Registry of armed injection points plus hit/injection counters.

    One injector is shared by a database's tables and index structures;
    standalone structures have ``faults = None`` and skip all checks.

    Thread safety: arming, disarming, and hit counting/firing take one
    re-entrant lock, so one-shot schedules fire exactly once no matter
    how many sessions race through the point. Rollback masking
    (:meth:`suspended`) is **per thread** — one session suspending the
    injector around its undo work must not blind the injector to every
    other session's mutations.
    """

    def __init__(self, enabled: bool = True):
        #: Master switch: a disabled injector neither counts nor fires.
        self.enabled = enabled
        #: Cumulative hits per point since construction / ``reset``.
        self.hits: Dict[str, int] = {p: 0 for p in ALL_POINTS}
        #: Faults actually raised per point.
        self.injected: Dict[str, int] = {p: 0 for p in ALL_POINTS}
        self._armed: Dict[str, dict] = {}
        self._lock = threading.RLock()
        self._suspend = threading.local()
        #: When True, a firing crash point calls ``os._exit(137)``
        #: instead of raising :class:`ProcessAbort` — the subprocess
        #: crash harness sets this on its child so a "crash" kills the
        #: whole process without unwinding, exactly like SIGKILL.
        self.crash_exit = False
        #: Optional :class:`~repro.storage.events.EventStream` (attached
        #: by the owning Database): every fault that actually fires
        #: emits a ``fault_injection`` event before raising.
        self.events = None

    # ------------------------------------------------------------ arming
    def _validate(self, point: str) -> None:
        if point not in _ALL_SET:
            armed = ", ".join(sorted(self._armed)) or "<none>"
            raise StorageError(
                f"unknown injection point {point!r}; "
                f"armed points: {armed}; "
                f"known points: {', '.join(ALL_POINTS)}")

    def arm(self, point: str, on_hit: int = 1) -> None:
        """Fire once on the ``on_hit``-th hit of ``point`` from now.

        One-shot: the arming is consumed when it fires.
        """
        self._validate(point)
        if on_hit < 1:
            raise StorageError("on_hit must be >= 1")
        with self._lock:
            self._armed[point] = {"kind": "nth", "remaining": on_hit}

    def arm_probabilistic(self, point: str, probability: float,
                          seed: int = 0) -> None:
        """Fire each hit of ``point`` with the given probability, drawn
        from a dedicated RNG seeded with ``seed`` for reproducibility."""
        self._validate(point)
        if not 0.0 <= probability <= 1.0:
            raise StorageError("probability must be within [0, 1]")
        with self._lock:
            self._armed[point] = {
                "kind": "probability",
                "probability": probability,
                "rng": random.Random(seed),
            }

    def arm_script(self, point: str, script: Sequence[bool]) -> None:
        """Consume one ``script`` entry per hit; truthy entries fire.
        The arming disarms itself once the script is exhausted."""
        self._validate(point)
        with self._lock:
            self._armed[point] = {"kind": "script", "script": list(script)}

    def scenario(self, points: Dict[str, object]) -> None:
        """Arm several points in one call (crash-harness convenience).

        ``points`` maps point name to a spec: an ``int`` arms an Nth-hit
        one-shot (:meth:`arm`), a sequence of booleans arms a script
        (:meth:`arm_script`), and a dict selects explicitly —
        ``{"kind": "nth", "on_hit": 3}``,
        ``{"kind": "probability", "probability": 0.1, "seed": 7}``, or
        ``{"kind": "script", "script": [...]}``.
        """
        for point, spec in points.items():
            if isinstance(spec, bool):
                raise StorageError(
                    f"scenario spec for {point!r} must be an int, "
                    "sequence, or dict — got a bare bool")
            if isinstance(spec, int):
                self.arm(point, on_hit=spec)
            elif isinstance(spec, dict):
                kind = spec.get("kind")
                if kind == "nth":
                    self.arm(point, on_hit=spec.get("on_hit", 1))
                elif kind == "probability":
                    self.arm_probabilistic(
                        point, spec["probability"], seed=spec.get("seed", 0))
                elif kind == "script":
                    self.arm_script(point, spec["script"])
                else:
                    raise StorageError(
                        f"scenario spec for {point!r} has unknown kind "
                        f"{kind!r}")
            elif isinstance(spec, (list, tuple)):
                self.arm_script(point, spec)
            else:
                raise StorageError(
                    f"scenario spec for {point!r} must be an int, "
                    f"sequence, or dict — got {type(spec).__name__}")

    def disarm(self, point: Optional[str] = None) -> None:
        """Disarm one point, or every point when ``point`` is None."""
        with self._lock:
            if point is None:
                self._armed.clear()
            else:
                self._validate(point)
                self._armed.pop(point, None)

    def reset(self) -> None:
        """Disarm everything and zero the counters."""
        with self._lock:
            self._armed.clear()
            self.hits = {p: 0 for p in ALL_POINTS}
            self.injected = {p: 0 for p in ALL_POINTS}

    def armed_points(self) -> Sequence[str]:
        """Names of currently armed points."""
        with self._lock:
            return tuple(self._armed)

    # ---------------------------------------------------------- counters
    @property
    def total_hits(self) -> int:
        """Total hits across every point."""
        return sum(self.hits.values())

    @property
    def total_injected(self) -> int:
        """Total faults raised across every point."""
        return sum(self.injected.values())

    # --------------------------------------------------------- execution
    @property
    def active(self) -> bool:
        """Whether hits from *this thread* are counted / fired."""
        return self.enabled and getattr(self._suspend, "depth", 0) == 0

    @contextmanager
    def suspended(self) -> Iterator[None]:
        """Context manager that masks the injector — used around
        compensating (rollback) work so undo paths cannot fault.

        The mask is thread-local: a session rolling back must not
        suppress fault checks for every other session's foreground
        mutations (the single shared depth counter did exactly that)."""
        self._suspend.depth = getattr(self._suspend, "depth", 0) + 1
        try:
            yield
        finally:
            self._suspend.depth -= 1

    def hit(self, point: str) -> None:
        """Record one arrival at ``point``; raise if an arming fires.

        Counting, one-shot decrement, and disarm happen under the lock,
        so exactly one of N racing sessions consumes an ``arm(...)``.
        Crash-style points (:data:`CRASH_POINTS`) fire
        :class:`~repro.core.errors.ProcessAbort` — or ``os._exit`` when
        :attr:`crash_exit` is set — instead of :class:`InjectedFault`."""
        if point not in _ALL_SET:
            self._validate(point)
        if not self.active:
            return
        with self._lock:
            self.hits[point] += 1
            hit_number = self.hits[point]
            arming = self._armed.get(point)
            if arming is None:
                return
            fire = False
            kind = arming["kind"]
            if kind == "nth":
                arming["remaining"] -= 1
                if arming["remaining"] == 0:
                    fire = True
                    del self._armed[point]
            elif kind == "probability":
                fire = arming["rng"].random() < arming["probability"]
            else:  # scripted
                if arming["script"]:
                    fire = bool(arming["script"].pop(0))
                if not arming["script"]:
                    del self._armed[point]
            if fire:
                self.injected[point] += 1
        if fire:
            if self.events is not None:
                # Emitted outside the injector lock, before the raise,
                # so the event is retained even when the fault (or the
                # crash-style abort) unwinds the statement.
                self.events.emit("fault_injection", {
                    "point": point,
                    "hit_number": hit_number,
                    "crash_point": point in _CRASH_SET,
                })
            if point in _CRASH_SET:
                if self.crash_exit:
                    os._exit(137)
                raise ProcessAbort(point, hit_number)
            raise InjectedFault(point, hit_number)


def trip(faults: Optional[FaultInjector], point: str) -> None:
    """Hit ``point`` on ``faults`` when an injector is attached.

    The one-liner every storage structure calls just before a guarded
    mutation; ``faults is None`` (standalone structures) is free.
    """
    if faults is not None:
        faults.hit(point)
